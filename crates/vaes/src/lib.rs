//! # vaes — AES-128-CBC, host and virtine (the OpenSSL case study of §6.4)
//!
//! The paper modifies OpenSSL so its 128-bit AES block cipher runs in
//! virtine context, annotated with one `virtine` keyword — "a deeply
//! buried, heavily optimized function in a large codebase". This crate
//! rebuilds that study:
//!
//! * [`aes`] — a FIPS-197 reference implementation (the "native" library);
//! * [`guest`] — the same cipher in mini-C, compiled by `vcc` into a
//!   ~20 KB virtine image (matching the paper's "roughly 21KB");
//! * [`speed`] — the `openssl speed -evp aes-128-cbc` analogue comparing
//!   native and virtine throughput across block sizes.

pub mod aes;
pub mod guest;
pub mod speed;

pub use aes::{cbc_decrypt, cbc_encrypt, encrypt_block, key_expansion};
pub use guest::{aes_c_source, compile_aes_virtine, payload, MAX_DATA};
pub use speed::{run_speed, SpeedRow};
