//! The guest-side AES virtine: mini-C source generation and packaging.
//!
//! §6.4 moves OpenSSL's 128-bit AES block-cipher encryption into virtine
//! context. Here the cipher is written in mini-C (generated from the same
//! S-box as the host reference), compiled with `vcc` in the raw environment
//! (Figure 10 B), and driven by three data hypercalls: the payload arrives
//! as `key ‖ iv ‖ plaintext` via `get_data`, the ciphertext leaves via
//! `return_data`.

use std::fmt::Write as _;

use vcc::{compile_raw, CompileOptions, CompiledVirtine};

use crate::aes::SBOX;

/// Maximum plaintext bytes per invocation (the paper benchmarks up to
/// 16 KB block sizes in `openssl speed`).
pub const MAX_DATA: usize = 64 * 1024;

/// Generates the mini-C translation unit for the AES virtine.
pub fn aes_c_source() -> String {
    let mut sbox_list = String::new();
    for (i, v) in SBOX.iter().enumerate() {
        if i > 0 {
            sbox_list.push_str(", ");
        }
        let _ = write!(sbox_list, "{v}");
    }

    format!(
        r#"
char AES_SBOX[256] = {{{sbox_list}}};
char AES_RK[176];

int xtime(int x) {{
    x = x << 1;
    if (x & 256) {{
        x = x ^ 0x1b;
    }}
    return x & 255;
}}

void key_expansion(char* key) {{
    int i;
    int j;
    int rcon = 1;
    char t[4];
    for (i = 0; i < 16; i = i + 1) {{
        AES_RK[i] = key[i];
    }}
    for (i = 4; i < 44; i = i + 1) {{
        for (j = 0; j < 4; j = j + 1) {{
            t[j] = AES_RK[4 * (i - 1) + j];
        }}
        if (i % 4 == 0) {{
            int tmp = t[0];
            t[0] = AES_SBOX[t[1]] ^ rcon;
            t[1] = AES_SBOX[t[2]];
            t[2] = AES_SBOX[t[3]];
            t[3] = AES_SBOX[tmp];
            rcon = xtime(rcon);
        }}
        for (j = 0; j < 4; j = j + 1) {{
            AES_RK[4 * i + j] = AES_RK[4 * (i - 4) + j] ^ t[j];
        }}
    }}
}}

void add_round_key(char* s, int round) {{
    int i;
    for (i = 0; i < 16; i = i + 1) {{
        s[i] = s[i] ^ AES_RK[16 * round + i];
    }}
}}

void sub_shift(char* s) {{
    char old[16];
    int r;
    int c;
    for (r = 0; r < 16; r = r + 1) {{
        old[r] = AES_SBOX[s[r]];
    }}
    for (r = 0; r < 4; r = r + 1) {{
        for (c = 0; c < 4; c = c + 1) {{
            s[r + 4 * c] = old[r + 4 * ((c + r) % 4)];
        }}
    }}
}}

void mix_columns(char* s) {{
    int c;
    for (c = 0; c < 4; c = c + 1) {{
        int a0 = s[4 * c];
        int a1 = s[4 * c + 1];
        int a2 = s[4 * c + 2];
        int a3 = s[4 * c + 3];
        s[4 * c] = xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3;
        s[4 * c + 1] = a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3;
        s[4 * c + 2] = a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3;
        s[4 * c + 3] = xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3);
    }}
}}

void encrypt_block(char* s) {{
    int round;
    add_round_key(s, 0);
    for (round = 1; round < 10; round = round + 1) {{
        sub_shift(s);
        mix_columns(s);
        add_round_key(s, round);
    }}
    sub_shift(s);
    add_round_key(s, 10);
}}

/* Payload layout: 16-byte key | 16-byte IV | N-byte plaintext. */
int aes_main() {{
    /* Checkpoint after boot, before any per-invocation state: later
       invocations restore here and skip the boot sequence entirely
       (the snapshotting optimization the paper's OpenSSL study uses). */
    vsnapshot();
    char* buf = malloc({max_data} + 64);
    if (buf == 0) {{
        vexit(2);
    }}
    int n = vget_data(buf, {max_data} + 64);
    if (n < 48) {{
        vexit(3);
    }}
    char* key = buf;
    char* iv = buf + 16;
    char* data = buf + 32;
    int len = n - 32;
    if (len % 16 != 0) {{
        vexit(4);
    }}
    key_expansion(key);
    char* prev = iv;
    int off = 0;
    int i;
    while (off < len) {{
        for (i = 0; i < 16; i = i + 1) {{
            data[off + i] = data[off + i] ^ prev[i];
        }}
        encrypt_block(data + off);
        prev = data + off;
        off = off + 16;
    }}
    vreturn_data(data, len);
    vexit(0);
    return 0;
}}
"#,
        max_data = MAX_DATA
    )
}

/// Compiles the AES virtine image.
///
/// The resulting image is a few tens of KB — §6.4 reports "the OpenSSL
/// virtine image we use is roughly 21KB", and the snapshot-copy of that
/// image dominates invocation cost.
pub fn compile_aes_virtine() -> Result<CompiledVirtine, vcc::CError> {
    let opts = CompileOptions {
        mem_size: 512 * 1024,
        image_budget: 128 * 1024,
    };
    compile_raw(&aes_c_source(), "aes_main", &opts)
}

/// Builds the invocation payload: `key ‖ iv ‖ data`.
pub fn payload(key: &[u8; 16], iv: &[u8; 16], data: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(32 + data.len());
    p.extend_from_slice(key);
    p.extend_from_slice(iv);
    p.extend_from_slice(data);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes;
    use wasp::{ExitKind, HypercallMask, Invocation, VirtineSpec, Wasp};

    #[test]
    fn guest_aes_matches_host_reference() {
        let v = compile_aes_virtine().expect("compile");
        let wasp = Wasp::new_kvm_default();
        let spec = VirtineSpec::new("aes", v.image.clone(), v.mem_size).with_policy(
            HypercallMask::allowing(&[wasp::nr::GET_DATA, wasp::nr::RETURN_DATA]),
        );
        let id = wasp.register(spec).unwrap();

        let key = [0x2b; 16];
        let iv = [0x01; 16];
        let data: Vec<u8> = (0..64u8).collect();

        let out = wasp
            .run(id, &[], Invocation::with_payload(payload(&key, &iv, &data)))
            .unwrap();
        assert!(matches!(out.exit, ExitKind::Exited(0)), "{:?}", out.exit);

        let mut expected = data.clone();
        aes::cbc_encrypt(&key, &iv, &mut expected);
        assert_eq!(out.result_bytes(), expected.as_slice());
    }

    #[test]
    fn guest_rejects_partial_blocks() {
        let v = compile_aes_virtine().expect("compile");
        let wasp = Wasp::new_kvm_default();
        let spec = VirtineSpec::new("aes", v.image.clone(), v.mem_size)
            .with_policy(HypercallMask::ALLOW_ALL);
        let id = wasp.register(spec).unwrap();
        let key = [0u8; 16];
        let iv = [0u8; 16];
        // 17 bytes: enough for the header check, not a whole block.
        let out = wasp
            .run(
                id,
                &[],
                Invocation::with_payload(payload(&key, &iv, &[5u8; 17])),
            )
            .unwrap();
        assert!(matches!(out.exit, ExitKind::Exited(4)), "{:?}", out.exit);
        // Shorter than key+IV+one block is rejected earlier.
        let out = wasp
            .run(id, &[], Invocation::with_payload(vec![1, 2, 3]))
            .unwrap();
        assert!(matches!(out.exit, ExitKind::Exited(3)), "{:?}", out.exit);
    }

    #[test]
    fn image_is_tens_of_kilobytes() {
        let v = compile_aes_virtine().expect("compile");
        let size = v.image.size();
        assert!(
            (4 * 1024..64 * 1024).contains(&size),
            "AES image is {size} bytes (paper: ~21KB)"
        );
    }
}
