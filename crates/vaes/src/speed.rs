//! `openssl speed`-style throughput harness (§6.4).
//!
//! The paper runs `openssl speed -elapsed -evp aes-128-cbc` with the block
//! cipher natively and in virtine context (with snapshotting). Because each
//! invocation provisions a virtine, "virtine creation overheads amplify the
//! invocation cost significantly": at a 16 KB block size they report a 17×
//! slowdown, dominated by copying the ~21 KB snapshot.

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::Clock;
use wasp::{HypercallMask, Invocation, NativeRunner, VirtineSpec, Wasp, WaspConfig};

use crate::guest::{compile_aes_virtine, payload};

/// One row of the speed report.
#[derive(Debug, Clone)]
pub struct SpeedRow {
    /// Cipher block-buffer size in bytes.
    pub block_size: usize,
    /// Native throughput in MB/s (virtual time).
    pub native_mbps: f64,
    /// Virtine (with snapshotting) throughput in MB/s.
    pub virtine_mbps: f64,
    /// Slowdown factor (native / virtine).
    pub slowdown: f64,
}

/// Runs the speed sweep over `block_sizes`, performing `iters` encryptions
/// per size for each configuration.
pub fn run_speed(block_sizes: &[usize], iters: usize) -> Vec<SpeedRow> {
    let v = compile_aes_virtine().expect("AES virtine must compile");
    let key = [0x2b; 16];
    let iv = [0x42; 16];

    let mut rows = Vec::new();
    for &bs in block_sizes {
        let data = vec![0xA5u8; bs];
        let body = payload(&key, &iv, &data);

        // Native: same binary, run as ordinary code in the process.
        let native_clock = Clock::new();
        let native_kernel = HostKernel::new(native_clock.clone(), None);
        let native = NativeRunner::new(native_kernel);
        let t0 = native_clock.now();
        for _ in 0..iters {
            let out = native.run(
                &v.image,
                v.image.entry,
                &[],
                Invocation::with_payload(body.clone()),
                v.mem_size,
            );
            assert!(
                matches!(out.exit, wasp::NativeExit::Exited(0)),
                "native AES failed: {:?}",
                out.exit
            );
        }
        let native_secs = (native_clock.now() - t0).as_secs();

        // Virtine: one isolated context per encryption, snapshotting on.
        let virt_clock = Clock::new();
        let kernel = HostKernel::new(virt_clock.clone(), None);
        let wasp = Wasp::new(Hypervisor::kvm(kernel), WaspConfig::default());
        let spec = VirtineSpec::new("aes", v.image.clone(), v.mem_size).with_policy(
            HypercallMask::allowing(&[wasp::nr::GET_DATA, wasp::nr::RETURN_DATA]),
        );
        let id = wasp.register(spec).expect("register");
        let t0 = virt_clock.now();
        for _ in 0..iters {
            let out = wasp
                .run(id, &[], Invocation::with_payload(body.clone()))
                .expect("run");
            assert!(out.exit.is_normal(), "virtine AES failed: {:?}", out.exit);
        }
        let virt_secs = (virt_clock.now() - t0).as_secs();

        let total_mb = (bs * iters) as f64 / (1024.0 * 1024.0);
        let native_mbps = total_mb / native_secs;
        let virtine_mbps = total_mb / virt_secs;
        rows.push(SpeedRow {
            block_size: bs,
            native_mbps,
            virtine_mbps,
            slowdown: native_mbps / virtine_mbps,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtine_slowdown_shrinks_with_block_size() {
        // Small sizes/iterations keep the test quick; the bench binary
        // sweeps the full range. Note (EXPERIMENTS.md): our interpreted
        // cipher inflates compute time relative to the paper's AES-NI
        // native path, so the slowdown factors compress toward 1 as blocks
        // grow — the *shape* (memory-bound per-invocation overhead,
        // amortized by compute) is what this asserts.
        let rows = run_speed(&[16, 512, 4096], 2);
        assert_eq!(rows.len(), 3);
        // Per-call provisioning overhead must dominate at tiny blocks...
        assert!(
            rows[0].slowdown > 1.2,
            "tiny blocks should show overhead: {rows:?}"
        );
        // ...and amortize monotonically with block size.
        assert!(
            rows[0].slowdown > rows[1].slowdown && rows[1].slowdown > rows[2].slowdown,
            "slowdown should shrink monotonically: {rows:?}"
        );
        assert!(rows[2].slowdown >= 1.0, "{rows:?}");
    }
}
