//! AES-128 reference implementation (the OpenSSL stand-in of §6.4).
//!
//! A straightforward FIPS-197 implementation: S-box substitution, row
//! shifts, column mixing over GF(2⁸), and the 11-round-key expansion, plus
//! CBC mode. This is the host-side reference; the guest-side mini-C cipher
//! in [`crate::guest`] is generated from the same tables and is checked
//! against this implementation in tests.

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

fn xtime(x: u8) -> u8 {
    let w = (x as u16) << 1;
    if w & 0x100 != 0 {
        (w ^ 0x11b) as u8
    } else {
        w as u8
    }
}

/// GF(2⁸) multiplication.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Expanded round keys: 11 × 16 bytes.
#[derive(Debug, Clone)]
pub struct RoundKeys([u8; 176]);

/// Expands a 128-bit key.
pub fn key_expansion(key: &[u8; 16]) -> RoundKeys {
    let mut w = [0u8; 176];
    w[..16].copy_from_slice(key);
    let mut rcon: u8 = 1;
    for i in 4..44 {
        let mut t = [
            w[4 * (i - 1)],
            w[4 * (i - 1) + 1],
            w[4 * (i - 1) + 2],
            w[4 * (i - 1) + 3],
        ];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= rcon;
            rcon = xtime(rcon);
        }
        for j in 0..4 {
            w[4 * i + j] = w[4 * (i - 4) + j] ^ t[j];
        }
    }
    RoundKeys(w)
}

fn add_round_key(state: &mut [u8; 16], rk: &RoundKeys, round: usize) {
    for (i, b) in state.iter_mut().enumerate() {
        *b ^= rk.0[16 * round + i];
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let old = *state;
    for r in 0..4 {
        for c in 0..4 {
            state[r + 4 * c] = old[r + 4 * ((c + r) % 4)];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let a = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(a[0]) ^ xtime(a[1]) ^ a[1] ^ a[2] ^ a[3];
        state[4 * c + 1] = a[0] ^ xtime(a[1]) ^ xtime(a[2]) ^ a[2] ^ a[3];
        state[4 * c + 2] = a[0] ^ a[1] ^ xtime(a[2]) ^ xtime(a[3]) ^ a[3];
        state[4 * c + 3] = xtime(a[0]) ^ a[0] ^ a[1] ^ a[2] ^ xtime(a[3]);
    }
}

/// Encrypts one 16-byte block in place.
pub fn encrypt_block(rk: &RoundKeys, block: &mut [u8; 16]) {
    add_round_key(block, rk, 0);
    for round in 1..10 {
        sub_bytes(block);
        shift_rows(block);
        mix_columns(block);
        add_round_key(block, rk, round);
    }
    sub_bytes(block);
    shift_rows(block);
    add_round_key(block, rk, 10);
}

/// Decrypts one 16-byte block in place.
pub fn decrypt_block(rk: &RoundKeys, block: &mut [u8; 16]) {
    let inv = inv_sbox();
    let inv_shift = |state: &mut [u8; 16]| {
        let old = *state;
        for r in 0..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = old[r + 4 * c];
            }
        }
    };
    let inv_mix = |state: &mut [u8; 16]| {
        for c in 0..4 {
            let a = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(a[0], 14) ^ gmul(a[1], 11) ^ gmul(a[2], 13) ^ gmul(a[3], 9);
            state[4 * c + 1] = gmul(a[0], 9) ^ gmul(a[1], 14) ^ gmul(a[2], 11) ^ gmul(a[3], 13);
            state[4 * c + 2] = gmul(a[0], 13) ^ gmul(a[1], 9) ^ gmul(a[2], 14) ^ gmul(a[3], 11);
            state[4 * c + 3] = gmul(a[0], 11) ^ gmul(a[1], 13) ^ gmul(a[2], 9) ^ gmul(a[3], 14);
        }
    };

    add_round_key(block, rk, 10);
    for round in (1..10).rev() {
        inv_shift(block);
        for b in block.iter_mut() {
            *b = inv[*b as usize];
        }
        add_round_key(block, rk, round);
        inv_mix(block);
    }
    inv_shift(block);
    for b in block.iter_mut() {
        *b = inv[*b as usize];
    }
    add_round_key(block, rk, 0);
}

/// CBC-encrypts `data` (length must be a multiple of 16) in place.
///
/// # Panics
///
/// Panics if `data.len() % 16 != 0`.
pub fn cbc_encrypt(key: &[u8; 16], iv: &[u8; 16], data: &mut [u8]) {
    assert_eq!(data.len() % 16, 0, "CBC needs whole blocks");
    let rk = key_expansion(key);
    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(16) {
        let mut block: [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        encrypt_block(&rk, &mut block);
        chunk.copy_from_slice(&block);
        prev = block;
    }
}

/// CBC-decrypts `data` (length must be a multiple of 16) in place.
///
/// # Panics
///
/// Panics if `data.len() % 16 != 0`.
pub fn cbc_decrypt(key: &[u8; 16], iv: &[u8; 16], data: &mut [u8]) {
    assert_eq!(data.len() % 16, 0, "CBC needs whole blocks");
    let rk = key_expansion(key);
    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(16) {
        let cipher: [u8; 16] = chunk.try_into().expect("chunk is 16 bytes");
        let mut block = cipher;
        decrypt_block(&rk, &mut block);
        for (b, p) in block.iter_mut().zip(prev.iter()) {
            *b ^= p;
        }
        chunk.copy_from_slice(&block);
        prev = cipher;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips_197_appendix_b_vector() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let rk = key_expansion(&key);
        encrypt_block(&rk, &mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        decrypt_block(&rk, &mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn nist_sp800_38a_cbc_vector() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut data = hex("6bc1bee22e409f96e93d7e117393172a");
        cbc_encrypt(&key, &iv, &mut data);
        assert_eq!(data, hex("7649abac8119b246cee98e9b12e9197d"));
        cbc_decrypt(&key, &iv, &mut data);
        assert_eq!(data, hex("6bc1bee22e409f96e93d7e117393172a"));
    }

    #[test]
    fn multi_block_cbc_round_trips() {
        let key = [7u8; 16];
        let iv = [9u8; 16];
        let original: Vec<u8> = (0..64u8).collect();
        let mut data = original.clone();
        cbc_encrypt(&key, &iv, &mut data);
        assert_ne!(data, original);
        // Blocks must chain: identical plaintext blocks encrypt differently.
        let mut rep = vec![0xAAu8; 32];
        cbc_encrypt(&key, &iv, &mut rep);
        assert_ne!(rep[..16], rep[16..]);
        cbc_decrypt(&key, &iv, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn partial_block_panics() {
        cbc_encrypt(&[0; 16], &[0; 16], &mut [0u8; 15]);
    }

    #[test]
    fn gmul_agrees_with_xtime() {
        for x in 0..=255u8 {
            assert_eq!(gmul(x, 2), xtime(x));
            assert_eq!(gmul(x, 1), x);
            assert_eq!(gmul(x, 3), xtime(x) ^ x);
        }
    }
}
