//! The vanilla-OpenWhisk comparison model (§7.1).
//!
//! The paper compares Vespid to unmodified Apache OpenWhisk, noting that
//! "OpenWhisk's container engine does not employ optimizations such as
//! container reuse and snapshotting seen in the recent literature like
//! SOCK, SEUSS, Faasm, and Catalyzer, which all provide cold-start
//! latencies less than 20ms" — i.e. vanilla activations pay container
//! management and engine-initialization costs in the tens-of-milliseconds
//! to hundreds-of-milliseconds range.
//!
//! Since a container engine cannot be "built from scratch" meaningfully in
//! this simulation, the baseline is a documented cost model (the same
//! treatment `hostsim` gives pthreads and SGX):
//!
//! * **cold start** — container creation + Node.js/V8 runtime boot. SOCK
//!   (ATC '18) measures vanilla docker-based cold starts in the hundreds
//!   of milliseconds; we charge 450 ms.
//! * **warm activation** — container unpause/schedule plus invoker
//!   overhead; tens of milliseconds in published OpenWhisk measurements;
//!   we charge 18 ms.
//! * **function work** — the base64 body itself, microseconds; we charge
//!   the same work Vespid's engine performs (0.3 ms at our data size).

use crate::platform::Platform;

/// Cost-model parameters (seconds).
#[derive(Debug, Clone, Copy)]
pub struct OpenWhiskModel {
    /// Containers that still need a cold start.
    cold_remaining: usize,
    /// Cold-start latency: docker run + V8 boot.
    pub cold_start_s: f64,
    /// Warm activation overhead: unpause + invoker scheduling.
    pub warm_overhead_s: f64,
    /// The function body itself.
    pub work_s: f64,
}

impl OpenWhiskModel {
    /// The vanilla-OpenWhisk defaults described in the module docs, with
    /// one cold start per worker of a typical 4-worker invoker pool.
    pub fn default_vanilla() -> OpenWhiskModel {
        OpenWhiskModel {
            cold_remaining: 4,
            cold_start_s: 0.450,
            warm_overhead_s: 0.018,
            work_s: 0.0003,
        }
    }
}

impl Platform for OpenWhiskModel {
    fn invoke(&mut self) -> f64 {
        if self.cold_remaining > 0 {
            self.cold_remaining -= 1;
            self.cold_start_s + self.work_s
        } else {
            self.warm_overhead_s + self.work_s
        }
    }

    fn name(&self) -> &'static str {
        "openwhisk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_starts_then_warm_activations() {
        let mut m = OpenWhiskModel::default_vanilla();
        let first = m.invoke();
        assert!(first > 0.4, "first activation must be cold: {first}");
        for _ in 0..3 {
            m.invoke();
        }
        let warm = m.invoke();
        assert!(
            (0.01..0.05).contains(&warm),
            "warm activation out of band: {warm}"
        );
        assert!(first > 10.0 * warm);
    }
}
