//! The Locust-style load generator (§7.1).
//!
//! "We produce a series of concurrent function requests (from multiple
//! clients) against both platforms using Locust, an off-the-shelf workload
//! generator. This invocation pattern involves an initial ramp-up period
//! that leads to two bursts, which then ramp down."

/// One phase of the load pattern: a duration and a request rate ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPhase {
    /// Phase length in seconds.
    pub duration_s: f64,
    /// Request rate at the start of the phase (requests/second).
    pub start_rps: f64,
    /// Request rate at the end of the phase (linearly interpolated).
    pub end_rps: f64,
}

/// The paper's pattern: ramp up, burst, dip, burst again, ramp down.
pub fn locust_pattern() -> Vec<LoadPhase> {
    vec![
        // Initial ramp-up.
        LoadPhase {
            duration_s: 10.0,
            start_rps: 2.0,
            end_rps: 60.0,
        },
        // First burst.
        LoadPhase {
            duration_s: 8.0,
            start_rps: 180.0,
            end_rps: 180.0,
        },
        // Dip between bursts.
        LoadPhase {
            duration_s: 6.0,
            start_rps: 30.0,
            end_rps: 30.0,
        },
        // Second burst.
        LoadPhase {
            duration_s: 8.0,
            start_rps: 180.0,
            end_rps: 180.0,
        },
        // Ramp down.
        LoadPhase {
            duration_s: 10.0,
            start_rps: 40.0,
            end_rps: 1.0,
        },
    ]
}

/// Expands a pattern into deterministic arrival timestamps (seconds),
/// scaled by `scale` (0.25 = quarter the requests, same shape).
pub fn pattern_arrivals(phases: &[LoadPhase], scale: f64) -> Vec<f64> {
    let mut arrivals = Vec::new();
    let mut t0 = 0.0;
    for p in phases {
        // Integrate the linear rate: next arrival when the accumulated
        // rate-mass reaches 1/scale.
        let mut acc = 0.0;
        let dt = 0.001;
        let mut t = 0.0;
        while t < p.duration_s {
            let rate = p.start_rps + (p.end_rps - p.start_rps) * (t / p.duration_s);
            acc += rate * dt * scale;
            if acc >= 1.0 {
                arrivals.push(t0 + t);
                acc -= 1.0;
            }
            t += dt;
        }
        t0 += p.duration_s;
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        let a = pattern_arrivals(&locust_pattern(), 0.1);
        let b = pattern_arrivals(&locust_pattern(), 0.1);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(!a.is_empty());
    }

    #[test]
    fn bursts_have_higher_density_than_ramps() {
        let a = pattern_arrivals(&locust_pattern(), 1.0);
        let count_in = |lo: f64, hi: f64| a.iter().filter(|&&t| t >= lo && t < hi).count();
        let burst1 = count_in(10.0, 18.0);
        let dip = count_in(18.0, 24.0);
        let burst2 = count_in(24.0, 32.0);
        assert!(burst1 > 4 * dip, "burst1={burst1} dip={dip}");
        assert!(burst2 > 4 * dip, "burst2={burst2} dip={dip}");
        // Burst rate ≈ 180 rps over 8 s.
        assert!((1300..1500).contains(&burst1), "burst1={burst1}");
    }

    #[test]
    fn scale_scales_linearly() {
        let full = pattern_arrivals(&locust_pattern(), 1.0).len() as f64;
        let half = pattern_arrivals(&locust_pattern(), 0.5).len() as f64;
        assert!((half / full - 0.5).abs() < 0.05);
    }
}
