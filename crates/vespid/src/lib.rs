//! # vespid — the virtine serverless platform prototype (§7.1, Figure 15)
//!
//! "We implemented a prototype serverless platform based on Apache's
//! OpenWhisk framework that integrates with our virtine Duktape engine. …
//! users register JavaScript functions via a web application … handled by a
//! concurrent server which runs each serverless function in a distinct
//! virtine (rather than a container)."
//!
//! Two platforms are compared under a Locust-style load pattern ("an
//! initial ramp-up period that leads to two bursts, which then ramp
//! down"):
//!
//! * **Vespid** — each invocation runs the Duktide engine in a virtine via
//!   Wasp, with shell pooling and snapshotting; service times are
//!   *measured* by actually executing the virtine.
//! * **OpenWhisk-like** — a cost model of the vanilla container path the
//!   paper compares against: per-activation container management plus a
//!   V8-class engine initialization, with cold containers paying a full
//!   cold start. The constants are documented on
//!   [`openwhisk::OpenWhiskModel`].
//!
//! The platforms feed a deterministic multi-worker queueing simulation in
//! continuous (virtual) time, yielding the latency timeline and achieved
//! throughput of Figure 15.

pub mod load;
pub mod openwhisk;
pub mod platform;
pub mod sim;

pub use load::{locust_pattern, LoadPhase};
pub use openwhisk::OpenWhiskModel;
pub use platform::{Platform, VespidPlatform};
pub use sim::{simulate, Completed, SimResult};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_15_vespid_beats_vanilla_openwhisk_under_bursts() {
        // Scaled-down pattern and payload to keep `cargo test` fast (the
        // full debug run used to dominate the suite at ~3 min); the bench
        // binary runs the full pattern, and setting VESPID_FIG15_FULL=1
        // restores the larger in-test configuration for a thorough local
        // run.
        let full = std::env::var_os("VESPID_FIG15_FULL").is_some();
        let (scale, data_len) = if full { (0.25, 4096) } else { (0.04, 1024) };
        let arrivals = load::pattern_arrivals(&load::locust_pattern(), scale);
        assert!(arrivals.len() > 50, "need a meaningful burst");

        let mut vespid = VespidPlatform::new(data_len).expect("vespid");
        let vespid_run = simulate(&mut vespid, &arrivals, 4);

        let mut ow = OpenWhiskModel::default_vanilla();
        let ow_run = simulate(&mut ow, &arrivals, 4);

        let v_p50 = vespid_run.latency_percentile(50.0);
        let o_p50 = ow_run.latency_percentile(50.0);
        assert!(
            v_p50 * 5.0 < o_p50,
            "Vespid p50 {v_p50:.4}s should be far below OpenWhisk {o_p50:.4}s"
        );
        // Under the same offered load, Vespid keeps up with the bursts
        // (completions track arrivals); vanilla OpenWhisk falls behind.
        assert!(vespid_run.makespan() < ow_run.makespan());
    }
}
