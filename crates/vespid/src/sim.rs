//! Multi-worker queueing simulation in continuous virtual time.
//!
//! Arrivals from the load generator are dispatched to a fixed pool of
//! workers ("a concurrent server", §7.1). Each request's service time is
//! obtained from the platform (for Vespid, by actually running the
//! virtine); latency is queueing delay plus service. The output is the
//! per-request latency timeline and the achieved-throughput series that
//! Figure 15 plots.

use crate::platform::Platform;

/// One completed request.
#[derive(Debug, Clone, Copy)]
pub struct Completed {
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Time the request started executing.
    pub start: f64,
    /// End-to-end latency (queueing + service), seconds.
    pub latency: f64,
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Platform name.
    pub platform: &'static str,
    /// Completions in arrival order.
    pub completed: Vec<Completed>,
    /// Worker count used.
    pub workers: usize,
}

impl SimResult {
    /// Linear-interpolated latency percentile in seconds.
    ///
    /// # Panics
    ///
    /// Panics if there are no completions.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let xs: Vec<f64> = self.completed.iter().map(|c| c.latency).collect();
        vclock::stats::percentile(&xs, p)
    }

    /// Time the last request completes.
    pub fn makespan(&self) -> f64 {
        self.completed
            .iter()
            .map(|c| c.arrival + c.latency)
            .fold(0.0, f64::max)
    }

    /// Achieved throughput (completions/second) in buckets of
    /// `bucket_s` seconds — Figure 15's dotted line.
    pub fn throughput_series(&self, bucket_s: f64) -> Vec<(f64, f64)> {
        let end = self.makespan();
        let buckets = (end / bucket_s).ceil() as usize + 1;
        let mut counts = vec![0usize; buckets];
        for c in &self.completed {
            let idx = ((c.arrival + c.latency) / bucket_s) as usize;
            counts[idx.min(buckets - 1)] += 1;
        }
        counts
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as f64 * bucket_s, n as f64 / bucket_s))
            .collect()
    }
}

/// Runs `arrivals` through `platform` with `workers` concurrent workers.
pub fn simulate(platform: &mut dyn Platform, arrivals: &[f64], workers: usize) -> SimResult {
    assert!(workers > 0, "need at least one worker");
    let mut free_at = vec![0.0f64; workers];
    let mut completed = Vec::with_capacity(arrivals.len());
    for &arrival in arrivals {
        // Earliest-free worker picks the request up.
        let (widx, &wfree) = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .expect("workers > 0");
        let start = arrival.max(wfree);
        let service = platform.invoke();
        free_at[widx] = start + service;
        completed.push(Completed {
            arrival,
            start,
            latency: start - arrival + service,
        });
    }
    SimResult {
        platform: platform.name(),
        completed,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A constant-service-time test platform.
    struct Fixed(f64);
    impl Platform for Fixed {
        fn invoke(&mut self) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn underloaded_requests_have_service_only_latency() {
        let arrivals = [0.0, 1.0, 2.0, 3.0];
        let r = simulate(&mut Fixed(0.1), &arrivals, 2);
        for c in &r.completed {
            assert!((c.latency - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn overloaded_requests_queue() {
        // 10 requests at t=0, one worker, 1 s each: the last waits 9 s.
        let arrivals = [0.0; 10];
        let r = simulate(&mut Fixed(1.0), &arrivals, 1);
        let max = r.latency_percentile(100.0);
        assert!((max - 10.0).abs() < 1e-9, "max latency {max}");
        assert!((r.makespan() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn more_workers_reduce_queueing() {
        let arrivals = [0.0; 16];
        let one = simulate(&mut Fixed(0.5), &arrivals, 1);
        let four = simulate(&mut Fixed(0.5), &arrivals, 4);
        assert!(four.latency_percentile(95.0) < one.latency_percentile(95.0));
    }

    #[test]
    fn throughput_series_counts_completions() {
        let arrivals = [0.0, 0.1, 0.2, 5.0];
        let r = simulate(&mut Fixed(0.05), &arrivals, 4);
        let series = r.throughput_series(1.0);
        let total: f64 = series.iter().map(|(_, rps)| rps).sum();
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        simulate(&mut Fixed(0.1), &[0.0], 0);
    }
}
