//! Platform abstraction and the Vespid (virtine) implementation.

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::Clock;
use vjs::{compile_engine, reference_eval, BASE64_HANDLER};
use wasp::{HypercallMask, Invocation, VirtineId, VirtineSpec, Wasp, WaspConfig};

/// A serverless platform that can service one function invocation at a
/// time per worker; the queueing simulation drives it.
pub trait Platform {
    /// Services one invocation, returning its service time in seconds.
    fn invoke(&mut self) -> f64;

    /// Platform name for reports.
    fn name(&self) -> &'static str;
}

/// The virtine-backed platform: each invocation runs the registered
/// JavaScript function in a fresh virtine via Wasp (§7.1).
pub struct VespidPlatform {
    wasp: Wasp,
    clock: Clock,
    id: VirtineId,
    payload: Vec<u8>,
    expected: Vec<u8>,
}

impl VespidPlatform {
    /// Registers the paper's base64 function with a `data_len`-byte input.
    pub fn new(data_len: usize) -> Result<VespidPlatform, vcc::CError> {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock.clone(), None);
        let wasp = Wasp::new(Hypervisor::kvm(kernel), WaspConfig::default());
        // NT configuration: the engine skips teardown; the shell pool wipes
        // contexts off the request path (§6.5's best configuration).
        let engine = compile_engine(BASE64_HANDLER, false)?;
        let spec = VirtineSpec::new("handler", engine.image.clone(), engine.mem_size)
            .with_policy(HypercallMask::allowing(&[
                wasp::nr::GET_DATA,
                wasp::nr::RETURN_DATA,
            ]));
        let id = wasp.register(spec).expect("register engine");
        let payload: Vec<u8> = (0..data_len).map(|i| (i % 97) as u8).collect();
        let expected = reference_eval(BASE64_HANDLER, &payload).expect("reference");
        Ok(VespidPlatform {
            wasp,
            clock,
            id,
            payload,
            expected,
        })
    }
}

impl Platform for VespidPlatform {
    fn invoke(&mut self) -> f64 {
        let t0 = self.clock.now();
        let out = self
            .wasp
            .run(self.id, &[], Invocation::with_payload(self.payload.clone()))
            .expect("invoke");
        assert!(out.exit.is_normal(), "function failed: {:?}", out.exit);
        assert_eq!(out.invocation.result, self.expected, "wrong output");
        (self.clock.now() - t0).as_secs()
    }

    fn name(&self) -> &'static str {
        "vespid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vespid_invocations_are_sub_millisecond_after_warmup() {
        let mut p = VespidPlatform::new(1024).unwrap();
        let cold = p.invoke();
        let warm = p.invoke();
        assert!(warm <= cold, "warm {warm} cold {cold}");
        // Warm invocations: snapshot restore + engine execution. The paper
        // demonstrates sub-millisecond virtine responses.
        assert!(warm < 0.002, "warm invocation took {warm} s");
    }
}
