//! Platform abstraction and the Vespid (virtine) implementation.
//!
//! Since the `vsched` dispatcher landed, Vespid no longer talks to a bare
//! `wasp::Wasp` with one global shell pool: every invocation is admitted,
//! queued, and placed by a [`vsched::Dispatcher`], the same path the
//! `dispatcher_scaling` bench drives at platform scale. The single-worker
//! [`Platform`] interface the Figure 15 queueing simulation consumes is
//! preserved on top (each `invoke` submits one request and drains it).

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::Clock;
use vjs::{compile_engine, reference_eval, BASE64_HANDLER};
use vsched::{
    Completion, Dispatcher, DispatcherConfig, Request, ShedReason, TenantId, TenantProfile,
};
use wasp::{HypercallMask, Invocation, VirtineId, VirtineSpec, Wasp, WaspConfig};

/// A serverless platform that can service one function invocation at a
/// time per worker; the queueing simulation drives it.
pub trait Platform {
    /// Services one invocation, returning its service time in seconds.
    fn invoke(&mut self) -> f64;

    /// Platform name for reports.
    fn name(&self) -> &'static str;
}

/// The virtine-backed platform: each invocation runs the registered
/// JavaScript function in a fresh virtine via Wasp (§7.1), admitted and
/// placed by the `vsched` dispatcher.
pub struct VespidPlatform {
    dispatcher: Dispatcher,
    tenant: TenantId,
    id: VirtineId,
    payload: Vec<u8>,
    expected: Vec<u8>,
    next_arrival: f64,
}

impl VespidPlatform {
    /// Registers the paper's base64 function with a `data_len`-byte input,
    /// dispatched through a single-shard `vsched` (the §7.1 configuration:
    /// one concurrent server; the queueing sim adds workers on top).
    pub fn new(data_len: usize) -> Result<VespidPlatform, vcc::CError> {
        VespidPlatform::with_shards(data_len, 1)
    }

    /// Same, over `shards` dispatcher shards — the entry point for the
    /// `dispatcher_scaling` bench's shard-count sweep.
    pub fn with_shards(data_len: usize, shards: usize) -> Result<VespidPlatform, vcc::CError> {
        let clock = Clock::new();
        let kernel = HostKernel::new(clock, None);
        let wasp = Wasp::new(Hypervisor::kvm(kernel), WaspConfig::default());
        let mut dispatcher = Dispatcher::new(
            wasp,
            DispatcherConfig {
                shards,
                ..DispatcherConfig::default()
            },
        );
        // NT configuration: the engine skips teardown; the shell pool wipes
        // contexts off the request path (§6.5's best configuration).
        let engine = compile_engine(BASE64_HANDLER, false)?;
        let spec = VirtineSpec::new("handler", engine.image.clone(), engine.mem_size).with_policy(
            HypercallMask::allowing(&[wasp::nr::GET_DATA, wasp::nr::RETURN_DATA]),
        );
        let id = dispatcher.register(spec).expect("register engine");
        // The platform's own tenant: unthrottled, ceiling wide open — the
        // spec policy above is what actually constrains the engine.
        let tenant =
            dispatcher.add_tenant(TenantProfile::new("vespid").with_mask(HypercallMask::ALLOW_ALL));
        let payload: Vec<u8> = (0..data_len).map(|i| (i % 97) as u8).collect();
        let expected = reference_eval(BASE64_HANDLER, &payload).expect("reference");
        Ok(VespidPlatform {
            dispatcher,
            tenant,
            id,
            payload,
            expected,
            next_arrival: 0.0,
        })
    }

    /// The dispatcher underneath (stats, shard views, drains).
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    /// Mutable dispatcher access for experiment harnesses.
    pub fn dispatcher_mut(&mut self) -> &mut Dispatcher {
        &mut self.dispatcher
    }

    /// The registered engine virtine.
    pub fn virtine(&self) -> VirtineId {
        self.id
    }

    /// The platform's own (unthrottled) tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Fraction of served invocations re-armed from a warm shell (the
    /// dirty-page-delta fast path) rather than paying a full sparse
    /// restore or a cold boot.
    pub fn warm_hit_rate(&self) -> f64 {
        self.dispatcher.stats().warm_hit_rate()
    }

    /// Registers an additional tenant (for multi-tenant experiments).
    pub fn add_tenant(&mut self, profile: TenantProfile) -> TenantId {
        self.dispatcher.add_tenant(profile)
    }

    /// Submits one standard engine invocation for `tenant` at `arrival_s`.
    pub fn submit_for(&mut self, tenant: TenantId, arrival_s: f64) -> Result<u64, ShedReason> {
        self.dispatcher.submit(
            Request::new(tenant, self.id, arrival_s)
                .with_invocation(Invocation::with_payload(self.payload.clone())),
        )
    }

    /// Asserts a completion produced the reference base64 output.
    pub fn check(&self, c: &Completion) {
        assert!(c.exit_normal, "function failed");
        assert_eq!(c.result, self.expected, "wrong output");
    }
}

impl Platform for VespidPlatform {
    fn invoke(&mut self) -> f64 {
        let arrival = self.next_arrival;
        self.submit_for(self.tenant, arrival)
            .expect("unthrottled tenant always admits");
        self.dispatcher.run_to_idle();
        let c = self
            .dispatcher
            .take_completions()
            .pop()
            .expect("one completion per invoke");
        self.check(&c);
        self.next_arrival = c.finish.max(arrival);
        c.service
    }

    fn name(&self) -> &'static str {
        "vespid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vespid_invocations_are_sub_millisecond_after_warmup() {
        let mut p = VespidPlatform::new(1024).unwrap();
        let cold = p.invoke();
        let warm = p.invoke();
        assert!(warm <= cold, "warm {warm} cold {cold}");
        // Warm invocations: snapshot restore + engine execution. The paper
        // demonstrates sub-millisecond virtine responses.
        assert!(warm < 0.002, "warm invocation took {warm} s");
    }

    #[test]
    fn invocations_flow_through_the_dispatcher() {
        let mut p = VespidPlatform::new(256).unwrap();
        p.invoke();
        p.invoke();
        let stats = p.dispatcher().stats();
        assert_eq!(stats.served, 2);
        assert_eq!(stats.shed(), 0);
        // The second invocation reuses the first's pooled shell.
        assert!(p.dispatcher().pool_stats().reused >= 1);
    }

    #[test]
    fn repeat_invocations_hit_warm_shells() {
        // The engine snapshots after duktape initialization; the engine
        // shell parks warm and repeats re-arm from the dirty-page delta.
        let mut p = VespidPlatform::new(256).unwrap();
        p.invoke();
        assert_eq!(p.warm_hit_rate(), 0.0, "first invocation cold-boots");
        p.invoke();
        p.invoke();
        assert!(
            (p.warm_hit_rate() - 2.0 / 3.0).abs() < 1e-9,
            "warm-hit rate {}",
            p.warm_hit_rate()
        );
    }
}
