//! # vlibc — the virtine guest runtime environments
//!
//! The paper's virtines need an in-guest software layer: boot code that
//! brings the machine up from real mode, and a small C library ("we created
//! a virtine-specific port of newlib", §5.3) whose system calls forward to
//! the hypervisor as hypercalls. This crate carries those pieces as source
//! text — VISA assembly for the boot stubs and mini-C for the library —
//! which the `vcc` compiler packages into each virtine image, pruning
//! whatever the call graph doesn't need (§2: "a virtine image contains only
//! the software that a function needs").
//!
//! Two execution environments mirror Figure 10:
//!
//! * **Full** (environment A, language extensions): boot → libc/CRT init →
//!   automatic `snapshot` hypercall → argument marshalling → workload.
//! * **Raw** (environment B, direct runtime API): boot → libc init →
//!   workload; the guest decides if/when to snapshot (as the Duktape
//!   engine of §6.5 does with its explicit `snapshot()` call).

/// Guest physical layout constants shared between crt0 and the runtime.
pub mod layout {
    /// Where marshalled arguments live (§6.1).
    pub const ARGS_BASE: u64 = 0x0;
    /// First page-table page (PML4); tables occupy 0x1000–0x3FFF.
    pub const PT_BASE: u64 = 0x1000;
    /// Image load/entry address (§5.1).
    pub const IMAGE_BASE: u64 = 0x8000;
    /// Heap base for `malloc` (well above any realistic image).
    pub const HEAP_BASE: u64 = 0x10_0000;
    /// Stack reservation below the top of guest memory.
    pub const STACK_RESERVE: u64 = 64 * 1024;
}

/// Which Figure 10 environment a crt0 targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Crt0Kind {
    /// Environment A: automatic snapshot + marshalled call of the virtine
    /// function with `arity` integer arguments.
    Full {
        /// Number of 8-byte arguments to unmarshal from [`layout::ARGS_BASE`].
        arity: usize,
    },
    /// Environment B: boot straight into `main`-style code; no automatic
    /// snapshot, no marshalling.
    Raw,
}

/// Generates the crt0 boot stub for a virtine image.
///
/// The stub is the classic bring-up of §4.2 Table 1: `lgdt`, CR0.PE, far
/// jump to 32-bit, a 512-entry 2 MiB identity map of the first 1 GiB,
/// CR3/CR4.PAE/EFER.LME/CR0.PG, far jump to 64-bit, stack setup, then
/// library initialization and the workload call.
///
/// `entry_fn` is the symbol to call; `mem_size` fixes the stack top and
/// heap limit. The heap defaults to [`layout::HEAP_BASE`]; use
/// [`crt0_with_heap`] when the image budget needs to differ.
pub fn crt0(entry_fn: &str, kind: Crt0Kind, mem_size: usize) -> String {
    crt0_with_heap(entry_fn, kind, mem_size, layout::HEAP_BASE)
}

/// [`crt0`] with an explicit heap base (must lie above the image and below
/// the stack reservation).
pub fn crt0_with_heap(entry_fn: &str, kind: Crt0Kind, mem_size: usize, heap_base: u64) -> String {
    let stack_top = (mem_size as u64) & !0xF;
    let heap_limit = stack_top.saturating_sub(layout::STACK_RESERVE);
    let image_base = layout::IMAGE_BASE;

    let mut s = String::new();
    s.push_str(&format!(
        "\
.org {image_base:#x}
.equ HC_PORT, 0x1
__start:
  mark 1                 ; boot begin
  lgdt __gdt
  mov r0, 1
  mov cr0, r0            ; CR0.PE: protected transition
  ljmp32 __p32
__p32:
  mark 2                 ; protected mode reached
  mov r1, 0x1000         ; PML4 -> PDPT
  mov r2, 0x2003
  store.q [r1], r2
  mov r1, 0x2000         ; PDPT -> PD
  mov r2, 0x3003
  store.q [r1], r2
  mov r3, 0              ; 512 x 2MB identity map
  mov r4, 0x83
  mov r5, 0x3000
__ptloop:
  store.q [r5], r4
  add r5, 8
  add r4, 0x200000
  add r3, 1
  cmp r3, 512
  jl __ptloop
  mov r7, 0x1000
  mov cr3, r7
  mov r7, 0x20
  mov cr4, r7            ; PAE
  mov r7, 0x100
  wrmsr 0xC0000080, r7   ; EFER.LME
  mov r7, 0x80000001
  mov cr0, r7            ; CR0.PG (+PE)
  ljmp64 __l64
__l64:
  mark 3                 ; long mode reached
  mov sp, {stack_top:#x}
  mov r8, {heap_limit:#x}
  push r8
  mov r8, {heap_base:#x}
  push r8
  call __libc_init
  add sp, 16
  mark 4                 ; CRT/libc init done
"
    ));
    match kind {
        Crt0Kind::Full { arity } => {
            s.push_str(
                "  mov r6, 8\n  out HC_PORT, r6      ; automatic snapshot (env A)\n  mark 5\n",
            );
            // Marshal: push arguments right-to-left from ARGS_BASE.
            s.push_str("  mov r9, 0\n");
            for i in (0..arity).rev() {
                s.push_str(&format!("  load.q r8, [r9 + {}]\n  push r8\n", 8 * i));
            }
            s.push_str(&format!("  call {entry_fn}\n"));
            if arity > 0 {
                s.push_str(&format!("  add sp, {}\n", 8 * arity));
            }
            s.push_str("  hlt\n");
        }
        Crt0Kind::Raw => {
            s.push_str(&format!("  call {entry_fn}\n  hlt\n"));
        }
    }
    s.push_str("__gdt: .dq 0\n");
    s
}

/// The hypercall trampoline, callable from mini-C as
/// `int hypercall(int nr, int a, int b, int c)`.
///
/// Wasp's ABI: the hypercall number is written to the port; arguments ride
/// in `r1`–`r3`; the handler's return value appears in `r0` (§5.1, one exit
/// per call).
pub const HYPERCALL_ASM: &str = "\
hypercall:
  push fp
  mov fp, sp
  load.q r6, [fp + 16]   ; nr
  load.q r1, [fp + 24]
  load.q r2, [fp + 32]
  load.q r3, [fp + 40]
  out HC_PORT, r6
  pop fp
  ret
";

/// The four-argument hypercall trampoline, callable from mini-C as
/// `int hypercall4(int nr, int a, int b, int c, int d)`.
///
/// The `chan_*` calls carry a flags word in the fourth argument register
/// (`r4`); the three-argument trampoline leaves `r4` holding caller
/// garbage, which for a flags register would randomly flip a blocking
/// call non-blocking — so four-argument calls get their own stub that
/// pins every register they consume.
pub const HYPERCALL4_ASM: &str = "\
hypercall4:
  push fp
  mov fp, sp
  load.q r6, [fp + 16]   ; nr
  load.q r1, [fp + 24]
  load.q r2, [fp + 32]
  load.q r3, [fp + 40]
  load.q r4, [fp + 48]
  out HC_PORT, r6
  pop fp
  ret
";

/// The mini-C library source: the "newlib port" of §5.3. Compiled into the
/// same translation unit as user code, so the call-graph cut of §2 prunes
/// unused routines from the image.
pub const LIBC_C: &str = r#"
int hypercall(int nr, int a, int b, int c);
int hypercall4(int nr, int a, int b, int c, int d);

int __heap_ptr;
int __heap_limit;

void __libc_init(int base, int limit) {
    __heap_ptr = base;
    __heap_limit = limit;
}

/* Bump allocator with no reclamation: the shell is wiped after every
   invocation anyway, so free() is a no-op. */
char* malloc(int n) {
    n = (n + 15) & ~15;
    if (__heap_ptr + n > __heap_limit) {
        return 0;
    }
    int p = __heap_ptr;
    __heap_ptr = __heap_ptr + n;
    return (char*)p;
}

void free(char* p) {
}

int heap_used() {
    return __heap_ptr;
}

void* memcpy(char* dst, char* src, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        dst[i] = src[i];
    }
    return dst;
}

void* memset(char* dst, int c, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        dst[i] = c;
    }
    return dst;
}

int strlen(char* s) {
    int n;
    n = 0;
    while (s[n] != 0) {
        n = n + 1;
    }
    return n;
}

char* strcpy(char* dst, char* src) {
    int i;
    i = 0;
    while (src[i] != 0) {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return dst;
}

int strcmp(char* a, char* b) {
    int i;
    i = 0;
    while (a[i] != 0 && a[i] == b[i]) {
        i = i + 1;
    }
    return a[i] - b[i];
}

int strncmp(char* a, char* b, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        if (a[i] != b[i]) {
            return a[i] - b[i];
        }
        if (a[i] == 0) {
            return 0;
        }
    }
    return 0;
}

/* Renders v in decimal into buf; returns the length. */
int itoa(int v, char* buf) {
    int i;
    int j;
    int neg;
    char tmp[24];
    neg = 0;
    if (v < 0) {
        neg = 1;
        v = 0 - v;
    }
    i = 0;
    if (v == 0) {
        tmp[0] = '0';
        i = 1;
    }
    while (v > 0) {
        tmp[i] = '0' + v % 10;
        v = v / 10;
        i = i + 1;
    }
    j = 0;
    if (neg) {
        buf[0] = '-';
        j = 1;
    }
    while (i > 0) {
        i = i - 1;
        buf[j] = tmp[i];
        j = j + 1;
    }
    buf[j] = 0;
    return j;
}

int atoi(char* s) {
    int v;
    int sign;
    int i;
    v = 0;
    sign = 1;
    i = 0;
    if (s[0] == '-') {
        sign = 0 - 1;
        i = 1;
    }
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i = i + 1;
    }
    return v * sign;
}

/* ---- System calls: forwarded to the hypervisor (§5.3: "Newlib allows
   developers to provide their own system call implementations; we simply
   forward them to the hypervisor as a hypercall.") ---- */

void vexit(int code) {
    hypercall(0, code, 0, 0);
}

int vwrite(int fd, char* buf, int len) {
    return hypercall(1, fd, (int)buf, len);
}

int vread(int fd, char* buf, int len) {
    return hypercall(2, fd, (int)buf, len);
}

int vopen(char* path) {
    return hypercall(3, (int)path, strlen(path), 0);
}

int vclose(int fd) {
    return hypercall(4, fd, 0, 0);
}

int vstat(char* path, int* size_out) {
    return hypercall(5, (int)path, strlen(path), (int)size_out);
}

int vsend(char* buf, int len) {
    return hypercall(6, (int)buf, len, 0);
}

/* Blocking: parks the virtine until data (or EOF) arrives. Returns the
   byte count, 0 at end-of-stream, -1 with no connection bound. */
int vrecv(char* buf, int maxlen) {
    return hypercall(7, (int)buf, maxlen, 0);
}

/* Non-blocking: -2 (WOULD_BLOCK) when the connection is open but empty,
   otherwise as vrecv. */
int vtryrecv(char* buf, int maxlen) {
    return hypercall(7, (int)buf, maxlen, 1);
}

int vsnapshot() {
    return hypercall(8, 0, 0, 0);
}

int vget_data(char* buf, int maxlen) {
    return hypercall(9, (int)buf, maxlen, 0);
}

int vreturn_data(char* buf, int len) {
    return hypercall(10, (int)buf, len, 0);
}

/* ---- Cross-virtine channels (vchan): pipeline stages exchange bytes
   through host-mediated bounded queues. Handles are invocation-private
   indices the host binds before the run (upstream first by convention);
   vchan_open appends a fresh channel. ---- */

int vchan_open(int capacity) {
    return hypercall(11, capacity, 0, 0);
}

/* Blocking: parks the virtine while the channel is at its byte bound
   (backpressure). Returns len, or -1 if the channel closed. */
int vchan_send(int h, char* buf, int len) {
    return hypercall4(12, h, (int)buf, len, 0);
}

/* Non-blocking: -2 (WOULD_BLOCK) when the channel is full. */
int vchan_trysend(int h, char* buf, int len) {
    return hypercall4(12, h, (int)buf, len, 1);
}

/* Blocking: parks the virtine until a message (or EOF) arrives. Returns
   the byte count, 0 at end-of-stream, -1 on a bad handle. */
int vchan_recv(int h, char* buf, int maxlen) {
    return hypercall4(13, h, (int)buf, maxlen, 0);
}

/* Non-blocking: -2 (WOULD_BLOCK) when the channel is open but empty. */
int vchan_tryrecv(int h, char* buf, int maxlen) {
    return hypercall4(13, h, (int)buf, maxlen, 1);
}

int vchan_close(int h) {
    return hypercall(14, h, 0, 0);
}

int puts(char* s) {
    return vwrite(1, s, strlen(s));
}

/* ---- base64 (the §6.5 workload) ---- */

int base64_encode(char* src, int n, char* dst) {
    char* tab;
    int i;
    int o;
    int b0;
    int b1;
    int b2;
    tab = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    i = 0;
    o = 0;
    while (i + 2 < n) {
        b0 = src[i];
        b1 = src[i + 1];
        b2 = src[i + 2];
        dst[o] = tab[(b0 >> 2) & 63];
        dst[o + 1] = tab[((b0 << 4) | (b1 >> 4)) & 63];
        dst[o + 2] = tab[((b1 << 2) | (b2 >> 6)) & 63];
        dst[o + 3] = tab[b2 & 63];
        i = i + 3;
        o = o + 4;
    }
    if (i + 1 == n) {
        b0 = src[i];
        dst[o] = tab[(b0 >> 2) & 63];
        dst[o + 1] = tab[(b0 << 4) & 63];
        dst[o + 2] = '=';
        dst[o + 3] = '=';
        o = o + 4;
    }
    if (i + 2 == n) {
        b0 = src[i];
        b1 = src[i + 1];
        dst[o] = tab[(b0 >> 2) & 63];
        dst[o + 1] = tab[((b0 << 4) | (b1 >> 4)) & 63];
        dst[o + 2] = tab[(b1 << 2) & 63];
        dst[o + 3] = '=';
        o = o + 4;
    }
    dst[o] = 0;
    return o;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crt0_full_assembles() {
        let src = format!(
            "{}\nwork:\n  mov r0, 1\n  ret\n__libc_init:\n  ret\n",
            crt0("work", Crt0Kind::Full { arity: 2 }, 4 * 1024 * 1024)
        );
        let img = visa::assemble(&src).expect("crt0 must assemble");
        assert_eq!(img.base, layout::IMAGE_BASE);
        assert!(img.label("__start").is_some());
        assert!(img.label("__gdt").is_some());
    }

    #[test]
    fn crt0_raw_has_no_snapshot_out() {
        let raw = crt0("main", Crt0Kind::Raw, 1 << 20);
        assert!(!raw.contains("out HC_PORT, r6"));
        let full = crt0("main", Crt0Kind::Full { arity: 0 }, 1 << 20);
        assert!(full.contains("out HC_PORT, r6"));
    }

    #[test]
    fn crt0_marshals_args_right_to_left() {
        let s = crt0("f", Crt0Kind::Full { arity: 3 }, 1 << 20);
        let first = s.find("[r9 + 16]").expect("arg 2 first");
        let last = s.find("[r9 + 0]").expect("arg 0 last");
        assert!(first < last);
        assert!(s.contains("add sp, 24"));
    }

    #[test]
    fn hypercall_stub_assembles_with_port_equ() {
        let src = format!(".org 0\n.equ HC_PORT, 0x1\n{HYPERCALL_ASM}");
        visa::assemble(&src).expect("hypercall stub must assemble");
    }

    #[test]
    fn hypercall4_stub_assembles_and_pins_the_flags_register() {
        let src = format!(".org 0\n.equ HC_PORT, 0x1\n{HYPERCALL4_ASM}");
        visa::assemble(&src).expect("hypercall4 stub must assemble");
        // The whole point of the 4-arg stub: the flags register (r4) is
        // loaded from the stack, never left holding caller garbage.
        assert!(HYPERCALL4_ASM.contains("load.q r4, [fp + 48]"));
        assert!(!HYPERCALL_ASM.contains("load.q r4"));
    }

    #[test]
    fn libc_declares_the_vchan_wrappers() {
        for f in [
            "vchan_open",
            "vchan_send",
            "vchan_trysend",
            "vchan_recv",
            "vchan_tryrecv",
            "vchan_close",
        ] {
            assert!(LIBC_C.contains(f), "libc missing {f}");
        }
    }

    #[test]
    fn boot_reaches_long_mode_and_calls_entry() {
        use vclock::Clock;
        use visa::{CpuConfig, Machine, Mode, Reg};

        let src = format!(
            "{}\nwork:\n  mov r0, 4242\n  ret\n__libc_init:\n  ret\n",
            crt0("work", Crt0Kind::Full { arity: 0 }, 4 * 1024 * 1024)
        );
        let img = visa::assemble(&src).unwrap();
        let mut m = Machine::new(
            Clock::new(),
            CpuConfig::default(),
            4 * 1024 * 1024,
            img.entry,
        );
        m.load_image(&img);
        // First exit is the automatic snapshot hypercall.
        let exit = m.run(100_000).unwrap();
        assert_eq!(
            exit,
            visa::CpuExit::IoOut { port: 1, value: 8 },
            "expected the automatic snapshot out"
        );
        assert_eq!(m.cpu.mode(), Mode::Long64);
        // Resume through to the hlt.
        let exit = m.run(100_000).unwrap();
        assert_eq!(exit, visa::CpuExit::Hlt);
        assert_eq!(m.cpu.reg(Reg(0)), 4242);
        // All four boot milestones fired in order.
        let ids: Vec<u8> = m.cpu.marks.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}
