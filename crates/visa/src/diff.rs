//! The differential harness: runs the same image on both interpreter
//! engines and demands bit- and cycle-identical behaviour.
//!
//! This is the enforcement arm of the [`pred`](crate::pred) cycle-identity
//! contract. [`run_one`] drives a fresh [`Machine`] with one engine,
//! feeding seeded values to every `in` hypercall and recording every
//! externally visible event; [`compare`] runs both engines and diffs the
//! event streams, final architected state, full memory, virtual clock,
//! `mark` timelines, and retired-instruction counts. Any mismatch is a
//! fast-path bug, reported with enough context to reproduce
//! (`visa/tests/differential.rs` and the `diff_fuzz` binary both call
//! [`compare`]).

use vclock::rng::Rng;
use vclock::{Clock, Cycles};

use crate::asm::Image;
use crate::cpu::{CpuConfig, CpuExit, CpuState, Engine, Fault, Machine};

/// One externally visible event from a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `out port, value`.
    Out {
        /// Port written.
        port: u16,
        /// Value written.
        value: u64,
    },
    /// `in` satisfied with a seeded value.
    In {
        /// Port read.
        port: u16,
        /// Value supplied by the harness.
        value: u64,
    },
    /// The guest halted.
    Hlt,
    /// The step budget ran out.
    StepLimit,
    /// The guest faulted.
    Fault(Fault),
}

/// Everything observable about a finished run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Event stream in order.
    pub events: Vec<Event>,
    /// Final architected CPU state.
    pub state: CpuState,
    /// Final guest memory contents.
    pub mem: Vec<u8>,
    /// Final virtual clock.
    pub clock: Cycles,
    /// `mark` milestones (id, timestamp) — mid-run clock observations.
    pub marks: Vec<(u8, Cycles)>,
    /// Instructions retired.
    pub retired: u64,
}

/// Runs `img` on a fresh machine with the given engine until halt, fault,
/// or `budget` retired instructions. Every `in` is answered from a
/// [`Rng`] seeded with `io_seed`, so two runs with the same seed see the
/// same inputs.
pub fn run_one(engine: Engine, img: &Image, mem_size: usize, budget: u64, io_seed: u64) -> Outcome {
    run_one_with(engine, img, mem_size, budget, io_seed, &[])
}

/// [`run_one`] with pre-loaded memory regions (e.g. marshalled virtine
/// arguments), written after the image and before the first instruction.
pub fn run_one_with(
    engine: Engine,
    img: &Image,
    mem_size: usize,
    budget: u64,
    io_seed: u64,
    prewrites: &[(u64, Vec<u8>)],
) -> Outcome {
    let mut m = Machine::new(Clock::new(), CpuConfig::default(), mem_size, img.entry);
    m.load_image(img);
    for (addr, bytes) in prewrites {
        m.mem
            .write_bytes(*addr, bytes)
            .expect("prewrite must fit in guest memory");
    }
    m.cpu.set_engine(engine);
    m.cpu.note_vmentry();
    let mut rng = Rng::seeded(io_seed);
    let mut events = Vec::new();
    loop {
        let remaining = budget.saturating_sub(m.cpu.insts_retired());
        if remaining == 0 {
            events.push(Event::StepLimit);
            break;
        }
        match m.run(remaining) {
            Ok(CpuExit::Hlt) => {
                events.push(Event::Hlt);
                break;
            }
            Ok(CpuExit::IoOut { port, value }) => events.push(Event::Out { port, value }),
            Ok(CpuExit::IoIn { port }) => {
                let value = rng.next_u64();
                m.cpu.provide_in(value);
                events.push(Event::In { port, value });
            }
            Ok(CpuExit::StepLimit) => {
                events.push(Event::StepLimit);
                break;
            }
            Err(fault) => {
                events.push(Event::Fault(fault));
                break;
            }
        }
    }
    Outcome {
        events,
        state: m.cpu.save_state(),
        mem: m.mem.as_slice().to_vec(),
        clock: m.cpu.clock().now(),
        marks: m.cpu.marks.clone(),
        retired: m.cpu.insts_retired(),
    }
}

/// Runs `img` on both engines and returns a description of the first
/// divergence, or `Ok(())` when the runs are identical in every observable
/// dimension.
pub fn compare(img: &Image, mem_size: usize, budget: u64, io_seed: u64) -> Result<(), String> {
    compare_with(img, mem_size, budget, io_seed, &[])
}

/// [`compare`] with pre-loaded memory regions applied to both machines.
pub fn compare_with(
    img: &Image,
    mem_size: usize,
    budget: u64,
    io_seed: u64,
    prewrites: &[(u64, Vec<u8>)],
) -> Result<(), String> {
    let fast = run_one_with(Engine::Fast, img, mem_size, budget, io_seed, prewrites);
    let reference = run_one_with(Engine::Reference, img, mem_size, budget, io_seed, prewrites);
    if fast == reference {
        return Ok(());
    }
    let mut out = String::from("fast and reference engines diverged:\n");
    if fast.events != reference.events {
        out.push_str(&format!(
            "  events:\n    fast: {:?}\n    ref:  {:?}\n",
            fast.events, reference.events
        ));
    }
    if fast.state != reference.state {
        out.push_str(&format!(
            "  state:\n    fast: {:?}\n    ref:  {:?}\n",
            fast.state, reference.state
        ));
    }
    if fast.mem != reference.mem {
        let first = fast
            .mem
            .iter()
            .zip(reference.mem.iter())
            .position(|(a, b)| a != b);
        out.push_str(&format!("  memory differs first at {first:?}\n"));
    }
    if fast.clock != reference.clock {
        out.push_str(&format!(
            "  clock: fast={:?} ref={:?}\n",
            fast.clock, reference.clock
        ));
    }
    if fast.marks != reference.marks {
        out.push_str(&format!(
            "  marks:\n    fast: {:?}\n    ref:  {:?}\n",
            fast.marks, reference.marks
        ));
    }
    if fast.retired != reference.retired {
        out.push_str(&format!(
            "  retired: fast={} ref={}\n",
            fast.retired, reference.retired
        ));
    }
    Err(out)
}
