//! The predecoded basic-block interpreter — the fast engine behind
//! [`Cpu::run`](crate::cpu::Cpu::run).
//!
//! ROADMAP item 3 asks for the guest interpreter to be restructured the way
//! lightweight-VM interpreters are: split decode from execute, dispatch on a
//! dense opcode class, and charge virtual time from a per-class cost table
//! instead of re-deriving it per step. This module does exactly that:
//!
//! * **Predecode.** Straight-line runs of guest code are lazily decoded once
//!   into a cached [`Vec<PredInst>`] (a *block*), keyed by `(mode, start
//!   pc)`. Relative branch targets are resolved to absolute addresses at
//!   build time, immediates are unpacked, and the per-instruction base cycle
//!   cost is pre-summed from [`vclock::costs::GUEST_CLASS_BASE`] — execution
//!   never touches [`Inst::decode`](crate::inst::Inst::decode) again.
//! * **Superinstructions.** The 2-instruction patterns `vcc::codegen`
//!   actually emits are fused at build time: `cmp`+`jcc` (every compiled
//!   `if`/`while`), `mov ri`+`alu rr` (constant operands), and the
//!   `push`/`push` · `push`/`mov` prologue pairs. A fused pair dispatches
//!   once but retires two instructions.
//! * **Invalidation.** [`Memory`] keeps a code-dirty
//!   page bitmap (set on every write, never cleared by the data-dirty
//!   tracking). Before a cached block runs, any dirty page it overlaps is
//!   swept: every cached block on that page is revalidated by comparing its
//!   captured source bytes against memory, stale blocks are dropped, and the
//!   bit is cleared. A store *from inside* a running block into its own
//!   range is detected precisely by address range and aborts the block after
//!   the store completes. Mode transitions need no flush — blocks are keyed
//!   by mode, and all mode-changing instructions execute on the reference
//!   path. Snapshot restores drop the whole cache.
//!
//! **Cycle-identity contract.** The fast engine must be indistinguishable
//! from the reference `step()` loop at every observation point: registers,
//! memory, flags, `insts_retired`, exits, faults (kind *and* payload), and
//! the virtual clock. Blocks therefore only contain instruction classes
//! whose timing is position-independent; anything mode-dependent (`hlt`,
//! port I/O, `lgdt`/`mov cr`/`wrmsr`/`ljmp`) terminates the block and runs
//! through [`Cpu::step`](crate::cpu::Cpu::step) itself. Long mode caches
//! blocks only on code pages that are TLB-resident *and* identity-mapped —
//! there, instruction fetches are walk-free (tick-free) and code addresses
//! are physical, so both the timing and the byte-revalidation sweep stay
//! exact; any other page single-steps on the reference path, which pays the
//! TLB-walk tick faithfully. Self-modification checks in long mode compare
//! *physical* store addresses, so aliased mappings cannot dodge
//! invalidation. The differential harness in `visa/tests/` and the
//! `diff_fuzz` binary enforce the contract over seeded random streams and
//! every `vcc`-compiled program.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use vclock::costs;

use crate::cpu::{Cpu, CpuExit, Engine, Fault, Mode};
use crate::inst::{Alu, Cond, CrReg, Inst, OpClass, Reg, Width};
use crate::mem::{Memory, PAGE_SIZE};

/// Longest straight-line run predecoded into one block.
const MAX_BLOCK_INSTS: usize = 64;

/// Cache capacity in blocks; the whole cache is flushed when exceeded
/// (a simple bound — virtine images are small, this never triggers in
/// practice).
const MAX_CACHED_BLOCKS: usize = 4096;

// ---------------------------------------------------------------------------
// Global counters (exported at /metrics by vhttp).

static RETIRED_FAST: AtomicU64 = AtomicU64::new(0);
static RETIRED_REF: AtomicU64 = AtomicU64::new(0);
static BLOCKS_BUILT: AtomicU64 = AtomicU64::new(0);
static BLOCKS_INVALIDATED: AtomicU64 = AtomicU64::new(0);
static SUPERINSTS_FUSED: AtomicU64 = AtomicU64::new(0);

/// Process-wide guest-execution counters (monotonic, all engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Instructions retired by the fast (predecoded) engine.
    pub retired_fast: u64,
    /// Instructions retired by the reference engine.
    pub retired_ref: u64,
    /// Predecoded blocks built.
    pub blocks_built: u64,
    /// Predecoded blocks invalidated (stale bytes, self-modifying code,
    /// snapshot restores, cache flushes).
    pub blocks_invalidated: u64,
    /// Superinstructions fused at block-build time.
    pub superinsts_fused: u64,
}

/// Snapshot of the process-wide guest-execution counters.
pub fn counters() -> Counters {
    Counters {
        retired_fast: RETIRED_FAST.load(Ordering::Relaxed),
        retired_ref: RETIRED_REF.load(Ordering::Relaxed),
        blocks_built: BLOCKS_BUILT.load(Ordering::Relaxed),
        blocks_invalidated: BLOCKS_INVALIDATED.load(Ordering::Relaxed),
        superinsts_fused: SUPERINSTS_FUSED.load(Ordering::Relaxed),
    }
}

/// Credits `delta` retired instructions to `engine`'s process-wide counter.
/// Called once per [`Cpu::run`], not per instruction.
pub(crate) fn note_retired(engine: Engine, delta: u64) {
    let counter = match engine {
        Engine::Fast => &RETIRED_FAST,
        Engine::Reference => &RETIRED_REF,
    };
    counter.fetch_add(delta, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Predecoded representation.

/// A predecoded operation: operands unpacked, branch targets absolute.
#[derive(Debug, Clone, Copy)]
enum PredOp {
    Nop,
    MovRR(Reg, Reg),
    MovRI(Reg, u64),
    AluRR(Alu, Reg, Reg),
    AluRI(Alu, Reg, u64),
    Neg(Reg),
    Not(Reg),
    CmpRR(Reg, Reg),
    CmpRI(Reg, u64),
    MovRCr(Reg, CrReg),
    /// Unconditional jump to an absolute target.
    Jmp(u64),
    /// Conditional jump to an absolute target.
    Jcc(Cond, u64),
    JmpR(Reg),
    /// Call with an absolute target.
    Call(u64),
    CallR(Reg),
    Ret,
    Push(Reg),
    Pop(Reg),
    Load(Width, Reg, Reg, i32),
    Store(Width, Reg, i32, Reg),
    Mark(u8),
    /// Fused `cmp a, b` + `jcc cond, target`.
    CmpRRJcc(Reg, Reg, Cond, u64),
    /// Fused `cmp a, imm` + `jcc cond, target`.
    CmpRIJcc(Reg, u64, Cond, u64),
    /// Fused `mov d1, imm` + `d2 op= s2` (op never div/mod — those fault).
    MovRIAluRR(Reg, u64, Alu, Reg, Reg),
    /// Fused `push a` + `push b` (argument set-up).
    PushPush(Reg, Reg),
    /// Fused `push a` + `mov d, s` (the `push fp; mov fp, sp` prologue).
    PushMovRR(Reg, Reg, Reg),
    /// Fused `push a` + `d op= imm` (caller-save then adjust, op always
    /// plain-ALU class). `mid` is the second instruction's address.
    PushAluRI {
        a: Reg,
        op: Alu,
        d: Reg,
        imm: u64,
        mid: u64,
    },
    /// Fused `pop d` + `push s` (restore one value, save another). `mid` is
    /// the second instruction's address.
    PopPush {
        d: Reg,
        s: Reg,
        mid: u64,
    },
    /// Fused `pop d` + `d2 op= s2` (restore then accumulate, op always
    /// plain-ALU class). `mid` is the second instruction's address.
    PopAluRR {
        d: Reg,
        op: Alu,
        d2: Reg,
        s2: Reg,
        mid: u64,
    },
    /// Fused `d op= imm` + `call target` (adjust an argument, then call;
    /// op never div/mod — those fault).
    AluRICall(Alu, Reg, u64, u64),
    /// Fused `mov d, s` + `ret` (move a result into place and return).
    MovRRRet(Reg, Reg),
    /// Fused `mov d, s` + `pop pd` (`vcc`'s binary-operator operand
    /// shuffle: `mov r10, r0` + `pop r0`).
    MovRRPop(Reg, Reg, Reg),
    /// Fused `pop r` + `ret` (function epilogue). `mid` is the `ret`'s
    /// address.
    PopRet {
        r: Reg,
        mid: u64,
    },
    /// Fused `cmp a, b` + `mov d, imm` (comparison materialisation).
    CmpRRMovRI(Reg, Reg, Reg, u64),
    /// Fused `push a` + `load` (save one operand, fetch the next). `mid` is
    /// the load's address.
    PushLoad {
        a: Reg,
        w: Width,
        d: Reg,
        base: Reg,
        off: i32,
        mid: u64,
    },
}

/// One predecoded instruction (or fused pair) ready to dispatch.
#[derive(Debug, Clone, Copy)]
struct PredInst {
    op: PredOp,
    /// Base cycles ticked up-front — chosen so the virtual clock matches the
    /// reference interpreter at every point a fault or `mark` can observe it.
    cost: u64,
    /// Address of the instruction (fault payloads for div/mod).
    pc: u64,
    /// Address of the next sequential instruction (past the whole fused
    /// pair for superinstructions).
    next_pc: u64,
}

impl PredInst {
    /// Instructions this dispatch retires (2 for superinstructions).
    fn retires(&self) -> u64 {
        match self.op {
            PredOp::CmpRRJcc(..)
            | PredOp::CmpRIJcc(..)
            | PredOp::MovRIAluRR(..)
            | PredOp::PushPush(..)
            | PredOp::PushMovRR(..)
            | PredOp::PushAluRI { .. }
            | PredOp::PopPush { .. }
            | PredOp::PopAluRR { .. }
            | PredOp::AluRICall(..)
            | PredOp::MovRRRet(..)
            | PredOp::MovRRPop(..)
            | PredOp::PopRet { .. }
            | PredOp::CmpRRMovRI(..)
            | PredOp::PushLoad { .. } => 2,
            _ => 1,
        }
    }
}

/// A predecoded straight-line run of guest code.
#[derive(Debug)]
struct Block {
    mode: Mode,
    /// First byte covered (virtual == physical in the cacheable modes).
    start: u64,
    /// One past the last byte covered.
    end: u64,
    /// The exact source bytes decoded, for revalidation after writes land
    /// on the block's pages.
    src: Vec<u8>,
    insts: Vec<PredInst>,
    /// Instructions the whole block retires (fused pairs count 2) — lets
    /// the run loop hoist the step-budget check out of the dispatch loop.
    retire_total: u64,
}

impl Block {
    fn page_lo(&self) -> u64 {
        self.start / PAGE_SIZE
    }

    fn page_hi(&self) -> u64 {
        (self.end - 1) / PAGE_SIZE
    }

    /// Does a write of `len` bytes at `addr` land inside this block?
    fn hits(&self, addr: u64, len: u64) -> bool {
        addr < self.end && addr.saturating_add(len) > self.start
    }
}

/// A multiply-rotate hasher (fxhash-style) for the block map. One lookup
/// happens per *block dispatch*, where SipHash's keyed mixing costs more
/// than the dispatch itself; the keys are trusted guest pcs, so a
/// non-DoS-resistant hash is fine.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`BuildHasher`](std::hash::BuildHasher) for [`FxHasher`].
#[derive(Debug, Default, Clone)]
pub(crate) struct FxBuild;

impl std::hash::BuildHasher for FxBuild {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Slots in the direct-mapped front cache over the block map.
const FRONT_SLOTS: usize = 64;

/// Front-cache slot for a block starting at `pc`.
#[inline]
fn front_idx(pc: u64) -> usize {
    (((pc >> 1) ^ (pc >> 7)) as usize) & (FRONT_SLOTS - 1)
}

/// The per-CPU block cache.
#[derive(Debug)]
pub(crate) struct PredCache {
    blocks: HashMap<(Mode, u64), Rc<Block>, FxBuild>,
    /// Direct-mapped front cache over `blocks`: most dispatches re-enter one
    /// of a handful of hot blocks, and a slot hit skips the map probe
    /// entirely. Cleared wholesale whenever any block is dropped, so a slot
    /// can never outlive the map entry it mirrors.
    front: [Option<Rc<Block>>; FRONT_SLOTS],
}

impl Default for PredCache {
    fn default() -> PredCache {
        PredCache {
            blocks: HashMap::default(),
            front: std::array::from_fn(|_| None),
        }
    }
}

impl PredCache {
    /// An empty cache.
    pub(crate) fn new() -> PredCache {
        PredCache::default()
    }

    /// Empties the front cache — required before any block leaves `blocks`.
    fn clear_front(&mut self) {
        self.front = std::array::from_fn(|_| None);
    }

    /// Drops every cached block (snapshot restore, capacity bound).
    pub(crate) fn flush(&mut self) {
        BLOCKS_INVALIDATED.fetch_add(self.blocks.len() as u64, Ordering::Relaxed);
        self.blocks.clear();
        self.clear_front();
    }

    /// Drops one block (self-modifying store into its own range).
    fn remove(&mut self, mode: Mode, start: u64) {
        if self.blocks.remove(&(mode, start)).is_some() {
            BLOCKS_INVALIDATED.fetch_add(1, Ordering::Relaxed);
            self.clear_front();
        }
    }

    /// Revalidates cached blocks on any dirty page in `lo..=hi`: blocks
    /// whose source bytes no longer match memory are dropped, then the
    /// page's code-dirty bit is cleared.
    fn sweep(&mut self, mem: &mut Memory, lo: u64, hi: u64) {
        for page in lo..=hi {
            if !mem.code_page_dirty(page) {
                continue;
            }
            // `retain` below may drop blocks; mirrored front slots must go
            // with them (the dirty bit that guards them is about to clear).
            self.clear_front();
            let page_start = page * PAGE_SIZE;
            let page_end = page_start + PAGE_SIZE;
            let mut dropped = 0u64;
            self.blocks.retain(|_, b| {
                if b.end <= page_start || b.start >= page_end {
                    return true;
                }
                let fresh = mem
                    .slice(b.start, b.end - b.start)
                    .map(|bytes| bytes == &b.src[..])
                    .unwrap_or(false);
                if !fresh {
                    dropped += 1;
                }
                fresh
            });
            BLOCKS_INVALIDATED.fetch_add(dropped, Ordering::Relaxed);
            mem.clear_code_dirty_page(page);
        }
    }
}

// ---------------------------------------------------------------------------
// Block construction.

/// Longest single instruction encoding — the long-mode block builder stops
/// this far short of a 2 MiB page boundary so its probe never crosses one.
const MAX_INST_LEN: u64 = 10;

/// Decodes the straight-line run starting at `cpu.pc` and lowers it,
/// fusing superinstruction patterns. Returns `None` when not even the first
/// instruction is predecodable (decode fault, a class that must run on the
/// reference path, or a long-mode page the cache cannot cover) — the caller
/// falls back to a single reference step.
fn build(cpu: &mut Cpu, mem: &Memory) -> Option<Block> {
    let start = cpu.pc;
    let mode = cpu.mode;
    // Long mode caches blocks only within a single 2 MiB page that is both
    // already in the TLB (instruction fetches from it are walk-free, so the
    // probe below is tick-free exactly like the reference's fetches) and
    // identity-mapped (virtual code addresses are physical, which the
    // byte-revalidation sweep requires). Anything else single-steps.
    let page_end = if mode == Mode::Long64 {
        cpu.long_identity_page_end(start)?
    } else {
        u64::MAX
    };
    let mut raw: Vec<(Inst, u64, u64)> = Vec::new();
    let mut pc = start;
    while raw.len() < MAX_BLOCK_INSTS {
        if page_end - pc < MAX_INST_LEN {
            // Too close to the long-mode page boundary: a probe here could
            // straddle into the next page and charge its TLB walk early.
            break;
        }
        // fetch_decode never ticks the clock in real/protected mode (and is
        // walk-free on a TLB-hit long-mode page), so probing ahead here is
        // invisible to the virtual timeline.
        let Ok((inst, len)) = cpu.fetch_decode(mem, pc) else {
            break;
        };
        let class = inst.class();
        if matches!(class, OpClass::Pio | OpClass::Halt | OpClass::System) {
            // Mode-dependent timing or an exit: ends the run *before* the
            // instruction; it executes via the reference step.
            break;
        }
        raw.push((inst, pc, len));
        pc = pc.wrapping_add(len);
        if matches!(class, OpClass::Branch | OpClass::CallRet) {
            break;
        }
    }
    if raw.is_empty() {
        return None;
    }
    let end = pc;
    let src = mem.slice(start, end - start).ok()?.to_vec();
    let insts = lower(&raw);
    let retire_total = insts.iter().map(PredInst::retires).sum();
    Some(Block {
        mode,
        start,
        end,
        src,
        insts,
        retire_total,
    })
}

/// ALU ops in the plain `GUEST_ALU` cost class — not mul/div/mod, which
/// carry their own class costs (and div/mod can fault).
fn plain_alu(op: Alu) -> bool {
    !matches!(op, Alu::Mul | Alu::Div | Alu::Mod)
}

/// Absolute target of a relative branch whose *next* instruction is at
/// `next_pc`.
fn abs_target(next_pc: u64, rel: i32) -> u64 {
    next_pc.wrapping_add(rel as i64 as u64)
}

/// Base cycle cost of one instruction, from the per-class table.
fn class_cost(inst: &Inst) -> u64 {
    costs::GUEST_CLASS_BASE[inst.class() as usize]
}

/// Lowers a decoded run into predecoded form, fusing adjacent pairs.
fn lower(raw: &[(Inst, u64, u64)]) -> Vec<PredInst> {
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let (inst, pc, len) = raw[i];
        let next_pc = pc.wrapping_add(len);
        if let Some(&(next, npc, nlen)) = raw.get(i + 1) {
            let n_next = npc.wrapping_add(nlen);
            let fused = match (inst, next) {
                (Inst::CmpRR(a, b), Inst::Jcc(c, rel)) => Some(PredInst {
                    op: PredOp::CmpRRJcc(a, b, c, abs_target(n_next, rel)),
                    // cmp's ALU tick + jcc's BRANCH tick; nothing can
                    // observe the clock between them.
                    cost: costs::GUEST_ALU + costs::GUEST_BRANCH,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::CmpRI(a, imm), Inst::Jcc(c, rel)) => Some(PredInst {
                    op: PredOp::CmpRIJcc(a, imm, c, abs_target(n_next, rel)),
                    cost: costs::GUEST_ALU + costs::GUEST_BRANCH,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::MovRI(d, imm), Inst::AluRR(op, d2, s2))
                    if !matches!(op, Alu::Div | Alu::Mod) =>
                {
                    Some(PredInst {
                        op: PredOp::MovRIAluRR(d, imm, op, d2, s2),
                        cost: costs::GUEST_ALU + class_cost(&next),
                        pc,
                        next_pc: n_next,
                    })
                }
                (Inst::Push(a), Inst::Push(b)) => Some(PredInst {
                    op: PredOp::PushPush(a, b),
                    // Only the first push's STACK tick: its store can fault,
                    // so the second push's ticks stay behind it.
                    cost: costs::GUEST_STACK,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::Push(a), Inst::MovRR(d, s)) => Some(PredInst {
                    op: PredOp::PushMovRR(a, d, s),
                    cost: costs::GUEST_STACK,
                    pc,
                    next_pc: n_next,
                }),
                // The Push/Pop-first pairs below carry only the first half's
                // STACK tick in `cost`: the stack op can fault, so the second
                // half's tick stays behind it (dispatched in the exec arm).
                // The second halves are restricted to plain-ALU-class ops so
                // that deferred tick is the constant `GUEST_ALU`.
                (Inst::Push(a), Inst::AluRI(op, d, imm)) if plain_alu(op) => Some(PredInst {
                    op: PredOp::PushAluRI {
                        a,
                        op,
                        d,
                        imm,
                        mid: npc,
                    },
                    cost: costs::GUEST_STACK,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::Pop(d), Inst::Push(s)) => Some(PredInst {
                    op: PredOp::PopPush { d, s, mid: npc },
                    cost: costs::GUEST_STACK,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::Pop(d), Inst::AluRR(op, d2, s2)) if plain_alu(op) => Some(PredInst {
                    op: PredOp::PopAluRR {
                        d,
                        op,
                        d2,
                        s2,
                        mid: npc,
                    },
                    cost: costs::GUEST_STACK,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::AluRI(op, d, imm), Inst::Call(rel))
                    if !matches!(op, Alu::Div | Alu::Mod) =>
                {
                    Some(PredInst {
                        op: PredOp::AluRICall(op, d, imm, abs_target(n_next, rel)),
                        // The ALU half cannot fault, so the call's base tick
                        // merges up front; its push faults *after* both.
                        cost: class_cost(&inst) + costs::GUEST_CALLRET,
                        pc,
                        next_pc: n_next,
                    })
                }
                (Inst::MovRR(d, s), Inst::Ret) => Some(PredInst {
                    op: PredOp::MovRRRet(d, s),
                    cost: costs::GUEST_ALU + costs::GUEST_CALLRET,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::MovRR(d, s), Inst::Pop(pd)) => Some(PredInst {
                    op: PredOp::MovRRPop(d, s, pd),
                    // The mov cannot fault: both base ticks merge up front,
                    // ahead of the pop's (faultable, internally ticked) load.
                    cost: costs::GUEST_ALU + costs::GUEST_STACK,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::Pop(r), Inst::Ret) => Some(PredInst {
                    op: PredOp::PopRet { r, mid: npc },
                    cost: costs::GUEST_STACK,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::CmpRR(a, b), Inst::MovRI(d, imm)) => Some(PredInst {
                    op: PredOp::CmpRRMovRI(a, b, d, imm),
                    cost: costs::GUEST_ALU + costs::GUEST_ALU,
                    pc,
                    next_pc: n_next,
                }),
                (Inst::Push(a), Inst::Load(w, d, base, off)) => Some(PredInst {
                    op: PredOp::PushLoad {
                        a,
                        w,
                        d,
                        base,
                        off,
                        mid: npc,
                    },
                    // The load's class base is zero (`cpu.load` ticks MEM
                    // itself), so only the push's STACK tick rides up front.
                    cost: costs::GUEST_STACK,
                    pc,
                    next_pc: n_next,
                }),
                _ => None,
            };
            if let Some(p) = fused {
                out.push(p);
                SUPERINSTS_FUSED.fetch_add(1, Ordering::Relaxed);
                i += 2;
                continue;
            }
        }
        out.push(lower_one(inst, pc, next_pc));
        i += 1;
    }
    out
}

/// Lowers a single (unfused) instruction.
fn lower_one(inst: Inst, pc: u64, next_pc: u64) -> PredInst {
    let base = class_cost(&inst);
    let (op, cost) = match inst {
        Inst::Nop => (PredOp::Nop, base),
        Inst::MovRR(d, s) => (PredOp::MovRR(d, s), base),
        Inst::MovRI(d, imm) => (PredOp::MovRI(d, imm), base),
        Inst::AluRR(op, d, s) => (PredOp::AluRR(op, d, s), base),
        Inst::AluRI(op, d, imm) => (PredOp::AluRI(op, d, imm), base),
        Inst::Neg(r) => (PredOp::Neg(r), base),
        Inst::Not(r) => (PredOp::Not(r), base),
        Inst::CmpRR(a, b) => (PredOp::CmpRR(a, b), base),
        Inst::CmpRI(a, imm) => (PredOp::CmpRI(a, imm), base),
        Inst::MovRCr(d, cr) => (PredOp::MovRCr(d, cr), base),
        Inst::Jmp(rel) => (
            PredOp::Jmp(abs_target(next_pc, rel)),
            base + costs::GUEST_BRANCH_TAKEN,
        ),
        Inst::Jcc(c, rel) => (PredOp::Jcc(c, abs_target(next_pc, rel)), base),
        Inst::JmpR(r) => (PredOp::JmpR(r), base + costs::GUEST_BRANCH_TAKEN),
        Inst::Call(rel) => (PredOp::Call(abs_target(next_pc, rel)), base),
        Inst::CallR(r) => (PredOp::CallR(r), base),
        Inst::Ret => (PredOp::Ret, base),
        Inst::Push(r) => (PredOp::Push(r), base),
        Inst::Pop(r) => (PredOp::Pop(r), base),
        Inst::Load(w, d, b, off) => (PredOp::Load(w, d, b, off), base),
        Inst::Store(w, b, off, s) => (PredOp::Store(w, b, off, s), base),
        Inst::Mark(id) => (PredOp::Mark(id), base),
        Inst::Hlt
        | Inst::In(..)
        | Inst::Out(..)
        | Inst::Lgdt(_)
        | Inst::MovCr(..)
        | Inst::Wrmsr(..)
        | Inst::Ljmp(..) => unreachable!("class excluded by the block builder"),
    };
    PredInst {
        op,
        cost,
        pc,
        next_pc,
    }
}

// ---------------------------------------------------------------------------
// Execution.

/// What a dispatched [`PredInst`] asks the block loop to do next.
enum Flow {
    /// Keep executing the block.
    Next,
    /// The instruction stored into its own block: drop the block and
    /// re-enter the outer loop.
    SelfModified,
}

/// ALU operations that cannot fault.
fn alu_value(op: Alu, a: u64, b: u64) -> u64 {
    match op {
        Alu::Add => a.wrapping_add(b),
        Alu::Sub => a.wrapping_sub(b),
        Alu::Mul => a.wrapping_mul(b),
        Alu::And => a & b,
        Alu::Or => a | b,
        Alu::Xor => a ^ b,
        Alu::Shl => a.wrapping_shl(b as u32 & 63),
        Alu::Shr => a.wrapping_shr(b as u32 & 63),
        Alu::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        Alu::Div | Alu::Mod => unreachable!("div/mod take the faulting path"),
    }
}

/// Signed divide/remainder with the divide-by-zero fault.
fn div_mod(op: Alu, a: u64, b: u64, pc: u64) -> Result<u64, Fault> {
    if b == 0 {
        return Err(Fault::DivideByZero { pc });
    }
    let (a, b) = (a as i64, b as i64);
    let v = if op == Alu::Div {
        a.wrapping_div(b)
    } else {
        a.wrapping_rem(b)
    };
    Ok(v as u64)
}

/// Resolves the physical address of a write that just succeeded, for the
/// self-modification check. Long-mode blocks cover identity-mapped pages, so
/// their code spans are physical; a data write through a *non*-identity
/// mapping must be compared physically too. The translate here is a
/// guaranteed TLB hit (the store itself just walked the page), so it is
/// tick-free and cannot fault.
#[inline]
fn written_paddr(cpu: &mut Cpu, mem: &Memory, vaddr: u64, len: u64, long: bool) -> u64 {
    if long {
        cpu.translate(mem, vaddr, len)
            .expect("post-store translate is a TLB hit")
    } else {
        vaddr
    }
}

/// Dispatches one predecoded instruction.
///
/// Mirrors the reference `step()` exactly: `insts_retired` and `pc` advance
/// *before* the body (so fault states match), and the clock is ticked such
/// that every fault- or `mark`-observable point sees the reference value.
#[inline]
fn exec(cpu: &mut Cpu, mem: &mut Memory, pi: &PredInst, blk: &Block) -> Result<Flow, Fault> {
    let long = blk.mode == Mode::Long64;
    if pi.cost != 0 {
        cpu.clock.tick(pi.cost);
    }
    // One dispatch: each arm advances `insts_retired` and `pc` *before* its
    // body (so fault states match the reference), via these macros.
    // Superinstructions with a faultable first half manage both per
    // sub-instruction inside their arms instead.
    macro_rules! retire1 {
        () => {
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc;
        };
    }
    macro_rules! retire2 {
        () => {
            cpu.insts_retired += 2;
            cpu.pc = pi.next_pc;
        };
    }
    match pi.op {
        PredOp::Nop => {
            retire1!();
        }
        PredOp::MovRR(d, s) => {
            retire1!();
            cpu.set_reg(d, cpu.reg(s));
        }
        PredOp::MovRI(d, imm) => {
            retire1!();
            cpu.set_reg(d, imm);
        }
        PredOp::AluRR(op, d, s) => {
            retire1!();
            let (a, b) = (cpu.reg(d), cpu.reg(s));
            let v = match op {
                Alu::Div | Alu::Mod => div_mod(op, a, b, pi.pc)?,
                _ => alu_value(op, a, b),
            };
            cpu.set_reg(d, v);
        }
        PredOp::AluRI(op, d, imm) => {
            retire1!();
            let a = cpu.reg(d);
            let v = match op {
                Alu::Div | Alu::Mod => div_mod(op, a, imm, pi.pc)?,
                _ => alu_value(op, a, imm),
            };
            cpu.set_reg(d, v);
        }
        PredOp::Neg(r) => {
            retire1!();
            cpu.set_reg(r, (cpu.reg(r) as i64).wrapping_neg() as u64);
        }
        PredOp::Not(r) => {
            retire1!();
            cpu.set_reg(r, !cpu.reg(r));
        }
        PredOp::CmpRR(a, b) => {
            retire1!();
            cpu.set_cmp_flags(cpu.reg(a), cpu.reg(b));
        }
        PredOp::CmpRI(a, imm) => {
            retire1!();
            cpu.set_cmp_flags(cpu.reg(a), imm);
        }
        PredOp::MovRCr(d, cr) => {
            retire1!();
            cpu.set_reg(d, cpu.read_cr(cr));
        }
        PredOp::Jmp(target) => {
            cpu.insts_retired += 1;
            cpu.pc = target;
        }
        PredOp::Jcc(c, target) => {
            retire1!();
            if cpu.cond_holds(c) {
                cpu.clock.tick(costs::GUEST_BRANCH_TAKEN);
                cpu.pc = target;
            }
        }
        PredOp::JmpR(r) => {
            cpu.insts_retired += 1;
            cpu.pc = cpu.reg(r);
        }
        PredOp::Call(target) => {
            retire1!();
            cpu.push(mem, pi.next_pc)?;
            let written = cpu.reg(Reg::SP);
            cpu.pc = target;
            if blk.hits(written_paddr(cpu, mem, written, 8, long), 8) {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::CallR(r) => {
            retire1!();
            let target = cpu.reg(r);
            cpu.push(mem, pi.next_pc)?;
            let written = cpu.reg(Reg::SP);
            cpu.pc = target;
            if blk.hits(written_paddr(cpu, mem, written, 8, long), 8) {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::Ret => {
            retire1!();
            cpu.pc = cpu.pop(mem)?;
        }
        PredOp::Push(r) => {
            retire1!();
            cpu.push(mem, cpu.reg(r))?;
            let written = cpu.reg(Reg::SP);
            if blk.hits(written_paddr(cpu, mem, written, 8, long), 8) {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::Pop(r) => {
            retire1!();
            let v = cpu.pop(mem)?;
            cpu.set_reg(r, v);
        }
        PredOp::Load(w, d, base, off) => {
            retire1!();
            let addr = cpu.reg(base).wrapping_add(off as i64 as u64);
            let v = cpu.load(mem, addr, w)?;
            cpu.set_reg(d, v);
        }
        PredOp::Store(w, base, off, s) => {
            retire1!();
            let addr = cpu.reg(base).wrapping_add(off as i64 as u64);
            cpu.store(mem, addr, w, cpu.reg(s))?;
            if blk.hits(written_paddr(cpu, mem, addr, w.bytes(), long), w.bytes()) {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::Mark(id) => {
            retire1!();
            let now = cpu.clock.now();
            cpu.marks.push((id, now));
        }
        PredOp::CmpRRJcc(a, b, c, target) => {
            retire2!();
            cpu.set_cmp_flags(cpu.reg(a), cpu.reg(b));
            if cpu.cond_holds(c) {
                cpu.clock.tick(costs::GUEST_BRANCH_TAKEN);
                cpu.pc = target;
            }
        }
        PredOp::CmpRIJcc(a, imm, c, target) => {
            retire2!();
            cpu.set_cmp_flags(cpu.reg(a), imm);
            if cpu.cond_holds(c) {
                cpu.clock.tick(costs::GUEST_BRANCH_TAKEN);
                cpu.pc = target;
            }
        }
        PredOp::MovRIAluRR(d1, imm, op, d2, s2) => {
            retire2!();
            cpu.set_reg(d1, imm);
            let v = alu_value(op, cpu.reg(d2), cpu.reg(s2));
            cpu.set_reg(d2, v);
        }
        PredOp::PushPush(a, b) => {
            // First push: retire and advance pc past it (the second push is
            // a 2-byte encoding) so a stack fault leaves reference state.
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc.wrapping_sub(2);
            cpu.push(mem, cpu.reg(a))?;
            let w1 = cpu.reg(Reg::SP);
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc;
            cpu.clock.tick(costs::GUEST_STACK);
            cpu.push(mem, cpu.reg(b))?;
            let w2 = cpu.reg(Reg::SP);
            if blk.hits(written_paddr(cpu, mem, w1, 8, long), 8)
                || blk.hits(written_paddr(cpu, mem, w2, 8, long), 8)
            {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::PushMovRR(a, d, s) => {
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc.wrapping_sub(3); // mov r,r encodes in 3 bytes
            cpu.push(mem, cpu.reg(a))?;
            let written = cpu.reg(Reg::SP);
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc;
            cpu.clock.tick(costs::GUEST_ALU);
            cpu.set_reg(d, cpu.reg(s));
            if blk.hits(written_paddr(cpu, mem, written, 8, long), 8) {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::PushAluRI { a, op, d, imm, mid } => {
            cpu.insts_retired += 1;
            cpu.pc = mid;
            cpu.push(mem, cpu.reg(a))?;
            let written = cpu.reg(Reg::SP);
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc;
            cpu.clock.tick(costs::GUEST_ALU);
            cpu.set_reg(d, alu_value(op, cpu.reg(d), imm));
            if blk.hits(written_paddr(cpu, mem, written, 8, long), 8) {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::PopPush { d, s, mid } => {
            cpu.insts_retired += 1;
            cpu.pc = mid;
            let v = cpu.pop(mem)?;
            cpu.set_reg(d, v);
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc;
            cpu.clock.tick(costs::GUEST_STACK);
            cpu.push(mem, cpu.reg(s))?;
            let written = cpu.reg(Reg::SP);
            if blk.hits(written_paddr(cpu, mem, written, 8, long), 8) {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::PopAluRR { d, op, d2, s2, mid } => {
            cpu.insts_retired += 1;
            cpu.pc = mid;
            let v = cpu.pop(mem)?;
            cpu.set_reg(d, v);
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc;
            cpu.clock.tick(costs::GUEST_ALU);
            let v2 = alu_value(op, cpu.reg(d2), cpu.reg(s2));
            cpu.set_reg(d2, v2);
        }
        PredOp::AluRICall(op, d, imm, target) => {
            retire2!();
            cpu.set_reg(d, alu_value(op, cpu.reg(d), imm));
            cpu.push(mem, pi.next_pc)?;
            let written = cpu.reg(Reg::SP);
            cpu.pc = target;
            if blk.hits(written_paddr(cpu, mem, written, 8, long), 8) {
                return Ok(Flow::SelfModified);
            }
        }
        PredOp::MovRRRet(d, s) => {
            retire2!();
            cpu.set_reg(d, cpu.reg(s));
            cpu.pc = cpu.pop(mem)?;
        }
        PredOp::MovRRPop(d, s, pd) => {
            retire2!();
            cpu.set_reg(d, cpu.reg(s));
            let v = cpu.pop(mem)?;
            cpu.set_reg(pd, v);
        }
        PredOp::PopRet { r, mid } => {
            cpu.insts_retired += 1;
            cpu.pc = mid;
            let v = cpu.pop(mem)?;
            cpu.set_reg(r, v);
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc;
            cpu.clock.tick(costs::GUEST_CALLRET);
            cpu.pc = cpu.pop(mem)?;
        }
        PredOp::CmpRRMovRI(a, b, d, imm) => {
            retire2!();
            cpu.set_cmp_flags(cpu.reg(a), cpu.reg(b));
            cpu.set_reg(d, imm);
        }
        PredOp::PushLoad {
            a,
            w,
            d,
            base,
            off,
            mid,
        } => {
            cpu.insts_retired += 1;
            cpu.pc = mid;
            cpu.push(mem, cpu.reg(a))?;
            let written = cpu.reg(Reg::SP);
            cpu.insts_retired += 1;
            cpu.pc = pi.next_pc;
            let addr = cpu.reg(base).wrapping_add(off as i64 as u64);
            let v = cpu.load(mem, addr, w)?;
            cpu.set_reg(d, v);
            if blk.hits(written_paddr(cpu, mem, written, 8, long), 8) {
                return Ok(Flow::SelfModified);
            }
        }
    }
    Ok(Flow::Next)
}

/// Returns the block to execute at `cpu.pc`, building and caching it if
/// needed; `None` when the instruction there must run on the reference path.
fn acquire(cpu: &mut Cpu, mem: &mut Memory) -> Option<Rc<Block>> {
    // Long-mode blocks are only valid on TLB-resident identity-mapped code
    // pages (see `build`). Checking the *live* TLB here — not just at build
    // time — also covers CR3 switches: a CR3 write clears the TLB, so stale
    // blocks from a previous address space can never run. The reference step
    // this falls back to pays the walk tick faithfully and refills the TLB.
    if cpu.mode == Mode::Long64 && cpu.long_identity_page_end(cpu.pc).is_none() {
        return None;
    }
    // Hottest path: the direct-mapped front slot holds this exact block and
    // no write has landed on its pages since the last sweep — known-fresh
    // with no map probe and no revalidation.
    let slot = front_idx(cpu.pc);
    if let Some(blk) = &cpu.pred.front[slot] {
        if blk.start == cpu.pc
            && blk.mode == cpu.mode
            && !(blk.page_lo()..=blk.page_hi()).any(|page| mem.code_page_dirty(page))
        {
            return Some(blk.clone());
        }
    }
    let key = (cpu.mode, cpu.pc);
    if let Some(blk) = cpu.pred.blocks.get(&key) {
        let (lo, hi) = (blk.page_lo(), blk.page_hi());
        if !(lo..=hi).any(|page| mem.code_page_dirty(page)) {
            let blk = blk.clone();
            cpu.pred.front[slot] = Some(blk.clone());
            return Some(blk);
        }
        cpu.pred.sweep(mem, lo, hi);
        if let Some(blk) = cpu.pred.blocks.get(&key).cloned() {
            cpu.pred.front[slot] = Some(blk.clone());
            return Some(blk);
        }
    }
    let blk = build(cpu, mem)?;
    cpu.pred.sweep(mem, blk.page_lo(), blk.page_hi());
    if cpu.pred.blocks.len() >= MAX_CACHED_BLOCKS {
        cpu.pred.flush();
    }
    let rc = Rc::new(blk);
    cpu.pred.blocks.insert(key, rc.clone());
    cpu.pred.front[slot] = Some(rc.clone());
    BLOCKS_BUILT.fetch_add(1, Ordering::Relaxed);
    Some(rc)
}

/// The fast engine's run loop. Semantically identical to
/// [`Cpu::run_ref`](crate::cpu::Cpu::run_ref) — the differential harness
/// holds it to that, bit for bit and cycle for cycle.
pub(crate) fn run_fast(cpu: &mut Cpu, mem: &mut Memory, max_steps: u64) -> Result<CpuExit, Fault> {
    let mut steps: u64 = 0;
    'outer: while steps < max_steps {
        if cpu.first_inst_pending {
            cpu.first_inst_pending = false;
            cpu.clock.tick(costs::GUEST_FIRST_INSTRUCTION);
        }
        // Anything `acquire`/`build` refuses (decode faults, reference-only
        // classes, long-mode pages outside the cacheable set) single-steps
        // on the reference path.
        let Some(blk) = acquire(cpu, mem) else {
            match cpu.step(mem)? {
                Some(exit) => return Ok(exit),
                None => {
                    steps += 1;
                    continue;
                }
            }
        };
        if steps + blk.retire_total <= max_steps {
            // The whole block fits in the remaining budget: dispatch with no
            // per-instruction budget checks (the overwhelmingly common case).
            for (i, pi) in blk.insts.iter().enumerate() {
                match exec(cpu, mem, pi, &blk)? {
                    Flow::Next => {}
                    Flow::SelfModified => {
                        steps += blk.insts[..=i].iter().map(PredInst::retires).sum::<u64>();
                        cpu.pred.remove(blk.mode, blk.start);
                        continue 'outer;
                    }
                }
            }
            steps += blk.retire_total;
            continue;
        }
        for pi in blk.insts.iter() {
            let retires = pi.retires();
            if steps + retires > max_steps {
                if steps >= max_steps {
                    continue 'outer;
                }
                // One instruction of budget left but the next dispatch is a
                // fused pair: finish on the reference path so the step limit
                // lands on the same instruction boundary.
                match cpu.step(mem)? {
                    Some(exit) => return Ok(exit),
                    None => {
                        steps += 1;
                        continue 'outer;
                    }
                }
            }
            match exec(cpu, mem, pi, &blk)? {
                Flow::Next => steps += retires,
                Flow::SelfModified => {
                    steps += retires;
                    cpu.pred.remove(blk.mode, blk.start);
                    continue 'outer;
                }
            }
        }
    }
    Ok(CpuExit::StepLimit)
}
