//! # VISA — the virtine instruction-set architecture
//!
//! The simulated hardware substrate of this reproduction. A virtine's
//! "abstract machine model … designed for and restricted to the intentions
//! of the virtine" (§2) is realised here as a small, deterministic 64-bit
//! machine whose *bring-up path* mirrors x86: reset in 16-bit real mode,
//! `lgdt` + CR0.PE + far jump into 32-bit protected mode, page-table
//! construction + CR3/CR4.PAE/EFER.LME + CR0.PG + far jump into 64-bit long
//! mode. Port-mapped I/O (`in`/`out`) and `hlt` are the only ways execution
//! leaves the context, exactly matching Wasp's hypercall ABI.
//!
//! Modules:
//!
//! * [`inst`] — instruction definitions and binary encoding.
//! * [`asm`] — the two-pass assembler producing loadable [`asm::Image`]s.
//! * [`mem`] — flat guest-physical memory.
//! * [`cpu`] — the interpreter: modes, control registers, paging, costs.
//! * [`pred`] — the predecoded basic-block fast engine.
//! * [`corpus`] — seeded random-program generation for the differential
//!   fuzzer and round-trip property tests.
//! * [`diff`] — the fast-vs-reference differential harness.
//!
//! All cycle charging flows to a shared [`vclock::Clock`]; costs are the
//! calibrated constants of [`vclock::costs`].

pub mod asm;
pub mod corpus;
pub mod cpu;
pub mod diff;
pub mod inst;
pub mod mem;
pub mod pred;

pub use asm::{assemble, AsmError, Image};
pub use cpu::{Cpu, CpuConfig, CpuExit, CpuState, Engine, Fault, Machine, Mode};
pub use inst::{Alu, Cond, CrReg, Inst, JmpMode, OpClass, Reg, Width};
pub use mem::Memory;
