//! Guest-physical memory.
//!
//! A virtine's memory is a flat, private byte array — "each virtine must
//! have its own set of private data which must be disjoint from any other
//! virtine's set" (§3.3). Accesses beyond the configured size model an
//! EPT violation: the nested page tables simply have no mapping to hand out.

use std::fmt;

use crate::inst::Width;

/// An out-of-bounds guest-physical access (the simulated EPT violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysAccessError {
    /// First byte of the offending access.
    pub paddr: u64,
    /// Access size in bytes.
    pub len: u64,
    /// Size of guest-physical memory.
    pub mem_size: u64,
}

impl fmt::Display for PhysAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "guest-physical access {:#x}+{} beyond memory size {:#x}",
            self.paddr, self.len, self.mem_size
        )
    }
}

impl std::error::Error for PhysAccessError {}

/// The written ("dirty") extent of a memory, tracked as two regions around
/// the midpoint: low allocations (image, heap) grow upward from 0, the
/// stack grows downward from the top. Snapshots and shell cleaning charge
/// for — and operate on — exactly these regions, which is how Wasp keeps
/// snapshot cost proportional to *image* size (§6.2, Figure 12) rather than
/// guest-memory size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyExtent {
    /// End (exclusive) of the dirtied low region starting at 0.
    pub low_end: u64,
    /// Start (inclusive) of the dirtied high region ending at `size`.
    pub high_start: u64,
}

impl DirtyExtent {
    /// Total dirty bytes, given the memory size.
    pub fn bytes(&self, size: u64) -> u64 {
        self.low_end + size.saturating_sub(self.high_start)
    }
}

/// Page size of the dirty-page bitmap (matches the 4 KiB EPT granularity
/// real dirty logging — `KVM_GET_DIRTY_LOG` — reports at).
pub const PAGE_SIZE: u64 = 4096;

/// Flat guest-physical memory of a single virtual context.
///
/// Two dirty-tracking structures coexist, serving different consumers:
///
/// * the coarse **extent** pair (`dirty_low_end`/`dirty_high_start`) tracks
///   everything written since the last [`Memory::clear`] and drives wipe
///   and sparse-snapshot costs;
/// * the exact **page bitmap** tracks pages written since the last
///   [`Memory::reset_dirty_pages`] and models hardware dirty logging: a
///   warm-shell re-arm copies back *exactly* these pages from the snapshot
///   instead of the full sparse image.
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    dirty_low_end: u64,
    dirty_high_start: u64,
    /// One bit per [`PAGE_SIZE`] page, set on write, cleared by
    /// [`Memory::reset_dirty_pages`].
    dirty_pages: Vec<u64>,
    /// A second, independently cleared page bitmap consumed by the
    /// predecoded interpreter's block cache: set on every write (including
    /// the bulk restore/clear paths, which fill it wholesale), cleared
    /// page-by-page once the cache has revalidated the blocks on that page.
    code_dirty: Vec<u64>,
}

// `code_dirty` is cache-coherency bookkeeping, not architected state: the
// fast and reference interpreters drain it differently while leaving the
// bytes identical, so equality deliberately ignores it.
impl PartialEq for Memory {
    fn eq(&self, other: &Memory) -> bool {
        self.bytes == other.bytes
            && self.dirty_low_end == other.dirty_low_end
            && self.dirty_high_start == other.dirty_high_start
            && self.dirty_pages == other.dirty_pages
    }
}

impl Eq for Memory {}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory({} bytes)", self.bytes.len())
    }
}

impl Memory {
    /// Allocates `size` bytes of zeroed guest memory.
    pub fn new(size: usize) -> Memory {
        let pages = (size as u64).div_ceil(PAGE_SIZE) as usize;
        Memory {
            bytes: vec![0; size],
            dirty_low_end: 0,
            dirty_high_start: size as u64,
            dirty_pages: vec![0; pages.div_ceil(64)],
            code_dirty: vec![0; pages.div_ceil(64)],
        }
    }

    /// Size of guest-physical memory in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// The current dirty extent.
    pub fn dirty_extent(&self) -> DirtyExtent {
        DirtyExtent {
            low_end: self.dirty_low_end,
            high_start: self.dirty_high_start,
        }
    }

    /// Number of dirty bytes.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_extent().bytes(self.bytes.len() as u64)
    }

    /// Whether the memory is known to be all zeroes.
    pub fn is_clean(&self) -> bool {
        self.dirty_low_end == 0 && self.dirty_high_start == self.bytes.len() as u64
    }

    /// Indices of pages written since the last
    /// [`Memory::reset_dirty_pages`], in ascending order.
    pub fn dirty_page_indices(&self) -> Vec<u64> {
        let mut pages = Vec::new();
        for (w, &bits) in self.dirty_pages.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                pages.push(w as u64 * 64 + b);
                bits &= bits - 1;
            }
        }
        pages
    }

    /// Number of pages written since the last
    /// [`Memory::reset_dirty_pages`].
    pub fn dirty_page_count(&self) -> usize {
        self.dirty_pages
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Clears the dirty-page bitmap without touching memory contents: the
    /// `KVM_CLEAR_DIRTY_LOG` step a hypervisor performs at the points where
    /// memory provably equals a reference state (snapshot capture, full or
    /// delta restore).
    pub fn reset_dirty_pages(&mut self) {
        self.dirty_pages.fill(0);
    }

    /// Whether `page` has been written since the block cache last cleared
    /// its bit ([`Memory::clear_code_dirty_page`]). Pages past the end of
    /// memory read as clean.
    pub fn code_page_dirty(&self, page: u64) -> bool {
        self.code_dirty
            .get(page as usize / 64)
            .is_some_and(|w| w & (1 << (page % 64)) != 0)
    }

    /// Acknowledges writes to `page`: called by the predecode block cache
    /// after revalidating (or discarding) every cached block on that page.
    pub fn clear_code_dirty_page(&mut self, page: u64) {
        if let Some(w) = self.code_dirty.get_mut(page as usize / 64) {
            *w &= !(1 << (page % 64));
        }
    }

    /// Marks every page as touched for the block cache. The bulk mutation
    /// paths (clear, sparse/full restore) rewrite bytes without going
    /// through `mark_dirty`, so they pessimize the whole bitmap instead.
    fn mark_all_code_dirty(&mut self) {
        self.code_dirty.fill(!0);
    }

    fn mark_dirty(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len;
        for page in start / PAGE_SIZE..=(end - 1) / PAGE_SIZE {
            self.dirty_pages[page as usize / 64] |= 1 << (page % 64);
            self.code_dirty[page as usize / 64] |= 1 << (page % 64);
        }
        let mid = (self.bytes.len() as u64) / 2;
        if end <= mid {
            // Entirely in the lower half: extend the low region upward.
            self.dirty_low_end = self.dirty_low_end.max(end);
        } else {
            // Ends in the upper half: extend the high region downward
            // (covers straddling writes in one region; slight over-coverage
            // is harmless, under-coverage would leak state).
            self.dirty_high_start = self.dirty_high_start.min(start);
        }
    }

    fn check(&self, paddr: u64, len: u64) -> Result<usize, PhysAccessError> {
        let end = paddr.checked_add(len);
        match end {
            Some(end) if end <= self.bytes.len() as u64 => Ok(paddr as usize),
            _ => Err(PhysAccessError {
                paddr,
                len,
                mem_size: self.bytes.len() as u64,
            }),
        }
    }

    /// Reads a zero-extended value of the given width.
    pub fn read(&self, paddr: u64, width: Width) -> Result<u64, PhysAccessError> {
        let off = self.check(paddr, width.bytes())?;
        let v = match width {
            Width::B => self.bytes[off] as u64,
            Width::W => {
                u16::from_le_bytes(self.bytes[off..off + 2].try_into().expect("len")) as u64
            }
            Width::D => {
                u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("len")) as u64
            }
            Width::Q => u64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("len")),
        };
        Ok(v)
    }

    /// Writes the low `width` bytes of `value`.
    pub fn write(&mut self, paddr: u64, width: Width, value: u64) -> Result<(), PhysAccessError> {
        let off = self.check(paddr, width.bytes())?;
        let le = value.to_le_bytes();
        let n = width.bytes() as usize;
        self.bytes[off..off + n].copy_from_slice(&le[..n]);
        self.mark_dirty(paddr, width.bytes());
        Ok(())
    }

    /// Reads an 8-byte little-endian value (page-table walks).
    pub fn read_u64(&self, paddr: u64) -> Result<u64, PhysAccessError> {
        self.read(paddr, Width::Q)
    }

    /// Borrows a byte range.
    pub fn slice(&self, paddr: u64, len: u64) -> Result<&[u8], PhysAccessError> {
        let off = self.check(paddr, len)?;
        Ok(&self.bytes[off..off + len as usize])
    }

    /// Borrows a byte range starting at `paddr` and running to the end of
    /// memory (used by the instruction decoder, which reads at most 10
    /// bytes but must tolerate images ending mid-window).
    pub fn tail(&self, paddr: u64) -> Result<&[u8], PhysAccessError> {
        let off = self.check(paddr, 0)?;
        Ok(&self.bytes[off..])
    }

    /// Copies `data` into memory at `paddr`.
    pub fn write_bytes(&mut self, paddr: u64, data: &[u8]) -> Result<(), PhysAccessError> {
        let off = self.check(paddr, data.len() as u64)?;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        self.mark_dirty(paddr, data.len() as u64);
        Ok(())
    }

    /// Zeroes the dirty regions (virtine shell cleaning, §5.2: "we can clear
    /// its context, preventing information leakage"). Only dirtied bytes are
    /// touched, so the wipe cost tracks what the virtine actually used.
    pub fn clear(&mut self) {
        let lo = self.dirty_low_end as usize;
        let hi = self.dirty_high_start as usize;
        self.bytes[..lo].fill(0);
        self.bytes[hi..].fill(0);
        self.dirty_low_end = 0;
        self.dirty_high_start = self.bytes.len() as u64;
        self.reset_dirty_pages();
        self.mark_all_code_dirty();
    }

    /// Whole memory as a slice (snapshots).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Replaces the entire contents from a snapshot of identical size.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` has a different length than this memory.
    pub fn restore_from(&mut self, snapshot: &[u8]) {
        assert_eq!(
            snapshot.len(),
            self.bytes.len(),
            "snapshot size must match memory size"
        );
        self.bytes.copy_from_slice(snapshot);
        self.mark_dirty(0, snapshot.len() as u64);
    }

    /// Captures the dirty regions: `(low bytes, high_start, high bytes)`.
    /// Together with [`Memory::restore_sparse`] this is Wasp's
    /// image-proportional snapshot representation.
    pub fn snapshot_sparse(&self) -> (Vec<u8>, u64, Vec<u8>) {
        let lo = self.dirty_low_end as usize;
        let hi = self.dirty_high_start as usize;
        (
            self.bytes[..lo].to_vec(),
            self.dirty_high_start,
            self.bytes[hi..].to_vec(),
        )
    }

    /// Restores a sparse snapshot. The regions between the extents are
    /// zeroed if anything was written there since the last [`Memory::clear`],
    /// so a restore is total regardless of the shell's prior contents.
    /// Afterwards memory provably equals the snapshot, so the dirty-page
    /// bitmap is reset.
    pub fn restore_sparse(&mut self, low: &[u8], high_start: u64, high: &[u8]) {
        if !self.is_clean() {
            self.clear();
        }
        self.bytes[..low.len()].copy_from_slice(low);
        let hi = high_start as usize;
        self.bytes[hi..hi + high.len()].copy_from_slice(high);
        self.dirty_low_end = low.len() as u64;
        self.dirty_high_start = high_start;
        self.reset_dirty_pages();
        self.mark_all_code_dirty();
    }

    /// Delta re-arm: restores `pages` (indices into [`PAGE_SIZE`] pages) to
    /// the contents a sparse snapshot holds for them — bytes from the low
    /// region, the high region, or implicit zeroes in between. When `pages`
    /// covers every page that diverged from the snapshot (the dirty-page
    /// bitmap guarantees this: every write since the restore/capture point
    /// set its page bit), memory afterwards provably equals the snapshot,
    /// so the dirty extents are set to the snapshot's and the bitmap is
    /// reset.
    pub fn restore_pages_sparse(
        &mut self,
        pages: &[u64],
        low: &[u8],
        high_start: u64,
        high: &[u8],
    ) {
        // Each page overlaps at most three contiguous source ranges — the
        // low region, implicit zeroes, and the high region — so rebuild it
        // with (at most) three bulk ops. This sits on the warm-hit fast
        // path: every delta re-arm runs it per dirty page.
        let hi = high_start as usize;
        for &page in pages {
            let start = (page * PAGE_SIZE) as usize;
            let end = (start + PAGE_SIZE as usize).min(self.bytes.len());
            let low_end = low.len().clamp(start, end);
            let zero_end = hi.clamp(low_end, end);
            if low_end > start {
                self.bytes[start..low_end].copy_from_slice(&low[start..low_end]);
            }
            self.bytes[low_end..zero_end].fill(0);
            if end > zero_end {
                self.bytes[zero_end..end].copy_from_slice(&high[zero_end - hi..end - hi]);
            }
        }
        self.dirty_low_end = low.len() as u64;
        self.dirty_high_start = high_start;
        self.reset_dirty_pages();
        self.mark_all_code_dirty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_memory_is_zeroed() {
        let m = Memory::new(64);
        assert_eq!(m.size(), 64);
        assert!(m.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn widths_read_and_write_little_endian() {
        let mut m = Memory::new(32);
        m.write(0, Width::Q, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read(0, Width::B).unwrap(), 0x88);
        assert_eq!(m.read(0, Width::W).unwrap(), 0x7788);
        assert_eq!(m.read(0, Width::D).unwrap(), 0x5566_7788);
        assert_eq!(m.read(0, Width::Q).unwrap(), 0x1122_3344_5566_7788);
        // Narrow writes only touch their width.
        m.write(8, Width::Q, u64::MAX).unwrap();
        m.write(8, Width::B, 0).unwrap();
        assert_eq!(m.read(8, Width::Q).unwrap(), 0xFFFF_FFFF_FFFF_FF00);
    }

    #[test]
    fn loads_zero_extend() {
        let mut m = Memory::new(16);
        m.write(0, Width::B, 0xFF).unwrap();
        assert_eq!(m.read(0, Width::B).unwrap(), 0xFF);
        assert_eq!(m.read(0, Width::Q).unwrap(), 0xFF);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut m = Memory::new(16);
        let e = m.read(15, Width::Q).unwrap_err();
        assert_eq!(e.paddr, 15);
        assert_eq!(e.len, 8);
        assert_eq!(e.mem_size, 16);
        assert!(m.write(16, Width::B, 0).is_err());
        // Overflowing address arithmetic is caught, not wrapped.
        assert!(m.read(u64::MAX, Width::Q).is_err());
    }

    #[test]
    fn write_bytes_and_slice_round_trip() {
        let mut m = Memory::new(32);
        m.write_bytes(4, b"virtine").unwrap();
        assert_eq!(m.slice(4, 7).unwrap(), b"virtine");
        assert!(m.write_bytes(30, b"xyz").is_err());
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut m = Memory::new(8);
        m.write(0, Width::Q, u64::MAX).unwrap();
        m.clear();
        assert_eq!(m.read(0, Width::Q).unwrap(), 0);
    }

    #[test]
    fn restore_from_snapshot() {
        let mut m = Memory::new(8);
        m.write(0, Width::Q, 0xAB).unwrap();
        let snap = m.as_slice().to_vec();
        m.clear();
        m.restore_from(&snap);
        assert_eq!(m.read(0, Width::Q).unwrap(), 0xAB);
    }

    #[test]
    #[should_panic(expected = "snapshot size must match")]
    fn restore_size_mismatch_panics() {
        let mut m = Memory::new(8);
        m.restore_from(&[0; 4]);
    }

    #[test]
    fn tail_returns_suffix() {
        let m = Memory::new(10);
        assert_eq!(m.tail(7).unwrap().len(), 3);
        assert!(m.tail(11).is_err());
    }

    #[test]
    fn dirty_extent_tracks_low_and_high_writes() {
        let mut m = Memory::new(1024);
        assert!(m.is_clean());
        assert_eq!(m.dirty_bytes(), 0);

        m.write_bytes(16, &[1, 2, 3]).unwrap(); // Low region.
        m.write(1000, Width::Q, 7).unwrap(); // High region (stack-like).
        let ext = m.dirty_extent();
        assert_eq!(ext.low_end, 19);
        assert_eq!(ext.high_start, 1000);
        assert_eq!(m.dirty_bytes(), 19 + 24);
        assert!(!m.is_clean());
    }

    #[test]
    fn straddling_write_is_covered() {
        let mut m = Memory::new(64);
        m.write_bytes(30, &[9; 8]).unwrap(); // Crosses the midpoint (32).
        let ext = m.dirty_extent();
        // Covered by the high region reaching down to 30.
        assert!(ext.high_start <= 30);
    }

    #[test]
    fn clear_resets_dirty_state_and_zeroes() {
        let mut m = Memory::new(256);
        m.write_bytes(8, b"abc").unwrap();
        m.write(250, Width::B, 9).unwrap();
        m.clear();
        assert!(m.is_clean());
        assert!(m.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn dirty_page_bitmap_is_exact() {
        let mut m = Memory::new(16 * PAGE_SIZE as usize);
        assert_eq!(m.dirty_page_count(), 0);
        m.write(3 * PAGE_SIZE, Width::B, 1).unwrap(); // Page 3.
        m.write(3 * PAGE_SIZE + 100, Width::Q, 2).unwrap(); // Page 3 again.
        m.write_bytes(5 * PAGE_SIZE - 2, &[9; 4]).unwrap(); // Straddles 4/5.
        m.write(15 * PAGE_SIZE + 8, Width::Q, 3).unwrap(); // Page 15 (stack).
        assert_eq!(m.dirty_page_indices(), vec![3, 4, 5, 15]);
        assert_eq!(m.dirty_page_count(), 4);
        m.reset_dirty_pages();
        assert_eq!(m.dirty_page_count(), 0);
        // Contents untouched by the bitmap reset.
        assert_eq!(m.read(3 * PAGE_SIZE, Width::B).unwrap(), 1);
    }

    #[test]
    fn clear_and_restore_reset_the_page_bitmap() {
        let mut m = Memory::new(8 * PAGE_SIZE as usize);
        m.write(0, Width::Q, 7).unwrap();
        m.clear();
        assert_eq!(m.dirty_page_count(), 0);
        m.write(0, Width::Q, 7).unwrap();
        let (low, hs, high) = m.snapshot_sparse();
        m.write(PAGE_SIZE, Width::Q, 9).unwrap();
        m.restore_sparse(&low, hs, &high);
        assert_eq!(m.dirty_page_count(), 0);
    }

    #[test]
    fn restore_pages_sparse_rebuilds_exactly_the_snapshot() {
        let size = 8 * PAGE_SIZE as usize;
        let mut m = Memory::new(size);
        // Snapshot state: low region through page 1, stack byte on page 7.
        m.write_bytes(100, b"snapshot-low").unwrap();
        m.write_bytes(PAGE_SIZE + 7, b"more-low").unwrap();
        m.write(7 * PAGE_SIZE + 64, Width::Q, 0xFEED).unwrap();
        let (low, hs, high) = m.snapshot_sparse();
        m.reset_dirty_pages();

        // Diverge: overwrite snapshot data and dirty a middle page.
        m.write_bytes(100, b"garbagegarba").unwrap();
        m.write(4 * PAGE_SIZE + 8, Width::Q, 0xBAD).unwrap();
        m.write(7 * PAGE_SIZE + 64, Width::Q, 0xBAD).unwrap();
        let pages = m.dirty_page_indices();
        assert_eq!(pages, vec![0, 4, 7]);

        let mut reference = Memory::new(size);
        reference.restore_sparse(&low, hs, &high);
        m.restore_pages_sparse(&pages, &low, hs, &high);
        assert_eq!(m.as_slice(), reference.as_slice(), "delta != full restore");
        assert_eq!(m.dirty_extent(), reference.dirty_extent());
        assert_eq!(m.dirty_page_count(), 0);
    }

    #[test]
    fn code_dirty_is_set_by_writes_and_cleared_per_page() {
        let mut m = Memory::new(8 * PAGE_SIZE as usize);
        assert!(!m.code_page_dirty(2));
        m.write(2 * PAGE_SIZE + 10, Width::Q, 7).unwrap();
        assert!(m.code_page_dirty(2));
        assert!(!m.code_page_dirty(3));
        m.clear_code_dirty_page(2);
        assert!(!m.code_page_dirty(2));
        // Clearing the snapshot bitmap leaves the code bitmap alone and
        // vice versa.
        m.write(0, Width::B, 1).unwrap();
        m.reset_dirty_pages();
        assert!(m.code_page_dirty(0));
        // Bulk ops pessimize every page.
        m.clear_code_dirty_page(0);
        m.clear();
        assert!(m.code_page_dirty(0) && m.code_page_dirty(7));
        // Out-of-range pages read clean and clear without panicking.
        assert!(!m.code_page_dirty(1 << 40));
        m.clear_code_dirty_page(1 << 40);
    }

    #[test]
    fn equality_ignores_the_code_dirty_bitmap() {
        let mut a = Memory::new(PAGE_SIZE as usize);
        let mut b = Memory::new(PAGE_SIZE as usize);
        a.write(0, Width::Q, 42).unwrap();
        b.write(0, Width::Q, 42).unwrap();
        a.clear_code_dirty_page(0);
        assert_eq!(a, b);
    }

    #[test]
    fn sparse_snapshot_round_trips() {
        let mut m = Memory::new(512);
        m.write_bytes(0, b"image bytes here").unwrap();
        m.write(500, Width::Q, 0xAA).unwrap();
        let (low, hs, high) = m.snapshot_sparse();
        assert_eq!(low.len(), 16);
        assert_eq!(hs, 500);
        assert_eq!(high.len(), 12);

        // Dirty the shell differently, then restore.
        let mut shell = Memory::new(512);
        shell.write_bytes(100, b"garbage").unwrap();
        shell.restore_sparse(&low, hs, &high);
        assert_eq!(shell.slice(0, 16).unwrap(), b"image bytes here");
        assert_eq!(shell.read(500, Width::Q).unwrap(), 0xAA);
        // The middle garbage was wiped by the restore.
        assert_eq!(shell.slice(100, 7).unwrap(), &[0; 7]);
    }
}
