//! The virtine instruction set: definitions, binary encoding, and decoding.
//!
//! VISA is the abstract machine model of this reproduction (§2 of the paper:
//! "a virtine hypervisor … implements an abstract machine model designed for
//! and restricted to the intentions of the virtine"). It mirrors the parts of
//! x86 that matter for the paper's measurements — the real→protected→long
//! bring-up, control registers, GDT loads, far jumps, port-mapped I/O and
//! `hlt` — while using a simple fixed-format binary encoding so images are
//! genuine binary blobs that can be loaded, snapshotted and padded.
//!
//! Encoding formats (little-endian):
//!
//! | format | layout | length |
//! |---|---|---|
//! | RR | `op dst src` | 3 |
//! | RI | `op dst imm64` | 10 |
//! | mem | `op reg base off32` | 7 |
//! | jump | `op rel32` | 5 |
//! | cond jump | `op cond rel32` | 6 |
//! | port | `op reg port16` | 4 |
//! | far jump | `op mode imm64` | 10 |

use std::fmt;

/// A general-purpose register (`r0`–`r15`).
///
/// By software convention `r15` is the stack pointer (`sp`) used implicitly
/// by `push`/`pop`/`call`/`ret`, and `r14` is the frame pointer (`fp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 16;
    /// The stack pointer alias (`r15`).
    pub const SP: Reg = Reg(15);
    /// The frame pointer alias (`r14`).
    pub const FP: Reg = Reg(14);

    /// Builds a register, validating the index.
    pub fn new(idx: u8) -> Result<Reg, DecodeError> {
        if (idx as usize) < Reg::COUNT {
            Ok(Reg(idx))
        } else {
            Err(DecodeError::BadRegister(idx))
        }
    }

    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            15 => write!(f, "sp"),
            14 => write!(f, "fp"),
            n => write!(f, "r{n}"),
        }
    }
}

/// Width of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte, zero-extended on load.
    B,
    /// 2 bytes, zero-extended on load.
    W,
    /// 4 bytes, zero-extended on load.
    D,
    /// 8 bytes.
    Q,
}

impl Width {
    /// Size of the access in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B => 1,
            Width::W => 2,
            Width::D => 4,
            Width::Q => 8,
        }
    }
}

/// Binary ALU operation selector shared by the RR and RI forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alu {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; divide-by-zero faults.
    Div,
    /// Signed remainder; divide-by-zero faults.
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (count masked to 63).
    Shl,
    /// Logical shift right (count masked to 63).
    Shr,
    /// Arithmetic shift right (count masked to 63).
    Sar,
}

/// Branch condition, evaluated against the flags set by the last `cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    B,
    /// Unsigned below-or-equal.
    Be,
    /// Unsigned above.
    A,
    /// Unsigned above-or-equal.
    Ae,
}

impl Cond {
    /// Encodes the condition as a byte.
    pub fn encode(self) -> u8 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Le => 3,
            Cond::Gt => 4,
            Cond::Ge => 5,
            Cond::B => 6,
            Cond::Be => 7,
            Cond::A => 8,
            Cond::Ae => 9,
        }
    }

    /// Decodes a condition byte.
    pub fn decode(b: u8) -> Result<Cond, DecodeError> {
        Ok(match b {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Le,
            4 => Cond::Gt,
            5 => Cond::Ge,
            6 => Cond::B,
            7 => Cond::Be,
            8 => Cond::A,
            9 => Cond::Ae,
            other => return Err(DecodeError::BadCondition(other)),
        })
    }
}

/// Target processor mode of a far jump (`ljmp16`/`ljmp32`/`ljmp64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JmpMode {
    /// 16-bit real mode.
    Real16,
    /// 32-bit protected mode.
    Prot32,
    /// 64-bit long mode.
    Long64,
}

impl JmpMode {
    /// Encodes the mode as a byte.
    pub fn encode(self) -> u8 {
        match self {
            JmpMode::Real16 => 16,
            JmpMode::Prot32 => 32,
            JmpMode::Long64 => 64,
        }
    }

    /// Decodes a mode byte.
    pub fn decode(b: u8) -> Result<JmpMode, DecodeError> {
        Ok(match b {
            16 => JmpMode::Real16,
            32 => JmpMode::Prot32,
            64 => JmpMode::Long64,
            other => return Err(DecodeError::BadMode(other)),
        })
    }
}

/// Control register selector for `mov crN, r` / `mov r, crN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrReg {
    /// CR0 (PE is bit 0, PG is bit 31).
    Cr0,
    /// CR3 (page-table base).
    Cr3,
    /// CR4 (PAE is bit 5).
    Cr4,
}

impl CrReg {
    /// Encodes the selector as a byte.
    pub fn encode(self) -> u8 {
        match self {
            CrReg::Cr0 => 0,
            CrReg::Cr3 => 3,
            CrReg::Cr4 => 4,
        }
    }

    /// Decodes a selector byte.
    pub fn decode(b: u8) -> Result<CrReg, DecodeError> {
        Ok(match b {
            0 => CrReg::Cr0,
            3 => CrReg::Cr3,
            4 => CrReg::Cr4,
            other => return Err(DecodeError::BadControlRegister(other)),
        })
    }
}

/// A decoded VISA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Halt: exits the virtual context (`VmExit::Hlt`).
    Hlt,
    /// `dst = src`.
    MovRR(Reg, Reg),
    /// `dst = imm`.
    MovRI(Reg, u64),
    /// `dst = dst <op> src`.
    AluRR(Alu, Reg, Reg),
    /// `dst = dst <op> imm`.
    AluRI(Alu, Reg, u64),
    /// `dst = -dst`.
    Neg(Reg),
    /// `dst = !dst`.
    Not(Reg),
    /// Sets flags from `a - b`.
    CmpRR(Reg, Reg),
    /// Sets flags from `a - imm`.
    CmpRI(Reg, u64),
    /// Relative jump (offset from the next instruction).
    Jmp(i32),
    /// Conditional relative jump.
    Jcc(Cond, i32),
    /// Relative call: pushes the return address.
    Call(i32),
    /// Indirect call through a register.
    CallR(Reg),
    /// Indirect jump through a register.
    JmpR(Reg),
    /// Pops the return address and jumps to it.
    Ret,
    /// Pushes a register on the stack.
    Push(Reg),
    /// Pops the stack into a register.
    Pop(Reg),
    /// Memory load: `dst = mem[base + off]`, zero-extended to 64 bits.
    Load(Width, Reg, Reg, i32),
    /// Memory store: `mem[base + off] = src` (truncated to the width).
    Store(Width, Reg, i32, Reg),
    /// Port input: exits to the hypervisor, which supplies the value.
    In(Reg, u16),
    /// Port output: exits to the hypervisor with `(port, value)`.
    Out(u16, Reg),
    /// Loads the GDT register from an absolute address.
    Lgdt(u64),
    /// Writes a control register from a GPR.
    MovCr(CrReg, Reg),
    /// Reads a control register into a GPR.
    MovRCr(Reg, CrReg),
    /// Writes a model-specific register (only EFER is modelled).
    Wrmsr(u32, Reg),
    /// Far jump: switches processor mode and jumps to an absolute address.
    Ljmp(JmpMode, u64),
    /// Records a zero-cost milestone timestamp (experiment instrumentation,
    /// standing in for an in-guest `rdtsc` which causes no VM exit).
    Mark(u8),
}

/// Errors produced while decoding instruction bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte is not a defined instruction.
    BadOpcode(u8),
    /// A register operand index was out of range.
    BadRegister(u8),
    /// A condition byte was out of range.
    BadCondition(u8),
    /// A far-jump mode byte was invalid.
    BadMode(u8),
    /// A control-register selector was invalid.
    BadControlRegister(u8),
    /// The instruction was truncated by the end of memory.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "invalid opcode {op:#04x}"),
            DecodeError::BadRegister(r) => write!(f, "invalid register index {r}"),
            DecodeError::BadCondition(c) => write!(f, "invalid condition code {c}"),
            DecodeError::BadMode(m) => write!(f, "invalid far-jump mode {m}"),
            DecodeError::BadControlRegister(c) => write!(f, "invalid control register {c}"),
            DecodeError::Truncated => write!(f, "truncated instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode assignments. Kept dense and stable: images are persisted by tests.
const OP_NOP: u8 = 0x00;
const OP_HLT: u8 = 0x01;
const OP_MOV_RR: u8 = 0x02;
const OP_MOV_RI: u8 = 0x03;
const OP_ALU_RR_BASE: u8 = 0x10; // 0x10..=0x1A indexed by Alu discriminant.
const OP_ALU_RI_BASE: u8 = 0x20; // 0x20..=0x2A.
const OP_NEG: u8 = 0x2B;
const OP_NOT: u8 = 0x2C;
const OP_CMP_RR: u8 = 0x2D;
const OP_CMP_RI: u8 = 0x2E;
const OP_JMP: u8 = 0x30;
const OP_JCC: u8 = 0x31;
const OP_CALL: u8 = 0x32;
const OP_CALL_R: u8 = 0x33;
const OP_JMP_R: u8 = 0x34;
const OP_RET: u8 = 0x35;
const OP_PUSH: u8 = 0x36;
const OP_POP: u8 = 0x37;
const OP_LOAD_B: u8 = 0x40;
const OP_LOAD_W: u8 = 0x41;
const OP_LOAD_D: u8 = 0x42;
const OP_LOAD_Q: u8 = 0x43;
const OP_STORE_B: u8 = 0x44;
const OP_STORE_W: u8 = 0x45;
const OP_STORE_D: u8 = 0x46;
const OP_STORE_Q: u8 = 0x47;
const OP_IN: u8 = 0x50;
const OP_OUT: u8 = 0x51;
const OP_LGDT: u8 = 0x60;
const OP_MOV_CR: u8 = 0x61;
const OP_MOV_RCR: u8 = 0x62;
const OP_WRMSR: u8 = 0x63;
const OP_LJMP: u8 = 0x64;
const OP_MARK: u8 = 0x70;

fn alu_code(alu: Alu) -> u8 {
    match alu {
        Alu::Add => 0,
        Alu::Sub => 1,
        Alu::Mul => 2,
        Alu::Div => 3,
        Alu::Mod => 4,
        Alu::And => 5,
        Alu::Or => 6,
        Alu::Xor => 7,
        Alu::Shl => 8,
        Alu::Shr => 9,
        Alu::Sar => 10,
    }
}

fn alu_from_code(c: u8) -> Option<Alu> {
    Some(match c {
        0 => Alu::Add,
        1 => Alu::Sub,
        2 => Alu::Mul,
        3 => Alu::Div,
        4 => Alu::Mod,
        5 => Alu::And,
        6 => Alu::Or,
        7 => Alu::Xor,
        8 => Alu::Shl,
        9 => Alu::Shr,
        10 => Alu::Sar,
        _ => return None,
    })
}

impl Inst {
    /// Encoded length of the instruction in bytes (never zero, so there
    /// is deliberately no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        match self {
            Inst::Nop | Inst::Hlt | Inst::Ret => 1,
            Inst::MovRR(..) | Inst::AluRR(..) | Inst::CmpRR(..) => 3,
            Inst::MovRI(..) | Inst::AluRI(..) | Inst::CmpRI(..) => 10,
            Inst::Neg(_) | Inst::Not(_) | Inst::Push(_) | Inst::Pop(_) => 2,
            Inst::CallR(_) | Inst::JmpR(_) => 2,
            Inst::Jmp(_) | Inst::Call(_) => 5,
            Inst::Jcc(..) => 6,
            Inst::Load(..) | Inst::Store(..) => 7,
            Inst::In(..) | Inst::Out(..) => 4,
            Inst::Lgdt(_) => 9,
            Inst::MovCr(..) | Inst::MovRCr(..) => 3,
            Inst::Wrmsr(..) => 6,
            Inst::Ljmp(..) => 10,
            Inst::Mark(_) => 2,
        }
    }

    /// Appends the binary encoding of the instruction to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Inst::Nop => out.push(OP_NOP),
            Inst::Hlt => out.push(OP_HLT),
            Inst::Ret => out.push(OP_RET),
            Inst::MovRR(d, s) => out.extend_from_slice(&[OP_MOV_RR, d.0, s.0]),
            Inst::MovRI(d, imm) => {
                out.extend_from_slice(&[OP_MOV_RI, d.0]);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::AluRR(alu, d, s) => {
                out.extend_from_slice(&[OP_ALU_RR_BASE + alu_code(alu), d.0, s.0]);
            }
            Inst::AluRI(alu, d, imm) => {
                out.extend_from_slice(&[OP_ALU_RI_BASE + alu_code(alu), d.0]);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::Neg(r) => out.extend_from_slice(&[OP_NEG, r.0]),
            Inst::Not(r) => out.extend_from_slice(&[OP_NOT, r.0]),
            Inst::CmpRR(a, b) => out.extend_from_slice(&[OP_CMP_RR, a.0, b.0]),
            Inst::CmpRI(a, imm) => {
                out.extend_from_slice(&[OP_CMP_RI, a.0]);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::Jmp(rel) => {
                out.push(OP_JMP);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Inst::Jcc(c, rel) => {
                out.extend_from_slice(&[OP_JCC, c.encode()]);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Inst::Call(rel) => {
                out.push(OP_CALL);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Inst::CallR(r) => out.extend_from_slice(&[OP_CALL_R, r.0]),
            Inst::JmpR(r) => out.extend_from_slice(&[OP_JMP_R, r.0]),
            Inst::Push(r) => out.extend_from_slice(&[OP_PUSH, r.0]),
            Inst::Pop(r) => out.extend_from_slice(&[OP_POP, r.0]),
            Inst::Load(w, dst, base, off) => {
                let op = match w {
                    Width::B => OP_LOAD_B,
                    Width::W => OP_LOAD_W,
                    Width::D => OP_LOAD_D,
                    Width::Q => OP_LOAD_Q,
                };
                out.extend_from_slice(&[op, dst.0, base.0]);
                out.extend_from_slice(&off.to_le_bytes());
            }
            Inst::Store(w, base, off, src) => {
                let op = match w {
                    Width::B => OP_STORE_B,
                    Width::W => OP_STORE_W,
                    Width::D => OP_STORE_D,
                    Width::Q => OP_STORE_Q,
                };
                out.extend_from_slice(&[op, base.0, src.0]);
                out.extend_from_slice(&off.to_le_bytes());
            }
            Inst::In(dst, port) => {
                out.extend_from_slice(&[OP_IN, dst.0]);
                out.extend_from_slice(&port.to_le_bytes());
            }
            Inst::Out(port, src) => {
                out.extend_from_slice(&[OP_OUT, src.0]);
                out.extend_from_slice(&port.to_le_bytes());
            }
            Inst::Lgdt(addr) => {
                out.push(OP_LGDT);
                out.extend_from_slice(&addr.to_le_bytes());
            }
            Inst::MovCr(cr, src) => out.extend_from_slice(&[OP_MOV_CR, cr.encode(), src.0]),
            Inst::MovRCr(dst, cr) => out.extend_from_slice(&[OP_MOV_RCR, dst.0, cr.encode()]),
            Inst::Wrmsr(msr, src) => {
                out.extend_from_slice(&[OP_WRMSR, src.0]);
                out.extend_from_slice(&msr.to_le_bytes());
            }
            Inst::Ljmp(mode, target) => {
                out.extend_from_slice(&[OP_LJMP, mode.encode()]);
                out.extend_from_slice(&target.to_le_bytes());
            }
            Inst::Mark(id) => out.extend_from_slice(&[OP_MARK, id]),
        }
    }

    /// Decodes one instruction from the start of `bytes`.
    ///
    /// Returns the instruction and its encoded length.
    pub fn decode(bytes: &[u8]) -> Result<(Inst, u64), DecodeError> {
        fn need(bytes: &[u8], n: usize) -> Result<(), DecodeError> {
            if bytes.len() < n {
                Err(DecodeError::Truncated)
            } else {
                Ok(())
            }
        }
        fn reg(b: u8) -> Result<Reg, DecodeError> {
            Reg::new(b)
        }
        fn imm64(bytes: &[u8]) -> u64 {
            u64::from_le_bytes(bytes[..8].try_into().expect("length checked"))
        }
        fn rel32(bytes: &[u8]) -> i32 {
            i32::from_le_bytes(bytes[..4].try_into().expect("length checked"))
        }
        fn port16(bytes: &[u8]) -> u16 {
            u16::from_le_bytes(bytes[..2].try_into().expect("length checked"))
        }

        need(bytes, 1)?;
        let op = bytes[0];
        let inst = match op {
            OP_NOP => Inst::Nop,
            OP_HLT => Inst::Hlt,
            OP_RET => Inst::Ret,
            OP_MOV_RR => {
                need(bytes, 3)?;
                Inst::MovRR(reg(bytes[1])?, reg(bytes[2])?)
            }
            OP_MOV_RI => {
                need(bytes, 10)?;
                Inst::MovRI(reg(bytes[1])?, imm64(&bytes[2..]))
            }
            op if (OP_ALU_RR_BASE..OP_ALU_RR_BASE + 11).contains(&op) => {
                need(bytes, 3)?;
                let alu = alu_from_code(op - OP_ALU_RR_BASE).expect("range checked");
                Inst::AluRR(alu, reg(bytes[1])?, reg(bytes[2])?)
            }
            op if (OP_ALU_RI_BASE..OP_ALU_RI_BASE + 11).contains(&op) => {
                need(bytes, 10)?;
                let alu = alu_from_code(op - OP_ALU_RI_BASE).expect("range checked");
                Inst::AluRI(alu, reg(bytes[1])?, imm64(&bytes[2..]))
            }
            OP_NEG => {
                need(bytes, 2)?;
                Inst::Neg(reg(bytes[1])?)
            }
            OP_NOT => {
                need(bytes, 2)?;
                Inst::Not(reg(bytes[1])?)
            }
            OP_CMP_RR => {
                need(bytes, 3)?;
                Inst::CmpRR(reg(bytes[1])?, reg(bytes[2])?)
            }
            OP_CMP_RI => {
                need(bytes, 10)?;
                Inst::CmpRI(reg(bytes[1])?, imm64(&bytes[2..]))
            }
            OP_JMP => {
                need(bytes, 5)?;
                Inst::Jmp(rel32(&bytes[1..]))
            }
            OP_JCC => {
                need(bytes, 6)?;
                Inst::Jcc(Cond::decode(bytes[1])?, rel32(&bytes[2..]))
            }
            OP_CALL => {
                need(bytes, 5)?;
                Inst::Call(rel32(&bytes[1..]))
            }
            OP_CALL_R => {
                need(bytes, 2)?;
                Inst::CallR(reg(bytes[1])?)
            }
            OP_JMP_R => {
                need(bytes, 2)?;
                Inst::JmpR(reg(bytes[1])?)
            }
            OP_PUSH => {
                need(bytes, 2)?;
                Inst::Push(reg(bytes[1])?)
            }
            OP_POP => {
                need(bytes, 2)?;
                Inst::Pop(reg(bytes[1])?)
            }
            OP_LOAD_B | OP_LOAD_W | OP_LOAD_D | OP_LOAD_Q => {
                need(bytes, 7)?;
                let w = match op {
                    OP_LOAD_B => Width::B,
                    OP_LOAD_W => Width::W,
                    OP_LOAD_D => Width::D,
                    _ => Width::Q,
                };
                Inst::Load(w, reg(bytes[1])?, reg(bytes[2])?, rel32(&bytes[3..]))
            }
            OP_STORE_B | OP_STORE_W | OP_STORE_D | OP_STORE_Q => {
                need(bytes, 7)?;
                let w = match op {
                    OP_STORE_B => Width::B,
                    OP_STORE_W => Width::W,
                    OP_STORE_D => Width::D,
                    _ => Width::Q,
                };
                Inst::Store(w, reg(bytes[1])?, rel32(&bytes[3..]), reg(bytes[2])?)
            }
            OP_IN => {
                need(bytes, 4)?;
                Inst::In(reg(bytes[1])?, port16(&bytes[2..]))
            }
            OP_OUT => {
                need(bytes, 4)?;
                Inst::Out(port16(&bytes[2..]), reg(bytes[1])?)
            }
            OP_LGDT => {
                need(bytes, 9)?;
                Inst::Lgdt(imm64(&bytes[1..]))
            }
            OP_MOV_CR => {
                need(bytes, 3)?;
                Inst::MovCr(CrReg::decode(bytes[1])?, reg(bytes[2])?)
            }
            OP_MOV_RCR => {
                need(bytes, 3)?;
                Inst::MovRCr(reg(bytes[1])?, CrReg::decode(bytes[2])?)
            }
            OP_WRMSR => {
                need(bytes, 6)?;
                let msr = u32::from_le_bytes(bytes[2..6].try_into().expect("length checked"));
                Inst::Wrmsr(msr, reg(bytes[1])?)
            }
            OP_LJMP => {
                need(bytes, 10)?;
                Inst::Ljmp(JmpMode::decode(bytes[1])?, imm64(&bytes[2..]))
            }
            OP_MARK => {
                need(bytes, 2)?;
                Inst::Mark(bytes[1])
            }
            other => return Err(DecodeError::BadOpcode(other)),
        };
        Ok((inst, inst.len()))
    }
}

/// Coarse execution class of an instruction — the "decode split" consumed
/// by the predecoded interpreter ([`crate::pred`]).
///
/// Each class maps to one base cycle cost in
/// [`vclock::costs::GUEST_CLASS_BASE`]; the discriminant is the index into
/// that table. Classes whose timing is charged inside a helper (memory
/// accesses tick [`vclock::costs::GUEST_MEM`] in the load/store path) or is
/// mode-dependent (`System`) carry a base cost of zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// Simple single-cycle ALU work: `nop`, `mov`, add/sub/logic/shifts,
    /// `neg`, `not`, `cmp`, and control-register reads.
    Alu = 0,
    /// Integer multiply.
    Mul = 1,
    /// Integer divide / remainder.
    Div = 2,
    /// Memory loads and stores (cost charged by the access helper).
    Mem = 3,
    /// Branches: `jmp`, conditional jumps, indirect jumps.
    Branch = 4,
    /// `call` / `ret`.
    CallRet = 5,
    /// `push` / `pop`.
    Stack = 6,
    /// Port I/O (`in` / `out`).
    Pio = 7,
    /// `hlt`.
    Halt = 8,
    /// Mode-transition machinery: `lgdt`, control-register writes, `wrmsr`,
    /// far jumps. Costs depend on mode and the bits written.
    System = 9,
    /// `mark` — the free rdtsc stand-in.
    Mark = 10,
}

impl OpClass {
    /// Number of classes (the length of the cost table).
    pub const COUNT: usize = 11;
}

impl Inst {
    /// The execution class of this instruction.
    pub fn class(&self) -> OpClass {
        match self {
            Inst::Nop
            | Inst::MovRR(..)
            | Inst::MovRI(..)
            | Inst::Neg(_)
            | Inst::Not(_)
            | Inst::CmpRR(..)
            | Inst::CmpRI(..)
            | Inst::MovRCr(..) => OpClass::Alu,
            Inst::AluRR(op, ..) | Inst::AluRI(op, ..) => match op {
                Alu::Mul => OpClass::Mul,
                Alu::Div | Alu::Mod => OpClass::Div,
                _ => OpClass::Alu,
            },
            Inst::Load(..) | Inst::Store(..) => OpClass::Mem,
            Inst::Jmp(_) | Inst::Jcc(..) | Inst::JmpR(_) => OpClass::Branch,
            Inst::Call(_) | Inst::CallR(_) | Inst::Ret => OpClass::CallRet,
            Inst::Push(_) | Inst::Pop(_) => OpClass::Stack,
            Inst::In(..) | Inst::Out(..) => OpClass::Pio,
            Inst::Hlt => OpClass::Halt,
            Inst::Lgdt(_) | Inst::MovCr(..) | Inst::Wrmsr(..) | Inst::Ljmp(..) => OpClass::System,
            Inst::Mark(_) => OpClass::Mark,
        }
    }
}

/// The model-specific register number for EFER (matches x86).
pub const MSR_EFER: u32 = 0xC000_0080;

/// EFER.LME: long-mode enable.
pub const EFER_LME: u64 = 1 << 8;

/// CR0.PE: protection enable.
pub const CR0_PE: u64 = 1 << 0;

/// CR0.PG: paging enable.
pub const CR0_PG: u64 = 1 << 31;

/// CR4.PAE: physical address extension.
pub const CR4_PAE: u64 = 1 << 5;

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(inst: Inst) {
        let mut buf = Vec::new();
        inst.encode(&mut buf);
        assert_eq!(buf.len() as u64, inst.len(), "length mismatch for {inst:?}");
        let (decoded, len) = Inst::decode(&buf).expect("decode");
        assert_eq!(decoded, inst);
        assert_eq!(len, inst.len());
    }

    #[test]
    fn all_instruction_forms_round_trip() {
        let r = |n| Reg(n);
        let insts = [
            Inst::Nop,
            Inst::Hlt,
            Inst::Ret,
            Inst::MovRR(r(0), r(15)),
            Inst::MovRI(r(3), 0xDEAD_BEEF_CAFE_F00D),
            Inst::AluRR(Alu::Add, r(1), r(2)),
            Inst::AluRI(Alu::Shr, r(9), 63),
            Inst::AluRI(Alu::Div, r(4), u64::MAX),
            Inst::Neg(r(5)),
            Inst::Not(r(6)),
            Inst::CmpRR(r(7), r(8)),
            Inst::CmpRI(r(1), 2),
            Inst::Jmp(-12345),
            Inst::Jcc(Cond::Lt, 77),
            Inst::Call(0),
            Inst::CallR(r(11)),
            Inst::JmpR(r(12)),
            Inst::Push(r(13)),
            Inst::Pop(r(14)),
            Inst::Load(Width::B, r(0), r(1), -4),
            Inst::Load(Width::Q, r(2), r(3), 1 << 20),
            Inst::Store(Width::W, r(4), 16, r(5)),
            Inst::Store(Width::D, r(6), -8, r(7)),
            Inst::In(r(0), 0xF00D),
            Inst::Out(0x0001, r(1)),
            Inst::Lgdt(0x8000),
            Inst::MovCr(CrReg::Cr0, r(2)),
            Inst::MovRCr(r(3), CrReg::Cr4),
            Inst::Wrmsr(MSR_EFER, r(4)),
            Inst::Ljmp(JmpMode::Long64, 0x9000),
            Inst::Mark(250),
        ];
        for inst in insts {
            round_trip(inst);
        }
    }

    #[test]
    fn every_alu_op_round_trips() {
        for alu in [
            Alu::Add,
            Alu::Sub,
            Alu::Mul,
            Alu::Div,
            Alu::Mod,
            Alu::And,
            Alu::Or,
            Alu::Xor,
            Alu::Shl,
            Alu::Shr,
            Alu::Sar,
        ] {
            round_trip(Inst::AluRR(alu, Reg(1), Reg(2)));
            round_trip(Inst::AluRI(alu, Reg(3), 42));
        }
    }

    #[test]
    fn every_condition_round_trips() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::B,
            Cond::Be,
            Cond::A,
            Cond::Ae,
        ] {
            assert_eq!(Cond::decode(c.encode()).unwrap(), c);
            round_trip(Inst::Jcc(c, -1));
        }
    }

    #[test]
    fn bad_opcode_is_rejected() {
        assert_eq!(
            Inst::decode(&[0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(DecodeError::BadOpcode(0xFF))
        );
    }

    #[test]
    fn bad_register_is_rejected() {
        assert_eq!(
            Inst::decode(&[0x02, 16, 0]),
            Err(DecodeError::BadRegister(16))
        );
    }

    #[test]
    fn truncated_instruction_is_rejected() {
        let mut buf = Vec::new();
        Inst::MovRI(Reg(0), 7).encode(&mut buf);
        assert_eq!(Inst::decode(&buf[..5]), Err(DecodeError::Truncated));
        assert_eq!(Inst::decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn register_aliases_display() {
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::FP.to_string(), "fp");
        assert_eq!(Reg(3).to_string(), "r3");
    }
}
