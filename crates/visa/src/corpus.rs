//! Seeded random guest-program generation.
//!
//! Two generators, both deterministic from a [`vclock::rng::Rng`] seed:
//!
//! * [`random_inst`] — one instruction of any form with random operands,
//!   for encode/decode round-trip property tests.
//! * [`random_source`] — a whole assemblable program exercising the
//!   instruction mix `vcc` emits plus the awkward cases (divide faults,
//!   self-modifying stores, port I/O, wild indirect jumps, illegal system
//!   instructions), for the fast-vs-reference differential harness and the
//!   `diff_fuzz` binary. Programs are *allowed* to fault, loop forever, or
//!   scribble on themselves — the differential contract is that both
//!   engines do exactly the same thing, not that the program is sensible.

use vclock::rng::Rng;

use crate::inst::{Alu, Cond, CrReg, Inst, JmpMode, Reg, Width};

const ALUS: [Alu; 11] = [
    Alu::Add,
    Alu::Sub,
    Alu::Mul,
    Alu::Div,
    Alu::Mod,
    Alu::And,
    Alu::Or,
    Alu::Xor,
    Alu::Shl,
    Alu::Shr,
    Alu::Sar,
];

const CONDS: [Cond; 10] = [
    Cond::Eq,
    Cond::Ne,
    Cond::Lt,
    Cond::Le,
    Cond::Gt,
    Cond::Ge,
    Cond::B,
    Cond::Be,
    Cond::A,
    Cond::Ae,
];

const WIDTHS: [Width; 4] = [Width::B, Width::W, Width::D, Width::Q];

fn reg(rng: &mut Rng) -> Reg {
    Reg(rng.below(16) as u8)
}

fn alu(rng: &mut Rng) -> Alu {
    ALUS[rng.below(ALUS.len())]
}

fn cond(rng: &mut Rng) -> Cond {
    CONDS[rng.below(CONDS.len())]
}

fn width(rng: &mut Rng) -> Width {
    WIDTHS[rng.below(WIDTHS.len())]
}

/// A random instruction of any form, with operands drawn from the full
/// encodable ranges. Every call site (register indices, conditions, widths,
/// modes) stays within the decodable alphabet, so
/// `encode → decode → encode` must be the identity.
pub fn random_inst(rng: &mut Rng) -> Inst {
    match rng.below(27) {
        0 => Inst::Nop,
        1 => Inst::Hlt,
        2 => Inst::MovRR(reg(rng), reg(rng)),
        3 => Inst::MovRI(reg(rng), rng.next_u64()),
        4 => Inst::AluRR(alu(rng), reg(rng), reg(rng)),
        5 => Inst::AluRI(alu(rng), reg(rng), rng.next_u64()),
        6 => Inst::Neg(reg(rng)),
        7 => Inst::Not(reg(rng)),
        8 => Inst::CmpRR(reg(rng), reg(rng)),
        9 => Inst::CmpRI(reg(rng), rng.next_u64()),
        10 => Inst::Jmp(rng.next_u64() as i32),
        11 => Inst::Jcc(cond(rng), rng.next_u64() as i32),
        12 => Inst::Call(rng.next_u64() as i32),
        13 => Inst::CallR(reg(rng)),
        14 => Inst::JmpR(reg(rng)),
        15 => Inst::Ret,
        16 => Inst::Push(reg(rng)),
        17 => Inst::Pop(reg(rng)),
        18 => Inst::Load(width(rng), reg(rng), reg(rng), rng.next_u64() as i32),
        19 => Inst::Store(width(rng), reg(rng), rng.next_u64() as i32, reg(rng)),
        20 => Inst::In(reg(rng), rng.next_u64() as u16),
        21 => Inst::Out(rng.next_u64() as u16, reg(rng)),
        22 => Inst::Lgdt(rng.next_u64()),
        23 => {
            let cr = [CrReg::Cr0, CrReg::Cr3, CrReg::Cr4][rng.below(3)];
            if rng.bool(0.5) {
                Inst::MovCr(cr, reg(rng))
            } else {
                Inst::MovRCr(reg(rng), cr)
            }
        }
        24 => Inst::Wrmsr(rng.next_u64() as u32, reg(rng)),
        25 => {
            let mode = [JmpMode::Real16, JmpMode::Prot32, JmpMode::Long64][rng.below(3)];
            Inst::Ljmp(mode, rng.next_u64())
        }
        _ => Inst::Mark(rng.next_u64() as u8),
    }
}

/// A register name for generated source; data generation sticks to
/// `r0`–`r11`, leaving `r12` (data base), `r13` (code base), `fp`, and `sp`
/// with stable roles.
fn data_reg(rng: &mut Rng) -> String {
    format!("r{}", rng.below(12))
}

const JCC_NAMES: [&str; 10] = [
    "je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae",
];

/// Label for a branch target: usually forward (guaranteeing progress),
/// occasionally backward (loops, bounded by the caller's step budget).
fn target_label(rng: &mut Rng, i: usize, n: usize) -> String {
    if i > 0 && rng.bool(0.1) {
        format!("L{}", rng.below(i))
    } else {
        format!("L{}", rng.range_u64(i as u64 + 1, n as u64 + 1))
    }
}

/// One random body line of a generated program.
fn random_line(rng: &mut Rng, i: usize, n: usize) -> String {
    match rng.below(100) {
        // Straight-line ALU mix — the bulk, so predecoded blocks get long.
        0..=29 => {
            let names = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr", "sar"];
            let op = names[rng.below(names.len())];
            if rng.bool(0.5) {
                format!("{op} {}, {}", data_reg(rng), data_reg(rng))
            } else {
                format!("{op} {}, {}", data_reg(rng), rng.below(1 << 16))
            }
        }
        // Divide / remainder; sometimes by zero to pin fault identity.
        30..=34 => {
            let op = if rng.bool(0.5) { "div" } else { "mod" };
            if rng.bool(0.8) {
                format!("{op} {}, {}", data_reg(rng), rng.range_u64(1, 1000))
            } else {
                format!("{op} {}, {}", data_reg(rng), data_reg(rng))
            }
        }
        35..=42 => match rng.below(4) {
            0 => format!(
                "mov {}, {}",
                data_reg(rng),
                // The assembler parses decimal literals as i64: stay positive.
                rng.next_u64() >> (1 + rng.below(60))
            ),
            1 => format!("mov {}, {}", data_reg(rng), data_reg(rng)),
            2 => format!("neg {}", data_reg(rng)),
            _ => format!("not {}", data_reg(rng)),
        },
        // cmp, often immediately followed by jcc at the next slot — but
        // also emitted alone so unfused cmp stays covered.
        43..=50 => {
            if rng.bool(0.5) {
                format!("cmp {}, {}", data_reg(rng), data_reg(rng))
            } else {
                format!("cmp {}, {}", data_reg(rng), rng.below(1 << 12))
            }
        }
        51..=60 => format!(
            "{} {}",
            JCC_NAMES[rng.below(JCC_NAMES.len())],
            target_label(rng, i, n)
        ),
        61..=63 => format!("jmp {}", target_label(rng, i, n)),
        64..=67 => format!("push {}", data_reg(rng)),
        68..=71 => format!("pop {}", data_reg(rng)),
        // Loads and stores through the data base register (usually in
        // bounds; the offset occasionally runs past the buffer).
        72..=79 => {
            let w = ["b", "w", "d", "q"][rng.below(4)];
            let off = rng.below(288);
            if rng.bool(0.5) {
                format!("load.{w} {}, [r12 + {off}]", data_reg(rng))
            } else {
                format!("store.{w} [r12 + {off}], {}", data_reg(rng))
            }
        }
        // Self-modifying store into the code region (r13 = start).
        80..=81 => format!("store.b [r13 + {}], {}", rng.below(64), data_reg(rng)),
        82..=83 => format!("mark {}", rng.below(256)),
        84..=85 => format!("out {}, {}", rng.below(4), data_reg(rng)),
        86 => format!("in {}, {}", data_reg(rng), rng.below(4)),
        87..=88 => format!("call {}", target_label(rng, i, n)),
        89 => "ret".to_string(),
        90 => format!("jmp {}", data_reg(rng)),
        91 => "hlt".to_string(),
        // Mostly-illegal system instructions: fault identity coverage.
        92..=93 => match rng.below(5) {
            0 => format!("lgdt {}", rng.below(1 << 16)),
            1 => format!("mov cr0, {}", data_reg(rng)),
            2 => format!("mov {}, cr0", data_reg(rng)),
            3 => format!("wrmsr 0xC0000080, {}", data_reg(rng)),
            _ => format!("ljmp32 {}", rng.below(1 << 16)),
        },
        _ => format!("add {}, {}", data_reg(rng), rng.below(256)),
    }
}

/// A complete random program of `n` body instructions, as assembler source.
///
/// The prologue gives the stack, data, and code-base registers stable
/// values; the body is a labelled slot per instruction so branches can
/// target any slot; the epilogue halts and reserves a data buffer.
pub fn random_source(rng: &mut Rng, n: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::from(
        ".org 0x1000\n\
         start:\n  mov sp, 0xFF00\n  mov r12, data\n  mov r13, start\n",
    );
    for i in 0..n {
        let line = random_line(rng, i, n);
        let _ = writeln!(s, "L{i}:\n  {line}");
    }
    let _ = writeln!(s, "L{n}:\n  hlt\ndata:\n  .space 256");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_sources_assemble() {
        let mut rng = Rng::seeded(7);
        for _ in 0..32 {
            let src = random_source(&mut rng, 40);
            crate::asm::assemble(&src).expect("generated program must assemble");
        }
    }

    #[test]
    fn random_insts_cover_every_form_eventually() {
        let mut rng = Rng::seeded(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            seen.insert(std::mem::discriminant(&random_inst(&mut rng)));
        }
        // 27 generator arms over 28 Inst variants (MovCr/MovRCr share one).
        assert!(seen.len() >= 28, "only {} variants seen", seen.len());
    }
}
