//! The VISA CPU interpreter with x86-style processor modes.
//!
//! The CPU models the parts of the x86 bring-up that dominate virtine
//! start-up cost (§4.2, Table 1): it resets into 16-bit real mode, and guest
//! code must perform the classic dance — `lgdt`, set CR0.PE, far-jump to
//! 32-bit code, build page tables, load CR3, enable CR4.PAE and EFER.LME,
//! set CR0.PG, far-jump to 64-bit code — before 64-bit execution is legal.
//! Each transition charges its calibrated cost from [`vclock::costs`], and
//! enabling paging charges the hypervisor-side EPT-construction cost the
//! backend configured.
//!
//! Execution is synchronous: [`Cpu::run`] interprets instructions until the
//! guest performs externally visible I/O (`in`/`out`/`hlt`), faults, or
//! exhausts the caller's step budget.

use std::collections::HashMap;

use vclock::{costs, Clock, Cycles};

use crate::inst::{
    Alu, Cond, CrReg, DecodeError, Inst, JmpMode, Reg, Width, CR0_PE, CR0_PG, CR4_PAE, EFER_LME,
    MSR_EFER,
};
use crate::mem::Memory;
use crate::pred;

/// Which interpreter executes guest code in [`Cpu::run`].
///
/// The predecoded engine is the default; the reference engine is the
/// original fetch→decode→execute loop kept as the differential oracle.
/// Setting `VISA_REF_INTERP=1` in the environment flips every new CPU to
/// the reference engine (the escape hatch for bisecting fast-path bugs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Predecoded basic-block interpreter ([`crate::pred`]).
    Fast,
    /// The original single-step loop (the differential oracle).
    Reference,
}

impl Engine {
    /// The process-wide default: [`Engine::Fast`] unless `VISA_REF_INTERP=1`.
    pub fn from_env() -> Engine {
        use std::sync::OnceLock;
        static DEFAULT: OnceLock<Engine> = OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("VISA_REF_INTERP") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Engine::Reference,
            _ => Engine::Fast,
        })
    }
}

/// Processor execution mode (§4.2 "the three classic operating modes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// 16-bit real mode: 1 MiB address space, no translation.
    Real16,
    /// 32-bit protected mode: 4 GiB address space, no translation
    /// (the Figure 4 echo server runs here, "no paging").
    Prot32,
    /// 64-bit long mode: paged, 48-bit canonical addresses, 2 MiB pages.
    Long64,
}

/// Flags produced by `cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Operands compared equal.
    pub eq: bool,
    /// Left operand was less than right, signed.
    pub lt_signed: bool,
    /// Left operand was less than right, unsigned.
    pub lt_unsigned: bool,
}

/// Reasons control returns from [`Cpu::run`] without a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuExit {
    /// The guest executed `hlt`.
    Hlt,
    /// The guest wrote `value` to `port` (a hypercall in Wasp's ABI).
    IoOut {
        /// Port number.
        port: u16,
        /// Register value written.
        value: u64,
    },
    /// The guest read from `port`; resume with [`Cpu::provide_in`].
    IoIn {
        /// Port number.
        port: u16,
    },
    /// The step budget given to [`Cpu::run`] was exhausted (watchdog).
    StepLimit,
}

/// Guest faults. A fault tears down the virtual context; Wasp reports it to
/// the virtine client. Faults never affect the host (§3.1 "host execution
/// and data integrity").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Instruction bytes failed to decode.
    Decode {
        /// Faulting instruction address.
        pc: u64,
        /// Underlying decode problem.
        cause: crate::inst::DecodeError,
    },
    /// A data or fetch access fell outside guest-physical memory
    /// (the EPT-violation analogue).
    PhysOutOfBounds {
        /// Offending guest-physical address.
        paddr: u64,
    },
    /// Address beyond the current mode's reach (e.g. >1 MiB in real mode).
    AddressBeyondMode {
        /// Offending virtual address.
        vaddr: u64,
        /// Mode at the time of the access.
        mode: Mode,
    },
    /// A long-mode translation found no valid mapping.
    PageFault {
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// Divide (or remainder) by zero.
    DivideByZero {
        /// Faulting instruction address.
        pc: u64,
    },
    /// An illegal mode transition (missing GDT, PE, PAE, LME, or PG).
    ModeViolation {
        /// Human-readable description of the violated prerequisite.
        reason: &'static str,
    },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Decode { pc, cause } => write!(f, "decode fault at {pc:#x}: {cause}"),
            Fault::PhysOutOfBounds { paddr } => {
                write!(f, "physical access out of bounds at {paddr:#x}")
            }
            Fault::AddressBeyondMode { vaddr, mode } => {
                write!(f, "address {vaddr:#x} unreachable in {mode:?}")
            }
            Fault::PageFault { vaddr } => write!(f, "page fault at {vaddr:#x}"),
            Fault::DivideByZero { pc } => write!(f, "divide by zero at {pc:#x}"),
            Fault::ModeViolation { reason } => write!(f, "mode violation: {reason}"),
        }
    }
}

impl std::error::Error for Fault {}

/// Per-context configuration a hypervisor backend applies to the CPU.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Cycles charged when the guest first enables CR0.PG, modelling
    /// nested-page-table construction inside the hypervisor (Table 1 bundles
    /// "construction of an EPT inside KVM" into the identity-map row).
    pub ept_build_cycles: u64,
    /// Charge [`costs::GUEST_FIRST_INSTRUCTION`] for the first instruction
    /// after each VM entry (Table 1's "First Instruction" row).
    pub charge_first_instruction: bool,
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig {
            ept_build_cycles: costs::KVM_EPT_BUILD,
            charge_first_instruction: true,
        }
    }
}

impl CpuConfig {
    /// Configuration for native (non-virtualized) execution: no EPT charge,
    /// no VM-entry pipeline penalty.
    pub fn native() -> CpuConfig {
        CpuConfig {
            ept_build_cycles: 0,
            charge_first_instruction: false,
        }
    }
}

/// Architected CPU state captured by snapshots (§5.2 snapshotting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    /// General-purpose registers.
    pub regs: [u64; Reg::COUNT],
    /// Program counter.
    pub pc: u64,
    /// Processor mode.
    pub mode: Mode,
    /// CR0 (PE, PG).
    pub cr0: u64,
    /// CR3 (page-table base).
    pub cr3: u64,
    /// CR4 (PAE).
    pub cr4: u64,
    /// EFER (LME).
    pub efer: u64,
    /// GDT base, if loaded.
    pub gdt_base: Option<u64>,
    /// Comparison flags.
    pub flags: Flags,
}

/// The interpreter core.
#[derive(Debug)]
pub struct Cpu {
    /// General-purpose registers; `r15` is the stack pointer by convention.
    pub regs: [u64; Reg::COUNT],
    /// Program counter (virtual address).
    pub pc: u64,
    pub(crate) mode: Mode,
    cr0: u64,
    cr3: u64,
    cr4: u64,
    efer: u64,
    gdt_base: Option<u64>,
    pub(crate) flags: Flags,
    pub(crate) clock: Clock,
    config: CpuConfig,
    /// Milestones recorded by `mark` (id, timestamp).
    pub marks: Vec<(u8, Cycles)>,
    /// 2 MiB-page TLB: virtual page number → physical frame base. Keyed
    /// with the predecoder's multiply hasher — this map sits on every
    /// long-mode memory access, where SipHash would dominate the walk.
    tlb: HashMap<u64, u64, pred::FxBuild>,
    /// Destination register of an in-flight `in` instruction.
    pub(crate) pending_in: Option<Reg>,
    pub(crate) first_inst_pending: bool,
    ept_built: bool,
    pub(crate) insts_retired: u64,
    engine: Engine,
    pub(crate) pred: pred::PredCache,
}

const PAGE_2M_SHIFT: u64 = 21;
const PAGE_2M_MASK: u64 = (1 << PAGE_2M_SHIFT) - 1;
const PTE_PRESENT: u64 = 1 << 0;
const PTE_PS: u64 = 1 << 7;
const PTE_ADDR_MASK: u64 = 0x000F_FFFF_FFFF_F000;
const PDE_2M_ADDR_MASK: u64 = 0x000F_FFFF_FFE0_0000;
const REAL_MODE_LIMIT: u64 = 1 << 20;
const CANONICAL_LIMIT: u64 = 1 << 48;

impl Cpu {
    /// Creates a CPU in the reset state: real mode, zeroed registers,
    /// `pc = entry`.
    pub fn new(clock: Clock, config: CpuConfig, entry: u64) -> Cpu {
        Cpu {
            regs: [0; Reg::COUNT],
            pc: entry,
            mode: Mode::Real16,
            cr0: 0,
            cr3: 0,
            cr4: 0,
            efer: 0,
            gdt_base: None,
            flags: Flags::default(),
            clock,
            config,
            marks: Vec::new(),
            tlb: HashMap::default(),
            pending_in: None,
            first_inst_pending: false,
            ept_built: false,
            insts_retired: 0,
            engine: Engine::from_env(),
            pred: pred::PredCache::new(),
        }
    }

    /// Current processor mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Which interpreter engine [`Cpu::run`] uses.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Overrides the interpreter engine (benchmarks and the differential
    /// harness; production paths inherit the [`Engine::from_env`] default).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// Total instructions retired by this CPU.
    pub fn insts_retired(&self) -> u64 {
        self.insts_retired
    }

    /// The shared clock this CPU charges.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Called by the hypervisor backend on each VM entry; arms the
    /// first-instruction pipeline-fill charge.
    pub fn note_vmentry(&mut self) {
        if self.config.charge_first_instruction {
            self.first_inst_pending = true;
        }
    }

    /// Supplies the value for an `in` instruction that caused an
    /// [`CpuExit::IoIn`] exit.
    ///
    /// # Panics
    ///
    /// Panics if no `in` is pending.
    pub fn provide_in(&mut self, value: u64) {
        let dst = self.pending_in.take().expect("no `in` pending");
        self.set_reg(dst, value);
    }

    /// Captures the architected state (for snapshotting).
    pub fn save_state(&self) -> CpuState {
        CpuState {
            regs: self.regs,
            pc: self.pc,
            mode: self.mode,
            cr0: self.cr0,
            cr3: self.cr3,
            cr4: self.cr4,
            efer: self.efer,
            gdt_base: self.gdt_base,
            flags: self.flags,
        }
    }

    /// Restores architected state captured by [`Cpu::save_state`].
    /// The TLB is flushed, mirroring a context reload.
    pub fn restore_state(&mut self, s: &CpuState) {
        self.regs = s.regs;
        self.pc = s.pc;
        self.mode = s.mode;
        self.cr0 = s.cr0;
        self.cr3 = s.cr3;
        self.cr4 = s.cr4;
        self.efer = s.efer;
        self.gdt_base = s.gdt_base;
        self.flags = s.flags;
        self.tlb.clear();
        self.pending_in = None;
        // A restored context was already warmed past its first instruction.
        self.first_inst_pending = false;
        self.ept_built = true;
        // Restores can swap in arbitrary memory contents; drop every
        // predecoded block rather than trusting the dirty-page snoop.
        self.pred.flush();
    }

    /// Translates a virtual address for an access of `len` bytes.
    pub(crate) fn translate(&mut self, mem: &Memory, vaddr: u64, len: u64) -> Result<u64, Fault> {
        match self.mode {
            Mode::Real16 => {
                if vaddr.saturating_add(len) > REAL_MODE_LIMIT {
                    return Err(Fault::AddressBeyondMode {
                        vaddr,
                        mode: self.mode,
                    });
                }
                Ok(vaddr)
            }
            Mode::Prot32 => {
                if vaddr.saturating_add(len) > u32::MAX as u64 + 1 {
                    return Err(Fault::AddressBeyondMode {
                        vaddr,
                        mode: self.mode,
                    });
                }
                Ok(vaddr)
            }
            Mode::Long64 => {
                if vaddr >= CANONICAL_LIMIT {
                    return Err(Fault::AddressBeyondMode {
                        vaddr,
                        mode: self.mode,
                    });
                }
                // A 2 MiB page never straddles for accesses ≤ 8 bytes unless
                // the access itself crosses the page boundary; handle the
                // crossing case by translating both pages.
                let first = self.translate_page(mem, vaddr)?;
                let last_byte = vaddr + len.saturating_sub(1);
                if last_byte >> PAGE_2M_SHIFT != vaddr >> PAGE_2M_SHIFT {
                    // Ensure the second page is mapped too; identity mapping
                    // makes the result contiguous.
                    self.translate_page(mem, last_byte)?;
                }
                Ok(first)
            }
        }
    }

    /// In long mode: whether `vaddr`'s 2 MiB page is both already in the
    /// TLB (so instruction fetches from it are walk-free and tick-free) and
    /// identity-mapped (so virtual code addresses are physical addresses,
    /// which the predecoder's byte-revalidation machinery requires).
    /// Returns the page's end (exclusive) virtual address when cacheable.
    pub(crate) fn long_identity_page_end(&self, vaddr: u64) -> Option<u64> {
        let vpn = vaddr >> PAGE_2M_SHIFT;
        let &frame = self.tlb.get(&vpn)?;
        (frame == vpn << PAGE_2M_SHIFT).then_some((vpn + 1) << PAGE_2M_SHIFT)
    }

    /// Walks the guest page tables for one address (long mode only).
    fn translate_page(&mut self, mem: &Memory, vaddr: u64) -> Result<u64, Fault> {
        let vpn = vaddr >> PAGE_2M_SHIFT;
        if let Some(&frame) = self.tlb.get(&vpn) {
            return Ok(frame | (vaddr & PAGE_2M_MASK));
        }
        // TLB miss: hardware walk reads three levels from guest memory.
        self.clock
            .tick(costs::GUEST_TLB_MISS_WALK + 3 * costs::GUEST_MEM);
        let pml4_idx = (vaddr >> 39) & 0x1FF;
        let pdpt_idx = (vaddr >> 30) & 0x1FF;
        let pd_idx = (vaddr >> 21) & 0x1FF;

        let read_entry = |addr: u64| -> Result<u64, Fault> {
            mem.read_u64(addr)
                .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })
        };

        let pml4e = read_entry((self.cr3 & PTE_ADDR_MASK) + pml4_idx * 8)?;
        if pml4e & PTE_PRESENT == 0 {
            return Err(Fault::PageFault { vaddr });
        }
        let pdpte = read_entry((pml4e & PTE_ADDR_MASK) + pdpt_idx * 8)?;
        if pdpte & PTE_PRESENT == 0 {
            return Err(Fault::PageFault { vaddr });
        }
        let pde = read_entry((pdpte & PTE_ADDR_MASK) + pd_idx * 8)?;
        if pde & PTE_PRESENT == 0 || pde & PTE_PS == 0 {
            // Only 2 MiB leaf pages are modelled (the identity map of §4.2
            // uses "2MB large pages").
            return Err(Fault::PageFault { vaddr });
        }
        let frame = pde & PDE_2M_ADDR_MASK;
        self.tlb.insert(vpn, frame);
        Ok(frame | (vaddr & PAGE_2M_MASK))
    }

    pub(crate) fn load(&mut self, mem: &Memory, vaddr: u64, w: Width) -> Result<u64, Fault> {
        self.clock.tick(costs::GUEST_MEM);
        let paddr = self.translate(mem, vaddr, w.bytes())?;
        mem.read(paddr, w)
            .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })
    }

    pub(crate) fn store(
        &mut self,
        mem: &mut Memory,
        vaddr: u64,
        w: Width,
        v: u64,
    ) -> Result<(), Fault> {
        self.clock.tick(costs::GUEST_MEM);
        let paddr = self.translate(mem, vaddr, w.bytes())?;
        mem.write(paddr, w, v)
            .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })
    }

    pub(crate) fn push(&mut self, mem: &mut Memory, v: u64) -> Result<(), Fault> {
        let sp = self.reg(Reg::SP).wrapping_sub(8);
        self.set_reg(Reg::SP, sp);
        self.store(mem, sp, Width::Q, v)
    }

    pub(crate) fn pop(&mut self, mem: &Memory) -> Result<u64, Fault> {
        let sp = self.reg(Reg::SP);
        let v = self.load(mem, sp, Width::Q)?;
        self.set_reg(Reg::SP, sp.wrapping_add(8));
        Ok(v)
    }

    pub(crate) fn cond_holds(&self, c: Cond) -> bool {
        let f = self.flags;
        match c {
            Cond::Eq => f.eq,
            Cond::Ne => !f.eq,
            Cond::Lt => f.lt_signed,
            Cond::Le => f.lt_signed || f.eq,
            Cond::Gt => !(f.lt_signed || f.eq),
            Cond::Ge => !f.lt_signed,
            Cond::B => f.lt_unsigned,
            Cond::Be => f.lt_unsigned || f.eq,
            Cond::A => !(f.lt_unsigned || f.eq),
            Cond::Ae => !f.lt_unsigned,
        }
    }

    pub(crate) fn set_cmp_flags(&mut self, a: u64, b: u64) {
        self.flags = Flags {
            eq: a == b,
            lt_signed: (a as i64) < (b as i64),
            lt_unsigned: a < b,
        };
    }

    pub(crate) fn alu(&mut self, op: Alu, a: u64, b: u64, pc: u64) -> Result<u64, Fault> {
        let v = match op {
            Alu::Add => a.wrapping_add(b),
            Alu::Sub => a.wrapping_sub(b),
            Alu::Mul => {
                self.clock.tick(costs::GUEST_MUL - costs::GUEST_ALU);
                a.wrapping_mul(b)
            }
            Alu::Div | Alu::Mod => {
                self.clock.tick(costs::GUEST_DIV - costs::GUEST_ALU);
                if b == 0 {
                    return Err(Fault::DivideByZero { pc });
                }
                let (a, b) = (a as i64, b as i64);
                let v = if op == Alu::Div {
                    a.wrapping_div(b)
                } else {
                    a.wrapping_rem(b)
                };
                v as u64
            }
            Alu::And => a & b,
            Alu::Or => a | b,
            Alu::Xor => a ^ b,
            Alu::Shl => a.wrapping_shl(b as u32 & 63),
            Alu::Shr => a.wrapping_shr(b as u32 & 63),
            Alu::Sar => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        };
        Ok(v)
    }

    /// Writes CR0/CR3/CR4, charging transition costs and enforcing
    /// prerequisites for the bits that matter.
    pub(crate) fn write_cr(&mut self, cr: CrReg, value: u64) -> Result<(), Fault> {
        match cr {
            CrReg::Cr0 => {
                let was_pe = self.cr0 & CR0_PE != 0;
                let was_pg = self.cr0 & CR0_PG != 0;
                let now_pe = value & CR0_PE != 0;
                let now_pg = value & CR0_PG != 0;
                if now_pg && !now_pe {
                    return Err(Fault::ModeViolation {
                        reason: "CR0.PG requires CR0.PE",
                    });
                }
                if now_pg && (self.cr4 & CR4_PAE == 0 || self.efer & EFER_LME == 0) {
                    return Err(Fault::ModeViolation {
                        reason: "CR0.PG requires CR4.PAE and EFER.LME",
                    });
                }
                if !was_pe && now_pe {
                    // The surprisingly expensive single-bit flip of Table 1.
                    self.clock.tick(costs::MODE_CR0_PE);
                }
                if !was_pg && now_pg {
                    self.clock.tick(costs::MODE_CR0_PG);
                    self.tlb.clear();
                    if !self.ept_built {
                        // Hypervisor builds the nested page table lazily the
                        // first time the guest turns on translation.
                        self.clock.tick(self.config.ept_build_cycles);
                        self.ept_built = true;
                    }
                }
                self.cr0 = value;
            }
            CrReg::Cr3 => {
                self.clock.tick(costs::MODE_CR3_WRITE);
                self.cr3 = value;
                self.tlb.clear();
            }
            CrReg::Cr4 => {
                self.clock.tick(costs::MODE_CR4_WRITE);
                self.cr4 = value;
            }
        }
        Ok(())
    }

    pub(crate) fn read_cr(&self, cr: CrReg) -> u64 {
        match cr {
            CrReg::Cr0 => self.cr0,
            CrReg::Cr3 => self.cr3,
            CrReg::Cr4 => self.cr4,
        }
    }

    /// Performs a far jump, enforcing the x86 mode-transition prerequisites.
    pub(crate) fn far_jump(&mut self, mode: JmpMode, target: u64) -> Result<(), Fault> {
        match mode {
            JmpMode::Real16 => {
                return Err(Fault::ModeViolation {
                    reason: "returning to real mode is not supported",
                });
            }
            JmpMode::Prot32 => {
                if self.gdt_base.is_none() {
                    return Err(Fault::ModeViolation {
                        reason: "ljmp32 requires a loaded GDT",
                    });
                }
                if self.cr0 & CR0_PE == 0 {
                    return Err(Fault::ModeViolation {
                        reason: "ljmp32 requires CR0.PE",
                    });
                }
                self.clock.tick(costs::MODE_LJMP32);
                self.mode = Mode::Prot32;
            }
            JmpMode::Long64 => {
                if self.gdt_base.is_none() {
                    return Err(Fault::ModeViolation {
                        reason: "ljmp64 requires a loaded GDT",
                    });
                }
                if self.cr0 & CR0_PE == 0
                    || self.cr0 & CR0_PG == 0
                    || self.cr4 & CR4_PAE == 0
                    || self.efer & EFER_LME == 0
                {
                    return Err(Fault::ModeViolation {
                        reason: "ljmp64 requires PE, PG, PAE and LME",
                    });
                }
                self.clock.tick(costs::MODE_LJMP64);
                self.mode = Mode::Long64;
            }
        }
        self.pc = target;
        Ok(())
    }

    /// Fetches and decodes the instruction at `pc` without reading bytes
    /// the guest cannot legally see.
    ///
    /// The fetch window is clipped to the current mode's reach — the
    /// address-space limit in real/protected mode, the current 2 MiB page
    /// in long mode. An instruction that would run past a long-mode page
    /// boundary is only decoded after the *next* page translates (charging
    /// the TLB walk the reference hardware would pay), by reassembling the
    /// straddling bytes from both physical pages; the pages need not be
    /// physically contiguous.
    pub(crate) fn fetch_decode(&mut self, mem: &Memory, pc: u64) -> Result<(Inst, u64), Fault> {
        const MAX_INST_LEN: usize = 10;
        let fetch_paddr = self.translate(mem, pc, 1)?;
        let window = mem
            .tail(fetch_paddr)
            .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })?;
        // Bytes the guest may fetch from `pc` before hitting a virtual
        // boundary (mode limit or long-mode page end).
        let visible = match self.mode {
            Mode::Real16 => REAL_MODE_LIMIT - pc,
            Mode::Prot32 => (u32::MAX as u64 + 1) - pc,
            Mode::Long64 => (PAGE_2M_MASK + 1) - (pc & PAGE_2M_MASK),
        };
        let win = &window[..window.len().min(visible as usize)];
        match Inst::decode(win) {
            Ok(ok) => Ok(ok),
            Err(DecodeError::Truncated) if win.len() as u64 == visible => {
                // Clipped by a *virtual* boundary, not by physical memory.
                match self.mode {
                    Mode::Real16 | Mode::Prot32 => Err(Fault::AddressBeyondMode {
                        vaddr: pc,
                        mode: self.mode,
                    }),
                    Mode::Long64 => {
                        // The instruction straddles a 2 MiB page. Translate
                        // the next page before touching its bytes, then
                        // reassemble the split encoding.
                        let next_vpage = (pc | PAGE_2M_MASK) + 1;
                        let next_paddr = self.translate_page(mem, next_vpage)?;
                        let rest = mem
                            .tail(next_paddr)
                            .map_err(|e| Fault::PhysOutOfBounds { paddr: e.paddr })?;
                        let mut buf = [0u8; MAX_INST_LEN];
                        let head = win.len().min(MAX_INST_LEN);
                        buf[..head].copy_from_slice(&win[..head]);
                        let tail_len = rest.len().min(MAX_INST_LEN - head);
                        buf[head..head + tail_len].copy_from_slice(&rest[..tail_len]);
                        Inst::decode(&buf[..head + tail_len])
                            .map_err(|cause| Fault::Decode { pc, cause })
                    }
                }
            }
            Err(cause) => Err(Fault::Decode { pc, cause }),
        }
    }

    /// Executes a single instruction.
    ///
    /// Returns `Ok(None)` to continue, `Ok(Some(exit))` when the guest
    /// performed externally visible I/O, or a [`Fault`].
    pub fn step(&mut self, mem: &mut Memory) -> Result<Option<CpuExit>, Fault> {
        if self.first_inst_pending {
            self.first_inst_pending = false;
            self.clock.tick(costs::GUEST_FIRST_INSTRUCTION);
        }
        let pc = self.pc;
        let (inst, len) = self.fetch_decode(mem, pc)?;
        self.pc = pc.wrapping_add(len);
        self.insts_retired += 1;

        match inst {
            Inst::Nop => self.clock.tick(costs::GUEST_ALU),
            Inst::Hlt => {
                self.clock.tick(costs::GUEST_HLT);
                return Ok(Some(CpuExit::Hlt));
            }
            Inst::MovRR(d, s) => {
                self.clock.tick(costs::GUEST_ALU);
                self.set_reg(d, self.reg(s));
            }
            Inst::MovRI(d, imm) => {
                self.clock.tick(costs::GUEST_ALU);
                self.set_reg(d, imm);
            }
            Inst::AluRR(op, d, s) => {
                self.clock.tick(costs::GUEST_ALU);
                let v = self.alu(op, self.reg(d), self.reg(s), pc)?;
                self.set_reg(d, v);
            }
            Inst::AluRI(op, d, imm) => {
                self.clock.tick(costs::GUEST_ALU);
                let v = self.alu(op, self.reg(d), imm, pc)?;
                self.set_reg(d, v);
            }
            Inst::Neg(r) => {
                self.clock.tick(costs::GUEST_ALU);
                self.set_reg(r, (self.reg(r) as i64).wrapping_neg() as u64);
            }
            Inst::Not(r) => {
                self.clock.tick(costs::GUEST_ALU);
                self.set_reg(r, !self.reg(r));
            }
            Inst::CmpRR(a, b) => {
                self.clock.tick(costs::GUEST_ALU);
                self.set_cmp_flags(self.reg(a), self.reg(b));
            }
            Inst::CmpRI(a, imm) => {
                self.clock.tick(costs::GUEST_ALU);
                self.set_cmp_flags(self.reg(a), imm);
            }
            Inst::Jmp(rel) => {
                self.clock
                    .tick(costs::GUEST_BRANCH + costs::GUEST_BRANCH_TAKEN);
                self.pc = self.pc.wrapping_add(rel as i64 as u64);
            }
            Inst::Jcc(c, rel) => {
                self.clock.tick(costs::GUEST_BRANCH);
                if self.cond_holds(c) {
                    self.clock.tick(costs::GUEST_BRANCH_TAKEN);
                    self.pc = self.pc.wrapping_add(rel as i64 as u64);
                }
            }
            Inst::Call(rel) => {
                self.clock.tick(costs::GUEST_CALLRET);
                let ret = self.pc;
                self.push(mem, ret)?;
                self.pc = self.pc.wrapping_add(rel as i64 as u64);
            }
            Inst::CallR(r) => {
                self.clock.tick(costs::GUEST_CALLRET);
                let target = self.reg(r);
                let ret = self.pc;
                self.push(mem, ret)?;
                self.pc = target;
            }
            Inst::JmpR(r) => {
                self.clock
                    .tick(costs::GUEST_BRANCH + costs::GUEST_BRANCH_TAKEN);
                self.pc = self.reg(r);
            }
            Inst::Ret => {
                self.clock.tick(costs::GUEST_CALLRET);
                self.pc = self.pop(mem)?;
            }
            Inst::Push(r) => {
                self.clock.tick(costs::GUEST_STACK);
                self.push(mem, self.reg(r))?;
            }
            Inst::Pop(r) => {
                self.clock.tick(costs::GUEST_STACK);
                let v = self.pop(mem)?;
                self.set_reg(r, v);
            }
            Inst::Load(w, d, base, off) => {
                let addr = self.reg(base).wrapping_add(off as i64 as u64);
                let v = self.load(mem, addr, w)?;
                self.set_reg(d, v);
            }
            Inst::Store(w, base, off, s) => {
                let addr = self.reg(base).wrapping_add(off as i64 as u64);
                self.store(mem, addr, w, self.reg(s))?;
            }
            Inst::In(d, port) => {
                self.clock.tick(costs::GUEST_PIO);
                self.pending_in = Some(d);
                return Ok(Some(CpuExit::IoIn { port }));
            }
            Inst::Out(port, s) => {
                self.clock.tick(costs::GUEST_PIO);
                return Ok(Some(CpuExit::IoOut {
                    port,
                    value: self.reg(s),
                }));
            }
            Inst::Lgdt(addr) => {
                let cost = match self.mode {
                    Mode::Real16 => costs::MODE_LGDT_REAL,
                    _ => costs::MODE_LGDT_PROT,
                };
                self.clock.tick(cost);
                self.gdt_base = Some(addr);
            }
            Inst::MovCr(cr, s) => {
                self.write_cr(cr, self.reg(s))?;
            }
            Inst::MovRCr(d, cr) => {
                self.clock.tick(costs::GUEST_ALU);
                self.set_reg(d, self.read_cr(cr));
            }
            Inst::Wrmsr(msr, s) => {
                if msr == MSR_EFER {
                    self.clock.tick(costs::MODE_WRMSR_EFER);
                    self.efer = self.reg(s);
                } else {
                    return Err(Fault::ModeViolation {
                        reason: "only the EFER MSR is modelled",
                    });
                }
            }
            Inst::Ljmp(mode, target) => {
                self.far_jump(mode, target)?;
            }
            Inst::Mark(id) => {
                // Free: stands in for an in-guest rdtsc read.
                self.marks.push((id, self.clock.now()));
            }
        }
        Ok(None)
    }

    /// Runs until an exit, a fault, or `max_steps` instructions, using the
    /// configured [`Engine`].
    pub fn run(&mut self, mem: &mut Memory, max_steps: u64) -> Result<CpuExit, Fault> {
        let before = self.insts_retired;
        let result = match self.engine {
            Engine::Fast => pred::run_fast(self, mem, max_steps),
            Engine::Reference => self.run_ref(mem, max_steps),
        };
        pred::note_retired(self.engine, self.insts_retired - before);
        result
    }

    /// The reference interpreter loop: one full fetch→decode→execute per
    /// instruction. Kept verbatim as the differential oracle for the
    /// predecoded engine.
    pub fn run_ref(&mut self, mem: &mut Memory, max_steps: u64) -> Result<CpuExit, Fault> {
        for _ in 0..max_steps {
            if let Some(exit) = self.step(mem)? {
                return Ok(exit);
            }
        }
        Ok(CpuExit::StepLimit)
    }
}

/// A CPU paired with its private memory: one virtual context.
#[derive(Debug)]
pub struct Machine {
    /// The interpreter core.
    pub cpu: Cpu,
    /// Guest-physical memory.
    pub mem: Memory,
}

impl Machine {
    /// Builds a machine with `mem_size` bytes of memory and the reset vector
    /// at `entry`.
    pub fn new(clock: Clock, config: CpuConfig, mem_size: usize, entry: u64) -> Machine {
        Machine {
            cpu: Cpu::new(clock, config, entry),
            mem: Memory::new(mem_size),
        }
    }

    /// Loads an assembled image at its linked base address.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in guest memory.
    pub fn load_image(&mut self, image: &crate::asm::Image) {
        self.mem
            .write_bytes(image.base, &image.bytes)
            .expect("image must fit in guest memory");
        self.cpu.pc = image.entry;
    }

    /// Runs until exit or fault with a step budget.
    pub fn run(&mut self, max_steps: u64) -> Result<CpuExit, Fault> {
        self.cpu.run(&mut self.mem, max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn machine_for(src: &str, mem_size: usize) -> Machine {
        let img = assemble(src).expect("assemble");
        let mut m = Machine::new(Clock::new(), CpuConfig::default(), mem_size, img.entry);
        m.load_image(&img);
        m
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut m = machine_for(".org 0x100\n mov r0, 40\n add r0, 2\n hlt\n", 4096);
        assert_eq!(m.run(100).unwrap(), CpuExit::Hlt);
        assert_eq!(m.cpu.reg(Reg(0)), 42);
    }

    #[test]
    fn signed_arithmetic_wraps_and_divides() {
        let mut m = machine_for(
            ".org 0\n mov r0, 7\n mov r1, 0\n sub r1, 2\n mov r2, r0\n div r2, 2\n mov r3, r0\n mod r3, 2\n hlt\n",
            4096,
        );
        m.run(100).unwrap();
        assert_eq!(m.cpu.reg(Reg(1)) as i64, -2);
        assert_eq!(m.cpu.reg(Reg(2)), 3);
        assert_eq!(m.cpu.reg(Reg(3)), 1);
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut m = machine_for(".org 0\n mov r0, 1\n mov r1, 0\n div r0, r1\n hlt\n", 4096);
        let f = m.run(100).unwrap_err();
        assert!(matches!(f, Fault::DivideByZero { .. }));
    }

    #[test]
    fn branches_follow_flags() {
        let src = "
.org 0
  mov r0, 5
  cmp r0, 10
  jl less
  mov r1, 111
  hlt
less:
  mov r1, 222
  hlt
";
        let mut m = machine_for(src, 4096);
        m.run(100).unwrap();
        assert_eq!(m.cpu.reg(Reg(1)), 222);
    }

    #[test]
    fn unsigned_conditions_differ_from_signed() {
        // -1 (as u64::MAX) is above 1 unsigned, below signed.
        let src = "
.org 0
  mov r0, 0
  sub r0, 1
  cmp r0, 1
  ja above
  hlt
above:
  cmp r0, 1
  jl signed_less
  hlt
signed_less:
  mov r2, 1
  hlt
";
        let mut m = machine_for(src, 4096);
        m.run(100).unwrap();
        assert_eq!(m.cpu.reg(Reg(2)), 1);
    }

    #[test]
    fn call_ret_and_stack() {
        let src = "
.org 0
  mov sp, 4096
  mov r1, 20
  call double
  hlt
double:
  push r1
  add r1, r1
  mov r0, r1
  pop r1
  ret
";
        let mut m = machine_for(src, 8192);
        m.run(100).unwrap();
        assert_eq!(m.cpu.reg(Reg(0)), 40);
        assert_eq!(m.cpu.reg(Reg(1)), 20); // Callee-saved via stack.
        assert_eq!(m.cpu.reg(Reg::SP), 4096);
    }

    #[test]
    fn loads_and_stores_with_offsets() {
        let src = "
.org 0
  mov r1, 0x200
  mov r2, 0xABCD
  store.w [r1 + 4], r2
  load.b r3, [r1 + 4]
  load.b r4, [r1 + 5]
  hlt
";
        let mut m = machine_for(src, 4096);
        m.run(100).unwrap();
        assert_eq!(m.cpu.reg(Reg(3)), 0xCD);
        assert_eq!(m.cpu.reg(Reg(4)), 0xAB);
    }

    #[test]
    fn real_mode_cannot_reach_above_1mb() {
        let src = ".org 0\n mov r1, 0x100001\n load.b r0, [r1]\n hlt\n";
        let mut m = machine_for(src, 4096);
        let f = m.run(100).unwrap_err();
        assert!(matches!(
            f,
            Fault::AddressBeyondMode {
                mode: Mode::Real16,
                ..
            }
        ));
    }

    #[test]
    fn out_and_in_round_trip() {
        let src = ".org 0\n mov r1, 99\n out 0x10, r1\n in r2, 0x20\n hlt\n";
        let mut m = machine_for(src, 4096);
        assert_eq!(
            m.run(100).unwrap(),
            CpuExit::IoOut {
                port: 0x10,
                value: 99
            }
        );
        assert_eq!(m.run(100).unwrap(), CpuExit::IoIn { port: 0x20 });
        m.cpu.provide_in(1234);
        assert_eq!(m.run(100).unwrap(), CpuExit::Hlt);
        assert_eq!(m.cpu.reg(Reg(2)), 1234);
    }

    #[test]
    fn step_limit_is_reported() {
        let src = ".org 0\nspin: jmp spin\n";
        let mut m = machine_for(src, 4096);
        assert_eq!(m.run(50).unwrap(), CpuExit::StepLimit);
    }

    #[test]
    fn protected_mode_requires_gdt_and_pe() {
        // Without lgdt/PE the far jump faults.
        let mut m = machine_for(".org 0\n ljmp32 0\n", 4096);
        assert!(matches!(
            m.run(10).unwrap_err(),
            Fault::ModeViolation { .. }
        ));

        // With them it succeeds.
        let src = "
.org 0
  lgdt gdt
  mov r0, 1
  mov cr0, r0
  ljmp32 prot
prot:
  mov r5, 1
  hlt
gdt: .dq 0
";
        let mut m = machine_for(src, 4096);
        m.run(100).unwrap();
        assert_eq!(m.cpu.mode(), Mode::Prot32);
        assert_eq!(m.cpu.reg(Reg(5)), 1);
    }

    #[test]
    fn long_mode_requires_full_prerequisites() {
        // Protected mode reached, but no paging: ljmp64 must fault.
        let src = "
.org 0
  lgdt gdt
  mov r0, 1
  mov cr0, r0
  ljmp32 prot
prot:
  ljmp64 prot
gdt: .dq 0
";
        let mut m = machine_for(src, 4096);
        assert!(matches!(
            m.run(100).unwrap_err(),
            Fault::ModeViolation { .. }
        ));
    }

    #[test]
    fn pg_without_pae_faults() {
        let src = "
.org 0
  lgdt gdt
  mov r0, 1
  mov cr0, r0
  mov r0, 0x80000001
  mov cr0, r0
gdt: .dq 0
";
        let mut m = machine_for(src, 4096);
        assert!(matches!(
            m.run(100).unwrap_err(),
            Fault::ModeViolation { .. }
        ));
    }

    /// Builds page tables identity-mapping the first 1 GiB with 2 MiB pages,
    /// then enters long mode — the boot sequence of Table 1.
    fn long_mode_boot(extra: &str) -> String {
        format!(
            "
.org 0x8000
.equ EFER, 0xC0000080
  lgdt gdt
  mov r0, 1
  mov cr0, r0          ; PE
  ljmp32 prot
prot:
  ; Build PML4 @0x1000 -> PDPT @0x2000 -> PD @0x3000 (512 x 2MB).
  mov r1, 0x1000
  mov r2, 0x2003       ; PDPT | present | rw
  store.q [r1], r2
  mov r1, 0x2000
  mov r2, 0x3003
  store.q [r1], r2
  mov r3, 0           ; index
  mov r4, 0x83        ; 2MB page | present | rw (PS)
  mov r5, 0x3000
loop:
  store.q [r5], r4
  add r5, 8
  mov r6, 0x200000
  add r4, r6
  add r3, 1
  cmp r3, 512
  jl loop
  mov r7, 0x1000
  mov cr3, r7
  mov r7, 0x20         ; PAE
  mov cr4, r7
  mov r7, 0x100        ; LME
  wrmsr EFER, r7
  mov r7, 0x80000001   ; PG | PE
  mov cr0, r7
  ljmp64 longm
longm:
{extra}
  hlt
gdt: .dq 0
"
        )
    }

    #[test]
    fn full_boot_reaches_long_mode_and_translates() {
        let src = long_mode_boot(
            "  mov r1, 0x200000\n  mov r2, 77\n  store.q [r1], r2\n  load.q r9, [r1]\n",
        );
        let mut m = machine_for(&src, 4 * 1024 * 1024);
        assert_eq!(m.run(10_000).unwrap(), CpuExit::Hlt);
        assert_eq!(m.cpu.mode(), Mode::Long64);
        assert_eq!(m.cpu.reg(Reg(9)), 77);
        // The identity map really was identity: physical 0x200000 holds 77.
        assert_eq!(m.mem.read_u64(0x200000).unwrap(), 77);
    }

    #[test]
    fn boot_cost_matches_table_1_scale() {
        let src = long_mode_boot("");
        let img = assemble(&src).unwrap();
        let clock = Clock::new();
        let mut m = Machine::new(
            clock.clone(),
            CpuConfig::default(),
            4 * 1024 * 1024,
            img.entry,
        );
        m.load_image(&img);
        m.run(10_000).unwrap();
        let total = clock.now().get();
        // Table 1 sums to ≈36.5K cycles for the full bring-up; accept a
        // generous band around the paper's ≈30-40K.
        assert!(
            (25_000..55_000).contains(&total),
            "full boot cost {total} cycles outside the Table 1 band"
        );
    }

    #[test]
    fn unmapped_page_faults_in_long_mode() {
        // Map 1 GiB, then touch 2 GiB.
        let src = long_mode_boot("  mov r1, 0x80000000\n  load.q r2, [r1]\n");
        let mut m = machine_for(&src, 4 * 1024 * 1024);
        let f = m.run(10_000).unwrap_err();
        assert!(matches!(f, Fault::PageFault { vaddr } if vaddr == 0x8000_0000));
    }

    #[test]
    fn mapped_but_physically_absent_is_ept_violation() {
        // 16 MiB of guest memory; 1 GiB mapped; touching 512 MiB faults as a
        // physical (EPT) violation, not a page fault.
        let src = long_mode_boot("  mov r1, 0x20000000\n  load.q r2, [r1]\n");
        let mut m = machine_for(&src, 16 * 1024 * 1024);
        let f = m.run(10_000).unwrap_err();
        assert!(matches!(f, Fault::PhysOutOfBounds { .. }), "{f:?}");
    }

    #[test]
    fn marks_record_timestamps_in_order() {
        let src = ".org 0\n mark 1\n mov r0, 1\n mark 2\n hlt\n";
        let mut m = machine_for(src, 4096);
        m.run(100).unwrap();
        assert_eq!(m.cpu.marks.len(), 2);
        assert_eq!(m.cpu.marks[0].0, 1);
        assert_eq!(m.cpu.marks[1].0, 2);
        assert!(m.cpu.marks[0].1 <= m.cpu.marks[1].1);
    }

    #[test]
    fn save_restore_round_trips_state() {
        let src = ".org 0\n mov r0, 9\n mov r1, 8\n cmp r0, r1\n hlt\n mov r0, 0\n hlt\n";
        let mut m = machine_for(src, 4096);
        m.run(100).unwrap();
        let state = m.cpu.save_state();
        // Run further, then restore.
        m.run(100).unwrap();
        assert_eq!(m.cpu.reg(Reg(0)), 0);
        m.cpu.restore_state(&state);
        assert_eq!(m.cpu.reg(Reg(0)), 9);
        assert_eq!(m.cpu.save_state(), state);
    }

    #[test]
    fn fetch_straddling_contiguous_2m_pages_decodes() {
        // A 10-byte mov whose encoding crosses the 2 MiB page boundary at
        // 0x400000; the identity map makes the two pages physically
        // contiguous, but the fetch still goes through the two-page path.
        let src = long_mode_boot("  mov r1, 0x3FFFFC\n  jmp r1\n");
        let img = assemble(&src).unwrap();
        let mut m = Machine::new(
            Clock::new(),
            CpuConfig::default(),
            8 * 1024 * 1024,
            img.entry,
        );
        m.load_image(&img);
        let mut bytes = Vec::new();
        Inst::MovRI(Reg(9), 0xFEED_F00D).encode(&mut bytes);
        Inst::Hlt.encode(&mut bytes);
        m.mem.write_bytes(0x3F_FFFC, &bytes).unwrap();
        assert_eq!(m.run(10_000).unwrap(), CpuExit::Hlt);
        assert_eq!(m.cpu.reg(Reg(9)), 0xFEED_F00D);
    }

    #[test]
    fn fetch_straddling_noncontiguous_2m_pages_decodes() {
        // Remap the virtual page at 0x400000 to physical 0x800000: the
        // instruction's head and tail live in unrelated frames, so a fetch
        // that read physically-contiguous bytes would decode garbage.
        let extra = "
  mov r1, 0x3010       ; PD entry 2 (virtual 0x400000)
  mov r2, 0x800083     ; frame 0x800000 | PS | present | rw
  store.q [r1], r2
  mov r1, 0x3FFFFC
  jmp r1
";
        let src = long_mode_boot(extra);
        let img = assemble(&src).unwrap();
        let mut m = Machine::new(
            Clock::new(),
            CpuConfig::default(),
            16 * 1024 * 1024,
            img.entry,
        );
        m.load_image(&img);
        let mut head = Vec::new();
        Inst::MovRI(Reg(9), 0xABCD_1234).encode(&mut head);
        let tail = head.split_off(4);
        m.mem.write_bytes(0x3F_FFFC, &head).unwrap();
        m.mem.write_bytes(0x80_0000, &tail).unwrap();
        let mut hlt = Vec::new();
        Inst::Hlt.encode(&mut hlt);
        m.mem.write_bytes(0x80_0006, &hlt).unwrap();
        assert_eq!(m.run(10_000).unwrap(), CpuExit::Hlt);
        assert_eq!(m.cpu.reg(Reg(9)), 0xABCD_1234);
    }

    #[test]
    fn real_mode_fetch_clips_at_the_1mib_limit() {
        // Physical memory extends past 1 MiB, but real mode must not fetch
        // bytes beyond its reach: the truncated decode is an address fault,
        // not a read of invisible bytes. Identical on both engines.
        for engine in [Engine::Fast, Engine::Reference] {
            let mut m = Machine::new(
                Clock::new(),
                CpuConfig::default(),
                2 * 1024 * 1024,
                0xF_FFFC,
            );
            let mut bytes = Vec::new();
            Inst::MovRI(Reg(9), 42).encode(&mut bytes);
            m.mem.write_bytes(0xF_FFFC, &bytes).unwrap();
            m.cpu.set_engine(engine);
            let f = m.run(10).unwrap_err();
            assert_eq!(
                f,
                Fault::AddressBeyondMode {
                    vaddr: 0xF_FFFC,
                    mode: Mode::Real16,
                },
                "{engine:?}"
            );
        }
    }

    #[test]
    fn fetch_truncated_by_physical_memory_is_a_decode_fault() {
        // The instruction runs off the end of guest-physical memory (well
        // below the mode limit): that is a decode fault, not a mode fault.
        let mut m = Machine::new(Clock::new(), CpuConfig::default(), 4096, 4090);
        let mut bytes = Vec::new();
        Inst::MovRI(Reg(9), 42).encode(&mut bytes);
        m.mem.write_bytes(4090, &bytes[..6]).unwrap();
        let f = m.run(10).unwrap_err();
        assert_eq!(
            f,
            Fault::Decode {
                pc: 4090,
                cause: DecodeError::Truncated,
            }
        );
    }

    #[test]
    fn fib_20_runs_and_costs_hundreds_of_microseconds() {
        // The recursive fib of Figure 3/9.
        let src = "
.org 0x8000
  mov sp, 0x8000
  mov r1, 20
  call fib
  hlt
fib:
  cmp r1, 2
  jl .base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
.base:
  mov r0, r1
  ret
";
        let img = assemble(src).unwrap();
        let clock = Clock::new();
        let mut m = Machine::new(clock.clone(), CpuConfig::native(), 64 * 1024, img.entry);
        m.load_image(&img);
        assert_eq!(m.run(3_000_000).unwrap(), CpuExit::Hlt);
        assert_eq!(m.cpu.reg(Reg(0)), 6765);
        let us = clock.now().as_micros();
        assert!(
            (50.0..2_000.0).contains(&us),
            "fib(20) took {us} µs — out of the expected real-hardware band"
        );
    }
}
