//! Differential fuzzer: random guest programs through both interpreter
//! engines, demanding byte- and cycle-identical behaviour.
//!
//! Usage: `diff_fuzz [--iters N] [--seed S] [--insts I]`
//!
//! Each iteration generates one random program from the seeded corpus,
//! assembles it, and runs it on the fast and reference engines with
//! identical seeded I/O. Exits non-zero on the first divergence, printing
//! the generating seed, the divergence report, and the source — everything
//! needed to reproduce with `--iters 1 --seed <reported>`.

use vclock::rng::Rng;
use visa::{assemble, corpus, diff};

const MEM: usize = 1 << 20;

fn arg(name: &str, default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == name {
            let v = args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            });
            return v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {name}: {v}");
                std::process::exit(2);
            });
        }
    }
    default
}

fn main() {
    let iters = arg("--iters", 500);
    let seed = arg("--seed", 0xF0CC_ACC1A);
    let insts = arg("--insts", 80) as usize;

    let mut divergences = 0u64;
    for i in 0..iters {
        // Derive one seed per case so any case reproduces standalone.
        let case_seed = seed.wrapping_add(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::seeded(case_seed);
        let src = corpus::random_source(&mut rng, insts);
        let img = match assemble(&src) {
            Ok(img) => img,
            Err(e) => {
                eprintln!("case {i} (seed {case_seed:#x}): generated source failed to assemble: {e}\n{src}");
                std::process::exit(2);
            }
        };
        if let Err(report) = diff::compare(&img, MEM, 50_000, case_seed) {
            eprintln!("case {i} (seed {case_seed:#x}) DIVERGED:\n{report}\nsource:\n{src}");
            divergences += 1;
        }
    }
    if divergences > 0 {
        eprintln!("{divergences}/{iters} cases diverged");
        std::process::exit(1);
    }
    println!("diff_fuzz: {iters} cases, fast == reference on all (seed {seed:#x})");
}
