//! Two-pass assembler from VISA assembly text to binary images.
//!
//! The toolchain-generated binary a virtine runs is "a statically compiled
//! binar\[y\] containing all required software" (§2). This assembler is the
//! bottom of that toolchain: the `vcc` mini-C compiler emits assembly text,
//! and hand-written runtime stubs (boot code, `vlibc` primitives) are written
//! directly in it.
//!
//! # Syntax
//!
//! ```text
//! ; comment (also '#')
//! .org 0x8000            ; image base / load address
//! .equ PORT, 0x1         ; named constant
//! start:                 ; global label
//!     mov r1, 20
//!     call fib
//!     out PORT, r0
//!     hlt
//! fib:
//!     cmp r1, 2
//!     jl .base           ; ".name" is local to the enclosing global label
//!     ...
//! .base:
//!     mov r0, r1
//!     ret
//! msg: .asciz "hello"
//! tbl: .dq fib, start    ; labels allowed in .dq
//!     .space 64
//!     .align 8
//! ```
//!
//! Registers are `r0`–`r15`, with aliases `sp` (= `r15`) and `fp` (= `r14`).
//! Memory operands are `[base]`, `[base + off]` or `[base - off]` as in
//! `load.q r1, [r2 + 8]` and `store.b [r3], r4`.

use std::collections::HashMap;
use std::fmt;

use crate::inst::{Alu, Cond, CrReg, Inst, JmpMode, Reg, Width};

/// A fully assembled binary image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Guest address the image must be loaded at (`.org`).
    pub base: u64,
    /// Raw bytes of the image.
    pub bytes: Vec<u8>,
    /// Entry point (defaults to `base`).
    pub entry: u64,
    /// Every global label and its guest address.
    pub labels: HashMap<String, u64>,
}

impl Image {
    /// Address of a label.
    pub fn label(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }

    /// Total image size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Pads the image with zero bytes up to `size` (used by the Figure 12
    /// image-size experiment, which "synthetically increase\[s\] image size by
    /// padding a minimal virtine image with zeroes").
    pub fn pad_to(&mut self, size: usize) {
        if size > self.bytes.len() {
            self.bytes.resize(size, 0);
        }
    }
}

/// An assembly diagnostic with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number the error was found on (0 for global errors).
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// One operand as parsed from source.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(Reg),
    /// Numeric or symbolic expression (resolved in pass 2).
    Expr(Expr),
    /// `[base + off]`.
    Mem(Reg, Expr),
    /// `cr0` / `cr3` / `cr4`.
    Cr(CrReg),
}

/// A constant expression: sum of terms, where a term is a literal or symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Expr {
    terms: Vec<(i64, Term)>, // (sign, term)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Term {
    Lit(i64),
    Sym(String),
}

impl Expr {
    fn lit(v: i64) -> Expr {
        Expr {
            terms: vec![(1, Term::Lit(v))],
        }
    }

    /// Evaluates against a symbol table; `None` if a symbol is undefined.
    fn eval(&self, syms: &HashMap<String, i64>) -> Option<i64> {
        let mut acc: i64 = 0;
        for (sign, term) in &self.terms {
            let v = match term {
                Term::Lit(v) => *v,
                Term::Sym(s) => *syms.get(s)?,
            };
            acc = acc.wrapping_add(sign.wrapping_mul(v));
        }
        Some(acc)
    }

    /// Name of the first unresolved symbol, for diagnostics.
    fn first_symbol(&self) -> Option<&str> {
        self.terms.iter().find_map(|(_, t)| match t {
            Term::Sym(s) => Some(s.as_str()),
            Term::Lit(_) => None,
        })
    }
}

/// One source statement after parsing.
#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    /// Instruction mnemonic plus operands; encoded in pass 2.
    Inst {
        line: usize,
        mnemonic: String,
        operands: Vec<Operand>,
    },
    Data {
        line: usize,
        width: Width,
        values: Vec<Expr>,
    },
    Space {
        line: usize,
        bytes: u64,
    },
    Ascii {
        line: usize,
        bytes: Vec<u8>,
    },
    Align {
        line: usize,
        to: u64,
    },
}

/// Assembles VISA assembly source into an [`Image`].
///
/// # Examples
///
/// ```
/// let img = visa::asm::assemble(
///     ".org 0x8000\nstart: mov r0, 42\n hlt\n",
/// ).unwrap();
/// assert_eq!(img.base, 0x8000);
/// assert_eq!(img.label("start"), Some(0x8000));
/// ```
pub fn assemble(src: &str) -> Result<Image, AsmError> {
    let mut base: Option<u64> = None;
    let mut entry_label: Option<(usize, String)> = None;
    let mut equs: HashMap<String, i64> = HashMap::new();
    let mut stmts: Vec<(u64, Stmt)> = Vec::new(); // (address, stmt)
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut cursor: u64 = 0;
    let mut have_org = false;
    let mut current_global = String::new();

    // Pass 1: tokenize/parse every line, lay out addresses, collect labels.
    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line);
        let mut toks = tokenize(line, line_no)?;
        if toks.is_empty() {
            continue;
        }

        // Leading labels (possibly several on one line).
        while toks.len() >= 2 && matches!(toks[1], Tok::Colon) {
            let name = match &toks[0] {
                Tok::Ident(n) => n.clone(),
                other => return err(line_no, format!("bad label {other:?}")),
            };
            let full = qualify(&name, &current_global, line_no)?;
            if !name.starts_with('.') {
                current_global = name.clone();
            }
            if labels.insert(full.clone(), cursor).is_some() {
                return err(line_no, format!("duplicate label `{full}`"));
            }
            toks.drain(..2);
        }
        if toks.is_empty() {
            continue;
        }

        let head = match &toks[0] {
            Tok::Ident(n) => n.clone(),
            other => return err(line_no, format!("expected mnemonic, got {other:?}")),
        };
        let rest = &toks[1..];

        match head.as_str() {
            ".org" => {
                let v = parse_expr_tokens(rest, line_no)?
                    .eval(&equs)
                    .ok_or_else(|| AsmError {
                        line: line_no,
                        msg: ".org requires a constant expression".into(),
                    })?;
                if have_org {
                    return err(line_no, "duplicate .org");
                }
                have_org = true;
                base = Some(v as u64);
                cursor = v as u64;
            }
            ".entry" => {
                let name = expect_single_ident(rest, line_no)?;
                entry_label = Some((line_no, name));
            }
            ".equ" => {
                // .equ NAME, expr
                if rest.len() < 3 || !matches!(rest[1], Tok::Comma) {
                    return err(line_no, ".equ requires `NAME, value`");
                }
                let name = match &rest[0] {
                    Tok::Ident(n) => n.clone(),
                    other => return err(line_no, format!("bad .equ name {other:?}")),
                };
                let v = parse_expr_tokens(&rest[2..], line_no)?
                    .eval(&equs)
                    .ok_or_else(|| AsmError {
                        line: line_no,
                        msg: ".equ requires a constant expression".into(),
                    })?;
                equs.insert(name, v);
            }
            ".db" | ".dw" | ".dd" | ".dq" => {
                let width = match head.as_str() {
                    ".db" => Width::B,
                    ".dw" => Width::W,
                    ".dd" => Width::D,
                    _ => Width::Q,
                };
                let values = parse_expr_list(rest, line_no, &current_global)?;
                cursor += width.bytes() * values.len() as u64;
                stmts.push((
                    cursor - width.bytes() * values.len() as u64,
                    Stmt::Data {
                        line: line_no,
                        width,
                        values,
                    },
                ));
            }
            ".space" => {
                let v = parse_expr_tokens(rest, line_no)?
                    .eval(&equs)
                    .ok_or_else(|| AsmError {
                        line: line_no,
                        msg: ".space requires a constant expression".into(),
                    })?;
                if v < 0 {
                    return err(line_no, ".space size must be non-negative");
                }
                stmts.push((
                    cursor,
                    Stmt::Space {
                        line: line_no,
                        bytes: v as u64,
                    },
                ));
                cursor += v as u64;
            }
            ".ascii" | ".asciz" => {
                let mut bytes = match rest {
                    [Tok::Str(s)] => s.clone(),
                    _ => return err(line_no, format!("{head} requires one string literal")),
                };
                if head == ".asciz" {
                    bytes.push(0);
                }
                cursor += bytes.len() as u64;
                stmts.push((
                    cursor - bytes.len() as u64,
                    Stmt::Ascii {
                        line: line_no,
                        bytes,
                    },
                ));
            }
            ".align" => {
                let v = parse_expr_tokens(rest, line_no)?
                    .eval(&equs)
                    .ok_or_else(|| AsmError {
                        line: line_no,
                        msg: ".align requires a constant expression".into(),
                    })?;
                if v <= 0 || (v & (v - 1)) != 0 {
                    return err(line_no, ".align requires a positive power of two");
                }
                let to = v as u64;
                let aligned = cursor.div_ceil(to) * to;
                stmts.push((
                    cursor,
                    Stmt::Align {
                        line: line_no,
                        to: aligned - cursor,
                    },
                ));
                cursor = aligned;
            }
            _ if head.starts_with('.') => {
                return err(line_no, format!("unknown directive `{head}`"));
            }
            _ => {
                let operands = parse_operands(rest, line_no, &current_global)?;
                let size = inst_size(&head, &operands, line_no)?;
                stmts.push((
                    cursor,
                    Stmt::Inst {
                        line: line_no,
                        mnemonic: head,
                        operands,
                    },
                ));
                cursor += size;
            }
        }
    }

    let base = base.unwrap_or(0);

    // Merge labels and .equ constants into a single symbol table.
    let mut syms: HashMap<String, i64> = equs;
    for (name, addr) in &labels {
        if syms.insert(name.clone(), *addr as i64).is_some() {
            return err(0, format!("symbol `{name}` defined as both label and .equ"));
        }
    }

    // Pass 2: encode.
    let total = (cursor - base) as usize;
    let mut bytes = vec![0u8; total];
    for (addr, stmt) in &stmts {
        let off = (*addr - base) as usize;
        match stmt {
            Stmt::Inst {
                line,
                mnemonic,
                operands,
            } => {
                let inst = encode_inst(mnemonic, operands, *addr, &syms, *line)?;
                let mut buf = Vec::with_capacity(10);
                inst.encode(&mut buf);
                bytes[off..off + buf.len()].copy_from_slice(&buf);
            }
            Stmt::Data {
                line,
                width,
                values,
            } => {
                let mut o = off;
                for v in values {
                    let val = eval_or_err(v, &syms, *line)? as u64;
                    let le = val.to_le_bytes();
                    let n = width.bytes() as usize;
                    bytes[o..o + n].copy_from_slice(&le[..n]);
                    o += n;
                }
            }
            Stmt::Space { .. } | Stmt::Align { .. } => {} // Already zeroed.
            Stmt::Ascii { bytes: b, .. } => {
                bytes[off..off + b.len()].copy_from_slice(b);
            }
        }
    }

    let entry = match entry_label {
        Some((line, name)) => match labels.get(&name) {
            Some(a) => *a,
            None => return err(line, format!(".entry label `{name}` is undefined")),
        },
        None => base,
    };

    Ok(Image {
        base,
        bytes,
        entry,
        labels,
    })
}

fn eval_or_err(e: &Expr, syms: &HashMap<String, i64>, line: usize) -> Result<i64, AsmError> {
    e.eval(syms).ok_or_else(|| AsmError {
        line,
        msg: format!(
            "undefined symbol `{}`",
            e.first_symbol().unwrap_or("<expr>")
        ),
    })
}

/// Expands a local label (`.name`) into `global.name`.
fn qualify(name: &str, current_global: &str, line: usize) -> Result<String, AsmError> {
    if let Some(local) = name.strip_prefix('.') {
        if current_global.is_empty() {
            return err(
                line,
                format!("local label `.{local}` before any global label"),
            );
        }
        Ok(format!("{current_global}.{local}"))
    } else {
        Ok(name.to_string())
    }
}

// ---------------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    Str(Vec<u8>),
    Comma,
    Colon,
    LBracket,
    RBracket,
    Plus,
    Minus,
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn tokenize(line: &str, line_no: usize) -> Result<Vec<Tok>, AsmError> {
    let mut toks = Vec::new();
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '"' => {
                let mut s = Vec::new();
                i += 1;
                loop {
                    if i >= b.len() {
                        return err(line_no, "unterminated string literal");
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= b.len() {
                                return err(line_no, "bad escape at end of line");
                            }
                            s.push(unescape(b[i], line_no)?);
                            i += 1;
                        }
                        other => {
                            s.push(other);
                            i += 1;
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '\'' => {
                // Character literal: 'a' or '\n'.
                i += 1;
                if i >= b.len() {
                    return err(line_no, "unterminated char literal");
                }
                let v = if b[i] == b'\\' {
                    i += 1;
                    if i >= b.len() {
                        return err(line_no, "bad escape in char literal");
                    }
                    unescape(b[i], line_no)?
                } else {
                    b[i]
                };
                i += 1;
                if i >= b.len() || b[i] != b'\'' {
                    return err(line_no, "unterminated char literal");
                }
                i += 1;
                toks.push(Tok::Num(v as i64));
            }
            '0'..='9' => {
                let start = i;
                if c == '0' && i + 1 < b.len() && (b[i + 1] == b'x' || b[i + 1] == b'X') {
                    i += 2;
                    while i < b.len() && (b[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &line[start + 2..i];
                    let v = u64::from_str_radix(text, 16).map_err(|_| AsmError {
                        line: line_no,
                        msg: format!("bad hex literal `{text}`"),
                    })?;
                    toks.push(Tok::Num(v as i64));
                } else {
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let text = &line[start..i];
                    let v: i64 = text.parse().map_err(|_| AsmError {
                        line: line_no,
                        msg: format!("bad decimal literal `{text}`"),
                    })?;
                    toks.push(Tok::Num(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let ch = b[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(line[start..i].to_string()));
            }
            other => return err(line_no, format!("unexpected character `{other}`")),
        }
    }
    Ok(toks)
}

fn unescape(c: u8, line_no: usize) -> Result<u8, AsmError> {
    Ok(match c {
        b'n' => b'\n',
        b'r' => b'\r',
        b't' => b'\t',
        b'0' => 0,
        b'\\' => b'\\',
        b'"' => b'"',
        b'\'' => b'\'',
        other => return err(line_no, format!("unknown escape `\\{}`", other as char)),
    })
}

// ---------------------------------------------------------------------------
// Operand parsing.
// ---------------------------------------------------------------------------

fn reg_name(name: &str) -> Option<Reg> {
    match name {
        "sp" => Some(Reg::SP),
        "fp" => Some(Reg::FP),
        _ => {
            let rest = name.strip_prefix('r')?;
            let idx: u8 = rest.parse().ok()?;
            if (idx as usize) < Reg::COUNT {
                Some(Reg(idx))
            } else {
                None
            }
        }
    }
}

fn cr_name(name: &str) -> Option<CrReg> {
    match name {
        "cr0" => Some(CrReg::Cr0),
        "cr3" => Some(CrReg::Cr3),
        "cr4" => Some(CrReg::Cr4),
        _ => None,
    }
}

fn parse_expr_tokens(toks: &[Tok], line: usize) -> Result<Expr, AsmError> {
    let (expr, used) = parse_expr_prefix(toks, line, "")?;
    if used != toks.len() {
        return err(line, "trailing tokens after expression");
    }
    Ok(expr)
}

/// Parses an expression at the start of `toks`; returns it and the number of
/// tokens consumed. Local symbols (`.x`) are qualified against `global`.
fn parse_expr_prefix(toks: &[Tok], line: usize, global: &str) -> Result<(Expr, usize), AsmError> {
    let mut terms = Vec::new();
    let mut i = 0;
    let mut sign: i64 = 1;
    // Optional leading sign.
    loop {
        match toks.get(i) {
            Some(Tok::Minus) => {
                sign = -sign;
                i += 1;
            }
            Some(Tok::Plus) => i += 1,
            _ => break,
        }
    }
    loop {
        match toks.get(i) {
            Some(Tok::Num(v)) => {
                terms.push((sign, Term::Lit(*v)));
                i += 1;
            }
            Some(Tok::Ident(name)) => {
                let qualified = qualify(name, global, line)?;
                terms.push((sign, Term::Sym(qualified)));
                i += 1;
            }
            other => return err(line, format!("expected expression, got {other:?}")),
        }
        match toks.get(i) {
            Some(Tok::Plus) => {
                sign = 1;
                i += 1;
            }
            Some(Tok::Minus) => {
                sign = -1;
                i += 1;
            }
            _ => break,
        }
    }
    Ok((Expr { terms }, i))
}

fn parse_expr_list(toks: &[Tok], line: usize, global: &str) -> Result<Vec<Expr>, AsmError> {
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        let (e, used) = parse_expr_prefix(&toks[i..], line, global)?;
        out.push(e);
        i += used;
        match toks.get(i) {
            None => break,
            Some(Tok::Comma) => i += 1,
            other => return err(line, format!("expected `,`, got {other:?}")),
        }
    }
    Ok(out)
}

fn expect_single_ident(toks: &[Tok], line: usize) -> Result<String, AsmError> {
    match toks {
        [Tok::Ident(n)] => Ok(n.clone()),
        _ => err(line, "expected a single identifier"),
    }
}

fn parse_operands(toks: &[Tok], line: usize, global: &str) -> Result<Vec<Operand>, AsmError> {
    let mut out = Vec::new();
    let mut i = 0;
    if toks.is_empty() {
        return Ok(out);
    }
    loop {
        match toks.get(i) {
            Some(Tok::Ident(name)) if reg_name(name).is_some() => {
                out.push(Operand::Reg(reg_name(name).expect("checked")));
                i += 1;
            }
            Some(Tok::Ident(name)) if cr_name(name).is_some() => {
                out.push(Operand::Cr(cr_name(name).expect("checked")));
                i += 1;
            }
            Some(Tok::LBracket) => {
                i += 1;
                let base = match toks.get(i) {
                    Some(Tok::Ident(n)) if reg_name(n).is_some() => reg_name(n).expect("checked"),
                    other => {
                        return err(
                            line,
                            format!("memory operand needs a base register, got {other:?}"),
                        )
                    }
                };
                i += 1;
                let off = match toks.get(i) {
                    Some(Tok::RBracket) => {
                        i += 1;
                        Expr::lit(0)
                    }
                    Some(Tok::Plus) | Some(Tok::Minus) => {
                        let (e, used) = parse_expr_prefix(&toks[i..], line, global)?;
                        i += used;
                        match toks.get(i) {
                            Some(Tok::RBracket) => i += 1,
                            other => return err(line, format!("expected `]`, got {other:?}")),
                        }
                        e
                    }
                    other => return err(line, format!("expected `]` or offset, got {other:?}")),
                };
                out.push(Operand::Mem(base, off));
            }
            Some(_) => {
                let (e, used) = parse_expr_prefix(&toks[i..], line, global)?;
                out.push(Operand::Expr(e));
                i += used;
            }
            None => return err(line, "expected operand"),
        }
        match toks.get(i) {
            None => break,
            Some(Tok::Comma) => i += 1,
            other => return err(line, format!("expected `,`, got {other:?}")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Instruction selection.
// ---------------------------------------------------------------------------

fn alu_mnemonic(m: &str) -> Option<Alu> {
    Some(match m {
        "add" => Alu::Add,
        "sub" => Alu::Sub,
        "mul" => Alu::Mul,
        "div" => Alu::Div,
        "mod" => Alu::Mod,
        "and" => Alu::And,
        "or" => Alu::Or,
        "xor" => Alu::Xor,
        "shl" => Alu::Shl,
        "shr" => Alu::Shr,
        "sar" => Alu::Sar,
        _ => return None,
    })
}

fn cond_mnemonic(m: &str) -> Option<Cond> {
    Some(match m {
        "je" => Cond::Eq,
        "jne" => Cond::Ne,
        "jl" => Cond::Lt,
        "jle" => Cond::Le,
        "jg" => Cond::Gt,
        "jge" => Cond::Ge,
        "jb" => Cond::B,
        "jbe" => Cond::Be,
        "ja" => Cond::A,
        "jae" => Cond::Ae,
        _ => return None,
    })
}

fn width_suffix(m: &str) -> Option<(&str, Width)> {
    if let Some(stem) = m.strip_suffix(".b") {
        Some((stem, Width::B))
    } else if let Some(stem) = m.strip_suffix(".w") {
        Some((stem, Width::W))
    } else if let Some(stem) = m.strip_suffix(".d") {
        Some((stem, Width::D))
    } else if let Some(stem) = m.strip_suffix(".q") {
        Some((stem, Width::Q))
    } else {
        None
    }
}

/// Size of an instruction given its mnemonic and parsed operands. Must agree
/// with [`Inst::len`]; sizes do not depend on symbol values so pass 1 can lay
/// out addresses before resolution.
fn inst_size(m: &str, ops: &[Operand], line: usize) -> Result<u64, AsmError> {
    let size = match m {
        "nop" | "hlt" | "ret" => 1,
        "mov" => match ops {
            [Operand::Reg(_), Operand::Reg(_)] => 3,
            [Operand::Reg(_), Operand::Expr(_)] => 10,
            [Operand::Cr(_), Operand::Reg(_)] => 3,
            [Operand::Reg(_), Operand::Cr(_)] => 3,
            _ => return err(line, "bad mov operands"),
        },
        _ if alu_mnemonic(m).is_some() => match ops {
            [Operand::Reg(_), Operand::Reg(_)] => 3,
            [Operand::Reg(_), Operand::Expr(_)] => 10,
            _ => return err(line, format!("bad {m} operands")),
        },
        "neg" | "not" | "push" | "pop" => 2,
        "cmp" => match ops {
            [Operand::Reg(_), Operand::Reg(_)] => 3,
            [Operand::Reg(_), Operand::Expr(_)] => 10,
            _ => return err(line, "bad cmp operands"),
        },
        "jmp" => match ops {
            [Operand::Reg(_)] => 2,
            [Operand::Expr(_)] => 5,
            _ => return err(line, "bad jmp operand"),
        },
        _ if cond_mnemonic(m).is_some() => 6,
        "call" => match ops {
            [Operand::Reg(_)] => 2,
            [Operand::Expr(_)] => 5,
            _ => return err(line, "bad call operand"),
        },
        _ if width_suffix(m).is_some() => 7,
        "in" | "out" => 4,
        "lgdt" => 9,
        "wrmsr" => 6,
        "ljmp16" | "ljmp32" | "ljmp64" => 10,
        "mark" => 2,
        other => return err(line, format!("unknown mnemonic `{other}`")),
    };
    Ok(size)
}

fn encode_inst(
    m: &str,
    ops: &[Operand],
    addr: u64,
    syms: &HashMap<String, i64>,
    line: usize,
) -> Result<Inst, AsmError> {
    let imm = |e: &Expr| -> Result<u64, AsmError> { Ok(eval_or_err(e, syms, line)? as u64) };
    let rel = |e: &Expr, next: u64| -> Result<i32, AsmError> {
        let target = eval_or_err(e, syms, line)? as u64;
        let delta = target.wrapping_sub(next) as i64;
        i32::try_from(delta).map_err(|_| AsmError {
            line,
            msg: format!("branch target {target:#x} out of ±2GiB range"),
        })
    };

    let inst = match m {
        "nop" => Inst::Nop,
        "hlt" => Inst::Hlt,
        "ret" => Inst::Ret,
        "mov" => match ops {
            [Operand::Reg(d), Operand::Reg(s)] => Inst::MovRR(*d, *s),
            [Operand::Reg(d), Operand::Expr(e)] => Inst::MovRI(*d, imm(e)?),
            [Operand::Cr(cr), Operand::Reg(s)] => Inst::MovCr(*cr, *s),
            [Operand::Reg(d), Operand::Cr(cr)] => Inst::MovRCr(*d, *cr),
            _ => return err(line, "bad mov operands"),
        },
        _ if alu_mnemonic(m).is_some() => {
            let alu = alu_mnemonic(m).expect("checked");
            match ops {
                [Operand::Reg(d), Operand::Reg(s)] => Inst::AluRR(alu, *d, *s),
                [Operand::Reg(d), Operand::Expr(e)] => Inst::AluRI(alu, *d, imm(e)?),
                _ => return err(line, format!("bad {m} operands")),
            }
        }
        "neg" => match ops {
            [Operand::Reg(r)] => Inst::Neg(*r),
            _ => return err(line, "bad neg operand"),
        },
        "not" => match ops {
            [Operand::Reg(r)] => Inst::Not(*r),
            _ => return err(line, "bad not operand"),
        },
        "push" => match ops {
            [Operand::Reg(r)] => Inst::Push(*r),
            _ => return err(line, "bad push operand"),
        },
        "pop" => match ops {
            [Operand::Reg(r)] => Inst::Pop(*r),
            _ => return err(line, "bad pop operand"),
        },
        "cmp" => match ops {
            [Operand::Reg(a), Operand::Reg(b)] => Inst::CmpRR(*a, *b),
            [Operand::Reg(a), Operand::Expr(e)] => Inst::CmpRI(*a, imm(e)?),
            _ => return err(line, "bad cmp operands"),
        },
        "jmp" => match ops {
            [Operand::Reg(r)] => Inst::JmpR(*r),
            [Operand::Expr(e)] => Inst::Jmp(rel(e, addr + 5)?),
            _ => return err(line, "bad jmp operand"),
        },
        _ if cond_mnemonic(m).is_some() => {
            let c = cond_mnemonic(m).expect("checked");
            match ops {
                [Operand::Expr(e)] => Inst::Jcc(c, rel(e, addr + 6)?),
                _ => return err(line, format!("bad {m} operand")),
            }
        }
        "call" => match ops {
            [Operand::Reg(r)] => Inst::CallR(*r),
            [Operand::Expr(e)] => Inst::Call(rel(e, addr + 5)?),
            _ => return err(line, "bad call operand"),
        },
        _ if width_suffix(m).is_some() => {
            let (stem, w) = width_suffix(m).expect("checked");
            match (stem, ops) {
                ("load", [Operand::Reg(d), Operand::Mem(b, off)]) => {
                    let o = eval_or_err(off, syms, line)?;
                    let o = i32::try_from(o).map_err(|_| AsmError {
                        line,
                        msg: "memory offset out of i32 range".into(),
                    })?;
                    Inst::Load(w, *d, *b, o)
                }
                ("store", [Operand::Mem(b, off), Operand::Reg(s)]) => {
                    let o = eval_or_err(off, syms, line)?;
                    let o = i32::try_from(o).map_err(|_| AsmError {
                        line,
                        msg: "memory offset out of i32 range".into(),
                    })?;
                    Inst::Store(w, *b, o, *s)
                }
                _ => return err(line, format!("bad {m} operands")),
            }
        }
        "in" => match ops {
            [Operand::Reg(d), Operand::Expr(e)] => {
                let p = imm(e)?;
                Inst::In(*d, p as u16)
            }
            _ => return err(line, "bad in operands (want `in reg, port`)"),
        },
        "out" => match ops {
            [Operand::Expr(e), Operand::Reg(s)] => {
                let p = imm(e)?;
                Inst::Out(p as u16, *s)
            }
            _ => return err(line, "bad out operands (want `out port, reg`)"),
        },
        "lgdt" => match ops {
            [Operand::Expr(e)] => Inst::Lgdt(imm(e)?),
            _ => return err(line, "bad lgdt operand"),
        },
        "wrmsr" => match ops {
            [Operand::Expr(e), Operand::Reg(s)] => Inst::Wrmsr(imm(e)? as u32, *s),
            _ => return err(line, "bad wrmsr operands (want `wrmsr msr, reg`)"),
        },
        "ljmp16" | "ljmp32" | "ljmp64" => {
            let mode = match m {
                "ljmp16" => JmpMode::Real16,
                "ljmp32" => JmpMode::Prot32,
                _ => JmpMode::Long64,
            };
            match ops {
                [Operand::Expr(e)] => Inst::Ljmp(mode, imm(e)?),
                _ => return err(line, format!("bad {m} operand")),
            }
        }
        "mark" => match ops {
            [Operand::Expr(e)] => Inst::Mark(imm(e)? as u8),
            _ => return err(line, "bad mark operand"),
        },
        other => return err(line, format!("unknown mnemonic `{other}`")),
    };

    debug_assert_eq!(
        inst.len(),
        inst_size(m, ops, line)?,
        "pass-1 size disagrees with encoding for {m}"
    );
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn decode_all(img: &Image) -> Vec<Inst> {
        let mut out = Vec::new();
        let mut off = 0usize;
        while off < img.bytes.len() {
            let (inst, len) = Inst::decode(&img.bytes[off..]).expect("decode");
            out.push(inst);
            off += len as usize;
        }
        out
    }

    #[test]
    fn assembles_minimal_program() {
        let img = assemble(".org 0x8000\nstart:\n  mov r0, 42\n  hlt\n").unwrap();
        assert_eq!(img.base, 0x8000);
        assert_eq!(img.entry, 0x8000);
        assert_eq!(img.label("start"), Some(0x8000));
        let insts = decode_all(&img);
        assert_eq!(insts, vec![Inst::MovRI(Reg(0), 42), Inst::Hlt]);
    }

    #[test]
    fn forward_references_resolve() {
        let img = assemble(".org 0\n  jmp end\n  mov r0, 1\nend:\n  hlt\n").unwrap();
        let insts = decode_all(&img);
        // jmp is 5 bytes, mov is 10; relative target = 15 - 5 = 10.
        assert_eq!(insts[0], Inst::Jmp(10));
        assert_eq!(insts[2], Inst::Hlt);
    }

    #[test]
    fn local_labels_are_scoped() {
        let src = "
.org 0
f:
  jmp .done
.done:
  ret
g:
  jmp .done
.done:
  hlt
";
        let img = assemble(src).unwrap();
        assert!(img.label("f.done").is_some());
        assert!(img.label("g.done").is_some());
        let insts = decode_all(&img);
        assert_eq!(insts[0], Inst::Jmp(0)); // f's jmp to next inst.
        assert_eq!(insts[2], Inst::Jmp(0)); // g's jmp to next inst.
    }

    #[test]
    fn equ_constants_and_char_literals() {
        let src = ".org 0\n.equ PORT, 0x42\n  out PORT, r1\n  mov r0, 'A'\n  hlt\n";
        let img = assemble(src).unwrap();
        let insts = decode_all(&img);
        assert_eq!(insts[0], Inst::Out(0x42, Reg(1)));
        assert_eq!(insts[1], Inst::MovRI(Reg(0), 65));
    }

    #[test]
    fn data_directives_lay_out_bytes() {
        let src = "
.org 0x100
blob: .db 1, 2, 3
word: .dw 0x1234
quad: .dq blob + 1
text: .asciz \"hi\\n\"
      .align 8
aligned: .dq 7
";
        let img = assemble(src).unwrap();
        assert_eq!(img.label("blob"), Some(0x100));
        assert_eq!(&img.bytes[0..3], &[1, 2, 3]);
        assert_eq!(img.label("word"), Some(0x103));
        assert_eq!(&img.bytes[3..5], &[0x34, 0x12]);
        let quad_off = (img.label("quad").unwrap() - 0x100) as usize;
        assert_eq!(
            u64::from_le_bytes(img.bytes[quad_off..quad_off + 8].try_into().unwrap()),
            0x101
        );
        let text_off = (img.label("text").unwrap() - 0x100) as usize;
        assert_eq!(&img.bytes[text_off..text_off + 4], b"hi\n\0");
        let a = img.label("aligned").unwrap();
        assert_eq!(a % 8, 0);
    }

    #[test]
    fn memory_operands_parse_offsets() {
        let src = ".org 0\n load.q r1, [r2 + 8]\n store.b [r3 - 4], r5\n load.d r6, [sp]\n hlt\n";
        let img = assemble(src).unwrap();
        let insts = decode_all(&img);
        assert_eq!(insts[0], Inst::Load(Width::Q, Reg(1), Reg(2), 8));
        assert_eq!(insts[1], Inst::Store(Width::B, Reg(3), -4, Reg(5)));
        assert_eq!(insts[2], Inst::Load(Width::D, Reg(6), Reg::SP, 0));
    }

    #[test]
    fn entry_directive_overrides_base() {
        let src = ".org 0x8000\n.entry main\n  nop\nmain:\n  hlt\n";
        let img = assemble(src).unwrap();
        assert_eq!(img.entry, 0x8001);
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble(".org 0\nx:\nx:\n  hlt\n").unwrap_err();
        assert!(e.msg.contains("duplicate label"));
    }

    #[test]
    fn undefined_symbol_is_an_error() {
        let e = assemble(".org 0\n  jmp nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined symbol"), "{}", e.msg);
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_mnemonic_is_an_error() {
        let e = assemble(".org 0\n  frobnicate r0\n").unwrap_err();
        assert!(e.msg.contains("unknown mnemonic"));
    }

    #[test]
    fn pad_to_extends_with_zeroes() {
        let mut img = assemble(".org 0\n  hlt\n").unwrap();
        let orig = img.size();
        img.pad_to(4096);
        assert_eq!(img.size(), 4096);
        assert!(img.bytes[orig..].iter().all(|&b| b == 0));
        // Padding never shrinks.
        img.pad_to(16);
        assert_eq!(img.size(), 4096);
    }

    #[test]
    fn mode_transition_mnemonics() {
        let src = "
.org 0
.equ EFER, 0xC0000080
  lgdt gdt
  mov cr0, r1
  mov r2, cr0
  wrmsr EFER, r3
  ljmp32 prot
prot:
  ljmp64 longm
longm:
  hlt
gdt: .dq 0
";
        let img = assemble(src).unwrap();
        let insts = decode_all(&img);
        assert!(matches!(insts[0], Inst::Lgdt(_)));
        assert_eq!(insts[1], Inst::MovCr(CrReg::Cr0, Reg(1)));
        assert_eq!(insts[2], Inst::MovRCr(Reg(2), CrReg::Cr0));
        assert!(matches!(insts[3], Inst::Wrmsr(0xC0000080, Reg(3))));
        assert!(matches!(insts[4], Inst::Ljmp(JmpMode::Prot32, _)));
        assert!(matches!(insts[5], Inst::Ljmp(JmpMode::Long64, _)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "; full line\n.org 0 ; trailing\n# hash comment\n  hlt # after\n";
        let img = assemble(src).unwrap();
        assert_eq!(decode_all(&img), vec![Inst::Hlt]);
    }

    #[test]
    fn string_with_semicolon_not_treated_as_comment() {
        let img = assemble(".org 0\ns: .asciz \"a;b\"\n").unwrap();
        assert_eq!(&img.bytes[..4], b"a;b\0");
    }
}
