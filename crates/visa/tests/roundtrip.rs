//! Encode/decode round-trip property tests, seeded via `vclock::rng`.
//!
//! Three layers of identity:
//! 1. `Inst::encode → Inst::decode → Inst::encode` over random instruction
//!    forms (the binary alphabet is closed).
//! 2. `assemble → decode → re-encode` over generated source programs (the
//!    assembler emits exactly the binary encoding, instruction by
//!    instruction).
//! 3. Decode never panics on arbitrary byte soup (the fuzzer's decode
//!    frontier is total).

use vclock::rng::Rng;
use visa::corpus;
use visa::inst::Inst;

#[test]
fn random_insts_encode_decode_encode_identity() {
    let mut rng = Rng::seeded(0xB0);
    for _ in 0..20_000 {
        let inst = corpus::random_inst(&mut rng);
        let mut bytes = Vec::new();
        inst.encode(&mut bytes);
        assert_eq!(bytes.len() as u64, inst.len(), "len mismatch: {inst:?}");
        let (decoded, len) = Inst::decode(&bytes).unwrap_or_else(|e| {
            panic!("decode failed for {inst:?} ({bytes:02X?}): {e}");
        });
        assert_eq!(len, inst.len(), "decoded len mismatch: {inst:?}");
        assert_eq!(decoded, inst, "round-trip mismatch");
        let mut re = Vec::new();
        decoded.encode(&mut re);
        assert_eq!(re, bytes, "re-encode mismatch for {inst:?}");
    }
}

#[test]
fn assembled_programs_decode_and_reencode_identically() {
    let mut rng = Rng::seeded(0xA5);
    for _ in 0..64 {
        let src = corpus::random_source(&mut rng, 50);
        let img = visa::assemble(&src).expect("assemble");
        // Walk the image instruction by instruction up to the data region
        // (which starts with `.space` zeroes after the final hlt; stop at
        // the first decode that runs past the text).
        let mut off = 0usize;
        while off < img.bytes.len() {
            let Ok((inst, len)) = Inst::decode(&img.bytes[off..]) else {
                break;
            };
            let mut re = Vec::new();
            inst.encode(&mut re);
            assert_eq!(
                re,
                &img.bytes[off..off + len as usize],
                "assembler bytes differ from re-encoding at offset {off} ({inst:?})\n{src}"
            );
            off += len as usize;
            if inst == Inst::Hlt {
                // Reached the epilogue hlt; everything after is data.
                break;
            }
        }
        assert!(off > 0, "nothing decoded from generated image");
    }
}

#[test]
fn decode_is_total_over_byte_soup() {
    let mut rng = Rng::seeded(0x50D4);
    for _ in 0..2_000 {
        let len = 1 + rng.below(16);
        let soup = rng.bytes(len);
        // Must never panic; any Ok decode must re-encode to a prefix.
        if let Ok((inst, len)) = Inst::decode(&soup) {
            let mut re = Vec::new();
            inst.encode(&mut re);
            assert_eq!(re.len() as u64, len);
            assert_eq!(re, &soup[..len as usize]);
        }
    }
}
