//! Differential tests: the predecoded fast engine must be byte- and
//! cycle-identical to the reference interpreter.

use vclock::rng::Rng;
use vclock::{Clock, Cycles};
use visa::cpu::{CpuConfig, CpuExit, Engine, Machine};
use visa::{assemble, corpus, diff};

const MEM: usize = 1 << 20;

fn check(src: &str, budget: u64) {
    let img = assemble(src).expect("assemble");
    if let Err(d) = diff::compare(&img, MEM, budget, 0xD1FF) {
        panic!("{d}\nsource:\n{src}");
    }
}

#[test]
fn random_programs_are_engine_identical() {
    let mut rng = Rng::seeded(0x5EED_0001);
    for case in 0..200 {
        let src = corpus::random_source(&mut rng, 60);
        let img = assemble(&src).expect("assemble");
        if let Err(d) = diff::compare(&img, MEM, 20_000, case) {
            panic!("case {case}: {d}\nsource:\n{src}");
        }
    }
}

#[test]
fn longer_random_programs_with_tiny_budgets() {
    // Small budgets stress the StepLimit boundary, including budgets that
    // land in the middle of a fused superinstruction.
    let mut rng = Rng::seeded(0x5EED_0002);
    for case in 0..50 {
        let src = corpus::random_source(&mut rng, 30);
        let img = assemble(&src).expect("assemble");
        for budget in [1, 2, 3, 5, 7, 11, 17] {
            if let Err(d) = diff::compare(&img, MEM, budget, case) {
                panic!("case {case} budget {budget}: {d}\nsource:\n{src}");
            }
        }
    }
}

#[test]
fn fib_loop_is_engine_identical() {
    check(
        ".org 0x100\n\
         \x20 mov sp, 0xF000\n\
         \x20 mov r0, 0\n mov r1, 1\n mov r2, 25\n\
         loop:\n\
         \x20 mov r3, r0\n add r3, r1\n mov r0, r1\n mov r1, r3\n\
         \x20 sub r2, 1\n cmp r2, 0\n jne loop\n\
         \x20 mark 1\n hlt\n",
        100_000,
    );
}

#[test]
fn call_ret_and_stack_are_engine_identical() {
    check(
        ".org 0x100\n\
         \x20 mov sp, 0xF000\n\
         \x20 mov r0, 5\n\
         \x20 call double\n\
         \x20 call double\n\
         \x20 hlt\n\
         double:\n\
         \x20 push fp\n mov fp, sp\n\
         \x20 add r0, r0\n\
         \x20 pop fp\n ret\n",
        100_000,
    );
}

#[test]
fn faults_are_engine_identical() {
    // Divide by zero, decode fault, out-of-mode access: all must match in
    // kind, payload, clock, and retired count.
    check(
        ".org 0x100\n mov r0, 9\n mov r1, 0\n div r0, r1\n hlt\n",
        100,
    );
    check(
        ".org 0x100\n mov r0, 77\n jmp r0\n .dq 0xFFFFFFFFFFFFFFFF\n",
        100,
    );
    check(
        ".org 0x100\n mov r0, 2000000\n load.q r1, [r0 + 0]\n hlt\n",
        100,
    );
}

#[test]
fn self_modifying_code_is_engine_identical() {
    // Overwrite the `add r0, 1` (0x20 opcode region) in the loop body with
    // a nop-like encoding mid-run; both engines must see the new bytes.
    check(
        ".org 0x100\n\
         \x20 mov sp, 0xF000\n\
         \x20 mov r5, patch\n\
         \x20 mov r6, 0\n\
         loop:\n\
         patch:\n\
         \x20 add r0, 1\n\
         \x20 add r6, 1\n\
         \x20 cmp r6, 6\n\
         \x20 je done\n\
         \x20 cmp r6, 3\n\
         \x20 jne loop\n\
         \x20 store.b [r5 + 0], r6\n\
         \x20 jmp loop\n\
         done:\n\
         \x20 mark 2\n\
         \x20 hlt\n",
        100_000,
    );
}

#[test]
fn io_round_trips_are_engine_identical() {
    check(
        ".org 0x100\n\
         \x20 mov sp, 0xF000\n\
         \x20 in r0, 1\n\
         \x20 and r0, 0xFF\n\
         \x20 out 2, r0\n\
         \x20 in r1, 1\n\
         \x20 add r1, r0\n\
         \x20 out 2, r1\n\
         \x20 hlt\n",
        100_000,
    );
}

#[test]
fn mode_bringup_is_engine_identical() {
    // The full real → protected → long bring-up: system instructions run on
    // the reference path inside the fast engine, and long mode falls back
    // entirely — clock and state must still match exactly.
    let src = "\
        .org 0x1000\n\
        .equ GDT, 0x200\n\
        .equ PT_BASE, 0x10000\n\
        start:\n\
        \x20 mov sp, 0xF000\n\
        \x20 lgdt GDT\n\
        \x20 mov r0, cr0\n\
        \x20 or r0, 1\n\
        \x20 mov cr0, r0\n\
        \x20 ljmp32 prot\n\
        prot:\n\
        \x20 mov r1, PT_BASE\n\
        \x20 mov r2, PT_BASE + 0x1000\n\
        \x20 or r2, 1\n\
        \x20 store.q [r1 + 0], r2\n\
        \x20 mov r3, PT_BASE + 0x2000\n\
        \x20 or r3, 1\n\
        \x20 mov r4, PT_BASE + 0x1000\n\
        \x20 store.q [r4 + 0], r3\n\
        \x20 mov r5, 0x83\n\
        \x20 mov r6, PT_BASE + 0x2000\n\
        \x20 store.q [r6 + 0], r5\n\
        \x20 mov r7, PT_BASE\n\
        \x20 mov cr3, r7\n\
        \x20 mov r8, cr4\n\
        \x20 or r8, 0x20\n\
        \x20 mov cr4, r8\n\
        \x20 mov r9, 0x100\n\
        \x20 wrmsr 0xC0000080, r9\n\
        \x20 mov r10, cr0\n\
        \x20 or r10, 0x80000000\n\
        \x20 mov cr0, r10\n\
        \x20 ljmp64 long\n\
        long:\n\
        \x20 mov r0, 40\n\
        \x20 add r0, 2\n\
        \x20 mark 3\n\
        \x20 hlt\n";
    check(src, 100_000);
}

#[test]
fn fast_engine_is_default_and_env_overridable() {
    // The env var is latched per process on first use; here we only check
    // the programmatic default resolution path.
    let img = assemble(".org 0x100\n mov r0, 1\n hlt\n").expect("assemble");
    let mut m = Machine::new(Clock::new(), CpuConfig::default(), MEM, img.entry);
    m.load_image(&img);
    assert_eq!(m.cpu.engine(), Engine::from_env());
    assert_eq!(m.run(10).unwrap(), CpuExit::Hlt);
}

#[test]
fn fast_engine_populates_block_and_fusion_counters() {
    let before = visa::pred::counters();
    let img = assemble(
        ".org 0x100\n mov sp, 0xF000\n mov r0, 0\n\
         loop:\n add r0, 1\n cmp r0, 50\n jne loop\n hlt\n",
    )
    .expect("assemble");
    let mut m = Machine::new(Clock::new(), CpuConfig::default(), MEM, img.entry);
    m.load_image(&img);
    m.cpu.set_engine(Engine::Fast);
    assert_eq!(m.run(10_000).unwrap(), CpuExit::Hlt);
    let after = visa::pred::counters();
    assert!(after.blocks_built > before.blocks_built, "no blocks built");
    assert!(
        after.superinsts_fused > before.superinsts_fused,
        "cmp+jne did not fuse"
    );
    assert!(after.retired_fast > before.retired_fast);
}

#[test]
fn snapshot_restore_flushes_predecode_state() {
    // Build blocks, snapshot, mutate code, restore: the fast engine must
    // re-decode from the restored bytes, identically to the reference.
    let src = ".org 0x100\n mov sp, 0xF000\n mov r0, 0\n\
               loop:\n add r0, 7\n cmp r0, 70\n jne loop\n hlt\n";
    let img = assemble(src).expect("assemble");
    for engine in [Engine::Fast, Engine::Reference] {
        let mut m = Machine::new(Clock::new(), CpuConfig::default(), MEM, img.entry);
        m.load_image(&img);
        m.cpu.set_engine(engine);
        assert_eq!(m.run(10_000).unwrap(), CpuExit::Hlt);
        let snap_cpu = m.cpu.save_state();
        let snap_mem = m.mem.as_slice().to_vec();
        // Wreck the code, then restore and re-run from the entry point.
        m.mem.write_bytes(0x100, &[0xFF; 16]).unwrap();
        let mut restored = snap_cpu.clone();
        restored.pc = img.entry;
        restored.regs = [0; visa::Reg::COUNT];
        m.cpu.restore_state(&restored);
        m.mem.restore_from(&snap_mem);
        assert_eq!(m.run(10_000).unwrap(), CpuExit::Hlt);
        assert_eq!(m.cpu.reg(visa::Reg(0)), 70);
    }
}

#[test]
fn marks_observe_identical_mid_run_clocks() {
    let src = ".org 0x100\n mov sp, 0xF000\n mov r0, 0\n\
               loop:\n mark 9\n add r0, 1\n mul r0, 3\n div r0, 3\n\
               \x20 cmp r0, 40\n jl loop\n hlt\n";
    let img = assemble(src).expect("assemble");
    let fast = diff::run_one(Engine::Fast, &img, MEM, 100_000, 1);
    let reference = diff::run_one(Engine::Reference, &img, MEM, 100_000, 1);
    assert!(!fast.marks.is_empty());
    assert_eq!(fast.marks, reference.marks);
    assert_eq!(fast.clock, reference.clock);
    assert_ne!(fast.clock, Cycles(0));
}
