//! Property-style tests over the dispatcher's isolation invariants,
//! driven by the repository's seeded PRNG (no external crates).

use vclock::rng::Rng;
use vsched::{
    Dispatcher, DispatcherConfig, HedgePolicy, Hop, Placement, Request, RetryPolicy, TenantProfile,
    Topology,
};
use wasp::{HypercallMask, VirtineSpec, Wasp};

const MEM: usize = 64 * 1024;

/// Seed matrix for the churn-style property tests: the long-committed
/// seed plus a small fixed spread, so the random interleavings cover
/// more of the space than any single seed while staying bit-for-bit
/// replayable (a failure names its seed and case).
const CHURN_SEEDS: &[u64] = &[0x11fec7c1e, 0x5eed_0001, 0xb0a7_10ad, 0x0fa1_10e5];

/// A tenant at its token-bucket limit is shed while other tenants keep
/// being served (ISSUE: admission isolation). Random arrival streams;
/// invariants checked on every stream:
///
/// * the throttled tenant's admissions never exceed its bucket's budget;
/// * the unthrottled tenant is never shed and every submission is served;
/// * everything admitted is eventually served.
#[test]
fn rate_limited_tenant_sheds_without_collateral_damage() {
    let mut rng = Rng::seeded(0x7e4a47);
    for case in 0..20 {
        let rate = rng.range_f64(20.0, 200.0);
        let burst = rng.range_u64(1, 8) as f64;
        let duration = rng.range_f64(0.05, 0.5);
        let n = rng.below(120) + 30;

        let mut d = Dispatcher::new(Wasp::new_kvm_default(), DispatcherConfig::default());
        let img = visa::assemble(".org 0x8000\n mov r0, 1\n hlt\n").unwrap();
        let id = d
            .register(VirtineSpec::new("f", img, MEM).with_snapshot(false))
            .unwrap();
        let throttled = d.add_tenant(TenantProfile::new("throttled").with_rate(rate, burst));
        let free = d.add_tenant(TenantProfile::new("free"));

        let mut arrivals: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, duration)).collect();
        arrivals.sort_by(f64::total_cmp);
        for (i, &t) in arrivals.iter().enumerate() {
            let tenant = if i % 2 == 0 { throttled } else { free };
            let _ = d.submit(Request::new(tenant, id, t));
        }
        d.run_to_idle();

        let ts = d.tenant_stats(throttled);
        let fs = d.tenant_stats(free);
        let budget = burst + rate * duration + 1.0;
        assert!(
            (ts.admitted as f64) <= budget,
            "case {case}: admitted {} > token budget {budget:.1} (rate {rate:.0}, burst {burst})",
            ts.admitted,
        );
        assert_eq!(
            ts.submitted,
            ts.admitted + ts.shed_rate_limit,
            "case {case}: throttled accounting"
        );
        assert_eq!(fs.shed(), 0, "case {case}: free tenant shed");
        assert_eq!(fs.served, fs.submitted, "case {case}: free tenant starved");
        assert_eq!(ts.served, ts.admitted, "case {case}: admitted not served");
        assert_eq!(ts.in_flight, 0, "case {case}");
        assert_eq!(fs.in_flight, 0, "case {case}");
    }
}

/// A shell released by tenant A and stolen by tenant B's shard is wiped
/// before reuse: B can never read A's data (§5.2's no-information-leakage
/// guarantee, extended across tenants and shards). Random secrets and
/// addresses; the reader returns the bytes at the secret's address via
/// `return_data` and must always see zeroes.
#[test]
fn stolen_shells_never_leak_across_tenants() {
    let mut rng = Rng::seeded(0x5713a1);
    for case in 0..15 {
        // A guest-memory address the image/stack regions don't touch.
        let addr = 0x4000 + 8 * rng.range_u64(0, 0x200);
        let secret = rng.next_u64() | 1; // Never zero.

        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards: 2,
                placement: Placement::ByTenant,
                ..DispatcherConfig::default()
            },
        );
        // Tenant A (index 0) homes on shard 0; tenant B (index 1) on 1.
        let writer_img = visa::assemble(&format!(
            ".org 0x8000\n mov r1, {addr:#x}\n mov r2, {secret:#x}\n store.q [r1], r2\n hlt\n"
        ))
        .unwrap();
        let reader_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 10         ; return_data(addr, 8)
  mov r1, {addr:#x}
  mov r2, 8
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let writer = d
            .register(VirtineSpec::new("writer", writer_img, MEM).with_snapshot(false))
            .unwrap();
        let reader = d
            .register(
                VirtineSpec::new("reader", reader_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        let a = d.add_tenant(TenantProfile::new("a"));
        let b = d.add_tenant(TenantProfile::new("b").with_mask(HypercallMask::ALLOW_ALL));

        // A dirties a shell; it parks (wiped) in shard 0's pool.
        d.submit(Request::new(a, writer, 0.0)).unwrap();
        d.run_to_idle();
        assert_eq!(d.shard_snapshots()[0].idle_shells, 1, "case {case}");

        // B's home shard is dry: serving B steals A's shell.
        d.submit(Request::new(b, reader, 0.01)).unwrap();
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert!(c.stolen_shell, "case {case}: steal did not happen");
        assert_eq!(d.tenant_stats(b).stolen_serves, 1, "case {case}");
        assert_eq!(
            c.result,
            vec![0u8; 8],
            "case {case}: tenant A's secret at {addr:#x} leaked to tenant B"
        );
    }
}

/// A *warm* shell — parked still holding a snapshotted run's state — is
/// never handed to a different tenant or a different virtine without a
/// full wipe and a clean-path acquire. Extends the stolen-shell-wipe
/// property to warm demotion (same shard, different key) and cross-shard
/// warm steals: in both scenarios a writer virtine plants a random secret
/// *after* its snapshot point (so the secret lives in the warm shell's
/// resident state), and a reader under a different key must always see
/// zeroes and never a warm hit.
#[test]
fn warm_shells_never_cross_tenants_or_virtines_without_a_wipe() {
    let mut rng = Rng::seeded(0x3a11ce);
    for case in 0..12 {
        // A guest-memory address the image/stack regions don't touch.
        let addr = 0x4000 + 8 * rng.range_u64(0, 0x200);
        let secret = rng.next_u64() | 1; // Never zero.

        // Scenario 0: same-shard demotion (different tenant).
        // Scenario 1: same-shard demotion (same tenant, different virtine).
        // Scenario 2: cross-shard warm steal.
        let scenario = case % 3;
        let shards = if scenario == 2 { 2 } else { 1 };

        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                placement: Placement::ByTenant,
                ..DispatcherConfig::default()
            },
        );
        // Writer: snapshots, then plants the secret post-snapshot. The
        // spec snapshot is enabled, so its shell parks *warm* with the
        // secret resident.
        let writer_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r1, {addr:#x}
  mov r2, {secret:#x}
  store.q [r1], r2
  hlt
"
        ))
        .unwrap();
        let reader_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 10         ; return_data(addr, 8)
  mov r1, {addr:#x}
  mov r2, 8
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let writer = d
            .register(VirtineSpec::new("writer", writer_img, MEM))
            .unwrap();
        let reader = d
            .register(
                VirtineSpec::new("reader", reader_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        // Tenant A gets the return_data ceiling too, so scenario 1 can use
        // the *same* tenant for the read and exercise the virtine half of
        // the warm key (the spec policies are what actually constrain each
        // virtine).
        let a = d.add_tenant(TenantProfile::new("a").with_mask(HypercallMask::ALLOW_ALL));
        let b = d.add_tenant(TenantProfile::new("b").with_mask(HypercallMask::ALLOW_ALL));
        let reading_tenant = if scenario == 1 { a } else { b };

        // The writer runs as tenant A and parks a warm shell (with the
        // secret resident) on its home shard.
        d.submit(Request::new(a, writer, 0.0)).unwrap();
        d.run_to_idle();
        let home = d.completions()[0].shard;
        assert_eq!(
            d.shard_snapshots()[home].warm_shells,
            1,
            "case {case}: writer must park warm"
        );

        // The reader runs under a different key; the only shell available
        // is the warm one, reachable via demotion (same shard) or a
        // cross-shard warm steal.
        d.submit(Request::new(reading_tenant, reader, 0.01))
            .unwrap();
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert!(c.exit_normal, "case {case}: reader failed");
        assert!(!c.warm_hit, "case {case}: warm shell crossed keys");
        assert!(
            c.reused_shell,
            "case {case}: the shell must be recycled, not re-created"
        );
        if scenario == 2 {
            assert!(c.stolen_shell, "case {case}: cross-shard steal expected");
        }
        assert_eq!(
            c.result,
            vec![0u8; 8],
            "case {case}: secret {secret:#x} at {addr:#x} leaked through a warm shell \
             (scenario {scenario})"
        );
        assert_eq!(d.stats().warm_demotions, 1, "case {case}");
        assert_eq!(d.pool_stats().created, 1, "case {case}");
    }
}

/// A shell parked with a *blocked* run (suspended in a blocking `recv`)
/// is untouchable: it is never stolen by a dry sibling, never demoted as
/// a warm victim, and — when the run is killed mid-block at its tenant's
/// `max_block` — it re-enters circulation only through the full wipe.
/// Random secrets planted (post-snapshot, so they live in resident state)
/// by the blocked virtine before it parks; steal and demote traffic runs
/// around the parked shell the whole time.
#[test]
fn parked_blocked_shells_are_never_stolen_or_demoted_and_wipe_on_kill() {
    let mut rng = Rng::seeded(0xb10cced);
    for case in 0..8 {
        // A guest-memory address the image/stack regions don't touch.
        let addr = 0x4000 + 8 * rng.range_u64(0, 0x200);
        let secret = rng.next_u64() | 1; // Never zero.
        let max_block_s = rng.range_f64(0.01, 0.05);

        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards: 2,
                placement: Placement::ByTenant,
                ..DispatcherConfig::default()
            },
        );
        // The blocked writer: snapshots (so warm machinery is armed for
        // this spec), plants the secret *after* the snapshot point, then
        // parks in a blocking recv nobody ever satisfies.
        let writer_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r1, {addr:#x}
  mov r2, {secret:#x}
  store.q [r1], r2
  mov r0, 7            ; recv — blocks forever
  mov r1, 0x200
  mov r2, 64
  mov r3, 0
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let reader_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 10         ; return_data(addr, 8)
  mov r1, {addr:#x}
  mov r2, 8
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let writer = d
            .register(
                VirtineSpec::new("writer", writer_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RECV])),
            )
            .unwrap();
        let reader = d
            .register(
                VirtineSpec::new("reader", reader_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        // Tenant a (home shard 0) parks the blocked writer; b (shard 1)
        // generates clean-shell traffic; c (shard 0) generates steal
        // pressure against shard 0 — whose only shell is the parked one.
        let a = d.add_tenant(
            TenantProfile::new("a")
                .with_mask(HypercallMask::ALLOW_ALL)
                .with_max_block(max_block_s),
        );
        let b = d.add_tenant(TenantProfile::new("b").with_mask(HypercallMask::ALLOW_ALL));
        let c = d.add_tenant(TenantProfile::new("c").with_mask(HypercallMask::ALLOW_ALL));

        let k = d.wasp().kernel();
        k.net_listen(80).unwrap();
        let _client = k.net_connect(80).unwrap();
        let server = k.net_accept(80).unwrap().unwrap();
        d.submit(Request::new(a, writer, 0.0).with_invocation(wasp::Invocation::with_conn(server)))
            .unwrap();
        d.run_until(0.001);
        assert_eq!(d.parked(), 1, "case {case}: writer must park");
        assert_eq!(d.shard_snapshots()[0].parked, 1, "case {case}");
        assert_eq!(
            d.shard_snapshots()[0].idle_shells + d.shard_snapshots()[0].warm_shells,
            0,
            "case {case}: the parked shell is outside the pool"
        );

        // b seeds shard 1 with a clean shell; c's request on shard 0 then
        // finds an empty pool and must steal b's — never a's parked shell.
        d.submit(Request::new(b, reader, 0.002)).unwrap();
        d.run_until(0.004);
        d.submit(Request::new(c, reader, 0.005)).unwrap();
        d.run_until(0.007);
        let cs: Vec<&vsched::Completion> = d.completions().iter().collect();
        assert_eq!(cs.len(), 2, "case {case}: readers served while parked");
        for comp in &cs {
            assert!(comp.exit_normal, "case {case}");
            assert_eq!(
                comp.result,
                vec![0u8; 8],
                "case {case}: secret visible outside the parked shell"
            );
            assert!(!comp.warm_hit, "case {case}: nothing warm to hit");
        }
        let stolen_serve = cs.iter().filter(|c| c.stolen_shell).count();
        assert_eq!(
            stolen_serve, 1,
            "case {case}: c must steal b's clean shell, proving steal \
             pressure existed while the parked shell stayed untouched"
        );
        assert_eq!(d.parked(), 1, "case {case}: still parked through it all");
        assert_eq!(
            d.pool_stats().created,
            2,
            "case {case}: exactly the writer's shell and b's — stealing \
             never minted a third, and never took the parked one"
        );
        assert_eq!(d.stats().warm_demotions, 0, "case {case}");
        assert_eq!(d.pool_stats().warm_demoted, 0, "case {case}");

        // Let the tenant's max_block expire: the parked run is killed and
        // its shell — still holding the secret — re-enters circulation
        // only through the wiped release.
        d.run_to_idle();
        assert_eq!(d.parked(), 0, "case {case}");
        assert_eq!(d.stats().blocked_timeout, 1, "case {case}");
        assert_eq!(d.tenant_stats(a).blocked_timeout, 1, "case {case}");
        assert_eq!(d.tenant_stats(a).in_flight, 0, "case {case}");
        let killed = d.completions().last().unwrap();
        assert!(!killed.exit_normal, "case {case}: timeout kill is abnormal");

        // c reads again on shard 0: it reuses the killed shell (no new
        // creation) and must see zeroes at the secret's address.
        d.submit(Request::new(c, reader, max_block_s + 0.01))
            .unwrap();
        d.run_to_idle();
        let comp = d.completions().last().unwrap();
        assert!(comp.exit_normal && comp.reused_shell, "case {case}");
        assert_eq!(
            comp.result,
            vec![0u8; 8],
            "case {case}: secret {secret:#x} at {addr:#x} survived the \
             mid-block kill wipe"
        );
        assert_eq!(
            d.pool_stats().created,
            2,
            "case {case}: recycled, not re-created"
        );
    }
}

/// A wake storm: many runs parked on *one* channel; the peer closes and
/// every one of them wakes (EOF). Random storm sizes and configs;
/// invariants on every case:
///
/// * every parked run wakes and completes — close wakes the whole storm,
///   not one lucky waiter;
/// * woken runs go to the *front* of the run queues: they all complete
///   before lower-priority work that was queued while they slept;
/// * in-flight accounting returns to zero and submitted = served;
/// * no shell leaks: every shell minted is back in a pool at the end
///   (parked shells re-enter circulation through their completion).
#[test]
fn channel_close_wakes_the_whole_storm_in_front_of_queued_work() {
    let mut rng = Rng::seeded(0x57011111);
    for case in 0..10 {
        let storm = rng.below(12) + 3;
        let shards = rng.below(3) + 1;
        let migrate = rng.bool(0.5);
        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                migrate_on_resume: migrate,
                ..DispatcherConfig::default()
            },
        );
        // A consumer that blocking-recvs from channel handle 0 and halts
        // with the recv return value (0 at EOF) in r0.
        let recv_img = visa::assemble(
            "
.org 0x8000
  mov r0, 13
  mov r1, 0
  mov r2, 0x4000
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        let consumer = d
            .register(
                VirtineSpec::new("c", recv_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_RECV]))
                    .with_snapshot(false),
            )
            .unwrap();
        let filler_img = visa::assemble(".org 0x8000\n mov r0, 1\n hlt\n").unwrap();
        let filler = d
            .register(VirtineSpec::new("f", filler_img, MEM).with_snapshot(false))
            .unwrap();
        let waiters = d.add_tenant(
            TenantProfile::new("waiters")
                .with_mask(HypercallMask::ALLOW_ALL)
                .with_priority(5),
        );
        let bulk = d.add_tenant(TenantProfile::new("bulk").with_priority(0));

        // The storm parks on one shared channel.
        let chan = d.wasp().kernel().chan_open(64);
        for i in 0..storm {
            d.submit(
                Request::new(waiters, consumer, i as f64 * 1e-4)
                    .with_invocation(wasp::Invocation::default().with_chans(vec![chan])),
            )
            .unwrap();
        }
        d.run_until(0.01);
        assert_eq!(d.parked(), storm, "case {case}: whole storm parked");

        // Bulk work queues up behind the (future) wakes.
        let bulk_n = rng.below(20) + 5;
        for _ in 0..bulk_n {
            d.submit(Request::new(bulk, filler, 0.02)).unwrap();
        }

        // Peer closes: EOF is readable — every waiter wakes at once.
        d.wasp().kernel().chan_close(chan).unwrap();
        d.run_until(0.021);
        d.run_to_idle();

        assert_eq!(d.parked(), 0, "case {case}: storm fully woken");
        let s = d.stats();
        assert_eq!(s.blocked, storm as u64, "case {case}");
        assert_eq!(s.resumed, storm as u64, "case {case}: all resumed");
        assert_eq!(s.served, (storm + bulk_n) as u64, "case {case}");
        assert_eq!(s.submitted, s.served + s.shed(), "case {case}");
        assert_eq!(d.tenant_stats(waiters).in_flight, 0, "case {case}");
        assert_eq!(d.tenant_stats(bulk).in_flight, 0, "case {case}");

        // Front-of-queue: woken consumers enqueue at the front, so on
        // every shard they run contiguously — bulk work queued while
        // they slept may fill batches *before* the wake arrives, but
        // once the first woken consumer runs, no bulk may interleave
        // until the shard's last woken consumer is done.
        for shard in 0..shards {
            let order: Vec<usize> = d
                .completions()
                .iter()
                .filter(|c| c.shard == shard)
                .map(|c| c.tenant.index())
                .collect();
            let first = order.iter().position(|&t| t == waiters.index());
            let last = order.iter().rposition(|&t| t == waiters.index());
            if let (Some(first), Some(last)) = (first, last) {
                assert!(
                    order[first..=last].iter().all(|&t| t == waiters.index()),
                    "case {case}: bulk work interleaved with the woken \
                     storm on shard {shard}: {order:?}"
                );
            }
        }
        // Every consumer saw the clean 0 EOF (no error, no data).
        for c in d.completions().iter().filter(|c| c.virtine == consumer) {
            assert!(c.exit_normal, "case {case}: EOF must complete the run");
        }
        // No shell leaked: every shell minted is back in a pool (the
        // parked shells re-entered circulation through their completion).
        let snapshots = d.shard_snapshots();
        let pooled: usize = snapshots
            .iter()
            .map(|s| s.idle_shells + s.warm_shells)
            .sum();
        assert_eq!(
            pooled as u64,
            d.pool_stats().created,
            "case {case}: every minted shell must be back in a pool"
        );
    }
}

/// Resume-time migration preserves the two invariants that make it safe:
/// a migrated resume charges byte-identical guest cycles to a pinned one
/// (migration is accounting-invisible to the guest), and a run killed at
/// its block bound *after* migrating still wipes its shell before reuse
/// (wipe-on-kill isolation follows the shell, not the shard).
#[test]
fn migrated_resumes_charge_identical_cycles_and_wipe_on_kill() {
    let mut rng = Rng::seeded(0x316AA7E);
    for case in 0..8 {
        let addr = 0x4000 + 8 * rng.range_u64(0, 0x200);
        let secret = rng.next_u64() | 1;
        let fillers = rng.below(16) + 8;

        // The consumer plants a secret, then blocking-recvs twice from
        // channel handle 0 (the second recv is where a killed run dies).
        let consumer_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r1, {addr:#x}
  mov r2, {secret:#x}
  store.q [r1], r2
  mov r0, 13           ; chan_recv #1
  mov r1, 0
  mov r2, 0x200
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  mov r0, 13           ; chan_recv #2
  mov r1, 0
  mov r2, 0x300
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let reader_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 10         ; return_data(addr, 8)
  mov r1, {addr:#x}
  mov r2, 8
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let filler_img = visa::assemble(".org 0x8000\n hlt\n").unwrap();

        // One scenario runner: submits the consumer (tenant a, home shard
        // 0 under ByTenant), optionally skews shard 0 so the resume
        // migrates, wakes it once, and returns the dispatcher.
        let run_scenario = |skew: bool, max_block: Option<f64>| {
            let mut d = Dispatcher::new(
                Wasp::new_kvm_default(),
                DispatcherConfig {
                    shards: 2,
                    placement: Placement::ByTenant,
                    ..DispatcherConfig::default()
                },
            );
            let consumer = d
                .register(
                    VirtineSpec::new("c", consumer_img.clone(), MEM)
                        .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_RECV]))
                        .with_snapshot(false),
                )
                .unwrap();
            let filler = d
                .register(VirtineSpec::new("f", filler_img.clone(), MEM).with_snapshot(false))
                .unwrap();
            let mut a = TenantProfile::new("a").with_mask(HypercallMask::ALLOW_ALL);
            if let Some(mb) = max_block {
                a = a.with_max_block(mb);
            }
            let a = d.add_tenant(a);
            let chan = d.wasp().kernel().chan_open(64);
            d.submit(
                Request::new(a, consumer, 0.0)
                    .with_invocation(wasp::Invocation::default().with_chans(vec![chan])),
            )
            .unwrap();
            d.run_until(0.001);
            assert_eq!(d.parked(), 1);
            if skew {
                for _ in 0..fillers {
                    d.submit(Request::new(a, filler, 0.002)).unwrap();
                }
            }
            // One message: wakes recv #1; recv #2 parks again (forever,
            // absent a max_block).
            d.wasp().kernel().chan_send(chan, b"payload1").unwrap();
            d.run_until(0.003);
            d.run_until(0.004);
            (d, consumer, a, chan)
        };

        // Scenario A (pinned): no skew — the resume stays home. Complete
        // it with a second message.
        let (mut da, consumer_a, ta, chan_a) = run_scenario(false, None);
        da.wasp().kernel().chan_send(chan_a, b"payload2").unwrap();
        da.run_to_idle();
        let ca = da
            .completions()
            .iter()
            .find(|c| c.virtine == consumer_a)
            .unwrap()
            .clone();
        assert!(ca.exit_normal && !ca.migrated, "case {case}: pinned run");
        assert_eq!(da.tenant_stats(ta).in_flight, 0);

        // Scenario B (migrated): shard 0's queue is stuffed, so the wake
        // re-admits the consumer on shard 1.
        let (mut db, consumer_b, _tb, chan_b) = run_scenario(true, None);
        db.wasp().kernel().chan_send(chan_b, b"payload2").unwrap();
        db.run_to_idle();
        let cb = db
            .completions()
            .iter()
            .find(|c| c.virtine == consumer_b)
            .unwrap()
            .clone();
        assert!(cb.exit_normal, "case {case}");
        assert!(cb.migrated, "case {case}: skew must force the migration");
        assert_eq!(cb.shard, 1, "case {case}: landed on the idle sibling");
        assert!(db.stats().migrations >= 1, "case {case}");

        // The acceptance invariant: byte-identical guest cycles.
        assert_eq!(
            cb.exec_cycles, ca.exec_cycles,
            "case {case}: a migrated resume must charge exactly the guest \
             cycles a pinned one does"
        );
        assert_eq!(cb.resumes, ca.resumes, "case {case}");

        // Scenario C (wipe-on-kill after migration): same skewed wake,
        // but recv #2 never gets data and the tenant's max_block kills
        // the run — *on the shard it migrated to*. A reader reusing that
        // shard's shell must see zeroes at the secret's address.
        let (mut dc, consumer_c, tc, _chan_c) = run_scenario(true, Some(0.01));
        dc.run_to_idle(); // Fires the block timeout on the landing shard.
        assert_eq!(dc.stats().blocked_timeout, 1, "case {case}");
        let killed = dc
            .completions()
            .iter()
            .find(|c| c.virtine == consumer_c)
            .unwrap()
            .clone();
        assert!(!killed.exit_normal, "case {case}: timeout kill is abnormal");
        assert!(killed.migrated, "case {case}: killed after migrating");
        assert_eq!(killed.shard, 1, "case {case}: died on the landing shard");

        let reader = dc
            .register(
                VirtineSpec::new("r", reader_img.clone(), MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        // Tenant b homes on shard 1 (the landing shard) and reuses the
        // killed run's shell there.
        let b = dc.add_tenant(TenantProfile::new("b").with_mask(HypercallMask::ALLOW_ALL));
        dc.submit(Request::new(b, reader, 1.0)).unwrap();
        dc.run_to_idle();
        let read = dc.completions().last().unwrap();
        assert!(read.exit_normal && read.reused_shell, "case {case}");
        assert_eq!(
            read.result,
            vec![0u8; 8],
            "case {case}: secret {secret:#x} at {addr:#x} survived the \
             wipe after a migrated kill"
        );
        assert_eq!(dc.tenant_stats(tc).in_flight, 0, "case {case}");
    }
}

/// Distance-biased stealing picks the *nearest* donor — a same-CCX donor
/// always beats a cross-socket one at equal load — and never weakens the
/// wipe-on-steal isolation guarantee. Random grouped topologies, random
/// donor-supply sets, random secrets: the thief's completion must always
/// read zeroes, and the steal must land in the distance class of the
/// nearest supplied shard.
#[test]
fn distance_biased_steals_pick_the_nearest_donor_and_never_leak() {
    let mut rng = Rng::seeded(0xd157a4ce);
    for case in 0..15 {
        // 2..=8 shards over 1-2 sockets x 1-2 CCXs x 1-2 shards.
        let (sockets, ccxs, per_ccx) = loop {
            let dims = (rng.below(2) + 1, rng.below(2) + 1, rng.below(2) + 1);
            if dims.0 * dims.1 * dims.2 >= 2 {
                break dims;
            }
        };
        let topology = Topology::grouped(sockets, ccxs, per_ccx);
        let shards = topology.shards();
        let addr = 0x4000 + 8 * rng.range_u64(0, 0x200);
        let secret = rng.next_u64() | 1;

        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                placement: Placement::ByTenant,
                topology: Some(topology.clone()),
                ..DispatcherConfig::default()
            },
        );
        let writer_img = visa::assemble(&format!(
            ".org 0x8000\n mov r1, {addr:#x}\n mov r2, {secret:#x}\n store.q [r1], r2\n hlt\n"
        ))
        .unwrap();
        let writer = d
            .register(VirtineSpec::new("writer", writer_img, MEM).with_snapshot(false))
            .unwrap();
        let reader_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 10         ; return_data(addr, 8)
  mov r1, {addr:#x}
  mov r2, 8
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let reader = d
            .register(
                VirtineSpec::new("reader", reader_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        // One tenant per shard (ByTenant: tenant i homes on shard i).
        let tenants: Vec<_> = (0..shards)
            .map(|i| {
                d.add_tenant(
                    TenantProfile::new(format!("t{i}")).with_mask(HypercallMask::ALLOW_ALL),
                )
            })
            .collect();

        // Supply: a random non-empty set of shards (excluding the thief's
        // home) each runs the secret-planting writer once, parking one
        // wiped clean shell locally.
        let thief_home = rng.below(shards);
        let supply: Vec<usize> = (0..shards)
            .filter(|&s| s != thief_home && rng.bool(0.6))
            .collect();
        if supply.is_empty() {
            continue;
        }
        // Prewarm one shell per supply shard first, so each writer is a
        // guaranteed *local* acquire (a dry writer shard would otherwise
        // steal an earlier writer's parked shell and skew the supply).
        for &s in &supply {
            d.prewarm_shard(s, MEM, 1);
        }
        let mut t = 0.0;
        for &s in &supply {
            d.submit(Request::new(tenants[s], writer, t)).unwrap();
            d.run_to_idle();
            t += 0.01;
        }
        assert_eq!(d.stats().stolen, 0, "case {case}: planting stole");
        for &s in &supply {
            assert_eq!(d.shard_snapshots()[s].idle_shells, 1, "case {case}");
        }

        // The thief's home is dry: serving it must steal from the
        // *nearest* supplied shard (lowest index within the class).
        let expected_hop = supply
            .iter()
            .map(|&s| topology.hop(thief_home, s))
            .min()
            .unwrap();
        let expected_donor = supply
            .iter()
            .copied()
            .filter(|&s| topology.hop(thief_home, s) == expected_hop)
            .min()
            .unwrap();
        d.submit(Request::new(tenants[thief_home], reader, t + 0.01))
            .unwrap();
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert!(c.stolen_shell, "case {case}: steal did not happen");
        assert_eq!(c.shard, thief_home, "case {case}");
        assert_eq!(
            c.result,
            vec![0u8; 8],
            "case {case}: secret {secret:#x} at {addr:#x} leaked through a \
             distance-biased steal"
        );
        let s = d.stats();
        let by_class = (s.stolen_same_ccx, s.stolen_cross_ccx, s.stolen_cross_socket);
        let expected_class = match expected_hop {
            Hop::SameCcx => (1, 0, 0),
            Hop::SameSocket => (0, 1, 0),
            Hop::CrossSocket => (0, 0, 1),
            Hop::Local => unreachable!("supply excludes the thief"),
            Hop::CrossNode => unreachable!("intra-node topology never yields a node hop"),
        };
        assert_eq!(
            by_class, expected_class,
            "case {case}: steal crossed a farther hop than the nearest \
             donor ({expected_hop:?}) required"
        );
        assert_eq!(
            d.shard_snapshots()[expected_donor].stats.stolen_out,
            1,
            "case {case}: donor must be the nearest supplied shard \
             {expected_donor} (home {thief_home}, supply {supply:?})"
        );
        assert_eq!(s.stolen, 1, "case {case}");
    }
}

/// Per-tenant warm quotas and the global warm budget hold across shards
/// under an arbitrary steal/demote/migrate mix: random topologies, shell
/// scarcity (steal and demote pressure), parked-and-woken consumers
/// (resume-time migration), and random snapshotted request streams never
/// push any tenant above its quota or the platform above its budget.
#[test]
fn warm_quota_and_budget_hold_under_steal_demote_migrate_mix() {
    let mut rng = Rng::seeded(0x40a7a);
    for case in 0..10 {
        let (sockets, ccxs, per_ccx) = loop {
            let dims = (rng.below(2) + 1, rng.below(2) + 1, rng.below(2) + 1);
            if dims.0 * dims.1 * dims.2 >= 2 {
                break dims;
            }
        };
        let topology = Topology::grouped(sockets, ccxs, per_ccx);
        let shards = topology.shards();
        let quota = rng.below(2) + 1;
        let n_tenants = rng.below(2) + 2;
        let budget = quota + rng.below(quota * (n_tenants - 1) + 1);
        let placement = match rng.below(3) {
            0 => Placement::SnapshotAware,
            1 => Placement::LeastLoaded,
            _ => Placement::ByTenant,
        };

        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                placement,
                topology: Some(topology),
                warm_budget: Some(budget),
                warm_tenant_quota: Some(quota),
                ..DispatcherConfig::default()
            },
        );
        // Snapshotted worker: init, snapshot, a little post-snapshot work.
        let snap_img = visa::assemble(
            "
.org 0x8000
  mov r1, 0x7000
  mov r2, 41
  store.q [r1], r2
  mov r0, 8            ; snapshot()
  out 0x1, r0
  load.q r0, [r1]
  hlt
",
        )
        .unwrap();
        // Chan consumer: parks on an empty channel, completes on a send.
        let chan_img = visa::assemble(
            "
.org 0x8000
  mov r0, 13           ; chan_recv
  mov r1, 0
  mov r2, 0x4000
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        let consumer = d
            .register(
                VirtineSpec::new("consumer", chan_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_RECV]))
                    .with_snapshot(false),
            )
            .unwrap();
        let tenants: Vec<_> = (0..n_tenants)
            .map(|i| {
                let virtines: Vec<_> = (0..rng.below(2) + 2)
                    .map(|v| {
                        d.register(VirtineSpec::new(format!("t{i}v{v}"), snap_img.clone(), MEM))
                            .unwrap()
                    })
                    .collect();
                let t = d.add_tenant(
                    TenantProfile::new(format!("t{i}")).with_mask(HypercallMask::ALLOW_ALL),
                );
                (t, virtines)
            })
            .collect();
        // Scarce prewarm: 0-1 shells per shard, so acquires exert steal
        // and warm-demote pressure against the quota machinery.
        d.prewarm(MEM, rng.below(2));

        let check = |d: &Dispatcher, at: &str| {
            let total: usize = d.warm_resident();
            assert!(
                total <= budget,
                "case {case} {at}: {total} warm resident > budget {budget}"
            );
            for (t, _) in &tenants {
                let r = d.warm_resident_of(*t);
                assert!(
                    r <= quota,
                    "case {case} {at}: tenant {} holds {r} > quota {quota}",
                    t.index()
                );
            }
        };

        // Park a consumer mid-stream, skew its home shard, wake it: the
        // resume migrates while warm parks keep landing.
        let chan = d.wasp().kernel().chan_open(64);
        d.submit(
            Request::new(tenants[0].0, consumer, 0.0)
                .with_invocation(wasp::Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        d.run_until(0.001);

        let mut t = 0.002;
        let n = rng.below(30) + 15;
        for i in 0..n {
            let (tenant, virtines) = &tenants[rng.below(n_tenants)];
            let virtine = virtines[rng.below(virtines.len())];
            d.submit(Request::new(*tenant, virtine, t).with_args(vec![i as u8]))
                .unwrap();
            if rng.bool(0.3) {
                d.run_to_idle();
                check(&d, "mid-stream");
            }
            t += rng.range_f64(0.0, 0.002);
        }
        d.wasp().kernel().chan_send(chan, b"wake").unwrap();
        d.run_until(t + 0.001);
        d.run_to_idle();
        check(&d, "after drain");

        let s = d.stats();
        assert_eq!(s.submitted, s.served + s.shed(), "case {case}");
        for (tenant, _) in &tenants {
            assert_eq!(d.tenant_stats(*tenant).in_flight, 0, "case {case}");
        }
    }
}

/// Shard lifecycle churn: random interleavings of submit / drain /
/// restore / fail / reconcile under live traffic — including parked
/// channel consumers — preserve the exactly-once contract (every
/// admitted request is served once or shed once, never both, never
/// twice), leak no shells (pooled inventory balances creations minus
/// destructions), and keep warm tenant quotas holding on the surviving
/// shards. Drains and fails never take the last active shard, as an
/// operator's guardrail would ensure. Runs under the [`CHURN_SEEDS`]
/// matrix: the same total number of cases as before, spread across
/// seeds so the interleaving space is sampled more widely.
#[test]
fn lifecycle_churn_keeps_exactly_once_accounting_and_leaks_nothing() {
    for &seed in CHURN_SEEDS {
        lifecycle_churn_cases(seed, 2);
    }
}

fn lifecycle_churn_cases(seed: u64, cases: usize) {
    let mut rng = Rng::seeded(seed);
    for i in 0..cases {
        let case = format!("{seed:#x}/{i}");
        let shards = rng.below(3) + 2;
        let quota = rng.below(2) + 1;
        let placement = match rng.below(3) {
            0 => Placement::SnapshotAware,
            1 => Placement::LeastLoaded,
            _ => Placement::ByTenant,
        };
        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                placement,
                warm_tenant_quota: Some(quota),
                ..DispatcherConfig::default()
            },
        );
        // A snapshotted worker (exercises warm-shell migration) and a
        // blocking channel consumer (exercises park migration, grace
        // eviction, and eviction-on-failure).
        let snap_img = visa::assemble(
            "
.org 0x8000
  mov r1, 0x7000
  mov r2, 41
  store.q [r1], r2
  mov r0, 8            ; snapshot()
  out 0x1, r0
  load.q r0, [r1]
  hlt
",
        )
        .unwrap();
        let chan_img = visa::assemble(
            "
.org 0x8000
  mov r0, 13           ; chan_recv
  mov r1, 0
  mov r2, 0x4000
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        let worker = d.register(VirtineSpec::new("w", snap_img, MEM)).unwrap();
        let consumer = d
            .register(
                VirtineSpec::new("c", chan_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_RECV]))
                    .with_snapshot(false),
            )
            .unwrap();
        let n_tenants = rng.below(2) + 2;
        let tenants: Vec<_> = (0..n_tenants)
            .map(|i| {
                let mut p = TenantProfile::new(format!("t{i}")).with_mask(HypercallMask::ALLOW_ALL);
                if rng.bool(0.5) {
                    p = p.with_drain_grace(rng.range_f64(0.0005, 0.003));
                }
                d.add_tenant(p)
            })
            .collect();
        let chan = d.wasp().kernel().chan_open(256);

        let mut t = 0.0;
        let ops = rng.below(60) + 40;
        for _ in 0..ops {
            t += rng.range_f64(0.0, 0.002);
            match rng.below(10) {
                0..=4 => {
                    let tenant = tenants[rng.below(tenants.len())];
                    if rng.bool(0.25) {
                        let _ =
                            d.submit(Request::new(tenant, consumer, t).with_invocation(
                                wasp::Invocation::default().with_chans(vec![chan]),
                            ));
                    } else {
                        let _ = d.submit(Request::new(tenant, worker, t));
                    }
                }
                5 | 6 => {
                    let shard = rng.below(shards);
                    let actives = d.shard_states().iter().filter(|s| s.is_active()).count();
                    if actives > 1 || !d.shard_state(shard).is_active() {
                        d.drain_shard(shard);
                    }
                }
                7 => {
                    d.restore_shard(rng.below(shards));
                }
                8 => {
                    let shard = rng.below(shards);
                    let actives = d.shard_states().iter().filter(|s| s.is_active()).count();
                    if actives > 1 || !d.shard_state(shard).is_active() {
                        d.fail_shard(shard);
                    }
                }
                _ => {
                    d.reconcile();
                    d.run_until(t);
                }
            }
        }

        // Quiesce: restore every shard (a restored cluster has nothing to
        // reconcile), wake every still-parked consumer via EOF, and run
        // everything down.
        for shard in 0..shards {
            d.restore_shard(shard);
        }
        assert!(d.reconcile().is_empty(), "case {case}: restored != quiet");
        d.wasp().kernel().chan_close(chan).unwrap();
        d.run_to_idle();
        assert_eq!(d.parked(), 0, "case {case}: runs left parked");

        let g = d.stats();
        assert_eq!(
            g.submitted,
            g.served + g.shed(),
            "case {case}: global conservation (served {}, evicted {})",
            g.served,
            g.shed_evicted,
        );
        assert_eq!(
            d.completions().len() as u64,
            g.served,
            "case {case}: exactly one completion per served run"
        );
        let (mut sub, mut served, mut shed) = (0, 0, 0);
        for &tid in &tenants {
            let s = d.tenant_stats(tid);
            assert_eq!(
                s.submitted,
                s.served + s.shed(),
                "case {case}: tenant {} conservation",
                tid.index()
            );
            assert_eq!(s.in_flight, 0, "case {case}");
            assert!(
                d.warm_resident_of(tid) <= quota,
                "case {case}: tenant {} warm quota violated on survivors",
                tid.index()
            );
            sub += s.submitted;
            served += s.served;
            shed += s.shed();
        }
        assert_eq!(
            (sub, served, shed),
            (g.submitted, g.served, g.shed()),
            "case {case}: tenant planes disagree with the dispatcher"
        );
        // No shell leaks: pooled inventory balances mint minus destroy.
        let p = d.pool_stats();
        let pooled: usize = d
            .shard_snapshots()
            .iter()
            .map(|s| s.idle_shells + s.warm_shells)
            .sum();
        assert_eq!(
            pooled as u64,
            p.created - p.dropped,
            "case {case}: shells leaked (created {}, dropped {})",
            p.created,
            p.dropped
        );
    }
}

/// The failover layer's exactly-once contract under adversarial
/// interleavings: random shard kills and restores under live traffic
/// from retry- and hedge-enabled tenants lose nothing (every admitted
/// request is eventually served once or shed once) and double-run
/// nothing (at most one completion per logical sequence number), with
/// the retry-backoff bridge term draining to zero at quiesce. Unlike
/// the lifecycle churn above, kills here MAY take the last active
/// shard — evacuation then has no destination and the work is lost to
/// the failure, which is exactly the loss the retry path exists to
/// absorb. Runs under the [`CHURN_SEEDS`] matrix.
#[test]
fn retry_and_hedge_interleavings_never_lose_or_double_run() {
    for &seed in CHURN_SEEDS {
        retry_churn_cases(seed, 2);
    }
}

fn retry_churn_cases(seed: u64, cases: usize) {
    let mut rng = Rng::seeded(seed);
    for i in 0..cases {
        let case = format!("{seed:#x}/{i}");
        let shards = rng.below(3) + 1;
        let placement = match rng.below(3) {
            0 => Placement::SnapshotAware,
            1 => Placement::LeastLoaded,
            _ => Placement::ByTenant,
        };
        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                placement,
                ..DispatcherConfig::default()
            },
        );
        // A plain halting worker (conn-free, so the dispatcher tracks it
        // for retry and hedging) plus a blocking channel consumer whose
        // parked run dies with its shard and must be retried.
        let img = visa::assemble(".org 0x8000\n mov r0, 3\n hlt\n").unwrap();
        let chan_img = visa::assemble(
            "
.org 0x8000
  mov r0, 13           ; chan_recv
  mov r1, 0
  mov r2, 0x4000
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        let worker = d
            .register(VirtineSpec::new("w", img, MEM).with_snapshot(false))
            .unwrap();
        let consumer = d
            .register(
                VirtineSpec::new("c", chan_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_RECV]))
                    .with_snapshot(false),
            )
            .unwrap();
        let chan = d.wasp().kernel().chan_open(256);
        let n_tenants = rng.below(2) + 2;
        let tenants: Vec<_> = (0..n_tenants)
            .map(|j| {
                let mut p = TenantProfile::new(format!("t{j}"))
                    .with_mask(HypercallMask::ALLOW_ALL)
                    .with_retry(
                        RetryPolicy::new()
                            .with_max_attempts((rng.below(3) + 2) as u32)
                            .with_backoff(rng.range_f64(0.0001, 0.001))
                            .with_jitter(0.2),
                    );
                if rng.bool(0.5) {
                    p = p.with_hedge(
                        HedgePolicy::new().with_min_delay(rng.range_f64(0.0002, 0.002)),
                    );
                }
                d.add_tenant(p)
            })
            .collect();

        let mut t = 0.0;
        let ops = rng.below(50) + 30;
        for _ in 0..ops {
            t += rng.range_f64(0.0, 0.002);
            match rng.below(8) {
                0..=4 => {
                    let tenant = tenants[rng.below(tenants.len())];
                    if rng.bool(0.2) {
                        let _ =
                            d.submit(Request::new(tenant, consumer, t).with_invocation(
                                wasp::Invocation::default().with_chans(vec![chan]),
                            ));
                    } else {
                        let _ = d.submit(Request::new(tenant, worker, t));
                    }
                }
                5 => {
                    d.fail_shard(rng.below(shards));
                }
                6 => {
                    d.restore_shard(rng.below(shards));
                }
                _ => {
                    d.run_until(t);
                    // Mid-stream the two planes must already agree on
                    // how much lost work is waiting out its backoff.
                    let g = d.stats();
                    let per: u64 = tenants
                        .iter()
                        .map(|&id| d.tenant_stats(id).retried_in_flight)
                        .sum();
                    assert_eq!(g.retried_in_flight, per, "case {case}: bridge term");
                }
            }
        }

        // Quiesce: bring every shard back, wake the parked consumers via
        // EOF, and run the backoff queue and everything behind it down.
        for shard in 0..shards {
            d.restore_shard(shard);
        }
        d.wasp().kernel().chan_close(chan).unwrap();
        d.run_to_idle();
        assert_eq!(d.parked(), 0, "case {case}: runs left parked");

        // Zero lost: the ledger balances with the bridge term drained.
        let g = d.stats();
        assert_eq!(
            g.submitted,
            g.served + g.shed(),
            "case {case}: conservation (served {}, evicted {})",
            g.served,
            g.shed_evicted,
        );
        assert_eq!(
            g.retried_in_flight, 0,
            "case {case}: backoff bridge not drained"
        );

        // Zero double-run: at most one completion per logical seq, and
        // exactly one per served request — a hedge loser or a stale
        // retry surfacing as a second completion fails here.
        let mut seqs: Vec<u64> = d.completions().iter().map(|c| c.seq).collect();
        let n = seqs.len();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(
            seqs.len(),
            n,
            "case {case}: a logical request completed twice"
        );
        assert_eq!(n as u64, g.served, "case {case}: one completion per served");

        for &id in &tenants {
            let s = d.tenant_stats(id);
            assert_eq!(s.in_flight, 0, "case {case}");
            assert_eq!(
                s.submitted,
                s.served + s.shed(),
                "case {case}: tenant {} conservation",
                id.index()
            );
            assert_eq!(s.retried_in_flight, 0, "case {case}");
        }
    }
}

/// Work conservation under an arbitrary tenant mix: submitted =
/// served + shed across every tenant, and the dispatcher totals agree
/// with the per-tenant totals.
#[test]
fn accounting_is_conserved_for_any_mix() {
    let mut rng = Rng::seeded(0xacc7);
    for case in 0..10 {
        let shards = rng.below(8) + 1;
        let tenants_n = rng.below(5) + 1;
        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                batch_size: rng.below(8) + 1,
                ..DispatcherConfig::default()
            },
        );
        let img = visa::assemble(".org 0x8000\n hlt\n").unwrap();
        let id = d
            .register(VirtineSpec::new("f", img, MEM).with_snapshot(false))
            .unwrap();
        let tenants: Vec<_> = (0..tenants_n)
            .map(|i| {
                let mut p = TenantProfile::new(format!("t{i}"));
                if rng.bool(0.5) {
                    p = p.with_rate(rng.range_f64(50.0, 500.0), 4.0);
                }
                if rng.bool(0.3) {
                    p = p.with_max_in_flight(rng.below(6) + 1);
                }
                d.add_tenant(p.with_priority(rng.below(4) as u8))
            })
            .collect();
        let n = rng.below(150) + 20;
        let mut arrivals: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 0.2)).collect();
        arrivals.sort_by(f64::total_cmp);
        for &t in &arrivals {
            let tenant = tenants[rng.below(tenants.len())];
            let _ = d.submit(Request::new(tenant, id, t));
        }
        d.run_to_idle();

        let g = d.stats();
        assert_eq!(g.submitted, n as u64, "case {case}");
        assert_eq!(g.admitted, g.served, "case {case}");
        assert_eq!(g.submitted, g.served + g.shed(), "case {case}");
        let mut sub = 0;
        let mut served = 0;
        let mut shed = 0;
        for &t in &tenants {
            let s = d.tenant_stats(t);
            assert_eq!(s.submitted, s.served + s.shed(), "case {case}");
            assert_eq!(s.in_flight, 0, "case {case}");
            sub += s.submitted;
            served += s.served;
            shed += s.shed();
        }
        assert_eq!(
            (sub, served, shed),
            (g.submitted, g.served, g.shed()),
            "case {case}"
        );
        assert_eq!(d.completions().len() as u64, g.served, "case {case}");
    }
}
