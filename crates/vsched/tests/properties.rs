//! Property-style tests over the dispatcher's isolation invariants,
//! driven by the repository's seeded PRNG (no external crates).

use vclock::rng::Rng;
use vsched::{Dispatcher, DispatcherConfig, Placement, Request, TenantProfile};
use wasp::{HypercallMask, VirtineSpec, Wasp};

const MEM: usize = 64 * 1024;

/// A tenant at its token-bucket limit is shed while other tenants keep
/// being served (ISSUE: admission isolation). Random arrival streams;
/// invariants checked on every stream:
///
/// * the throttled tenant's admissions never exceed its bucket's budget;
/// * the unthrottled tenant is never shed and every submission is served;
/// * everything admitted is eventually served.
#[test]
fn rate_limited_tenant_sheds_without_collateral_damage() {
    let mut rng = Rng::seeded(0x7e4a47);
    for case in 0..20 {
        let rate = rng.range_f64(20.0, 200.0);
        let burst = rng.range_u64(1, 8) as f64;
        let duration = rng.range_f64(0.05, 0.5);
        let n = rng.below(120) + 30;

        let mut d = Dispatcher::new(Wasp::new_kvm_default(), DispatcherConfig::default());
        let img = visa::assemble(".org 0x8000\n mov r0, 1\n hlt\n").unwrap();
        let id = d
            .register(VirtineSpec::new("f", img, MEM).with_snapshot(false))
            .unwrap();
        let throttled = d.add_tenant(TenantProfile::new("throttled").with_rate(rate, burst));
        let free = d.add_tenant(TenantProfile::new("free"));

        let mut arrivals: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, duration)).collect();
        arrivals.sort_by(f64::total_cmp);
        for (i, &t) in arrivals.iter().enumerate() {
            let tenant = if i % 2 == 0 { throttled } else { free };
            let _ = d.submit(Request::new(tenant, id, t));
        }
        d.drain();

        let ts = d.tenant_stats(throttled);
        let fs = d.tenant_stats(free);
        let budget = burst + rate * duration + 1.0;
        assert!(
            (ts.admitted as f64) <= budget,
            "case {case}: admitted {} > token budget {budget:.1} (rate {rate:.0}, burst {burst})",
            ts.admitted,
        );
        assert_eq!(
            ts.submitted,
            ts.admitted + ts.shed_rate_limit,
            "case {case}: throttled accounting"
        );
        assert_eq!(fs.shed(), 0, "case {case}: free tenant shed");
        assert_eq!(fs.served, fs.submitted, "case {case}: free tenant starved");
        assert_eq!(ts.served, ts.admitted, "case {case}: admitted not served");
        assert_eq!(ts.in_flight, 0, "case {case}");
        assert_eq!(fs.in_flight, 0, "case {case}");
    }
}

/// A shell released by tenant A and stolen by tenant B's shard is wiped
/// before reuse: B can never read A's data (§5.2's no-information-leakage
/// guarantee, extended across tenants and shards). Random secrets and
/// addresses; the reader returns the bytes at the secret's address via
/// `return_data` and must always see zeroes.
#[test]
fn stolen_shells_never_leak_across_tenants() {
    let mut rng = Rng::seeded(0x5713a1);
    for case in 0..15 {
        // A guest-memory address the image/stack regions don't touch.
        let addr = 0x4000 + 8 * rng.range_u64(0, 0x200);
        let secret = rng.next_u64() | 1; // Never zero.

        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards: 2,
                placement: Placement::ByTenant,
                ..DispatcherConfig::default()
            },
        );
        // Tenant A (index 0) homes on shard 0; tenant B (index 1) on 1.
        let writer_img = visa::assemble(&format!(
            ".org 0x8000\n mov r1, {addr:#x}\n mov r2, {secret:#x}\n store.q [r1], r2\n hlt\n"
        ))
        .unwrap();
        let reader_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 10         ; return_data(addr, 8)
  mov r1, {addr:#x}
  mov r2, 8
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let writer = d
            .register(VirtineSpec::new("writer", writer_img, MEM).with_snapshot(false))
            .unwrap();
        let reader = d
            .register(
                VirtineSpec::new("reader", reader_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        let a = d.add_tenant(TenantProfile::new("a"));
        let b = d.add_tenant(TenantProfile::new("b").with_mask(HypercallMask::ALLOW_ALL));

        // A dirties a shell; it parks (wiped) in shard 0's pool.
        d.submit(Request::new(a, writer, 0.0)).unwrap();
        d.drain();
        assert_eq!(d.shard_snapshots()[0].idle_shells, 1, "case {case}");

        // B's home shard is dry: serving B steals A's shell.
        d.submit(Request::new(b, reader, 0.01)).unwrap();
        d.drain();
        let c = d.completions().last().unwrap();
        assert!(c.stolen_shell, "case {case}: steal did not happen");
        assert_eq!(d.tenant_stats(b).stolen_serves, 1, "case {case}");
        assert_eq!(
            c.result,
            vec![0u8; 8],
            "case {case}: tenant A's secret at {addr:#x} leaked to tenant B"
        );
    }
}

/// A *warm* shell — parked still holding a snapshotted run's state — is
/// never handed to a different tenant or a different virtine without a
/// full wipe and a clean-path acquire. Extends the stolen-shell-wipe
/// property to warm demotion (same shard, different key) and cross-shard
/// warm steals: in both scenarios a writer virtine plants a random secret
/// *after* its snapshot point (so the secret lives in the warm shell's
/// resident state), and a reader under a different key must always see
/// zeroes and never a warm hit.
#[test]
fn warm_shells_never_cross_tenants_or_virtines_without_a_wipe() {
    let mut rng = Rng::seeded(0x3a11ce);
    for case in 0..12 {
        // A guest-memory address the image/stack regions don't touch.
        let addr = 0x4000 + 8 * rng.range_u64(0, 0x200);
        let secret = rng.next_u64() | 1; // Never zero.

        // Scenario 0: same-shard demotion (different tenant).
        // Scenario 1: same-shard demotion (same tenant, different virtine).
        // Scenario 2: cross-shard warm steal.
        let scenario = case % 3;
        let shards = if scenario == 2 { 2 } else { 1 };

        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                placement: Placement::ByTenant,
                ..DispatcherConfig::default()
            },
        );
        // Writer: snapshots, then plants the secret post-snapshot. The
        // spec snapshot is enabled, so its shell parks *warm* with the
        // secret resident.
        let writer_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r1, {addr:#x}
  mov r2, {secret:#x}
  store.q [r1], r2
  hlt
"
        ))
        .unwrap();
        let reader_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 10         ; return_data(addr, 8)
  mov r1, {addr:#x}
  mov r2, 8
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let writer = d
            .register(VirtineSpec::new("writer", writer_img, MEM))
            .unwrap();
        let reader = d
            .register(
                VirtineSpec::new("reader", reader_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        // Tenant A gets the return_data ceiling too, so scenario 1 can use
        // the *same* tenant for the read and exercise the virtine half of
        // the warm key (the spec policies are what actually constrain each
        // virtine).
        let a = d.add_tenant(TenantProfile::new("a").with_mask(HypercallMask::ALLOW_ALL));
        let b = d.add_tenant(TenantProfile::new("b").with_mask(HypercallMask::ALLOW_ALL));
        let reading_tenant = if scenario == 1 { a } else { b };

        // The writer runs as tenant A and parks a warm shell (with the
        // secret resident) on its home shard.
        d.submit(Request::new(a, writer, 0.0)).unwrap();
        d.drain();
        let home = d.completions()[0].shard;
        assert_eq!(
            d.shard_snapshots()[home].warm_shells,
            1,
            "case {case}: writer must park warm"
        );

        // The reader runs under a different key; the only shell available
        // is the warm one, reachable via demotion (same shard) or a
        // cross-shard warm steal.
        d.submit(Request::new(reading_tenant, reader, 0.01))
            .unwrap();
        d.drain();
        let c = d.completions().last().unwrap();
        assert!(c.exit_normal, "case {case}: reader failed");
        assert!(!c.warm_hit, "case {case}: warm shell crossed keys");
        assert!(
            c.reused_shell,
            "case {case}: the shell must be recycled, not re-created"
        );
        if scenario == 2 {
            assert!(c.stolen_shell, "case {case}: cross-shard steal expected");
        }
        assert_eq!(
            c.result,
            vec![0u8; 8],
            "case {case}: secret {secret:#x} at {addr:#x} leaked through a warm shell \
             (scenario {scenario})"
        );
        assert_eq!(d.stats().warm_demotions, 1, "case {case}");
        assert_eq!(d.pool_stats().created, 1, "case {case}");
    }
}

/// A shell parked with a *blocked* run (suspended in a blocking `recv`)
/// is untouchable: it is never stolen by a dry sibling, never demoted as
/// a warm victim, and — when the run is killed mid-block at its tenant's
/// `max_block` — it re-enters circulation only through the full wipe.
/// Random secrets planted (post-snapshot, so they live in resident state)
/// by the blocked virtine before it parks; steal and demote traffic runs
/// around the parked shell the whole time.
#[test]
fn parked_blocked_shells_are_never_stolen_or_demoted_and_wipe_on_kill() {
    let mut rng = Rng::seeded(0xb10cced);
    for case in 0..8 {
        // A guest-memory address the image/stack regions don't touch.
        let addr = 0x4000 + 8 * rng.range_u64(0, 0x200);
        let secret = rng.next_u64() | 1; // Never zero.
        let max_block_s = rng.range_f64(0.01, 0.05);

        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards: 2,
                placement: Placement::ByTenant,
                ..DispatcherConfig::default()
            },
        );
        // The blocked writer: snapshots (so warm machinery is armed for
        // this spec), plants the secret *after* the snapshot point, then
        // parks in a blocking recv nobody ever satisfies.
        let writer_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r1, {addr:#x}
  mov r2, {secret:#x}
  store.q [r1], r2
  mov r0, 7            ; recv — blocks forever
  mov r1, 0x200
  mov r2, 64
  mov r3, 0
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let reader_img = visa::assemble(&format!(
            "
.org 0x8000
  mov r0, 10         ; return_data(addr, 8)
  mov r1, {addr:#x}
  mov r2, 8
  out 0x1, r0
  hlt
"
        ))
        .unwrap();
        let writer = d
            .register(
                VirtineSpec::new("writer", writer_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RECV])),
            )
            .unwrap();
        let reader = d
            .register(
                VirtineSpec::new("reader", reader_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        // Tenant a (home shard 0) parks the blocked writer; b (shard 1)
        // generates clean-shell traffic; c (shard 0) generates steal
        // pressure against shard 0 — whose only shell is the parked one.
        let a = d.add_tenant(
            TenantProfile::new("a")
                .with_mask(HypercallMask::ALLOW_ALL)
                .with_max_block(max_block_s),
        );
        let b = d.add_tenant(TenantProfile::new("b").with_mask(HypercallMask::ALLOW_ALL));
        let c = d.add_tenant(TenantProfile::new("c").with_mask(HypercallMask::ALLOW_ALL));

        let k = d.wasp().kernel();
        k.net_listen(80).unwrap();
        let _client = k.net_connect(80).unwrap();
        let server = k.net_accept(80).unwrap().unwrap();
        d.submit(Request::new(a, writer, 0.0).with_invocation(wasp::Invocation::with_conn(server)))
            .unwrap();
        d.run_until(0.001);
        assert_eq!(d.parked(), 1, "case {case}: writer must park");
        assert_eq!(d.shard_snapshots()[0].parked, 1, "case {case}");
        assert_eq!(
            d.shard_snapshots()[0].idle_shells + d.shard_snapshots()[0].warm_shells,
            0,
            "case {case}: the parked shell is outside the pool"
        );

        // b seeds shard 1 with a clean shell; c's request on shard 0 then
        // finds an empty pool and must steal b's — never a's parked shell.
        d.submit(Request::new(b, reader, 0.002)).unwrap();
        d.run_until(0.004);
        d.submit(Request::new(c, reader, 0.005)).unwrap();
        d.run_until(0.007);
        let cs: Vec<&vsched::Completion> = d.completions().iter().collect();
        assert_eq!(cs.len(), 2, "case {case}: readers served while parked");
        for comp in &cs {
            assert!(comp.exit_normal, "case {case}");
            assert_eq!(
                comp.result,
                vec![0u8; 8],
                "case {case}: secret visible outside the parked shell"
            );
            assert!(!comp.warm_hit, "case {case}: nothing warm to hit");
        }
        let stolen_serve = cs.iter().filter(|c| c.stolen_shell).count();
        assert_eq!(
            stolen_serve, 1,
            "case {case}: c must steal b's clean shell, proving steal \
             pressure existed while the parked shell stayed untouched"
        );
        assert_eq!(d.parked(), 1, "case {case}: still parked through it all");
        assert_eq!(
            d.pool_stats().created,
            2,
            "case {case}: exactly the writer's shell and b's — stealing \
             never minted a third, and never took the parked one"
        );
        assert_eq!(d.stats().warm_demotions, 0, "case {case}");
        assert_eq!(d.pool_stats().warm_demoted, 0, "case {case}");

        // Let the tenant's max_block expire: the parked run is killed and
        // its shell — still holding the secret — re-enters circulation
        // only through the wiped release.
        d.drain();
        assert_eq!(d.parked(), 0, "case {case}");
        assert_eq!(d.stats().blocked_timeout, 1, "case {case}");
        assert_eq!(d.tenant_stats(a).blocked_timeout, 1, "case {case}");
        assert_eq!(d.tenant_stats(a).in_flight, 0, "case {case}");
        let killed = d.completions().last().unwrap();
        assert!(!killed.exit_normal, "case {case}: timeout kill is abnormal");

        // c reads again on shard 0: it reuses the killed shell (no new
        // creation) and must see zeroes at the secret's address.
        d.submit(Request::new(c, reader, max_block_s + 0.01))
            .unwrap();
        d.drain();
        let comp = d.completions().last().unwrap();
        assert!(comp.exit_normal && comp.reused_shell, "case {case}");
        assert_eq!(
            comp.result,
            vec![0u8; 8],
            "case {case}: secret {secret:#x} at {addr:#x} survived the \
             mid-block kill wipe"
        );
        assert_eq!(
            d.pool_stats().created,
            2,
            "case {case}: recycled, not re-created"
        );
    }
}

/// Work conservation under an arbitrary tenant mix: submitted =
/// served + shed across every tenant, and the dispatcher totals agree
/// with the per-tenant totals.
#[test]
fn accounting_is_conserved_for_any_mix() {
    let mut rng = Rng::seeded(0xacc7);
    for case in 0..10 {
        let shards = rng.below(8) + 1;
        let tenants_n = rng.below(5) + 1;
        let mut d = Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards,
                batch_size: rng.below(8) + 1,
                ..DispatcherConfig::default()
            },
        );
        let img = visa::assemble(".org 0x8000\n hlt\n").unwrap();
        let id = d
            .register(VirtineSpec::new("f", img, MEM).with_snapshot(false))
            .unwrap();
        let tenants: Vec<_> = (0..tenants_n)
            .map(|i| {
                let mut p = TenantProfile::new(format!("t{i}"));
                if rng.bool(0.5) {
                    p = p.with_rate(rng.range_f64(50.0, 500.0), 4.0);
                }
                if rng.bool(0.3) {
                    p = p.with_max_in_flight(rng.below(6) + 1);
                }
                d.add_tenant(p.with_priority(rng.below(4) as u8))
            })
            .collect();
        let n = rng.below(150) + 20;
        let mut arrivals: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 0.2)).collect();
        arrivals.sort_by(f64::total_cmp);
        for &t in &arrivals {
            let tenant = tenants[rng.below(tenants.len())];
            let _ = d.submit(Request::new(tenant, id, t));
        }
        d.drain();

        let g = d.stats();
        assert_eq!(g.submitted, n as u64, "case {case}");
        assert_eq!(g.admitted, g.served, "case {case}");
        assert_eq!(g.submitted, g.served + g.shed(), "case {case}");
        let mut sub = 0;
        let mut served = 0;
        let mut shed = 0;
        for &t in &tenants {
            let s = d.tenant_stats(t);
            assert_eq!(s.submitted, s.served + s.shed(), "case {case}");
            assert_eq!(s.in_flight, 0, "case {case}");
            sub += s.submitted;
            served += s.served;
            shed += s.shed();
        }
        assert_eq!(
            (sub, served, shed),
            (g.submitted, g.served, g.shed()),
            "case {case}"
        );
        assert_eq!(d.completions().len() as u64, g.served, "case {case}");
    }
}
