//! The placement engine: every shell-routing policy decision in one
//! layer, priced by one cost function.
//!
//! The dispatcher makes exactly four routing decisions on the hot path.
//! Before this layer they lived as inline scoring scattered through
//! `dispatcher.rs`; now each is a question put to a [`PlacementEngine`]
//! over a slice of [`Candidate`]s, and the dispatcher only executes the
//! answer (pops, steals, transfers, charges the per-hop cost):
//!
//! ```text
//!                     ┌──────────────────────────────┐
//!     submit ───────► │ 1. admit                     │──► enqueue on shard
//!                     │    which shard queues it?    │
//!                     ├──────────────────────────────┤
//!     batch tick ───► │ 2. steal_clean (dry pool)    │──► take_idle from
//!                     │    which sibling donates a   │    the donor
//!                     │    clean shell?              │
//!                     ├──────────────────────────────┤
//!     batch tick ───► │ 3. steal_warm (last resort)  │──► demote + steal
//!                     │    whose warm shell demotes  │    from the donor
//!                     │    before KVM_CREATE_VM?     │
//!                     ├──────────────────────────────┤
//!     socket wake ──► │ 4. resume                    │──► requeue (maybe
//!                     │    which shard resumes the   │    migrating the
//!                     │    woken parked run?         │    suspended run)
//!                     ├──────────────────────────────┤
//!     release ──────► │ warm_release (capacity side  │──► park warm /
//!                     │ of the acquire chain)        │    evict LRU /
//!                     │ may this (tenant, shard)     │    demote
//!                     │ keep another warm shell?     │
//!                     └──────────────────────────────┘
//! ```
//!
//! Decisions 2 and 3 are the steal steps of the acquire chain (steps 3
//! and 5 of the chain in `dispatcher::Dispatcher::execute`); together
//! with admit and resume-migrate they are the ISSUE's four routing
//! decision points. `warm_release` is unnumbered on purpose: it routes
//! nothing, it decides whether capacity exists for a warm park.
//!
//! ## The cost function
//!
//! Every decision ranks candidates lexicographically by
//! `(queue_depth, free_at, transfer_cost, shard)` — queueing dominates
//! (milliseconds), worker availability next, then the [`crate::Hop`]
//! transfer price (microseconds), then the index as a deterministic tie
//! break. Donor selection for steals inverts the supply term:
//! `(hop, most shells, shard)` — distance first, because a steal's price
//! *is* the hop, and at equal distance the richest sibling hurts least.
//! This is how "a same-CCX donor always beats a cross-socket one at
//! equal load" (proptest-pinned) falls out of the model instead of being
//! a special case.
//!
//! ## Warm capacity as policy
//!
//! The fixed per-pool LRU bound of the warm cache is the binding
//! constraint the `warm_placement` bench exposed. [`WarmPolicy`] replaces
//! it with a **global cross-shard budget** plus **per-tenant quotas**:
//! on every warm release the engine is asked ([`PlacementEngine::warm_release`])
//! whether the shell may park and what must be demoted first — the
//! tenant's own least-recently-parked warm shell when the tenant is at
//! quota (a churning tenant evicts *itself*, never a neighbor), or the
//! globally oldest when the platform is at budget. The `topology_steal`
//! bench shows this beating fixed per-pool capacity on hit rate under a
//! cache-hostile tenant mix.
//!
//! [`CostEngine`] is the one concrete engine: [`Placement`] variants are
//! its *configurations*, not dispatcher match arms. Custom engines plug
//! in through [`crate::Dispatcher::set_engine`].

use std::cmp::Reverse;

use crate::dispatcher::Placement;
use crate::topology::{Hop, Topology};

/// One shard as seen by a placement decision. Candidate slices are always
/// indexed by shard: `candidates[i].shard == i` for every decision point,
/// so engines may look up siblings (e.g. a fallback's queue depth) by
/// index.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// The shard index.
    pub shard: usize,
    /// Requests waiting in the shard's run queue.
    pub queue_depth: usize,
    /// When the shard's worker frees up (cycles), clamped to the decision
    /// instant — a `free_at` in the past means "free now", never "freer
    /// than an equally idle sibling".
    pub free_at: u64,
    /// Clean shells of the requested guest-memory size parked in the
    /// shard's pool (donor supply for clean steals).
    pub idle_shells: usize,
    /// Warm shells relevant to the decision: shells parked for the
    /// requesting `(tenant, virtine)` key at admit, victim-eligible warm
    /// shells of the requested size for warm steals.
    pub warm_shells: usize,
    /// Distance class from the decision's anchor shard (the requester for
    /// steals, the blocking shard for resumes; [`Hop::Local`] everywhere
    /// at admit, which has no anchor).
    pub hop: Hop,
    /// Cycles a transfer from this shard to the anchor would charge
    /// ([`Hop::transfer_cost`]).
    pub transfer_cost: u64,
    /// Whether the shard's lifecycle state admits new placements
    /// (`ShardState::Active`). Draining/drained/failed shards stay in
    /// the slice — it is always full-length and index-aligned — but
    /// engines must not pick them; every [`CostEngine`] decision filters
    /// on this column, falling back to the unfiltered ranking only when
    /// *no* shard is eligible (degraded mode beats losing work).
    pub eligible: bool,
}

/// What a warm release may do (the capacity half of the acquire chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmVerdict {
    /// Park the shell warm — after demoting the listed LRU victims so the
    /// budget and quota still hold afterwards.
    Park {
        /// Demote the releasing tenant's least-recently-parked warm shell
        /// first (the tenant is at its quota; it evicts itself).
        evict_tenant_lru: bool,
        /// Demote the globally least-recently-parked warm shell first
        /// (the platform is at its budget).
        evict_global_lru: bool,
    },
    /// Do not park: wipe and release clean (a zero budget or quota).
    Demote,
}

/// Cross-shard warm-capacity policy: a global budget on resident warm
/// shells plus a per-tenant quota, both spanning every shard pool.
/// `None` leaves the corresponding dimension to the per-pool LRU bound
/// ([`crate::DispatcherConfig::warm_capacity`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmPolicy {
    /// Bound on warm shells resident across *all* shard pools.
    pub global_budget: Option<usize>,
    /// Bound on warm shells any one tenant may keep resident across all
    /// shard pools.
    pub tenant_quota: Option<usize>,
}

impl WarmPolicy {
    /// Whether either dimension is active (the dispatcher skips the
    /// cross-shard accounting walk entirely otherwise).
    pub fn is_active(&self) -> bool {
        self.global_budget.is_some() || self.tenant_quota.is_some()
    }
}

/// The policy layer behind the dispatcher's four routing decisions.
///
/// Implementations are pure scoring: they never touch pools or queues,
/// only rank the [`Candidate`]s the dispatcher hands them. The dispatcher
/// executes whatever they pick (and charges the transfer cost of the
/// chosen hop), so an engine bug can cost microseconds but never violate
/// wipe-on-steal isolation — the mechanism stays in the dispatcher.
pub trait PlacementEngine: std::fmt::Debug {
    /// Decision 1 (admit): the shard a fresh request queues on.
    /// `tenant` is the submitting tenant's index (home-pinning policies
    /// hash it); `candidates[i].warm_shells` counts warm shells for the
    /// request's key on shard `i` (zero when the engine declared the
    /// probe unnecessary via [`PlacementEngine::admit_reads_warm`]).
    fn admit(&self, tenant: usize, candidates: &[Candidate]) -> usize;

    /// Whether [`PlacementEngine::admit`] reads the warm column. When
    /// `false`, the dispatcher skips the per-pool `has_warm` probe on
    /// the admission hot path (the column is filled with zeros).
    /// Defaults to `true` so custom engines always see real data.
    fn admit_reads_warm(&self) -> bool {
        true
    }

    /// Decision 2 (acquire → steal): the sibling that donates a *clean*
    /// shell to a dry shard, or `None` to fall through to the next
    /// acquire step. Candidates include the thief itself ([`Hop::Local`]);
    /// engines must never pick it or a shard with no idle shells.
    fn steal_clean(&self, candidates: &[Candidate]) -> Option<usize>;

    /// Decision 3 (acquire → last resort): the sibling whose warm shell
    /// is demoted-and-stolen, or `None` to mint a fresh VM instead.
    /// `candidates[i].warm_shells` counts victim-eligible warm shells.
    fn steal_warm(&self, candidates: &[Candidate]) -> Option<usize>;

    /// Decision 4 (resume-migrate): the shard a woken parked run resumes
    /// on. The blocking shard is the anchor ([`Hop::Local`]); picking any
    /// other shard migrates the suspended run and pays the hop's
    /// transfer cost.
    fn resume(&self, candidates: &[Candidate]) -> usize;

    /// The capacity side of a warm release: given the releasing tenant's
    /// resident warm count and the global resident count (both across
    /// all shards, *excluding* the shell being released), may the shell
    /// park warm, and what must be demoted first?
    fn warm_release(&self, tenant_resident: usize, global_resident: usize) -> WarmVerdict;

    /// Whether [`PlacementEngine::warm_release`] actually inspects the
    /// residency counts. When `false`, the dispatcher skips the
    /// cross-shard accounting walk and parks unconditionally (the
    /// per-pool LRU bound still applies). Defaults to `true` so custom
    /// engines are always consulted.
    fn warm_policy_active(&self) -> bool {
        true
    }

    /// Replaces the warm-capacity policy at runtime — the operator
    /// control surface behind [`crate::Dispatcher::set_warm_budget`]
    /// (e.g. slashing the budget mid-run to inject a degradation the
    /// SLO engine must notice). Engines that do not enforce a warm
    /// policy may ignore it; the default does nothing.
    fn set_warm_policy(&mut self, _policy: WarmPolicy) {}

    /// Decision 5 (lifecycle evacuation): the eligible sibling that
    /// receives a draining shard's queued work, parked runs, or pooled
    /// shells. The draining shard is the anchor ([`Hop::Local`]), so the
    /// default ranks eligible non-local shards by the shared cost key —
    /// the evacuation pays the same priced hops as a steal in the other
    /// direction. `None` means nowhere to go: the reconciler leaves the
    /// work in place (degraded mode) and arms grace clocks on parked
    /// runs.
    fn evacuate(&self, candidates: &[Candidate]) -> Option<usize> {
        candidates
            .iter()
            .filter(|c| c.eligible && c.hop != Hop::Local)
            .min_by_key(|c| (c.queue_depth, c.free_at, c.transfer_cost, c.shard))
            .map(|c| c.shard)
    }
}

/// The default engine: one cost model over the shard topology,
/// configured by the [`Placement`] policy the dispatcher was built with.
#[derive(Debug, Clone)]
pub struct CostEngine {
    policy: Placement,
    topology: Topology,
    /// The snapshot-aware skew guard: a warm shard may trail the
    /// least-loaded alternative by at most one batch of queue depth.
    batch_size: usize,
    warm: WarmPolicy,
}

impl CostEngine {
    /// Builds the engine for a dispatcher configuration.
    pub fn new(
        policy: Placement,
        topology: Topology,
        batch_size: usize,
        warm: WarmPolicy,
    ) -> CostEngine {
        CostEngine {
            policy,
            topology,
            batch_size,
            warm,
        }
    }

    /// The topology the engine prices hops against.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared lexicographic cost key: queueing, then availability,
    /// then distance, then index. Used verbatim by admit and resume;
    /// donor selection ([`CostEngine::donor`]) reorders around supply.
    fn cost(c: &Candidate) -> (usize, u64, u64, usize) {
        (c.queue_depth, c.free_at, c.transfer_cost, c.shard)
    }

    /// Donor selection for steals: nearest hop first (the steal's price
    /// *is* the distance), richest supply within a hop class, index as
    /// the tie break. `supply` extracts the relevant shell count. A
    /// non-`Active` shard never donates — its inventory is the
    /// reconciler's to move, and a steal from it would race the drain.
    fn donor(candidates: &[Candidate], supply: impl Fn(&Candidate) -> usize) -> Option<usize> {
        candidates
            .iter()
            .filter(|c| c.eligible && c.hop != Hop::Local && supply(c) > 0)
            .min_by_key(|c| (c.hop, Reverse(supply(c)), c.shard))
            .map(|c| c.shard)
    }

    /// The least-cost shard among lifecycle-eligible candidates, or —
    /// only when *every* shard is ineligible — among all of them:
    /// admission during a full-fleet drain degrades rather than panics,
    /// and the work executes locally on whatever shard takes it.
    fn least_eligible(candidates: &[Candidate]) -> usize {
        candidates
            .iter()
            .filter(|c| c.eligible)
            .min_by_key(|c| Self::cost(c))
            .or_else(|| candidates.iter().min_by_key(|c| Self::cost(c)))
            .map(|c| c.shard)
            .expect("at least one shard")
    }
}

impl PlacementEngine for CostEngine {
    fn admit(&self, tenant: usize, candidates: &[Candidate]) -> usize {
        match self.policy {
            Placement::ByTenant => {
                // Home-pinning holds only while the home is eligible; a
                // draining home hands its tenants to the least-loaded
                // eligible sibling until restored.
                let home = tenant % candidates.len();
                if candidates[home].eligible {
                    home
                } else {
                    Self::least_eligible(candidates)
                }
            }
            Placement::LeastLoaded => Self::least_eligible(candidates),
            Placement::SnapshotAware => {
                let fallback = Self::least_eligible(candidates);
                candidates
                    .iter()
                    .filter(|c| c.eligible && c.warm_shells > 0)
                    .min_by_key(|c| Self::cost(c))
                    .filter(|c| {
                        // Don't trade µs of restore for ms of queueing:
                        // the warm shard must not be more than one batch
                        // behind the least-loaded alternative.
                        c.queue_depth <= candidates[fallback].queue_depth + self.batch_size
                    })
                    .map_or(fallback, |c| c.shard)
            }
        }
    }

    fn steal_clean(&self, candidates: &[Candidate]) -> Option<usize> {
        Self::donor(candidates, |c| c.idle_shells)
    }

    fn steal_warm(&self, candidates: &[Candidate]) -> Option<usize> {
        Self::donor(candidates, |c| c.warm_shells)
    }

    fn resume(&self, candidates: &[Candidate]) -> usize {
        // The home shard is Hop::Local with transfer cost 0, so an idle
        // home never loses to an equally idle sibling, and among equally
        // loaded siblings the nearest wins — migration only happens when
        // it buys an earlier start, and then over the shortest hop. A
        // draining home is ineligible, so its woken runs migrate out by
        // construction.
        Self::least_eligible(candidates)
    }

    fn admit_reads_warm(&self) -> bool {
        matches!(self.policy, Placement::SnapshotAware)
    }

    fn warm_policy_active(&self) -> bool {
        self.warm.is_active()
    }

    fn set_warm_policy(&mut self, policy: WarmPolicy) {
        self.warm = policy;
    }

    fn warm_release(&self, tenant_resident: usize, global_resident: usize) -> WarmVerdict {
        if self.warm.tenant_quota == Some(0) || self.warm.global_budget == Some(0) {
            return WarmVerdict::Demote;
        }
        let evict_tenant_lru = self.warm.tenant_quota.is_some_and(|q| tenant_resident >= q);
        // A tenant-LRU eviction frees one global slot for the shell being
        // parked, so the budget only forces its own eviction when the
        // quota didn't already make room.
        let evict_global_lru = !evict_tenant_lru
            && self
                .warm
                .global_budget
                .is_some_and(|b| global_resident >= b);
        WarmVerdict::Park {
            evict_tenant_lru,
            evict_global_lru,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A candidate row with everything idle and the hop priced from `t`.
    fn cand(t: &Topology, anchor: usize, shard: usize) -> Candidate {
        Candidate {
            shard,
            queue_depth: 0,
            free_at: 0,
            idle_shells: 0,
            warm_shells: 0,
            hop: t.hop(anchor, shard),
            transfer_cost: t.transfer_cost(anchor, shard),
            eligible: true,
        }
    }

    fn engine(policy: Placement, t: &Topology) -> CostEngine {
        CostEngine::new(policy, t.clone(), 8, WarmPolicy::default())
    }

    #[test]
    fn steal_prefers_the_nearest_donor_at_equal_supply() {
        // 2 sockets x 2 CCXs x 2 shards; thief is shard 0. Every sibling
        // holds one idle shell: the CCX sibling (shard 1) must win over
        // same-socket (2, 3) and cross-socket (4..8) donors.
        let t = Topology::grouped(2, 2, 2);
        let e = engine(Placement::LeastLoaded, &t);
        let c: Vec<Candidate> = (0..8)
            .map(|i| Candidate {
                idle_shells: usize::from(i != 0),
                ..cand(&t, 0, i)
            })
            .collect();
        assert_eq!(e.steal_clean(&c), Some(1));
        // Same-CCX donor dry: nearest same-socket donor wins.
        let mut c2 = c.clone();
        c2[1].idle_shells = 0;
        assert_eq!(e.steal_clean(&c2), Some(2));
        // Whole socket dry: the steal crosses sockets rather than minting.
        for x in &mut c2[1..4] {
            x.idle_shells = 0;
        }
        assert_eq!(e.steal_clean(&c2), Some(4));
        // Everyone dry: fall through to creation.
        for x in &mut c2 {
            x.idle_shells = 0;
        }
        assert_eq!(e.steal_clean(&c2), None);
    }

    #[test]
    fn within_a_hop_class_the_richest_donor_wins() {
        let t = Topology::grouped(2, 1, 4);
        let e = engine(Placement::LeastLoaded, &t);
        let mut c: Vec<Candidate> = (0..8).map(|i| cand(&t, 0, i)).collect();
        c[2].idle_shells = 1;
        c[3].idle_shells = 5;
        c[4].idle_shells = 9; // Richer, but cross-socket: must lose.
        assert_eq!(e.steal_clean(&c), Some(3));
    }

    #[test]
    fn warm_steal_uses_the_same_distance_first_ordering() {
        let t = Topology::grouped(2, 2, 2);
        let e = engine(Placement::LeastLoaded, &t);
        let mut c: Vec<Candidate> = (0..8).map(|i| cand(&t, 0, i)).collect();
        c[5].warm_shells = 4; // Cross-socket hoard...
        c[3].warm_shells = 1; // ...loses to one same-socket victim.
        assert_eq!(e.steal_warm(&c), Some(3));
    }

    #[test]
    fn resume_prefers_home_then_near_siblings_on_ties() {
        let t = Topology::grouped(2, 2, 2);
        let e = engine(Placement::LeastLoaded, &t);
        // All idle: the home shard (anchor 2) wins every tie.
        let c: Vec<Candidate> = (0..8).map(|i| cand(&t, 2, i)).collect();
        assert_eq!(e.resume(&c), 2);
        // Home backed up: the woken run lands on the nearest idle shard
        // (3, same CCX) — never an equally idle cross-socket one.
        let mut c2 = c;
        c2[2].queue_depth = 10;
        assert_eq!(e.resume(&c2), 3);
        // Queue depth still dominates distance: a shorter queue across
        // the socket beats a longer one next door.
        for x in &mut c2 {
            x.queue_depth = 3;
        }
        c2[6].queue_depth = 1;
        assert_eq!(e.resume(&c2), 6);
    }

    #[test]
    fn flat_topology_reproduces_the_pre_topology_orderings() {
        // Flat: distance never discriminates, so the richest donor wins
        // (the historical rule) and resume ties break home-then-index.
        let t = Topology::flat(4);
        let e = engine(Placement::LeastLoaded, &t);
        let mut c: Vec<Candidate> = (0..4).map(|i| cand(&t, 0, i)).collect();
        c[1].idle_shells = 1;
        c[3].idle_shells = 4;
        assert_eq!(e.steal_clean(&c), Some(3));
        let r: Vec<Candidate> = (0..4).map(|i| cand(&t, 2, i)).collect();
        assert_eq!(e.resume(&r), 2, "idle home never loses");
    }

    #[test]
    fn ineligible_shards_are_never_placement_targets() {
        let t = Topology::grouped(2, 2, 2);
        let e = engine(Placement::LeastLoaded, &t);
        // Shard 1 is the obvious winner on every axis but is draining.
        let mut c: Vec<Candidate> = (0..8)
            .map(|i| Candidate {
                queue_depth: usize::from(i != 1),
                idle_shells: 1,
                warm_shells: 1,
                ..cand(&t, 0, i)
            })
            .collect();
        c[1].eligible = false;
        assert_ne!(e.admit(0, &c), 1, "admit skips a draining shard");
        assert_ne!(e.steal_clean(&c), Some(1), "no donating while draining");
        assert_ne!(e.steal_warm(&c), Some(1));
        assert_ne!(e.resume(&c), 1);
        // ByTenant home-pinning yields to the drain and comes back.
        let by_tenant = engine(Placement::ByTenant, &t);
        assert_ne!(by_tenant.admit(1, &c), 1, "draining home is abandoned");
        c[1].eligible = true;
        assert_eq!(by_tenant.admit(1, &c), 1, "restored home is re-pinned");
        // SnapshotAware ignores warm shells stranded on a draining shard.
        let snap = engine(Placement::SnapshotAware, &t);
        let mut w: Vec<Candidate> = (0..8).map(|i| cand(&t, 0, i)).collect();
        w[1].warm_shells = 3;
        assert_eq!(snap.admit(0, &w), 1, "warm shard wins while active");
        w[1].eligible = false;
        assert_ne!(snap.admit(0, &w), 1, "but not while draining");
        // Full-fleet drain: degraded mode still places somewhere.
        for x in &mut w {
            x.eligible = false;
        }
        assert_eq!(e.admit(0, &w), 0, "no eligible shard falls back");
        assert_eq!(e.resume(&w), 0);
        assert_eq!(e.steal_clean(&w), None, "steals just fall through");
    }

    #[test]
    fn evacuate_picks_the_cheapest_eligible_sibling() {
        let t = Topology::grouped(2, 2, 2);
        let e = engine(Placement::LeastLoaded, &t);
        // Anchor (draining shard) is 0; its CCX sibling 1 is also down.
        let mut c: Vec<Candidate> = (0..8).map(|i| cand(&t, 0, i)).collect();
        c[0].eligible = false;
        c[1].eligible = false;
        assert_eq!(
            e.evacuate(&c),
            Some(2),
            "nearest eligible sibling at equal load"
        );
        // Load dominates distance, same as every other decision.
        for x in &mut c[2..4] {
            x.queue_depth = 5;
        }
        assert_eq!(e.evacuate(&c), Some(4));
        // Nowhere to go: the reconciler gets None and degrades.
        for x in &mut c {
            x.eligible = false;
        }
        assert_eq!(e.evacuate(&c), None);
    }

    #[test]
    fn warm_release_enforces_quota_then_budget() {
        let t = Topology::flat(2);
        let park_free = WarmVerdict::Park {
            evict_tenant_lru: false,
            evict_global_lru: false,
        };
        // No policy: always park, never evict (the per-pool LRU rules).
        let e = CostEngine::new(Placement::LeastLoaded, t.clone(), 8, WarmPolicy::default());
        assert_eq!(e.warm_release(100, 100), park_free);

        let e = CostEngine::new(
            Placement::LeastLoaded,
            t.clone(),
            8,
            WarmPolicy {
                global_budget: Some(8),
                tenant_quota: Some(2),
            },
        );
        assert_eq!(e.warm_release(0, 0), park_free);
        assert_eq!(e.warm_release(1, 7), park_free);
        // At quota: the tenant evicts itself, which also makes room
        // globally — no double eviction.
        assert_eq!(
            e.warm_release(2, 8),
            WarmVerdict::Park {
                evict_tenant_lru: true,
                evict_global_lru: false,
            }
        );
        // Under quota but at budget: the globally oldest shell goes.
        assert_eq!(
            e.warm_release(1, 8),
            WarmVerdict::Park {
                evict_tenant_lru: false,
                evict_global_lru: true,
            }
        );
        // Zero quota or budget: warm caching is off for this release.
        let z = CostEngine::new(
            Placement::LeastLoaded,
            t,
            8,
            WarmPolicy {
                global_budget: Some(0),
                tenant_quota: None,
            },
        );
        assert_eq!(z.warm_release(0, 0), WarmVerdict::Demote);
    }
}
