//! Multi-node fabric: N `Topology`-described dispatchers behind one
//! routing surface, with node-scale lifecycle and health.
//!
//! The single-node story prices every shell movement — steal, resume
//! migration, drain evacuation — through one [`Candidate`] cost model
//! over intra-node hops (`SameCcx < SameSocket < CrossSocket`). This
//! module lifts that model one tier: a [`Cluster`] owns N [`Dispatcher`]
//! *nodes*, and moving work between them is just another hop,
//! [`Hop::CrossNode`], priced by
//! `vclock::costs::VSCHED_TRANSFER_CROSS_NODE` (the run's state leaves
//! shared memory and crosses the simulated cluster network). Routing a
//! fresh request from the edge and choosing the destination for a
//! failover evacuation both go through [`PlacementEngine::evacuate`]
//! over node-level [`Candidate`] rows — the same lexicographic
//! `(queue_depth, free_at, transfer_cost, index)` key that places work
//! inside a node places it across nodes.
//!
//! **Lifecycle, lifted.** Nodes reuse the shard state machine
//! ([`ShardState`]): an operator drains a node (`Active → Draining`,
//! the edge stops routing to it, in-flight work completes, `Drained`
//! once empty), restores it, or fails it outright. Failing a node
//! *fences* it — every shard inside is failed, so no stranded copy can
//! run later and double-count against the edge's exactly-once
//! accounting (the cluster-scale analogue of wiping a stolen shell).
//!
//! **Health, lifted.** The PR 8 heartbeat/suspicion detector
//! ([`HealthDetector`]) is index-generic, so the cluster runs a second
//! instance with *nodes* as the monitored population: every advance
//! step an alive node heartbeats, a partitioned/hung node goes silent,
//! probes confirm the silence, and crossing the threshold declares the
//! node — which fences it and tells the edge to re-dispatch its
//! unresolved work cross-node. Half-open probes restore the node once
//! it answers again. Determinism is preserved end to end: node faults
//! are scheduled at virtual instants ([`Cluster::hang_node_at`] /
//! [`Cluster::kill_node_at`]), and the detector's only randomness is
//! its seeded probe jitter, so a whole partition → declare → evacuate →
//! restore arc replays bit-for-bit.
//!
//! What does *not* cross nodes: suspended (parked) runs and
//! connection-bound invocations. A suspension's hardware state lives in
//! the node's hypervisor and a connection lives in the node's kernel —
//! neither survives the node, exactly as PR 8's retry machinery
//! excludes conn-bound work. The edge re-runs lost work from pristine
//! inputs instead (see `vhttp::ingress`); `docs/cluster.md` shows the
//! full handover sequence.

use vclock::Cycles;

use crate::dispatcher::{Dispatcher, Placement};
use crate::health::{HealthAction, HealthConfig, HealthDetector, HealthStats, ShardHealth};
use crate::lifecycle::ShardState;
use crate::placement::{Candidate, CostEngine, PlacementEngine, WarmPolicy};
use crate::topology::{Hop, Topology};

/// Seconds → virtual cycles, matching the dispatcher's own conversion.
fn cyc(s: f64) -> u64 {
    Cycles::from_micros(s * 1e6).get()
}

/// One backend node: a topology-described dispatcher plus the cluster's
/// view of its lifecycle and scheduled faults.
struct Node {
    d: Dispatcher,
    /// Node-scale lifecycle state (the shard state machine, lifted).
    state: ShardState,
    /// The node is unreachable (partitioned or wedged) until this
    /// virtual instant: it is not advanced and emits no heartbeats.
    /// `NEG_INFINITY` = healthy, `INFINITY` = killed for good.
    hung_until_s: f64,
    /// Requests the cluster routed here.
    routed: u64,
}

/// A scheduled node fault, applied as virtual time advances past
/// `at_s`. `duration_s == None` kills the node permanently.
struct NodeFault {
    at_s: f64,
    node: usize,
    duration_s: Option<f64>,
    applied: bool,
}

/// What [`Cluster::advance_to`] did, for logs and bench assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterAction {
    /// The node-level detector declared this node failed; it has been
    /// fenced (every shard failed) and left the routable set. The edge
    /// must now re-dispatch its unresolved work cross-node.
    NodeDeclared { node: usize },
    /// A full half-open probe streak restored this node: shards
    /// restored, routable again.
    NodeRestored { node: usize },
    /// A draining node finished its in-flight work and converged to
    /// `Drained`.
    NodeDrained { node: usize },
}

/// Cluster-level counters (the node-scale complement of
/// [`crate::DispatcherStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Requests routed to a node by [`Cluster::route`].
    pub routed: u64,
    /// Edge re-dispatches of work lost to a declared node, each charged
    /// one [`Hop::CrossNode`] transfer (reported via
    /// [`Cluster::note_evacuations`]).
    pub evacuated: u64,
    /// Virtual cycles charged for those cross-node transfers.
    pub transfer_cycles: u64,
}

/// N dispatcher nodes behind one priced routing surface.
///
/// The cluster is deliberately *not* an admission layer — per-tenant
/// edge accounting, attribution, and re-dispatch bookkeeping live in
/// the ingress (`vhttp::ingress`), which owns the pristine request
/// inputs. The cluster supplies the fabric: lockstep virtual-time
/// advancement, node lifecycle, the node-level failure detector, and
/// `Candidate`-priced node selection.
pub struct Cluster {
    nodes: Vec<Node>,
    detector: Option<HealthDetector>,
    health_config: Option<HealthConfig>,
    faults: Vec<NodeFault>,
    engine: Box<dyn PlacementEngine>,
    now_s: f64,
    stats: ClusterStats,
}

impl Cluster {
    /// An empty cluster; add nodes with [`Cluster::add_node`].
    pub fn new() -> Cluster {
        Cluster {
            nodes: Vec::new(),
            detector: None,
            health_config: None,
            faults: Vec::new(),
            engine: Box::new(CostEngine::new(
                Placement::LeastLoaded,
                Topology::flat(1),
                1,
                WarmPolicy::default(),
            )),
            now_s: 0.0,
            stats: ClusterStats::default(),
        }
    }

    /// Adds a backend node (an owned, fully configured dispatcher) and
    /// returns its index. Register identical specs and tenants on every
    /// node in the same order so ids agree cluster-wide — the ingress
    /// asserts this.
    pub fn add_node(&mut self, d: Dispatcher) -> usize {
        assert!(
            self.detector.is_none(),
            "add every node before installing the health detector"
        );
        self.nodes.push(Node {
            d,
            state: ShardState::Active,
            hung_until_s: f64::NEG_INFINITY,
            routed: 0,
        });
        let n = self.nodes.len();
        self.engine = Box::new(CostEngine::new(
            Placement::LeastLoaded,
            Topology::flat(n),
            1,
            WarmPolicy::default(),
        ));
        n - 1
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The dispatcher behind node `i`.
    pub fn node(&self, i: usize) -> &Dispatcher {
        &self.nodes[i].d
    }

    /// Mutable access to node `i`'s dispatcher (submissions, completion
    /// draining, operator knobs).
    pub fn node_mut(&mut self, i: usize) -> &mut Dispatcher {
        &mut self.nodes[i].d
    }

    /// Installs the node-level failure detector (one monitor slot per
    /// node). Absent, nodes are never declared — lifecycle is purely
    /// operator-driven, and runs stay bit-identical to a detector-free
    /// cluster.
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster.
    pub fn set_health(&mut self, config: HealthConfig) {
        assert!(!self.nodes.is_empty(), "install health after adding nodes");
        self.detector = Some(HealthDetector::new(config, self.nodes.len()));
        self.health_config = Some(config);
    }

    /// Node `i`'s lifecycle state.
    pub fn node_state(&self, i: usize) -> ShardState {
        self.nodes[i].state
    }

    /// Every node's lifecycle state, by index.
    pub fn node_states(&self) -> Vec<ShardState> {
        self.nodes.iter().map(|n| n.state).collect()
    }

    /// Whether the edge may route new work to node `i`: lifecycle
    /// `Active` and not held open by the detector's breaker.
    pub fn routable(&self, i: usize) -> bool {
        self.nodes[i].state.is_active() && !self.detector.as_ref().is_some_and(|h| h.holds_open(i))
    }

    /// Marks node `i` draining: the edge stops routing to it, in-flight
    /// work completes in place, and [`Cluster::advance_to`] converges it
    /// to `Drained` once empty.
    pub fn drain_node(&mut self, i: usize) {
        if self.nodes[i].state.is_active() {
            self.nodes[i].state = ShardState::Draining;
        }
    }

    /// Returns node `i` to `Active` (routable again).
    pub fn restore_node(&mut self, i: usize) {
        self.nodes[i].state = ShardState::Active;
        let shards = self.nodes[i].d.config().shards;
        for s in 0..shards {
            if self.nodes[i].d.shard_state(s) == ShardState::Failed {
                self.nodes[i].d.restore_shard(s);
            }
        }
    }

    /// Fails node `i` and fences it: every shard inside is failed, so
    /// queued work sheds deterministically and no stranded copy can run
    /// later — the edge then re-dispatches from pristine inputs.
    /// Idempotent.
    pub fn fail_node(&mut self, i: usize) {
        if self.nodes[i].state == ShardState::Failed {
            return;
        }
        self.nodes[i].state = ShardState::Failed;
        let shards = self.nodes[i].d.config().shards;
        for s in 0..shards {
            self.nodes[i].d.fail_shard(s);
        }
    }

    /// Schedules a gray failure: node `node` becomes unreachable at
    /// virtual second `at_s` for `duration_s` (no heartbeats, no
    /// progress), then answers probes again. The detector — not this
    /// call — declares the failure.
    pub fn hang_node_at(&mut self, at_s: f64, node: usize, duration_s: f64) {
        assert!(node < self.nodes.len(), "unknown node");
        self.faults.push(NodeFault {
            at_s,
            node,
            duration_s: Some(duration_s),
            applied: false,
        });
    }

    /// Schedules a permanent node death at virtual second `at_s`.
    pub fn kill_node_at(&mut self, at_s: f64, node: usize) {
        assert!(node < self.nodes.len(), "unknown node");
        self.faults.push(NodeFault {
            at_s,
            node,
            duration_s: None,
            applied: false,
        });
    }

    /// Node-level [`Candidate`] rows at virtual second `now_s`, index-
    /// aligned with the node list. `anchor` is the node work would leave
    /// ([`Hop::Local`], never picked by evacuation); every other node is
    /// one [`Hop::CrossNode`] away — routing from the edge passes `None`
    /// and sees a uniform cross-node price, so the decision reduces to
    /// health and load exactly as the lexicographic key orders them.
    pub fn candidates(&self, anchor: Option<usize>, now_s: f64) -> Vec<Candidate> {
        let now = cyc(now_s);
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let snaps = n.d.shard_snapshots();
                let queue_depth: usize = snaps.iter().map(|s| s.queue_depth).sum();
                let idle_shells: usize = snaps.iter().map(|s| s.idle_shells).sum();
                let warm_shells: usize = snaps.iter().map(|s| s.warm_shells).sum();
                let free_at = snaps
                    .iter()
                    .map(|s| cyc(s.free_at_s))
                    .min()
                    .unwrap_or(0)
                    .max(now);
                let hop = if anchor == Some(i) {
                    Hop::Local
                } else {
                    Hop::CrossNode
                };
                Candidate {
                    shard: i,
                    queue_depth,
                    free_at,
                    idle_shells,
                    warm_shells,
                    hop,
                    transfer_cost: hop.transfer_cost(),
                    eligible: self.routable(i),
                }
            })
            .collect()
    }

    /// Picks the node for a fresh edge request at `now_s` — the least
    /// loaded routable node under the engine's evacuation key (from the
    /// edge, every node is one `CrossNode` hop). `None` when no node is
    /// routable; the edge sheds.
    pub fn route(&mut self, now_s: f64) -> Option<usize> {
        let c = self.candidates(None, now_s);
        let picked = self.engine.evacuate(&c)?;
        self.stats.routed += 1;
        self.nodes[picked].routed += 1;
        Some(picked)
    }

    /// Picks the destination for work evacuating off node `from` —
    /// same key, `from` anchored [`Hop::Local`] so it can never receive
    /// its own evacuation. `None` when no other node is routable.
    pub fn evacuation_target(&self, from: usize, now_s: f64) -> Option<usize> {
        self.engine.evacuate(&self.candidates(Some(from), now_s))
    }

    /// Records `n` cross-node re-dispatches performed by the edge, each
    /// charged one [`Hop::CrossNode`] transfer.
    pub fn note_evacuations(&mut self, n: u64) {
        self.stats.evacuated += n;
        self.stats.transfer_cycles += n * Hop::CrossNode.transfer_cost();
    }

    /// Requests routed to node `i` so far.
    pub fn routed_to(&self, i: usize) -> u64 {
        self.nodes[i].routed
    }

    /// Cluster counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Node-level detector counters, when a detector is installed.
    pub fn health_stats(&self) -> Option<HealthStats> {
        self.detector.as_ref().map(HealthDetector::stats)
    }

    /// Per-node detector view (suspicion, breaker, last heartbeat),
    /// index-aligned with the node list.
    pub fn node_health(&self) -> Option<Vec<ShardHealth>> {
        self.detector
            .as_ref()
            .map(|h| (0..self.nodes.len()).map(|i| h.shard_health(i)).collect())
    }

    /// The cluster's virtual-time cursor (the latest `advance_to`).
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Whether node `i` would answer a probe at `t_s` (not hung, not
    /// killed).
    fn node_alive(&self, i: usize, t_s: f64) -> bool {
        t_s >= self.nodes[i].hung_until_s
    }

    /// Advances every node in lockstep virtual time to `t_s`, applying
    /// due faults, feeding node heartbeats, polling the detector, and
    /// converging draining nodes. Returns every lifecycle action taken.
    ///
    /// Alive nodes advance and heartbeat once per step (half the
    /// detector's heartbeat interval, so silence is observed promptly);
    /// a hung node is frozen — its dispatcher does not advance and its
    /// monitor slot goes silent, which is exactly what a partitioned
    /// node looks like from a control plane.
    pub fn advance_to(&mut self, t_s: f64) -> Vec<ClusterAction> {
        let mut actions = Vec::new();
        if t_s <= self.now_s {
            return actions;
        }
        let step_s = match &self.health_config {
            Some(c) => (c.heartbeat_interval.as_secs() / 2.0).max(1e-6),
            None => t_s - self.now_s,
        };
        let mut ts = self.now_s;
        while ts < t_s {
            ts = (ts + step_s).min(t_s);

            for f in &mut self.faults {
                if !f.applied && f.at_s <= ts {
                    f.applied = true;
                    let until = f.duration_s.map_or(f64::INFINITY, |d| f.at_s + d);
                    let n = &mut self.nodes[f.node];
                    n.hung_until_s = n.hung_until_s.max(until);
                }
            }

            for i in 0..self.nodes.len() {
                if self.node_alive(i, ts) {
                    self.nodes[i].d.run_until(ts);
                    if let Some(h) = &mut self.detector {
                        h.heartbeat(i, cyc(ts));
                    }
                }
            }

            if self.detector.is_some() {
                let alive: Vec<bool> = (0..self.nodes.len())
                    .map(|i| self.node_alive(i, ts))
                    .collect();
                let monitored: Vec<bool> = self.nodes.iter().map(|n| n.state.is_active()).collect();
                let polled =
                    self.detector
                        .as_mut()
                        .expect("checked")
                        .poll(cyc(ts), &alive, &monitored);
                for a in polled {
                    match a {
                        HealthAction::Declare(i) => {
                            self.fail_node(i);
                            actions.push(ClusterAction::NodeDeclared { node: i });
                        }
                        HealthAction::Restore(i) => {
                            self.restore_node(i);
                            actions.push(ClusterAction::NodeRestored { node: i });
                        }
                    }
                }
            }

            for i in 0..self.nodes.len() {
                if self.nodes[i].state == ShardState::Draining {
                    let snaps = self.nodes[i].d.shard_snapshots();
                    let empty = snaps.iter().all(|s| s.queue_depth == 0 && s.parked == 0);
                    if empty {
                        self.nodes[i].state = ShardState::Drained;
                        actions.push(ClusterAction::NodeDrained { node: i });
                    }
                }
            }
        }
        self.now_s = t_s;
        actions
    }

    /// Runs every reachable node to idle (end-of-run settling; any
    /// scheduled hang must already have lifted).
    pub fn settle(&mut self) {
        for i in 0..self.nodes.len() {
            if self.node_alive(i, self.now_s) {
                self.nodes[i].d.run_to_idle();
            }
        }
    }
}

impl Default for Cluster {
    fn default() -> Cluster {
        Cluster::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::{DispatcherConfig, Request};
    use crate::tenant::TenantProfile;
    use vclock::costs;
    use wasp::{VirtineSpec, Wasp};

    const MEM: usize = 64 * 1024;

    fn node() -> Dispatcher {
        Dispatcher::new(
            Wasp::new_kvm_default(),
            DispatcherConfig {
                shards: 2,
                ..DispatcherConfig::default()
            },
        )
    }

    fn spec(name: &str) -> VirtineSpec {
        let img = visa::assemble(".org 0x8000\n mov r0, 7\n hlt\n").unwrap();
        VirtineSpec::new(name, img, MEM).with_snapshot(false)
    }

    fn two_node_cluster() -> (Cluster, crate::TenantId, wasp::VirtineId) {
        let mut c = Cluster::new();
        let mut tenant = None;
        let mut virtine = None;
        for _ in 0..2 {
            let mut d = node();
            let v = d.register(spec("f")).unwrap();
            let t = d.add_tenant(TenantProfile::new("app"));
            assert!(virtine.is_none() || virtine == Some(v), "ids must agree");
            tenant = Some(t);
            virtine = Some(v);
            c.add_node(d);
        }
        (c, tenant.unwrap(), virtine.unwrap())
    }

    #[test]
    fn candidates_price_every_remote_node_one_cross_node_hop() {
        let (c, _, _) = two_node_cluster();
        let rows = c.candidates(Some(0), 0.0);
        assert_eq!(rows[0].hop, Hop::Local);
        assert_eq!(rows[0].transfer_cost, 0);
        assert_eq!(rows[1].hop, Hop::CrossNode);
        assert_eq!(rows[1].transfer_cost, costs::VSCHED_TRANSFER_CROSS_NODE);
        assert!(rows.iter().all(|r| r.eligible));
    }

    #[test]
    fn route_prefers_the_less_loaded_node() {
        let (mut c, tenant, virtine) = two_node_cluster();
        // Load node 0 with queued work it has not run yet.
        for _ in 0..4 {
            c.node_mut(0)
                .submit(Request::new(tenant, virtine, 0.0))
                .unwrap();
        }
        assert_eq!(c.route(0.0), Some(1), "deeper queue must lose the route");
        assert_eq!(c.stats().routed, 1);
        assert_eq!(c.routed_to(1), 1);
    }

    #[test]
    fn drained_node_leaves_the_routable_set_and_returns_on_restore() {
        let (mut c, _, _) = two_node_cluster();
        c.drain_node(0);
        assert!(!c.routable(0));
        assert_eq!(c.route(0.0), Some(1));
        // An empty draining node converges to Drained on the next tick.
        let actions = c.advance_to(0.001);
        assert!(actions.contains(&ClusterAction::NodeDrained { node: 0 }));
        assert_eq!(c.node_state(0), ShardState::Drained);
        c.restore_node(0);
        assert!(c.routable(0));
    }

    #[test]
    fn evacuation_target_never_picks_the_failed_node() {
        let (mut c, _, _) = two_node_cluster();
        c.fail_node(0);
        assert_eq!(c.evacuation_target(0, 0.0), Some(1));
        assert_eq!(c.evacuation_target(1, 0.0), None, "only the anchor is left");
    }

    #[test]
    fn detector_declares_a_hung_node_and_probes_it_back() {
        let (mut c, tenant, virtine) = two_node_cluster();
        c.set_health(HealthConfig::new().with_seed(0xC1));
        // Queue work on node 1 so fencing has something to shed.
        c.node_mut(1)
            .submit(Request::new(tenant, virtine, 0.0))
            .unwrap();
        // Node 1 partitions for 10 ms — an eternity against the 500 µs
        // heartbeat interval and threshold 4.
        c.hang_node_at(0.001, 1, 0.010);
        let actions = c.advance_to(0.008);
        assert!(actions.contains(&ClusterAction::NodeDeclared { node: 1 }));
        assert!(!c.routable(1));
        assert_eq!(c.node_state(1), ShardState::Failed);
        assert_eq!(c.health_stats().unwrap().declared, 1);
        assert_eq!(c.health_stats().unwrap().false_positives, 0);
        // Fencing failed every shard inside.
        assert!(c
            .node(1)
            .shard_states()
            .iter()
            .all(|s| *s == ShardState::Failed));
        // The hang lifts; recovery probes restore the node.
        let actions = c.advance_to(0.030);
        assert!(actions.contains(&ClusterAction::NodeRestored { node: 1 }));
        assert!(c.routable(1));
        assert_eq!(c.health_stats().unwrap().restored, 1);
        // The whole arc replays bit-for-bit under the same seed.
        let run = |seed: u64| {
            let (mut c, t, v) = two_node_cluster();
            c.set_health(HealthConfig::new().with_seed(seed));
            c.node_mut(1).submit(Request::new(t, v, 0.0)).unwrap();
            c.hang_node_at(0.001, 1, 0.010);
            let mut log = Vec::new();
            log.extend(c.advance_to(0.008));
            log.extend(c.advance_to(0.030));
            (log, c.health_stats().unwrap().probes)
        };
        assert_eq!(run(0xC1), run(0xC1));
    }

    #[test]
    fn kill_is_permanent_and_evacuation_counts_transfers() {
        let (mut c, _, _) = two_node_cluster();
        c.set_health(HealthConfig::new().with_seed(0xC2));
        c.kill_node_at(0.001, 0);
        let actions = c.advance_to(0.010);
        assert!(actions.contains(&ClusterAction::NodeDeclared { node: 0 }));
        c.note_evacuations(3);
        assert_eq!(c.stats().evacuated, 3);
        assert_eq!(
            c.stats().transfer_cycles,
            3 * costs::VSCHED_TRANSFER_CROSS_NODE
        );
        // Dead for good: far later, still not routable.
        c.advance_to(0.100);
        assert!(!c.routable(0));
        assert_eq!(c.health_stats().unwrap().restored, 0);
    }
}
