//! Health-driven failover: a deterministic heartbeat/suspicion failure
//! detector with circuit-breaker recovery, plus the overload brownout
//! controller.
//!
//! The paper's economics make isolation contexts cheap enough to kill and
//! re-create freely (§5.2); this module supplies the *trigger*: instead of
//! failure being declared only by an operator or a scripted
//! [`crate::FaultPlan`], the dispatcher observes its own shards and
//! declares failure from missed heartbeats. Everything runs in virtual
//! time and draws randomness exclusively from `vclock::rng`, so a whole
//! detect → fail → reconcile → probe → restore arc replays bit-for-bit
//! from a seed.
//!
//! **Detection.** Every batch a shard runs is a heartbeat (the shard's
//! worker demonstrably made progress). When the gap since the last
//! heartbeat exceeds [`HealthConfig::heartbeat_interval`], the detector
//! probes the shard directly — an idle-but-healthy worker answers and is
//! never suspected (steady-state false positives are structurally zero),
//! while a wedged worker stays silent and its **suspicion** grows as the
//! ratio of silence to the expected interval, a discrete phi-accrual
//! score. Crossing [`HealthConfig::suspicion_threshold`] drives the
//! *existing* `fail_shard → reconcile → re-admit` path: queued work
//! evacuates to siblings, parked runs are evicted (and, for tenants with
//! a [`crate::RetryPolicy`], re-submitted), shells are dropped.
//!
//! **Recovery.** A declared shard trips a circuit breaker to
//! [`CircuitState::Open`]. Half-open probes fire every
//! [`HealthConfig::probe_interval`] (with seeded jitter, so probe storms
//! desynchronize deterministically); the first success moves the breaker
//! to [`CircuitState::HalfOpen`], and
//! [`HealthConfig::probes_to_restore`] *consecutive* successes close it
//! again via `restore_shard`. Any failure while half-open re-opens the
//! breaker and resets the streak.
//!
//! **Brownout.** Orthogonally, when the installed SLO engine's burn-rate
//! pager fires (see `vtrace::slo`), the [`BrownoutController`] steps down
//! a degradation ladder: each level carries a priority floor below which
//! requests are shed at the door with [`crate::ShedReason::Brownout`] —
//! lowest-priority tiers first, before any token bucket is charged.
//! Recovery is hysteretic: a level is only stepped back up after
//! [`BrownoutConfig::recover_hold`] of page-free quiet, so the controller
//! cannot flap with the pager.

use vclock::rng::Rng;
use vclock::Cycles;

/// Knobs for the heartbeat/suspicion failure detector. Installed with
/// `Dispatcher::set_health`; absent (the default) the dispatcher behaves
/// exactly as before — detection is strictly opt-in.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Expected worst-case gap between a shard's heartbeats while it has
    /// work. Past this gap the detector starts probing.
    pub heartbeat_interval: Cycles,
    /// Suspicion score (silence ÷ `heartbeat_interval`) at which the
    /// shard is declared failed.
    pub suspicion_threshold: f64,
    /// Cadence of half-open recovery probes against a declared shard.
    pub probe_interval: Cycles,
    /// Consecutive successful probes required to restore a declared
    /// shard.
    pub probes_to_restore: u32,
    /// Jitter fraction applied to each probe interval, in `[0, 1)`.
    pub probe_jitter_frac: f64,
    /// Seed for the detector's private `vclock::rng` stream.
    pub seed: u64,
}

impl HealthConfig {
    /// Conservative defaults: 500 µs heartbeat interval, threshold 4
    /// (two milliseconds of silence), 250 µs probe cadence, 3 probes to
    /// restore, 10% probe jitter.
    pub fn new() -> HealthConfig {
        HealthConfig {
            heartbeat_interval: Cycles::from_micros(500.0),
            suspicion_threshold: 4.0,
            probe_interval: Cycles::from_micros(250.0),
            probes_to_restore: 3,
            probe_jitter_frac: 0.1,
            seed: 0x004E_A174,
        }
    }

    /// Sets the heartbeat interval in virtual seconds (builder style).
    pub fn with_heartbeat_interval(mut self, secs: f64) -> HealthConfig {
        assert!(secs > 0.0, "heartbeat interval must be positive");
        self.heartbeat_interval = Cycles::from_micros(secs * 1e6);
        self
    }

    /// Sets the suspicion threshold (builder style).
    pub fn with_suspicion_threshold(mut self, threshold: f64) -> HealthConfig {
        assert!(threshold >= 1.0, "a sub-one threshold suspects heartbeats");
        self.suspicion_threshold = threshold;
        self
    }

    /// Sets the probe cadence in virtual seconds and the number of
    /// consecutive successes that restore a shard (builder style).
    pub fn with_probes(mut self, interval_secs: f64, to_restore: u32) -> HealthConfig {
        assert!(interval_secs > 0.0, "probe interval must be positive");
        assert!(to_restore >= 1, "restoring needs at least one probe");
        self.probe_interval = Cycles::from_micros(interval_secs * 1e6);
        self.probes_to_restore = to_restore;
        self
    }

    /// Sets the detector's RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> HealthConfig {
        self.seed = seed;
        self
    }
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig::new()
    }
}

/// Circuit-breaker state of one shard, as the detector sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Healthy: heartbeats (or idle probes) are arriving.
    Closed,
    /// Declared failed; recovery probes are failing (or have not yet
    /// succeeded).
    Open,
    /// Declared failed, but at least one recovery probe has succeeded;
    /// a full success streak will close the breaker.
    HalfOpen,
}

impl CircuitState {
    /// Stable snake_case label for the `/admin/health` payload.
    pub fn label(self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::Open => "open",
            CircuitState::HalfOpen => "half_open",
        }
    }
}

/// What the detector wants done, returned from [`HealthDetector::poll`]
/// and applied by the dispatcher through its existing lifecycle entry
/// points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthAction {
    /// Suspicion crossed the threshold: `fail_shard` this shard.
    Declare(usize),
    /// The success streak completed: `restore_shard` this shard.
    Restore(usize),
}

/// Detector counters, exported through `Dispatcher::health_stats` and the
/// fault-recovery bench gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Shard failures this detector declared (threshold crossings).
    pub declared: u64,
    /// Declared shards restored after a full half-open success streak.
    pub restored: u64,
    /// Declarations against a shard that was actually alive at the
    /// instant of declaration. Probing before suspecting makes this
    /// structurally zero in steady state; the bench gates it exactly.
    pub false_positives: u64,
    /// Probes sent (liveness and half-open recovery).
    pub probes: u64,
    /// Probes that went unanswered.
    pub probe_failures: u64,
}

/// Read-only per-shard detector view, for `/admin/health` and the
/// `vsched_suspicion` gauge.
#[derive(Debug, Clone, Copy)]
pub struct ShardHealth {
    /// Current suspicion score (silence ÷ heartbeat interval; 0 while
    /// heartbeats arrive).
    pub suspicion: f64,
    /// Circuit-breaker state.
    pub breaker: CircuitState,
    /// Virtual instant (cycles) of the last observed heartbeat or
    /// successful probe.
    pub last_seen: u64,
}

#[derive(Debug, Clone, Copy)]
struct ShardMonitor {
    last_seen: u64,
    suspicion: f64,
    breaker: CircuitState,
    streak: u32,
    next_probe_at: u64,
}

/// The heartbeat/suspicion failure detector. Owned by the dispatcher;
/// fed heartbeats from batch ticks and polled as virtual time advances.
#[derive(Debug)]
pub struct HealthDetector {
    config: HealthConfig,
    rng: Rng,
    shards: Vec<ShardMonitor>,
    stats: HealthStats,
}

impl HealthDetector {
    /// A detector over `shards` shards, all initially healthy.
    pub fn new(config: HealthConfig, shards: usize) -> HealthDetector {
        HealthDetector {
            config,
            rng: Rng::seeded(config.seed),
            shards: vec![
                ShardMonitor {
                    last_seen: 0,
                    suspicion: 0.0,
                    breaker: CircuitState::Closed,
                    streak: 0,
                    next_probe_at: 0,
                };
                shards
            ],
            stats: HealthStats::default(),
        }
    }

    /// Records a liveness signal from shard `shard` at virtual instant
    /// `at` (cycles) — every batch tick is one.
    pub fn heartbeat(&mut self, shard: usize, at: u64) {
        let m = &mut self.shards[shard];
        m.last_seen = m.last_seen.max(at);
        if m.breaker == CircuitState::Closed {
            m.suspicion = 0.0;
        }
    }

    /// A jittered probe interval: the configured cadence scaled by a
    /// seeded uniform factor in `[1 − j, 1 + j)`.
    fn jittered_interval(&mut self) -> u64 {
        let j = self.config.probe_jitter_frac;
        let scale = if j > 0.0 {
            self.rng.range_f64(1.0 - j, 1.0 + j)
        } else {
            1.0
        };
        ((self.config.probe_interval.get() as f64) * scale) as u64
    }

    /// Advances the detector to virtual instant `now`. `alive[i]` is
    /// whether shard `i`'s worker would answer a probe (a hung worker
    /// would not); `monitored[i]` is whether the shard is `Active` —
    /// shards an *operator* drained or failed are not the detector's to
    /// judge. Returns the lifecycle actions the dispatcher must apply.
    pub fn poll(&mut self, now: u64, alive: &[bool], monitored: &[bool]) -> Vec<HealthAction> {
        let mut actions = Vec::new();
        let interval = self.config.heartbeat_interval.get().max(1);
        for i in 0..self.shards.len() {
            let breaker = self.shards[i].breaker;
            match breaker {
                CircuitState::Closed => {
                    if !monitored[i] {
                        // Operator-managed shard: hold the clock so a
                        // later restore starts from a clean slate.
                        let m = &mut self.shards[i];
                        m.last_seen = m.last_seen.max(now);
                        m.suspicion = 0.0;
                        continue;
                    }
                    let elapsed = now.saturating_sub(self.shards[i].last_seen);
                    if elapsed <= interval {
                        self.shards[i].suspicion = elapsed as f64 / interval as f64;
                        continue;
                    }
                    if now < self.shards[i].next_probe_at {
                        continue;
                    }
                    self.stats.probes += 1;
                    let next = now + self.jittered_interval();
                    let m = &mut self.shards[i];
                    m.next_probe_at = next;
                    if alive[i] {
                        // Idle but answering: healthy, never suspected.
                        m.last_seen = now;
                        m.suspicion = 0.0;
                    } else {
                        self.stats.probe_failures += 1;
                        m.suspicion = elapsed as f64 / interval as f64;
                    }
                    if self.shards[i].suspicion >= self.config.suspicion_threshold {
                        let m = &mut self.shards[i];
                        m.breaker = CircuitState::Open;
                        m.streak = 0;
                        self.stats.declared += 1;
                        // Probe-before-suspect makes declaring an
                        // answering shard impossible; the counter is the
                        // tripwire guarding that invariant (the bench
                        // gates it at exactly zero).
                        if alive[i] {
                            self.stats.false_positives += 1;
                        }
                        actions.push(HealthAction::Declare(i));
                    }
                }
                CircuitState::Open | CircuitState::HalfOpen => {
                    if monitored[i] {
                        // An operator restored the shard out from under
                        // the breaker: accept their judgement.
                        let m = &mut self.shards[i];
                        m.breaker = CircuitState::Closed;
                        m.streak = 0;
                        m.last_seen = now;
                        m.suspicion = 0.0;
                        continue;
                    }
                    if now < self.shards[i].next_probe_at {
                        continue;
                    }
                    self.stats.probes += 1;
                    let next = now + self.jittered_interval();
                    let restore_after = self.config.probes_to_restore;
                    let m = &mut self.shards[i];
                    m.next_probe_at = next;
                    if alive[i] {
                        m.streak += 1;
                        m.breaker = CircuitState::HalfOpen;
                        if m.streak >= restore_after {
                            m.breaker = CircuitState::Closed;
                            m.streak = 0;
                            m.last_seen = now;
                            m.suspicion = 0.0;
                            self.stats.restored += 1;
                            actions.push(HealthAction::Restore(i));
                        }
                    } else {
                        self.stats.probe_failures += 1;
                        m.streak = 0;
                        m.breaker = CircuitState::Open;
                    }
                }
            }
        }
        actions
    }

    /// Whether the detector (not an operator) declared shard `shard`
    /// failed and has not yet restored it.
    pub fn holds_open(&self, shard: usize) -> bool {
        self.shards[shard].breaker != CircuitState::Closed
    }

    /// Per-shard view for `/admin/health` and the `vsched_suspicion`
    /// gauge.
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        let m = &self.shards[shard];
        ShardHealth {
            suspicion: m.suspicion,
            breaker: m.breaker,
            last_seen: m.last_seen,
        }
    }

    /// Detector counters.
    pub fn stats(&self) -> HealthStats {
        self.stats
    }
}

/// Knobs for the overload brownout controller. Installed with
/// `Dispatcher::set_brownout`; requires an SLO engine
/// (`Dispatcher::set_slo`) whose page-severity alerts drive it.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Degradation ladder: `ladder[k]` is the priority floor at level
    /// `k + 1` — requests with effective priority *below* the floor are
    /// shed with [`crate::ShedReason::Brownout`]. Must be non-empty and
    /// non-decreasing (each level sheds at least what the previous did).
    pub ladder: Vec<u8>,
    /// Minimum time between successive step-*downs* (escalations) while
    /// the pager keeps firing, so one sustained page does not slam the
    /// controller to the deepest level instantly.
    pub step_hold: Cycles,
    /// Page-free quiet time required before stepping one level back up
    /// (the hysteresis half: recovery is deliberately slower than
    /// escalation).
    pub recover_hold: Cycles,
}

impl BrownoutConfig {
    /// A two-level ladder shedding priority 0, then priorities ≤ 1, with
    /// 2 ms between escalations and 10 ms of quiet before recovery.
    pub fn new() -> BrownoutConfig {
        BrownoutConfig {
            ladder: vec![1, 2],
            step_hold: Cycles::from_micros(2_000.0),
            recover_hold: Cycles::from_micros(10_000.0),
        }
    }

    /// Sets the ladder of priority floors (builder style).
    pub fn with_ladder(mut self, ladder: Vec<u8>) -> BrownoutConfig {
        assert!(
            !ladder.is_empty(),
            "a brownout ladder needs at least one level"
        );
        assert!(
            ladder.windows(2).all(|w| w[0] <= w[1]),
            "ladder floors must be non-decreasing"
        );
        self.ladder = ladder;
        self
    }

    /// Sets the escalation hold and recovery quiet time in virtual
    /// seconds (builder style).
    pub fn with_holds(mut self, step_secs: f64, recover_secs: f64) -> BrownoutConfig {
        assert!(
            step_secs >= 0.0 && recover_secs >= 0.0,
            "holds cannot be negative"
        );
        self.step_hold = Cycles::from_micros(step_secs * 1e6);
        self.recover_hold = Cycles::from_micros(recover_secs * 1e6);
        self
    }
}

impl Default for BrownoutConfig {
    fn default() -> BrownoutConfig {
        BrownoutConfig::new()
    }
}

/// The overload brownout controller: a degradation ladder stepped down
/// while the burn-rate pager fires, stepped back up with hysteresis.
#[derive(Debug)]
pub struct BrownoutController {
    config: BrownoutConfig,
    level: usize,
    last_change: u64,
    quiet_since: Option<u64>,
}

impl BrownoutController {
    /// A controller at level 0 (no degradation).
    pub fn new(config: BrownoutConfig) -> BrownoutController {
        BrownoutController {
            config,
            level: 0,
            last_change: 0,
            quiet_since: None,
        }
    }

    /// Advances the controller to virtual instant `now` given whether
    /// any page-severity alert is currently firing. Returns the level in
    /// effect after the step.
    pub fn evaluate(&mut self, now: u64, paging: bool) -> usize {
        if paging {
            self.quiet_since = None;
            let can_step = self.level == 0 || now >= self.last_change + self.config.step_hold.get();
            if self.level < self.config.ladder.len() && can_step {
                self.level += 1;
                self.last_change = now;
            }
        } else if self.level > 0 {
            match self.quiet_since {
                None => self.quiet_since = Some(now),
                Some(q) if now >= q + self.config.recover_hold.get() => {
                    self.level -= 1;
                    self.last_change = now;
                    self.quiet_since = if self.level > 0 { Some(now) } else { None };
                }
                Some(_) => {}
            }
        }
        self.level
    }

    /// The current degradation level (0 = none), the
    /// `vsched_brownout_level` gauge.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Whether a request at `priority` is shed at the current level.
    pub fn sheds(&self, priority: u8) -> bool {
        self.level > 0 && priority < self.config.ladder[self.level - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyc(us: f64) -> u64 {
        Cycles::from_micros(us).get()
    }

    fn detector() -> HealthDetector {
        // 100 µs heartbeat interval, threshold 3, 50 µs probes, 2 to
        // restore, no jitter so instants are easy to reason about.
        let cfg = HealthConfig {
            heartbeat_interval: Cycles::from_micros(100.0),
            suspicion_threshold: 3.0,
            probe_interval: Cycles::from_micros(50.0),
            probes_to_restore: 2,
            probe_jitter_frac: 0.0,
            seed: 7,
        };
        HealthDetector::new(cfg, 2)
    }

    #[test]
    fn idle_but_alive_shards_are_never_suspected() {
        let mut d = detector();
        let alive = [true, true];
        let active = [true, true];
        for step in 1..=100u64 {
            let actions = d.poll(step * cyc(100.0), &alive, &active);
            assert!(actions.is_empty(), "a probed, answering shard is healthy");
        }
        assert_eq!(d.stats().declared, 0);
        assert_eq!(d.stats().false_positives, 0);
        assert!(d.stats().probes > 0, "silence past the interval probed");
        assert_eq!(d.stats().probe_failures, 0);
    }

    #[test]
    fn silence_grows_suspicion_and_crosses_the_threshold() {
        let mut d = detector();
        d.heartbeat(0, cyc(100.0));
        d.heartbeat(1, cyc(100.0));
        // Shard 0 wedges; shard 1 keeps beating.
        let alive = [false, true];
        let active = [true, true];
        let mut declared_at = None;
        for step in 3..=20u64 {
            let now = step * cyc(50.0);
            d.heartbeat(1, now);
            for a in d.poll(now, &alive, &active) {
                assert_eq!(a, HealthAction::Declare(0));
                declared_at = Some(now);
            }
            if declared_at.is_some() {
                break;
            }
        }
        // Threshold 3 × 100 µs of silence after the 100 µs heartbeat:
        // declared at the first poll past 400 µs.
        assert_eq!(declared_at, Some(cyc(400.0)));
        assert_eq!(d.stats().declared, 1);
        assert_eq!(d.stats().false_positives, 0);
        assert!(d.holds_open(0));
        assert_eq!(d.shard_health(0).breaker, CircuitState::Open);
        assert_eq!(d.shard_health(1).breaker, CircuitState::Closed);
        assert!(d.shard_health(0).suspicion >= 3.0);
    }

    #[test]
    fn half_open_probes_restore_after_a_success_streak() {
        let mut d = detector();
        let active = [true, true];
        // Wedge shard 0 and let the detector declare it.
        let mut now = cyc(500.0);
        assert_eq!(
            d.poll(now, &[false, true], &active),
            vec![HealthAction::Declare(0)]
        );
        // Declared: the shard is no longer Active. Probes fail while it
        // stays wedged.
        now += cyc(50.0);
        assert!(d.poll(now, &[false, true], &[false, true]).is_empty());
        assert_eq!(d.shard_health(0).breaker, CircuitState::Open);
        // It recovers: two consecutive successes (probes_to_restore = 2)
        // walk Open → HalfOpen → Closed.
        now += cyc(50.0);
        assert!(d.poll(now, &[true, true], &[false, true]).is_empty());
        assert_eq!(d.shard_health(0).breaker, CircuitState::HalfOpen);
        now += cyc(50.0);
        assert_eq!(
            d.poll(now, &[true, true], &[false, true]),
            vec![HealthAction::Restore(0)]
        );
        assert_eq!(d.shard_health(0).breaker, CircuitState::Closed);
        assert_eq!(d.stats().restored, 1);
        assert!(!d.holds_open(0));
    }

    #[test]
    fn a_failed_half_open_probe_resets_the_streak() {
        let mut d = detector();
        let mut now = cyc(500.0);
        assert_eq!(
            d.poll(now, &[false, true], &[true, true]),
            vec![HealthAction::Declare(0)]
        );
        // Success, then a relapse, then two successes: only the final
        // streak restores.
        now += cyc(50.0);
        assert!(d.poll(now, &[true, true], &[false, true]).is_empty());
        now += cyc(50.0);
        assert!(d.poll(now, &[false, true], &[false, true]).is_empty());
        assert_eq!(
            d.shard_health(0).breaker,
            CircuitState::Open,
            "relapse re-opens"
        );
        now += cyc(50.0);
        assert!(d.poll(now, &[true, true], &[false, true]).is_empty());
        now += cyc(50.0);
        assert_eq!(
            d.poll(now, &[true, true], &[false, true]),
            vec![HealthAction::Restore(0)]
        );
    }

    #[test]
    fn operator_managed_shards_are_not_the_detectors_business() {
        let mut d = detector();
        // Shard 0 is operator-drained (not monitored) and silent: the
        // detector must hold its clock, not suspect it.
        for step in 1..=50u64 {
            let actions = d.poll(step * cyc(100.0), &[false, true], &[false, true]);
            assert!(actions.is_empty());
        }
        assert_eq!(d.stats().declared, 0);
        assert_eq!(d.shard_health(0).suspicion, 0.0);
    }

    #[test]
    fn detector_replays_bit_for_bit_from_the_seed() {
        let run = || {
            let cfg = HealthConfig::new()
                .with_heartbeat_interval(0.0001)
                .with_probes(0.00005, 2)
                .with_seed(42);
            let mut d = HealthDetector::new(cfg, 3);
            let mut log = Vec::new();
            for step in 1..=200u64 {
                let now = step * cyc(25.0);
                // Shard 1 wedges for a window, then recovers.
                let hung = (40..=120).contains(&step);
                let alive = [true, !hung, true];
                let monitored = [true, !d.holds_open(1), true];
                for a in d.poll(now, &alive, &monitored) {
                    log.push((step, a));
                }
            }
            (log, d.stats())
        };
        let (log_a, stats_a) = run();
        let (log_b, stats_b) = run();
        assert_eq!(log_a, log_b, "same seed, same declare/restore sequence");
        assert_eq!(stats_a, stats_b);
        assert_eq!(stats_a.declared, 1);
        assert_eq!(stats_a.restored, 1);
        assert_eq!(stats_a.false_positives, 0);
    }

    #[test]
    fn brownout_ladder_steps_down_and_recovers_with_hysteresis() {
        let cfg = BrownoutConfig::new()
            .with_ladder(vec![1, 3])
            .with_holds(0.001, 0.005);
        let mut b = BrownoutController::new(cfg);
        assert_eq!(b.level(), 0);
        assert!(!b.sheds(0));
        // First page escalates immediately.
        assert_eq!(b.evaluate(cyc(100.0), true), 1);
        assert!(b.sheds(0) && !b.sheds(1), "level 1 floor is priority 1");
        // A page inside the step hold does not escalate again.
        assert_eq!(b.evaluate(cyc(600.0), true), 1);
        // Past the hold it does.
        assert_eq!(b.evaluate(cyc(1_200.0), true), 2);
        assert!(b.sheds(2) && !b.sheds(3), "level 2 floor is priority 3");
        // Quiet, but not long enough: holds.
        assert_eq!(b.evaluate(cyc(2_000.0), false), 2);
        assert_eq!(b.evaluate(cyc(6_000.0), false), 2);
        // 5 ms of quiet steps one level up — not straight to zero.
        assert_eq!(b.evaluate(cyc(7_100.0), false), 1);
        // A fresh page resets the quiet clock.
        assert_eq!(b.evaluate(cyc(7_200.0), true), 1, "step hold blocks");
        assert_eq!(b.evaluate(cyc(11_000.0), false), 1);
        assert_eq!(b.evaluate(cyc(16_100.0), false), 0);
        assert!(!b.sheds(0));
    }

    #[test]
    fn config_builders_validate() {
        let h = HealthConfig::new()
            .with_heartbeat_interval(0.001)
            .with_suspicion_threshold(8.0)
            .with_probes(0.0005, 5)
            .with_seed(9);
        assert_eq!(h.heartbeat_interval, Cycles::from_micros(1_000.0));
        assert_eq!(h.suspicion_threshold, 8.0);
        assert_eq!(h.probe_interval, Cycles::from_micros(500.0));
        assert_eq!((h.probes_to_restore, h.seed), (5, 9));
        assert_eq!(CircuitState::Closed.label(), "closed");
        assert_eq!(CircuitState::Open.label(), "open");
        assert_eq!(CircuitState::HalfOpen.label(), "half_open");
    }
}
