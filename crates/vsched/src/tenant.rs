//! Tenant profiles and admission control.
//!
//! The paper isolates *functions* at the hardware limit; a serving platform
//! must additionally isolate *customers* from each other before any virtine
//! runs. Each tenant carries:
//!
//! * a **token bucket** ([`TenantProfile::rate_rps`]/[`TenantProfile::burst`])
//!   bounding its sustained admission rate — a misbehaving tenant is shed at
//!   the door instead of starving the shared shell pools;
//! * an **in-flight cap** ([`TenantProfile::max_in_flight`]) bounding how
//!   much queue and pool capacity one tenant can hold at once;
//! * a **hypercall ceiling** ([`TenantProfile::mask`]), intersected with
//!   each virtine spec's own policy — the default-deny posture of §5.1
//!   extends to tenants: a profile can only narrow what a spec permits,
//!   never widen it;
//! * a **base priority** feeding the shard run queues.

use vclock::stats::Histogram;
use vclock::Cycles;
use wasp::HypercallMask;

/// Handle to a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The tenant's index in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Why the dispatcher refused a request at admission or dropped it before
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket was empty: it exceeded its sustained rate.
    RateLimited,
    /// The tenant already has `max_in_flight` requests queued or running.
    InFlightCap,
    /// The request's deadline passed while it waited in a shard queue.
    DeadlineMissed,
    /// Deadline-aware admission: the target shard's backlog already makes
    /// the deadline unmeetable (estimated queue wait × recent per-request
    /// cost lands past it), so the request is shed at `submit` instead of
    /// wasting queue space on a guaranteed miss.
    DeadlineUnmeetable,
    /// The tenant's *byte* bucket was empty: the request's payload bytes
    /// (args plus invocation payload, counted at submit) exceeded its
    /// sustained byte rate. Request and byte budgets are independent — a
    /// tenant within its request rate can still be shed for fat payloads.
    ByteBudget,
    /// Shard lifecycle evicted an admitted run that could not be
    /// re-admitted elsewhere: its drain grace period
    /// ([`TenantProfile::drain_grace`]) expired while it was still parked
    /// on a draining shard, or the shard it was parked on failed and the
    /// suspended state died with it. This is the only post-admission shed
    /// besides [`ShedReason::DeadlineMissed`]; movable work (queued
    /// requests, migratable suspensions, warm shells) is relocated by the
    /// reconciler instead and never sees this reason.
    Evicted,
    /// The brownout controller ([`crate::BrownoutConfig`]) was holding a
    /// degradation level whose priority floor the request's effective
    /// priority fell below: the burn-rate pager was firing and the
    /// dispatcher shed low-priority tiers at the door to protect the SLO
    /// of the rest. Charged before any token bucket, so a browned-out
    /// request burns no budget.
    Brownout,
}

impl ShedReason {
    /// Stable snake_case label for this reason, matching the `outcome`
    /// label values of the `vsched_requests_total` Prometheus series
    /// (minus their `shed_` prefix namespacing) and the trace dump's
    /// `shed:<label>` outcomes.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limit",
            ShedReason::InFlightCap => "in_flight",
            ShedReason::DeadlineMissed => "deadline",
            ShedReason::DeadlineUnmeetable => "deadline_unmeetable",
            ShedReason::ByteBudget => "byte_budget",
            ShedReason::Evicted => "evicted",
            ShedReason::Brownout => "brownout",
        }
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::RateLimited => write!(f, "rate limited"),
            ShedReason::InFlightCap => write!(f, "in-flight cap reached"),
            ShedReason::DeadlineMissed => write!(f, "deadline missed"),
            ShedReason::DeadlineUnmeetable => write!(f, "deadline unmeetable at admission"),
            ShedReason::ByteBudget => write!(f, "byte budget exhausted"),
            ShedReason::Evicted => write!(f, "evicted by shard lifecycle"),
            ShedReason::Brownout => write!(f, "shed by overload brownout"),
        }
    }
}

/// Exactly-once retry policy for one tenant: work this tenant has
/// *admitted* that is then lost to a shard failure (queued work with no
/// eligible sibling to evacuate to, or a parked run whose suspended state
/// died with the shard) is re-submitted from scratch instead of being
/// shed with [`ShedReason::Evicted`].
///
/// Re-submission is bounded three ways: a per-request attempt cap, an
/// exponential backoff with seeded jitter (all randomness through
/// `vclock::rng`, so retries replay bit-for-bit), and a tenant-wide retry
/// *budget* token bucket — a failing shard cannot amplify a tenant's load
/// unboundedly. Only requests whose inputs the dispatcher still holds can
/// be re-run: a request bound to a live connection
/// (`wasp::Invocation::conn`) has consumed bytes the dispatcher cannot
/// replay, so it falls through to the normal eviction shed.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum total attempts per logical request, counting the first
    /// run (so `max_attempts: 3` allows two retries). Must be ≥ 2 or the
    /// policy retries nothing.
    pub max_attempts: u32,
    /// Backoff base: retry *n* (1-based) is released `backoff × 2^(n−1)`
    /// after the loss, scaled by jitter.
    pub backoff: Cycles,
    /// Jitter fraction in `[0, 1)`: each delay is scaled by a seeded
    /// uniform factor in `[1 − jitter_frac, 1 + jitter_frac)`.
    pub jitter_frac: f64,
    /// Sustained retry budget in retries per virtual second;
    /// `f64::INFINITY` disables the budget.
    pub budget_rps: f64,
    /// Retry-budget bucket capacity (largest retry burst from full).
    pub budget_burst: f64,
}

impl RetryPolicy {
    /// A conservative default: 3 total attempts, 100 µs backoff base,
    /// 10% jitter, 100 retries/s sustained with a burst of 16.
    pub fn new() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Cycles::from_micros(100.0),
            jitter_frac: 0.1,
            budget_rps: 100.0,
            budget_burst: 16.0,
        }
    }

    /// Sets the total attempt cap (builder style).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> RetryPolicy {
        assert!(max_attempts >= 2, "fewer than two attempts retries nothing");
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the backoff base in virtual seconds (builder style).
    pub fn with_backoff(mut self, secs: f64) -> RetryPolicy {
        assert!(secs >= 0.0, "backoff cannot be negative");
        self.backoff = Cycles::from_micros(secs * 1e6);
        self
    }

    /// Sets the jitter fraction (builder style).
    pub fn with_jitter(mut self, frac: f64) -> RetryPolicy {
        assert!(
            (0.0..1.0).contains(&frac),
            "jitter fraction must be in [0, 1)"
        );
        self.jitter_frac = frac;
        self
    }

    /// Sets the retry-budget rate and burst (builder style).
    pub fn with_budget(mut self, rps: f64, burst: f64) -> RetryPolicy {
        assert!(burst >= 1.0, "a sub-one budget burst admits no retry");
        self.budget_rps = rps;
        self.budget_burst = burst;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::new()
    }
}

/// Tail-hedging policy for one tenant: if a request has not completed
/// within a delay derived from *observed* end-to-end latency (the same
/// histograms Prometheus exports), a duplicate is submitted and the first
/// completion wins — the loser is canceled and suppressed, so the request
/// still completes (and is counted) exactly once.
///
/// Hedging only arms for requests whose inputs can be duplicated (no
/// bound connection). The delay is `max(min_delay, quantile × multiplier)`
/// over the tenant's own e2e histogram once it has enough samples, falling
/// back to the dispatcher-wide histogram, then to `min_delay` on a cold
/// start.
#[derive(Debug, Clone, Copy)]
pub struct HedgePolicy {
    /// Which observed e2e quantile seeds the delay (e.g. 0.99).
    pub quantile: f64,
    /// Multiplier applied to the observed quantile (≥ 1.0 keeps the
    /// hedge rate at roughly `1 − quantile` of traffic).
    pub multiplier: f64,
    /// Floor on the hedge delay, and the delay used while histograms are
    /// still cold.
    pub min_delay: Cycles,
    /// Histogram sample count below which a histogram is considered cold.
    pub min_samples: u64,
}

impl HedgePolicy {
    /// Hedge at the observed p99 (×1), floored at 200 µs, trusting
    /// histograms with at least 64 samples.
    pub fn new() -> HedgePolicy {
        HedgePolicy {
            quantile: 0.99,
            multiplier: 1.0,
            min_delay: Cycles::from_micros(200.0),
            min_samples: 64,
        }
    }

    /// Sets the quantile and multiplier (builder style).
    pub fn with_quantile(mut self, quantile: f64, multiplier: f64) -> HedgePolicy {
        assert!((0.0..1.0).contains(&quantile), "quantile must be in [0, 1)");
        assert!(multiplier > 0.0, "multiplier must be positive");
        self.quantile = quantile;
        self.multiplier = multiplier;
        self
    }

    /// Sets the delay floor in virtual seconds (builder style).
    pub fn with_min_delay(mut self, secs: f64) -> HedgePolicy {
        assert!(secs > 0.0, "a zero hedge delay duplicates every request");
        self.min_delay = Cycles::from_micros(secs * 1e6);
        self
    }
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy::new()
    }
}

/// Admission-control profile for one tenant.
#[derive(Debug, Clone)]
pub struct TenantProfile {
    /// Diagnostic name.
    pub name: String,
    /// Sustained admission rate in requests per virtual second;
    /// `f64::INFINITY` disables rate limiting.
    pub rate_rps: f64,
    /// Token-bucket capacity: the largest instantaneous burst admitted
    /// from a full bucket.
    pub burst: f64,
    /// Sustained admission rate in payload *bytes* per virtual second
    /// (request args plus invocation payload, counted at submit);
    /// `f64::INFINITY` disables byte budgeting.
    pub byte_rate_bps: f64,
    /// Byte-bucket capacity: the largest single-instant payload volume
    /// admitted from a full bucket. A request carrying more bytes than
    /// this can never be admitted (shed with [`ShedReason::ByteBudget`]).
    pub byte_burst: f64,
    /// Maximum requests this tenant may have queued or running at once.
    pub max_in_flight: usize,
    /// Hypercall ceiling, intersected with each spec's policy (§5.1
    /// default-deny, extended per tenant).
    pub mask: HypercallMask,
    /// Base priority; higher values are popped from shard queues first.
    pub priority: u8,
    /// Longest a virtine of this tenant may stay parked in one blocking
    /// wait (vclock time). A parked run holds a live shell and an
    /// in-flight slot; past the bound it is killed with a wiped shell and
    /// counted in [`TenantStats::blocked_timeout`]. `None` waits forever.
    pub max_block: Option<Cycles>,
    /// How long this tenant's parked runs may linger on a *draining*
    /// shard when they cannot be migrated out (no eligible sibling, or a
    /// spin-polling wait that pins its worker), measured from the later
    /// of the drain start and the park. Past the bound the run is
    /// hard-stopped and — its input already consumed, so re-admission is
    /// impossible — shed with [`ShedReason::Evicted`]. `None` falls back
    /// to [`crate::DispatcherConfig::drain_grace`].
    pub drain_grace: Option<Cycles>,
    /// Exactly-once retry of work lost to shard failure; `None` (the
    /// default) sheds lost work with [`ShedReason::Evicted`] as before.
    pub retry: Option<RetryPolicy>,
    /// Tail hedging from observed latency; `None` (the default) never
    /// duplicates a request.
    pub hedge: Option<HedgePolicy>,
}

impl TenantProfile {
    /// An unthrottled, default-deny profile: no rate limit, a generous
    /// in-flight cap, and only the spec's own policy in effect — but no
    /// hypercalls beyond `exit`/`snapshot` unless [`Self::with_mask`]
    /// widens the ceiling.
    pub fn new(name: impl Into<String>) -> TenantProfile {
        TenantProfile {
            name: name.into(),
            rate_rps: f64::INFINITY,
            burst: 1.0,
            byte_rate_bps: f64::INFINITY,
            byte_burst: 1.0,
            max_in_flight: usize::MAX,
            mask: HypercallMask::DENY_ALL,
            priority: 0,
            max_block: None,
            drain_grace: None,
            retry: None,
            hedge: None,
        }
    }

    /// Sets the token-bucket rate and burst capacity (builder style).
    pub fn with_rate(mut self, rate_rps: f64, burst: f64) -> TenantProfile {
        assert!(burst >= 1.0, "burst below one admits nothing");
        self.rate_rps = rate_rps;
        self.burst = burst;
        self
    }

    /// Sets the payload-byte rate and burst capacity (builder style):
    /// the byte-budget half of admission, beside the request-count
    /// bucket of [`TenantProfile::with_rate`].
    pub fn with_byte_rate(mut self, bytes_per_s: f64, burst_bytes: f64) -> TenantProfile {
        assert!(burst_bytes > 0.0, "a zero byte burst admits no payload");
        self.byte_rate_bps = bytes_per_s;
        self.byte_burst = burst_bytes;
        self
    }

    /// Sets the in-flight cap (builder style).
    pub fn with_max_in_flight(mut self, cap: usize) -> TenantProfile {
        self.max_in_flight = cap;
        self
    }

    /// Sets the hypercall ceiling (builder style).
    pub fn with_mask(mut self, mask: HypercallMask) -> TenantProfile {
        self.mask = mask;
        self
    }

    /// Sets the base priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> TenantProfile {
        self.priority = priority;
        self
    }

    /// Bounds how long a virtine may stay parked in one blocking wait, in
    /// virtual seconds (builder style).
    pub fn with_max_block(mut self, secs: f64) -> TenantProfile {
        assert!(secs > 0.0, "a zero block budget kills every block");
        self.max_block = Some(Cycles::from_micros(secs * 1e6));
        self
    }

    /// Bounds how long this tenant's unmigratable parked runs may ride
    /// out a shard drain before being hard-stopped and shed as
    /// [`ShedReason::Evicted`], in virtual seconds (builder style). Zero
    /// evicts at the first reconcile pass.
    pub fn with_drain_grace(mut self, secs: f64) -> TenantProfile {
        assert!(secs >= 0.0, "a drain grace cannot be negative");
        self.drain_grace = Some(Cycles::from_micros(secs * 1e6));
        self
    }

    /// Enables exactly-once retry of work lost to shard failure (builder
    /// style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> TenantProfile {
        self.retry = Some(retry);
        self
    }

    /// Enables tail hedging from observed latency (builder style).
    pub fn with_hedge(mut self, hedge: HedgePolicy) -> TenantProfile {
        self.hedge = Some(hedge);
        self
    }
}

/// Per-tenant dispatcher statistics, surfaced like `wasp::PoolStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests offered by the tenant.
    pub submitted: u64,
    /// Requests admitted past rate limit and in-flight cap.
    pub admitted: u64,
    /// Requests that completed execution.
    pub served: u64,
    /// Requests shed because the token bucket was empty.
    pub shed_rate_limit: u64,
    /// Requests shed at the in-flight cap.
    pub shed_in_flight: u64,
    /// Requests dropped in-queue after their deadline passed.
    pub shed_deadline: u64,
    /// Requests shed at admission because the deadline was already
    /// unmeetable given the target shard's backlog.
    pub shed_deadline_unmeetable: u64,
    /// Requests shed because the payload exceeded the tenant's byte
    /// budget.
    pub shed_byte_budget: u64,
    /// Served requests that ran on a shell stolen from a sibling shard.
    pub stolen_serves: u64,
    /// Served requests that hit a warm shell (delta re-arm).
    pub warm_serves: u64,
    /// Served requests that ended abnormally (policy denial, fault, kill).
    pub abnormal: u64,
    /// Requests currently queued or running.
    pub in_flight: u64,
    /// Times this tenant's virtines parked in a blocking wait (block
    /// events, not unique requests).
    pub blocked: u64,
    /// Parked runs killed at the tenant's `max_block` bound.
    pub blocked_timeout: u64,
    /// Admitted runs hard-stopped by shard lifecycle
    /// ([`ShedReason::Evicted`]): their drain grace expired while they
    /// were parked on a draining shard, or the shard they were parked on
    /// failed.
    pub shed_evicted: u64,
    /// Requests shed at the door by the brownout controller
    /// ([`ShedReason::Brownout`]): their priority fell below the active
    /// degradation level's floor.
    pub shed_brownout: u64,
    /// Re-submissions performed by the retry machinery (attempts beyond
    /// the first, summed over all logical requests).
    pub retries: u64,
    /// Logical requests currently waiting out a retry backoff: admitted,
    /// not served, not shed — the third leg of the conservation identity
    /// `admitted == served + shed() + retried_in_flight`. Zero whenever
    /// the dispatcher is idle.
    pub retried_in_flight: u64,
}

impl TenantStats {
    /// Total sheds across every cause.
    pub fn shed(&self) -> u64 {
        self.shed_rate_limit
            + self.shed_in_flight
            + self.shed_deadline
            + self.shed_deadline_unmeetable
            + self.shed_byte_budget
            + self.shed_evicted
            + self.shed_brownout
    }
}

/// A token bucket refilled in virtual time. Public because edge layers
/// (the `vhttp` ingress) reuse it for per-tenant admission accounting
/// *in front of* the cluster, so a tenant over budget is shed at the
/// edge with the same refill semantics the dispatcher would apply.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    rate_rps: f64,
    burst: f64,
    last_refill: Cycles,
}

impl TokenBucket {
    /// A bucket holding `burst` tokens, refilled at `rate_rps` tokens
    /// per virtual second. A non-finite rate means unlimited.
    pub fn new(rate_rps: f64, burst: f64) -> TokenBucket {
        TokenBucket {
            tokens: burst,
            rate_rps,
            burst,
            last_refill: Cycles::ZERO,
        }
    }

    /// Refills up to `now` and tries to charge one token (the
    /// one-bucket convenience over `can_admit` + `take`; the
    /// dispatcher's admission checks the request and byte buckets
    /// jointly instead, and the edge uses this form directly).
    pub fn admit(&mut self, now: Cycles) -> bool {
        if !self.can_admit(now, 1.0) {
            return false;
        }
        self.take(1.0);
        true
    }

    /// Refills up to `now` and reports whether `cost` tokens are
    /// available, without charging — `submit` checks the request and the
    /// byte bucket jointly before charging either, so a request refused
    /// by one bucket never burns tokens from the other.
    pub fn can_admit(&mut self, now: Cycles, cost: f64) -> bool {
        if !self.rate_rps.is_finite() {
            return true;
        }
        let dt = now.saturating_sub(self.last_refill).as_secs();
        self.tokens = (self.tokens + dt * self.rate_rps).min(self.burst);
        self.last_refill = Cycles(self.last_refill.get().max(now.get()));
        self.tokens >= cost
    }

    /// Charges `cost` tokens the caller just checked with
    /// [`TokenBucket::can_admit`].
    pub fn take(&mut self, cost: f64) {
        if self.rate_rps.is_finite() {
            self.tokens -= cost;
        }
    }
}

/// A registered tenant: profile plus live admission state.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub(crate) profile: TenantProfile,
    pub(crate) bucket: TokenBucket,
    /// The byte-budget bucket beside the request bucket: charged the
    /// request's payload bytes at submit.
    pub(crate) byte_bucket: TokenBucket,
    /// The retry-budget bucket, present only when the profile carries a
    /// [`RetryPolicy`]: charged one token per re-submission.
    pub(crate) retry_bucket: Option<TokenBucket>,
    pub(crate) stats: TenantStats,
    /// End-to-end latency distribution (cycles, arrival → finish) of
    /// this tenant's served requests — the `vsched_e2e_cycles{tenant=…}`
    /// Prometheus series.
    pub(crate) e2e: Histogram,
}

impl TenantState {
    pub(crate) fn new(profile: TenantProfile) -> TenantState {
        let bucket = TokenBucket::new(profile.rate_rps, profile.burst);
        let byte_bucket = TokenBucket::new(profile.byte_rate_bps, profile.byte_burst);
        let retry_bucket = profile
            .retry
            .map(|r| TokenBucket::new(r.budget_rps, r.budget_burst));
        TenantState {
            profile,
            bucket,
            byte_bucket,
            retry_bucket,
            stats: TenantStats::default(),
            e2e: Histogram::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_rate() {
        let mut b = TokenBucket::new(10.0, 3.0);
        let t0 = Cycles::ZERO;
        // Full bucket: three immediate admissions, then empty.
        assert!(b.admit(t0) && b.admit(t0) && b.admit(t0));
        assert!(!b.admit(t0));
        // 100 ms at 10 rps refills one token.
        let t1 = Cycles::from_micros(100_000.0);
        assert!(b.admit(t1));
        assert!(!b.admit(t1));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        // A long quiet period must not bank more than `burst` tokens.
        let late = Cycles::from_micros(10_000_000.0);
        assert!(b.admit(late) && b.admit(late));
        assert!(!b.admit(late));
    }

    #[test]
    fn infinite_rate_never_sheds() {
        let mut b = TokenBucket::new(f64::INFINITY, 1.0);
        for _ in 0..10_000 {
            assert!(b.admit(Cycles::ZERO));
        }
    }

    #[test]
    fn byte_costs_draw_down_the_bucket_without_charging_on_refusal() {
        // 100 bytes/s, 64-byte burst: a 48-byte payload admits, the next
        // 48-byte one doesn't — and the refusal must not charge.
        let mut b = TokenBucket::new(100.0, 64.0);
        let t0 = Cycles::ZERO;
        assert!(b.can_admit(t0, 48.0));
        b.take(48.0);
        assert!(!b.can_admit(t0, 48.0));
        assert!(b.can_admit(t0, 16.0), "refusal left the 16 bytes intact");
        // 320 ms at 100 B/s refills 32 bytes: 48 fits again.
        let t1 = Cycles::from_micros(320_000.0);
        assert!(b.can_admit(t1, 48.0));
        b.take(48.0);
        // A payload above the burst can never be admitted.
        let late = Cycles::from_micros(60_000_000.0);
        assert!(!b.can_admit(late, 65.0));
    }

    #[test]
    fn shed_reason_displays() {
        assert_eq!(ShedReason::RateLimited.to_string(), "rate limited");
        assert_eq!(ShedReason::InFlightCap.to_string(), "in-flight cap reached");
        assert_eq!(ShedReason::DeadlineMissed.to_string(), "deadline missed");
        assert_eq!(
            ShedReason::DeadlineUnmeetable.to_string(),
            "deadline unmeetable at admission"
        );
        assert_eq!(ShedReason::ByteBudget.to_string(), "byte budget exhausted");
        assert_eq!(
            ShedReason::Evicted.to_string(),
            "evicted by shard lifecycle"
        );
        assert_eq!(ShedReason::Evicted.label(), "evicted");
        assert_eq!(
            ShedReason::Brownout.to_string(),
            "shed by overload brownout"
        );
        assert_eq!(ShedReason::Brownout.label(), "brownout");
    }

    #[test]
    fn retry_and_hedge_policies_build_and_default_off() {
        let p = TenantProfile::new("t");
        assert!(p.retry.is_none() && p.hedge.is_none());
        let p = p
            .with_retry(
                RetryPolicy::new()
                    .with_max_attempts(4)
                    .with_backoff(0.0005)
                    .with_jitter(0.25)
                    .with_budget(50.0, 8.0),
            )
            .with_hedge(
                HedgePolicy::new()
                    .with_quantile(0.95, 1.5)
                    .with_min_delay(0.001),
            );
        let r = p.retry.unwrap();
        assert_eq!(r.max_attempts, 4);
        assert_eq!(r.backoff, Cycles::from_micros(500.0));
        assert_eq!(r.jitter_frac, 0.25);
        assert_eq!((r.budget_rps, r.budget_burst), (50.0, 8.0));
        let h = p.hedge.unwrap();
        assert_eq!((h.quantile, h.multiplier), (0.95, 1.5));
        assert_eq!(h.min_delay, Cycles::from_micros(1000.0));
        let ts = TenantState::new(TenantProfile::new("r").with_retry(RetryPolicy::new()));
        assert!(ts.retry_bucket.is_some(), "retry policy builds its bucket");
    }
}
