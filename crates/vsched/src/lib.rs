//! # vsched — the sharded, multi-tenant virtine dispatcher
//!
//! The paper shows that a *single* virtine client can provision isolated
//! execution contexts at the hardware limit: shell pooling and
//! snapshotting land start-up within a few percent of a bare `vmrun`
//! (§5.2, Figure 8). `vsched` is the layer a *platform* needs between
//! "millions of users" and that primitive: it admits, schedules, and
//! places invocations from many tenants onto Wasp without giving back the
//! microseconds the runtime worked for.
//!
//! ## Mechanisms, and the paper section each generalizes
//!
//! * **Sharded shell pools with work stealing** ([`Dispatcher`], one
//!   [`wasp::Pool`] per shard) — generalizes §5.2's single shell pool.
//!   One pool is a serialization point under concurrency; per-shard pools
//!   keep the acquire path (`WASP_POOL_BOOKKEEPING`, ~60 cycles)
//!   shard-local and contention-free. When a shard's clean list runs dry
//!   it steals a shell from the richest sibling, paying one explicit
//!   cross-shard transfer cost rather than imposing a lock on every
//!   request. Stolen shells were wiped on release, so §5.2's
//!   no-information-leakage guarantee ("we can clear its context,
//!   preventing information leakage") holds *across tenants and shards*,
//!   not just across successive invocations in one pool.
//! * **Warm shells and snapshot-aware placement**
//!   ([`Placement::SnapshotAware`], [`DispatcherConfig::warm_capacity`]) —
//!   generalizes §5.2's snapshotting the way SEUSS keeps snapshot-resident
//!   function contexts: a shell released after a snapshotted run parks
//!   *warm* in its shard's pool, keyed by `(tenant, virtine)`, and a later
//!   request for the same key is re-armed by copying back only the pages
//!   the previous invocation dirtied (`kvmsim`'s dirty-page log) instead
//!   of the full sparse snapshot. Placement then becomes a cache-hit
//!   decision: route to the shard already warm for the key, fall back to
//!   least-loaded. Stealing prefers clean shells; demoting a warm shell
//!   (LRU eviction, cross-key fallback, or a last-resort steal) is always
//!   a full wipe, so the §5.2 isolation guarantee is untouched — see the
//!   `wasp::pool` lifecycle diagram.
//! * **Topology-aware placement engine** ([`Topology`],
//!   [`PlacementEngine`], [`CostEngine`]) — every shell-routing decision
//!   (initial placement, the acquire chain's clean and warm steals,
//!   resume-time migration, warm-capacity verdicts) is scored by one
//!   policy layer over the shard→CCX→socket topology, through one
//!   [`Candidate`] cost function. Steals and migrations prefer near
//!   siblings and pay calibrated *per-hop* transfer costs
//!   (`vclock::costs::VSCHED_TRANSFER_*`); warm caching can trade the
//!   fixed per-pool LRU bound for a global cross-shard budget plus
//!   per-tenant quotas ([`DispatcherConfig::warm_budget`],
//!   [`DispatcherConfig::warm_tenant_quota`]) — see the decision-point
//!   diagram in [`placement`] and the `topology_steal` bench.
//! * **Multi-tenant admission control** ([`TenantProfile`]) — generalizes
//!   §5.1's default-deny posture from hypercalls to platform capacity.
//!   Each tenant gets a token-bucket rate limit, a payload *byte* budget
//!   ([`TenantProfile::with_byte_rate`], shed as
//!   [`ShedReason::ByteBudget`]), and an in-flight cap (shed early, at
//!   the door), plus a [`wasp::HypercallMask`] *ceiling* intersected with
//!   every spec policy: a tenant profile can only narrow what a virtine
//!   may do, never widen it (the per-compartment resource budget framing
//!   of the related capability-hardware literature, see PAPERS.md).
//! * **Priority/deadline run queues with batched ticks** ([`Request`],
//!   [`DispatcherConfig::tick`]) — generalizes §7.1's single-queue
//!   serverless experiment. Admitted requests wait for their shard's next
//!   batch tick; each tick pops up to `batch_size` requests by (priority,
//!   deadline, FIFO) and retires requests whose deadline already passed.
//!   Everything is driven by the `vclock` virtual clock, so a full
//!   platform run is deterministic and benchmarkable bit-for-bit — the
//!   property the reproduction depends on everywhere else.
//! * **Event-driven blocked I/O** ([`BlockMode`], the per-shard parked
//!   sets) — generalizes §6.3's blocking `recv` from a busy-wait into an
//!   exit. A virtine that blocks suspends (`wasp::SuspendedRun` — shell,
//!   invocation, and segmented accounting ride together, outside every
//!   pool, so a parked shell is structurally unstealable and
//!   undemotable), the shard worker returns to useful work, and a socket
//!   wake re-queues the run at the *front* of its shard's queue. A
//!   per-tenant `max_block` bound kills runs parked too long (wiped
//!   shell, `blocked_timeout` stat); [`BlockMode::SpinPoll`] preserves
//!   the pre-suspension behavior as a measurable baseline (the
//!   `blocked_io` bench shows the fast-tenant p99 gap).
//! * **Deadline-aware admission** ([`ShedReason::DeadlineUnmeetable`]) —
//!   `submit` estimates the target shard's queue wait (backlog × an EMA
//!   of recent per-request cost) and sheds immediately when the deadline
//!   is already lost, before the request burns queue space or rate
//!   tokens.
//! * **Dispatcher statistics** ([`DispatcherStats`], [`TenantStats`],
//!   [`ShardSnapshot`]) — surfaced exactly like `wasp::PoolStats`:
//!   per-tenant served/shed/stolen/blocked/in-flight and per-shard queue
//!   depth, parked runs, batches, busy-wait cycles, and steal traffic,
//!   so experiments (and the `dispatcher_scaling`/`blocked_io` benches)
//!   can attribute every request.
//! * **SLO-grade observability** ([`Dispatcher::enable_tracing`],
//!   [`Dispatcher::set_slo`]) — generalizes §5's breakdown methodology
//!   from a bench-time measurement into a serving-time surface. With
//!   tracing on, every invocation leaves a `vtrace` span tree (admit →
//!   queue-wait → shell-acquire → exec → park/resume → migrate →
//!   complete/shed) stamped on the virtual clock, dumpable as JSON
//!   lines; queue-wait, exec, and per-tenant end-to-end latency
//!   distributions accumulate in log2-bucketed
//!   [`vclock::stats::Histogram`]s feeding Prometheus `_bucket` series;
//!   and a [`vtrace::slo::SloEngine`] evaluates declared objectives
//!   (latency bounds, availability) over sliding vclock windows with
//!   multi-window burn-rate alerts. Runtime operator knobs
//!   ([`Dispatcher::set_warm_budget`]) inject the degradations the
//!   `slo_observe` bench proves the alerts catch. See
//!   `docs/observability.md` for the full metric catalog.
//! * **Shard lifecycle under live traffic** ([`lifecycle`],
//!   [`Dispatcher::drain_shard`] / [`Dispatcher::fail_shard`] /
//!   [`Dispatcher::restore_shard`]) — a per-shard desired-state machine
//!   (`Active → Draining → Drained`, plus `Failed`) driven by an
//!   idempotent reconciliation loop ([`Dispatcher::reconcile`]) in
//!   vclock time: a draining shard leaves the placement engine's
//!   eligible set, its queued work, migratable parked runs, and pooled
//!   shells evacuate to siblings through the same priced `Candidate`
//!   cost machinery as steals, and unmigratable parked runs ride a
//!   per-tenant grace period before being shed as
//!   [`ShedReason::Evicted`]. [`FaultPlan`] injects shard/shell kills at
//!   chosen virtual instants (seeded via `vclock::rng`), so failure
//!   recovery replays bit-for-bit through the same reconcile path — see
//!   `docs/lifecycle.md` and the `drain_evict` bench.
//! * **Health-driven failover with exactly-once retry, hedging, and
//!   brownout** ([`health`], [`Dispatcher::set_health`] /
//!   [`Dispatcher::set_brownout`], [`RetryPolicy`] / [`HedgePolicy`]) —
//!   a heartbeat/suspicion failure detector in virtual time turns *gray*
//!   failures ([`FaultKind::HangShard`]: the worker wedges but the shard
//!   stays `Active` and placement keeps feeding it) into declared
//!   failures through the same `fail_shard` → reconcile → re-admit path
//!   as the fault plan, and restores them via half-open circuit-breaker
//!   probes. Work lost to a shard failure is re-submitted exactly once
//!   under a per-tenant budgeted backoff (conservation extends to
//!   `admitted == served + shed + retried_in_flight`), tail latency is
//!   optionally hedged from the observed p99 with first-completion-wins
//!   dedup, and a pager-driven brownout ladder sheds the lowest
//!   priority tiers under overload. See `docs/reliability.md` and the
//!   `fault_recovery` bench.
//! * **Cluster-scale serving** ([`cluster`]) — N topology-described
//!   dispatchers become *nodes* behind one routing surface. Node
//!   selection and failover evacuation ride the same priced
//!   [`Candidate`] machinery as intra-node steals, one
//!   [`Hop::CrossNode`] further out
//!   (`vclock::costs::VSCHED_TRANSFER_CROSS_NODE`); the [`health`]
//!   detector runs a second instance with nodes as the monitored
//!   population, fencing a declared node (every shard failed, no
//!   stranded copy can double-run) while the `vhttp` ingress
//!   re-dispatches its unresolved work from pristine edge inputs. See
//!   `docs/cluster.md` and the `ingress_fanout` bench.
//!
//! ## Example
//!
//! ```
//! use vsched::{Dispatcher, DispatcherConfig, Request, TenantProfile};
//! use wasp::{HypercallMask, VirtineSpec, Wasp};
//!
//! let mut d = Dispatcher::new(Wasp::new_kvm_default(), DispatcherConfig::default());
//! let image = visa::assemble(".org 0x8000\n mov r0, 42\n hlt\n").unwrap();
//! let id = d
//!     .register(VirtineSpec::new("answer", image, 64 * 1024).with_snapshot(false))
//!     .unwrap();
//! let tenant = d.add_tenant(TenantProfile::new("acme").with_rate(100.0, 8.0));
//! d.submit(Request::new(tenant, id, 0.0)).unwrap();
//! d.run_to_idle();
//! assert!(d.completions()[0].exit_normal);
//! ```

pub mod cluster;
pub mod dispatcher;
pub mod health;
pub mod lifecycle;
pub mod placement;
pub mod shard;
pub mod tenant;
pub mod topology;

pub use cluster::{Cluster, ClusterAction, ClusterStats};
pub use dispatcher::{
    BlockMode, Completion, Dispatcher, DispatcherConfig, DispatcherStats, Placement, Request,
};
pub use health::{BrownoutConfig, CircuitState, HealthConfig, HealthStats, ShardHealth};
pub use lifecycle::{FaultEvent, FaultKind, FaultPlan, LifecycleAction, ShardState};
pub use placement::{Candidate, CostEngine, PlacementEngine, WarmPolicy, WarmVerdict};
pub use shard::{ShardSnapshot, ShardStats};
pub use tenant::{
    HedgePolicy, RetryPolicy, ShedReason, TenantId, TenantProfile, TenantStats, TokenBucket,
};
pub use topology::{Hop, Topology};

#[cfg(test)]
mod tests {
    use super::*;
    use wasp::{HypercallMask, Invocation, PoolMode, VirtineSpec, Wasp};

    const MEM: usize = 64 * 1024;

    fn dispatcher(config: DispatcherConfig) -> Dispatcher {
        Dispatcher::new(Wasp::new_kvm_default(), config)
    }

    fn halt_spec(name: &str) -> VirtineSpec {
        let img = visa::assemble(".org 0x8000\n mov r0, 7\n hlt\n").unwrap();
        VirtineSpec::new(name, img, MEM).with_snapshot(false)
    }

    #[test]
    fn single_request_round_trips() {
        let mut d = dispatcher(DispatcherConfig::default());
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("solo"));
        d.submit(Request::new(tenant, id, 0.0)).unwrap();
        d.run_to_idle();
        let c = &d.completions()[0];
        assert!(c.exit_normal);
        assert!(c.finish >= c.start && c.service > 0.0);
        assert_eq!(d.stats().served, 1);
        assert_eq!(d.tenant_stats(tenant).served, 1);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
    }

    #[test]
    fn rate_limited_tenant_is_shed_at_the_bucket() {
        let mut d = dispatcher(DispatcherConfig::default());
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("throttled").with_rate(10.0, 2.0));
        // Burst of 5 at t=0: bucket holds 2, the rest shed.
        let mut admitted = 0;
        for _ in 0..5 {
            if d.submit(Request::new(tenant, id, 0.0)).is_ok() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2);
        assert_eq!(d.tenant_stats(tenant).shed_rate_limit, 3);
        d.run_to_idle();
        assert_eq!(d.tenant_stats(tenant).served, 2);
    }

    #[test]
    fn in_flight_cap_sheds_excess() {
        let mut d = dispatcher(DispatcherConfig {
            // One huge tick: nothing executes between the submissions.
            tick: vclock::Cycles::from_micros(10_000_000.0),
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("capped").with_max_in_flight(3));
        let results: Vec<bool> = (0..6)
            .map(|_| d.submit(Request::new(tenant, id, 0.0)).is_ok())
            .collect();
        assert_eq!(results.iter().filter(|&&ok| ok).count(), 3);
        assert_eq!(d.tenant_stats(tenant).shed_in_flight, 3);
        d.run_to_idle();
        assert_eq!(d.tenant_stats(tenant).served, 3);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
    }

    #[test]
    fn cap_shed_requests_do_not_burn_rate_tokens() {
        let mut d = dispatcher(DispatcherConfig::default());
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(
            TenantProfile::new("both")
                .with_rate(10.0, 2.0)
                .with_max_in_flight(1),
        );
        // Burst of three at t=0: one admitted, two refused at the cap —
        // which must not charge the bucket.
        assert!(d.submit(Request::new(tenant, id, 0.0)).is_ok());
        assert_eq!(
            d.submit(Request::new(tenant, id, 0.0)),
            Err(ShedReason::InFlightCap)
        );
        assert_eq!(
            d.submit(Request::new(tenant, id, 0.0)),
            Err(ShedReason::InFlightCap)
        );
        d.run_to_idle();
        // The second burst token is still there: a fourth request at the
        // same instant admits instead of being rate-limited.
        assert!(d.submit(Request::new(tenant, id, 0.0)).is_ok());
        let s = d.tenant_stats(tenant);
        assert_eq!(s.shed_in_flight, 2);
        assert_eq!(s.shed_rate_limit, 0);
    }

    #[test]
    #[should_panic(expected = "virtine not registered")]
    fn submitting_an_unregistered_virtine_panics_at_the_door() {
        let mut d = dispatcher(DispatcherConfig::default());
        let tenant = d.add_tenant(TenantProfile::new("t"));
        let _ = d.submit(Request::new(tenant, wasp::VirtineId::from_raw(99), 0.0));
    }

    #[test]
    fn deadline_expired_requests_are_dropped_in_queue() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            batch_size: 1,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("dl"));
        // A boosted request occupies the worker (EDF alone would let the
        // deadlined request jump the queue); the second's deadline expires
        // while it queues behind it.
        d.submit(Request::new(tenant, id, 0.0).with_boost(5))
            .unwrap();
        d.submit(Request::new(tenant, id, 0.0).with_deadline(1e-9))
            .unwrap();
        d.run_to_idle();
        assert_eq!(d.tenant_stats(tenant).served, 1);
        assert_eq!(d.tenant_stats(tenant).shed_deadline, 1);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
    }

    #[test]
    fn priority_and_boost_order_execution() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            batch_size: 8,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let low = d.add_tenant(TenantProfile::new("low").with_priority(0));
        let high = d.add_tenant(TenantProfile::new("high").with_priority(9));
        let s0 = d.submit(Request::new(low, id, 0.0)).unwrap();
        let s1 = d.submit(Request::new(low, id, 0.0)).unwrap();
        let s2 = d.submit(Request::new(high, id, 0.0)).unwrap();
        let s3 = d.submit(Request::new(low, id, 0.0).with_boost(5)).unwrap();
        assert_eq!((s0, s1, s2, s3), (0, 1, 2, 3));
        d.run_to_idle();
        let tenants: Vec<usize> = d.completions().iter().map(|c| c.tenant.index()).collect();
        // High-priority tenant first, boosted low next, then FIFO.
        assert_eq!(
            tenants,
            vec![high.index(), low.index(), low.index(), low.index()]
        );
        let starts: Vec<f64> = d.completions().iter().map(|c| c.start).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn shards_run_in_parallel_virtual_time() {
        // The same 8 requests on 1 vs 4 shards: wall (virtual) makespan
        // must shrink because shard workers overlap.
        let makespan = |shards: usize| {
            let mut d = dispatcher(DispatcherConfig {
                shards,
                batch_size: 2,
                ..DispatcherConfig::default()
            });
            let id = d.register(halt_spec("t")).unwrap();
            let tenant = d.add_tenant(TenantProfile::new("t"));
            for _ in 0..8 {
                d.submit(Request::new(tenant, id, 0.0)).unwrap();
            }
            d.run_to_idle();
            d.completions()
                .iter()
                .map(|c| c.finish)
                .fold(0.0f64, f64::max)
        };
        let one = makespan(1);
        let four = makespan(4);
        assert!(
            four < one / 2.0,
            "4 shards should at least halve the makespan: {four} vs {one}"
        );
    }

    #[test]
    fn dry_shard_steals_from_rich_sibling() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        // Tenant 0 homes on shard 0, tenant 1 on shard 1.
        let a = d.add_tenant(TenantProfile::new("a"));
        let b = d.add_tenant(TenantProfile::new("b"));
        // Warm shard 0 by running tenant A once (its shell parks there).
        d.submit(Request::new(a, id, 0.0)).unwrap();
        d.run_to_idle();
        assert_eq!(d.shard_snapshots()[0].idle_shells, 1);
        assert_eq!(d.shard_snapshots()[1].idle_shells, 0);
        // Tenant B's shard is dry: it must steal shard 0's clean shell.
        d.submit(Request::new(b, id, 1.0)).unwrap();
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert!(c.stolen_shell && c.reused_shell);
        assert_eq!(d.stats().stolen, 1);
        assert_eq!(d.tenant_stats(b).stolen_serves, 1);
        assert_eq!(d.shard_snapshots()[1].stats.stolen_in, 1);
        assert_eq!(d.shard_snapshots()[0].stats.stolen_out, 1);
        // The shell migrated: only one was ever created.
        assert_eq!(d.pool_stats().created, 1);
    }

    #[test]
    fn stealing_can_be_disabled() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            steal: false,
            placement: Placement::ByTenant,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let a = d.add_tenant(TenantProfile::new("a"));
        let b = d.add_tenant(TenantProfile::new("b"));
        d.submit(Request::new(a, id, 0.0)).unwrap();
        d.run_to_idle();
        d.submit(Request::new(b, id, 1.0)).unwrap();
        d.run_to_idle();
        assert_eq!(d.stats().stolen, 0);
        assert_eq!(d.pool_stats().created, 2);
    }

    #[test]
    fn tenant_mask_narrows_spec_policy() {
        let mut d = dispatcher(DispatcherConfig::default());
        // Spec allows write; the tenant ceiling does not.
        let img = visa::assemble(
            ".org 0x8000\n mov r0, 1\n mov r1, 1\n mov r2, 0x8000\n mov r3, 4\n out 0x1, r0\n hlt\n",
        )
        .unwrap();
        let spec = VirtineSpec::new("w", img, MEM)
            .with_policy(HypercallMask::allowing(&[wasp::nr::WRITE]))
            .with_snapshot(false);
        let id = d.register(spec).unwrap();
        let open = d.add_tenant(TenantProfile::new("open").with_mask(HypercallMask::ALLOW_ALL));
        let locked = d.add_tenant(TenantProfile::new("locked"));
        d.submit(Request::new(open, id, 0.0)).unwrap();
        d.submit(Request::new(locked, id, 0.0)).unwrap();
        d.run_to_idle();
        let by_tenant: Vec<(usize, bool)> = d
            .completions()
            .iter()
            .map(|c| (c.tenant.index(), c.exit_normal))
            .collect();
        assert!(by_tenant.contains(&(open.index(), true)));
        assert!(by_tenant.contains(&(locked.index(), false)));
        assert_eq!(d.tenant_stats(locked).abnormal, 1);
        assert_eq!(d.tenant_stats(open).abnormal, 0);
    }

    #[test]
    fn payload_and_result_flow_through_dispatch() {
        let mut d = dispatcher(DispatcherConfig::default());
        // Echo the payload back via get_data/return_data.
        let img = visa::assemble(
            "
.org 0x8000
  mov r0, 9          ; get_data
  mov r1, 0x4000
  mov r2, 64
  out 0x1, r0
  mov r3, r0         ; length
  mov r0, 10         ; return_data
  mov r1, 0x4000
  mov r2, r3
  out 0x1, r0
  mov r0, 0
  mov r1, 0
  out 0x1, r0        ; exit(0)
",
        )
        .unwrap();
        let spec = VirtineSpec::new("echo", img, MEM)
            .with_policy(HypercallMask::allowing(&[
                wasp::nr::GET_DATA,
                wasp::nr::RETURN_DATA,
            ]))
            .with_snapshot(false);
        let id = d.register(spec).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("echoer").with_mask(HypercallMask::ALLOW_ALL));
        d.submit(
            Request::new(tenant, id, 0.0)
                .with_invocation(Invocation::with_payload(b"ping".to_vec())),
        )
        .unwrap();
        d.run_to_idle();
        assert_eq!(d.completions()[0].result, b"ping");
    }

    #[test]
    fn batch_ticks_quantize_start_times() {
        let tick_s = 0.001;
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            batch_size: 1,
            tick: vclock::Cycles::from_micros(tick_s * 1e6),
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t"));
        d.submit(Request::new(tenant, id, 0.0003)).unwrap();
        d.run_to_idle();
        let c = &d.completions()[0];
        // Arrived mid-tick: starts at the next boundary, not immediately.
        assert!(c.start >= tick_s - 1e-9, "start {}", c.start);
    }

    #[test]
    fn pool_disabled_mode_never_reuses() {
        let mut d = dispatcher(DispatcherConfig {
            pool_mode: PoolMode::Disabled,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t"));
        for i in 0..4 {
            d.submit(Request::new(tenant, id, i as f64 * 0.01)).unwrap();
        }
        d.run_to_idle();
        assert!(d.completions().iter().all(|c| !c.reused_shell));
        assert_eq!(d.pool_stats().created, 4);
    }

    /// A snapshotted spec: init loop, snapshot hypercall, then
    /// args-independent work, so repeat runs of the same (tenant, virtine)
    /// are warm-hit eligible.
    fn snap_spec(name: &str) -> VirtineSpec {
        let img = visa::assemble(
            "
.org 0x8000
  mov r1, 0x7000
  mov r2, 0
  mov r3, 0
init:
  add r2, 7
  add r3, 1
  cmp r3, 200
  jl init
  store.q [r1], r2
  mov r0, 8            ; snapshot()
  out 0x1, r0
  load.q r0, [r1]
  hlt
",
        )
        .unwrap();
        VirtineSpec::new(name, img, MEM)
    }

    #[test]
    fn repeat_requests_warm_hit_and_surface_in_stats() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let id = d.register(snap_spec("s")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t"));
        for i in 0..3 {
            d.submit(Request::new(tenant, id, i as f64 * 0.01)).unwrap();
        }
        d.run_to_idle();
        let c = d.completions();
        assert!(!c[0].warm_hit, "first run cold-boots");
        assert!(c[1].warm_hit && c[2].warm_hit, "repeats re-arm warm");
        assert_eq!(d.stats().warm_hits, 2);
        assert!((d.stats().warm_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(d.tenant_stats(tenant).warm_serves, 2);
        assert_eq!(d.pool_stats().warm_acquired, 2);
        assert_eq!(d.pool_stats().warm_parked, 3);
        assert_eq!(d.shard_snapshots()[0].stats.warm_hits, 2);
        assert_eq!(d.shard_snapshots()[0].warm_shells, 1);
    }

    #[test]
    fn snapshot_aware_placement_routes_to_the_warm_shard() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 4,
            placement: Placement::SnapshotAware,
            ..DispatcherConfig::default()
        });
        let id = d.register(snap_spec("s")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t"));
        // First request lands somewhere (least-loaded fallback) and parks
        // a warm shell there; every follow-up must chase that shard.
        d.submit(Request::new(tenant, id, 0.0)).unwrap();
        d.run_to_idle();
        let home = d.completions()[0].shard;
        for i in 1..6 {
            d.submit(Request::new(tenant, id, i as f64 * 0.01)).unwrap();
            d.run_to_idle();
        }
        let c = d.completions();
        assert!(
            c[1..].iter().all(|c| c.shard == home && c.warm_hit),
            "placement must chase the warm shell: {:?}",
            c.iter().map(|c| (c.shard, c.warm_hit)).collect::<Vec<_>>()
        );
        // Least-loaded placement with the same spacing sprays the requests
        // across shards (each drain leaves all queues empty, so the
        // tie-break rotates by worker timeline), missing the warm shell.
        let mut ll = dispatcher(DispatcherConfig {
            shards: 4,
            placement: Placement::LeastLoaded,
            ..DispatcherConfig::default()
        });
        let id = ll.register(snap_spec("s")).unwrap();
        let tenant = ll.add_tenant(TenantProfile::new("t"));
        for i in 0..6 {
            ll.submit(Request::new(tenant, id, i as f64 * 0.01))
                .unwrap();
            ll.run_to_idle();
        }
        assert!(
            ll.stats().warm_hits < d.stats().warm_hits,
            "snapshot-aware ({}) must beat least-loaded ({})",
            d.stats().warm_hits,
            ll.stats().warm_hits
        );
    }

    #[test]
    fn warm_caching_disabled_by_zero_capacity() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            warm_capacity: 0,
            ..DispatcherConfig::default()
        });
        let id = d.register(snap_spec("s")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t"));
        for i in 0..3 {
            d.submit(Request::new(tenant, id, i as f64 * 0.01)).unwrap();
        }
        d.run_to_idle();
        assert_eq!(d.stats().warm_hits, 0);
        assert_eq!(d.pool_stats().warm_parked, 0);
        // Shells still recycle through the clean list.
        assert!(d.pool_stats().reused >= 2);
    }

    #[test]
    fn cross_tenant_requests_demote_not_share_warm_shells() {
        // One shard, one snapshotted virtine, two tenants: tenant B's
        // request finds A's warm shell but may not re-arm it — it is
        // demoted (full wipe) and B pays the full restore.
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let id = d.register(snap_spec("s")).unwrap();
        let a = d.add_tenant(TenantProfile::new("a"));
        let b = d.add_tenant(TenantProfile::new("b"));
        d.submit(Request::new(a, id, 0.0)).unwrap();
        d.run_to_idle();
        assert_eq!(d.shard_snapshots()[0].warm_shells, 1);
        d.submit(Request::new(b, id, 0.01)).unwrap();
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert!(!c.warm_hit, "warm shells never cross tenants");
        assert!(c.reused_shell, "but the hardware context is recycled");
        assert_eq!(d.stats().warm_demotions, 1);
        assert_eq!(d.tenant_stats(b).warm_serves, 0);
        // B's run parks its own warm shell; A's next request must then
        // miss (B demoted A's) while B hits.
        d.submit(Request::new(b, id, 0.02)).unwrap();
        d.run_to_idle();
        assert!(d.completions().last().unwrap().warm_hit);
    }

    /// A connection-bound spec: stores a sentinel at 0x5000, blocking-recvs
    /// into 0x4000, and halts with the recv length in `r0`.
    fn blocking_recv_spec(name: &str) -> VirtineSpec {
        let img = visa::assemble(
            "
.org 0x8000
  mov r4, 0x5000
  mov r5, 0xDEAD
  store.q [r4], r5
  mov r0, 7            ; recv
  mov r1, 0x4000
  mov r2, 64
  mov r3, 0            ; flags: blocking
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        VirtineSpec::new(name, img, MEM)
            .with_policy(HypercallMask::allowing(&[wasp::nr::RECV]))
            .with_snapshot(false)
    }

    /// An accepted connection pair on the dispatcher's kernel.
    fn conn_pair(d: &Dispatcher, port: u16) -> (hostsim::SockId, hostsim::SockId) {
        let k = d.wasp().kernel();
        k.net_listen(port).unwrap();
        let client = k.net_connect(port).unwrap();
        let server = k.net_accept(port).unwrap().unwrap();
        (client, server)
    }

    #[test]
    fn blocked_recv_parks_yields_the_worker_and_resumes_on_wake() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let blocked = d.register(blocking_recv_spec("b")).unwrap();
        let fast = d.register(halt_spec("f")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
        let (client, server) = conn_pair(&d, 90);

        d.submit(Request::new(tenant, blocked, 0.0).with_invocation(Invocation::with_conn(server)))
            .unwrap();
        d.run_to_idle();
        // Parked, not completed: the shell and in-flight slot stay held,
        // but the worker is free.
        assert_eq!(d.completions().len(), 0);
        assert_eq!(d.parked(), 1);
        assert_eq!(d.stats().blocked, 1);
        assert_eq!(d.tenant_stats(tenant).blocked, 1);
        assert_eq!(d.tenant_stats(tenant).in_flight, 1);
        assert_eq!(d.shard_snapshots()[0].parked, 1);

        // The freed worker serves other requests while the run is parked.
        d.submit(Request::new(tenant, fast, 0.001)).unwrap();
        d.run_to_idle();
        assert_eq!(d.completions().len(), 1, "worker was given back");
        assert!(d.completions()[0].exit_normal);

        // Data arrives: wake → front-of-queue resume → completion.
        d.wasp().kernel().net_send(client, b"ping").unwrap();
        d.run_until(0.01);
        d.run_to_idle();
        assert_eq!(d.completions().len(), 2);
        let c = d.completions().last().unwrap();
        assert!(c.exit_normal);
        assert_eq!(c.resumes, 1);
        assert!(
            c.latency() >= 0.009,
            "latency {} must span the parked wait",
            c.latency()
        );
        assert_eq!(d.stats().resumed, 1);
        assert_eq!(d.stats().busy_wait_cycles, 0, "event-driven burns nothing");
        assert_eq!(d.parked(), 0);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
        assert_eq!(d.stats().served, 2);
    }

    #[test]
    fn spin_poll_baseline_occupies_the_worker_event_driven_does_not() {
        let run = |mode: BlockMode| {
            let mut d = dispatcher(DispatcherConfig {
                shards: 1,
                block: mode,
                ..DispatcherConfig::default()
            });
            let blocked = d.register(blocking_recv_spec("b")).unwrap();
            let fast = d.register(halt_spec("f")).unwrap();
            let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
            let (client, server) = conn_pair(&d, 90);
            d.submit(
                Request::new(tenant, blocked, 0.0).with_invocation(Invocation::with_conn(server)),
            )
            .unwrap();
            d.submit(Request::new(tenant, fast, 0.0001)).unwrap();
            d.run_to_idle();
            let fast_done_while_parked = d.completions().len();
            // The slow client finally sends after 20 ms.
            d.wasp().kernel().net_send(client, b"x").unwrap();
            d.run_until(0.02);
            d.run_to_idle();
            assert_eq!(d.completions().len(), 2, "all served in the end");
            let fast_c = d
                .completions()
                .iter()
                .find(|c| c.virtine == fast)
                .unwrap()
                .clone();
            (fast_done_while_parked, fast_c.latency(), d.stats())
        };

        let (fast_during_event, fast_lat_event, s_event) = run(BlockMode::EventDriven);
        assert_eq!(fast_during_event, 1, "event-driven: worker freed");
        assert_eq!(s_event.busy_wait_cycles, 0);
        assert!(fast_lat_event < 0.001, "fast latency {fast_lat_event}");

        let (fast_during_spin, fast_lat_spin, s_spin) = run(BlockMode::SpinPoll);
        assert_eq!(
            fast_during_spin, 0,
            "spin-poll: the worker is pinned on the blocked socket"
        );
        assert!(
            s_spin.busy_wait_cycles > 0,
            "the whole wait is busy occupancy"
        );
        assert!(
            fast_lat_spin > 10.0 * fast_lat_event,
            "fast request pays the slow client's wait: {fast_lat_spin} vs {fast_lat_event}"
        );
    }

    /// A consumer spec: blocking `chan_recv` from channel handle 0 into
    /// 0x4000, then halts with the recv length in `r0`.
    fn chan_recv_spec(name: &str) -> VirtineSpec {
        let img = visa::assemble(
            "
.org 0x8000
  mov r0, 13           ; chan_recv
  mov r1, 0            ; handle 0
  mov r2, 0x4000
  mov r3, 64
  mov r4, 0            ; flags: blocking
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        VirtineSpec::new(name, img, MEM)
            .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_RECV]))
            .with_snapshot(false)
    }

    #[test]
    fn chan_blocked_run_parks_and_resumes_on_send() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let consumer = d.register(chan_recv_spec("c")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
        let chan = d.wasp().kernel().chan_open(256);
        d.submit(
            Request::new(tenant, consumer, 0.0)
                .with_invocation(Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        d.run_to_idle();
        assert_eq!(d.parked(), 1, "empty channel parks the consumer");
        assert_eq!(d.stats().blocked, 1);

        d.wasp().kernel().chan_send(chan, b"work").unwrap();
        d.run_until(0.01);
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert!(c.exit_normal);
        assert_eq!(c.resumes, 1);
        assert_eq!(d.stats().resumed, 1);
        assert_eq!(d.parked(), 0);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
    }

    #[test]
    fn guest_to_guest_chan_send_wakes_a_parked_consumer_within_one_drain() {
        // Producer virtine chan_sends on the same channel the consumer is
        // parked on — the cross-virtine pipeline hop, entirely inside one
        // drain.
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let consumer = d.register(chan_recv_spec("c")).unwrap();
        let producer_img = visa::assemble(
            "
.org 0x8000
  mov r1, 0x100
  mov r5, 0x676e6970   ; \"ping\"
  store.q [r1], r5
  mov r0, 12           ; chan_send(0, 0x100, 4)
  mov r1, 0
  mov r2, 0x100
  mov r3, 4
  mov r4, 0
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        let producer = d
            .register(
                VirtineSpec::new("p", producer_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_SEND]))
                    .with_snapshot(false),
            )
            .unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
        let chan = d.wasp().kernel().chan_open(64);
        d.submit(
            Request::new(tenant, consumer, 0.0)
                .with_invocation(Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        d.submit(
            Request::new(tenant, producer, 0.001)
                .with_invocation(Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        d.run_to_idle();
        assert_eq!(d.completions().len(), 2, "one drain completes the hop");
        assert!(d.completions().iter().all(|c| c.exit_normal));
        assert_eq!(d.stats().resumed, 1);
        assert_eq!(d.parked(), 0);
        // The consumer received exactly the producer's 4 bytes.
        let consumed = d
            .completions()
            .iter()
            .find(|c| c.virtine == consumer)
            .unwrap();
        assert_eq!(consumed.resumes, 1);
    }

    #[test]
    fn blocked_chan_send_on_a_partially_full_queue_parks_and_resumes() {
        // The livelock regression, end to end: the channel holds 6 of 8
        // bytes — not "Full", but the guest's 4-byte send doesn't fit.
        // The run must park (drain terminates!) and resume only when a
        // host recv frees enough capacity.
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let sender_img = visa::assemble(
            "
.org 0x8000
  mov r1, 0x100
  mov r5, 0x44434241   ; \"ABCD\"
  store.q [r1], r5
  mov r0, 12           ; chan_send(0, 0x100, 4)
  mov r1, 0
  mov r2, 0x100
  mov r3, 4
  mov r4, 0
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        let sender = d
            .register(
                VirtineSpec::new("s", sender_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_SEND]))
                    .with_snapshot(false),
            )
            .unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
        let chan = d.wasp().kernel().chan_open(8);
        d.wasp().kernel().chan_send(chan, b"123456").unwrap();
        d.submit(
            Request::new(tenant, sender, 0.0)
                .with_invocation(Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        // This drain must terminate with the sender parked — the
        // pre-fix registration woke the token immediately and the
        // park/wake loop never converged.
        d.run_to_idle();
        assert_eq!(d.parked(), 1, "sender parked under backpressure");
        assert_eq!(d.completions().len(), 0);

        // Draining the queue frees capacity: the sender resumes and its
        // message lands.
        d.wasp().kernel().chan_recv(chan, 64).unwrap().unwrap();
        d.run_until(0.01);
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert!(c.exit_normal);
        assert_eq!(c.resumes, 1);
        assert_eq!(
            d.wasp().kernel().chan_recv(chan, 64).unwrap().unwrap(),
            b"ABCD"
        );
        assert_eq!(d.parked(), 0);
    }

    #[test]
    fn woken_run_migrates_to_the_least_loaded_shard_under_skew() {
        // The consumer parks on shard 0 (its tenant's home under ByTenant
        // placement); while it waits, its home shard's queue backs up.
        // The wake must re-admit it through placement — on shard 1 — and
        // the migration must surface in every stats plane.
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            ..DispatcherConfig::default()
        });
        let consumer = d.register(chan_recv_spec("c")).unwrap();
        let filler = d.register(halt_spec("f")).unwrap();
        let a = d.add_tenant(TenantProfile::new("a").with_mask(HypercallMask::ALLOW_ALL));
        let chan = d.wasp().kernel().chan_open(64);
        d.submit(
            Request::new(a, consumer, 0.0)
                .with_invocation(Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        d.run_until(0.001);
        assert_eq!(d.shard_snapshots()[0].parked, 1);

        // Pile work on home shard 0 (tenant a homes there); none of it
        // executes before the wake because it all arrives at one instant.
        for _ in 0..16 {
            d.submit(Request::new(a, filler, 0.002)).unwrap();
        }
        assert!(d.shard_snapshots()[0].queue_depth >= 16);
        d.wasp().kernel().chan_send(chan, b"go").unwrap();
        d.run_until(0.0021);
        d.run_to_idle();

        let c = d
            .completions()
            .iter()
            .find(|c| c.virtine == consumer)
            .unwrap();
        assert!(c.exit_normal);
        assert!(c.migrated, "resume must migrate off the saturated shard");
        assert_eq!(c.shard, 1, "landed on the least-loaded sibling");
        assert_eq!(d.stats().migrations, 1);
        assert_eq!(d.shard_snapshots()[0].stats.migrated_out, 1);
        assert_eq!(d.shard_snapshots()[1].stats.migrated_in, 1);
        // The shell followed the run: released into shard 1's pool.
        assert_eq!(d.tenant_stats(a).in_flight, 0);
        assert_eq!(
            d.stats().submitted,
            d.stats().served + d.stats().shed(),
            "conservation holds across the migration"
        );
    }

    #[test]
    fn resume_migration_can_be_disabled() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            migrate_on_resume: false,
            ..DispatcherConfig::default()
        });
        let consumer = d.register(chan_recv_spec("c")).unwrap();
        let filler = d.register(halt_spec("f")).unwrap();
        let a = d.add_tenant(TenantProfile::new("a").with_mask(HypercallMask::ALLOW_ALL));
        let chan = d.wasp().kernel().chan_open(64);
        d.submit(
            Request::new(a, consumer, 0.0)
                .with_invocation(Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        d.run_until(0.001);
        for _ in 0..16 {
            d.submit(Request::new(a, filler, 0.002)).unwrap();
        }
        d.wasp().kernel().chan_send(chan, b"go").unwrap();
        d.run_until(0.0021);
        d.run_to_idle();
        let c = d
            .completions()
            .iter()
            .find(|c| c.virtine == consumer)
            .unwrap();
        assert!(!c.migrated && c.shard == 0, "pinned to the blocking shard");
        assert_eq!(d.stats().migrations, 0);
    }

    #[test]
    fn parked_run_is_killed_at_max_block_and_its_shell_wipes() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let blocked = d.register(blocking_recv_spec("b")).unwrap();
        // A reader that returns the 8 bytes at the blocked run's sentinel
        // address via return_data.
        let reader_img = visa::assemble(
            "
.org 0x8000
  mov r0, 10
  mov r1, 0x5000
  mov r2, 8
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        let reader = d
            .register(
                VirtineSpec::new("reader", reader_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::RETURN_DATA]))
                    .with_snapshot(false),
            )
            .unwrap();
        let tenant = d.add_tenant(
            TenantProfile::new("t")
                .with_mask(HypercallMask::ALLOW_ALL)
                .with_max_block(0.005),
        );
        let (_client, server) = conn_pair(&d, 91);
        d.submit(Request::new(tenant, blocked, 0.0).with_invocation(Invocation::with_conn(server)))
            .unwrap();
        // Nobody ever sends: drain fires the 5 ms block timeout.
        d.run_to_idle();
        assert_eq!(d.parked(), 0);
        assert_eq!(d.stats().blocked_timeout, 1);
        assert_eq!(d.tenant_stats(tenant).blocked_timeout, 1);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
        let c = d.completions().last().unwrap();
        assert!(!c.exit_normal, "a timeout kill is abnormal");
        assert!(c.finish >= 0.005, "killed at the bound, not before");

        // The killed run's shell went through the wiped release: the next
        // request reuses it and must see zeroes at the sentinel address.
        d.submit(Request::new(tenant, reader, 0.01)).unwrap();
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert!(c.exit_normal && c.reused_shell && !c.stolen_shell);
        assert_eq!(c.result, vec![0u8; 8], "parked state leaked past a kill");
        assert_eq!(d.pool_stats().created, 1, "same shell, recycled");
        // Accounting stays conserved: both requests count as served.
        assert_eq!(d.stats().served, 2);
        assert_eq!(d.stats().submitted, d.stats().served + d.stats().shed());
    }

    #[test]
    fn guest_to_guest_send_wakes_a_parked_run_within_one_drain() {
        // Virtine A parks in a blocking recv; virtine B's handler vsends
        // to A's socket from *inside* a batch. The wake produced mid-drain
        // must resume A in the same drain — not wait for the next
        // external submit/run_until.
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let recv = d.register(blocking_recv_spec("a")).unwrap();
        let send_img = visa::assemble(
            "
.org 0x8000
  mov r1, 0x100
  mov r4, 0x676e6970   ; \"ping\"
  store.q [r1], r4
  mov r0, 6            ; send(buf, 4)
  mov r2, 4
  out 0x1, r0
  hlt
",
        )
        .unwrap();
        let send = d
            .register(
                VirtineSpec::new("b", send_img, MEM)
                    .with_policy(HypercallMask::allowing(&[wasp::nr::SEND]))
                    .with_snapshot(false),
            )
            .unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
        let (client, server) = conn_pair(&d, 93);
        d.submit(Request::new(tenant, recv, 0.0).with_invocation(Invocation::with_conn(server)))
            .unwrap();
        d.submit(Request::new(tenant, send, 0.001).with_invocation(Invocation::with_conn(client)))
            .unwrap();
        d.run_to_idle();
        assert_eq!(d.completions().len(), 2, "one drain completes both");
        assert_eq!(d.parked(), 0);
        assert_eq!(d.stats().resumed, 1);
        assert!(d.completions().iter().all(|c| c.exit_normal));
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
    }

    #[test]
    fn data_arriving_after_max_block_still_kills_the_parked_run() {
        // The bound is a hard ceiling: a wake delivered in the same driver
        // call that crosses the timeout must not smuggle the run past it.
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let blocked = d.register(blocking_recv_spec("b")).unwrap();
        let tenant = d.add_tenant(
            TenantProfile::new("t")
                .with_mask(HypercallMask::ALLOW_ALL)
                .with_max_block(0.005),
        );
        let (client, server) = conn_pair(&d, 92);
        d.submit(Request::new(tenant, blocked, 0.0).with_invocation(Invocation::with_conn(server)))
            .unwrap();
        d.run_until(0.001);
        assert_eq!(d.parked(), 1);
        // The client finally sends at t = 20 ms — 15 ms past the bound.
        d.wasp().kernel().net_send(client, b"late").unwrap();
        d.run_until(0.020);
        d.run_to_idle();
        assert_eq!(d.stats().blocked_timeout, 1, "late bytes must not revive");
        assert_eq!(d.stats().resumed, 0);
        let c = d.completions().last().unwrap();
        assert!(!c.exit_normal);
        // The bound counts from the block instant (first-segment service
        // pushes it slightly past 5 ms); the wake at 20 ms must not move it.
        assert!(
            (0.005..0.006).contains(&c.finish),
            "killed at the bound ({}), not the wake",
            c.finish
        );
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
    }

    #[test]
    fn hopeless_deadlines_are_shed_at_admission() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            batch_size: 1,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("dl").with_rate(1000.0, 1.0));
        // Prime the per-request cost estimate.
        d.submit(Request::new(tenant, id, 0.0)).unwrap();
        d.run_to_idle();

        // A deadline already in the past can never be met: shed at submit,
        // without burning the tenant's rate-limit token.
        let err = d
            .submit(Request::new(tenant, id, 1.0).with_deadline(0.5))
            .unwrap_err();
        assert_eq!(err, ShedReason::DeadlineUnmeetable);
        let ts = d.tenant_stats(tenant);
        assert_eq!(ts.shed_deadline_unmeetable, 1);
        assert_eq!(d.stats().shed_deadline_unmeetable, 1);
        assert_eq!(ts.shed(), 1);
        assert_eq!(ts.in_flight, 0);

        // The token survived the shed: a meetable deadline at the same
        // instant is admitted.
        d.submit(Request::new(tenant, id, 1.0).with_deadline(2.0))
            .unwrap();

        // Backlog-driven: pile requests on the single worker until the
        // estimated queue wait pushes a near deadline past its bound.
        let bulk = d.add_tenant(TenantProfile::new("bulk"));
        for _ in 0..50 {
            d.submit(Request::new(bulk, id, 2.0)).unwrap();
        }
        let tick_s = d.config().tick.as_secs();
        let err = d
            .submit(Request::new(bulk, id, 2.0).with_deadline(2.0 + 2.0 * tick_s))
            .unwrap_err();
        assert_eq!(err, ShedReason::DeadlineUnmeetable);
        d.run_to_idle();
        assert_eq!(
            d.stats().submitted,
            d.stats().served + d.stats().shed(),
            "conservation across admission sheds"
        );
    }

    #[test]
    fn byte_budget_sheds_fat_payloads_without_burning_request_tokens() {
        let mut d = dispatcher(DispatcherConfig::default());
        let id = d.register(halt_spec("t")).unwrap();
        // 100 requests/s is generous; 64 bytes/s with a 64-byte burst is
        // the binding constraint for fat payloads.
        let tenant = d.add_tenant(
            TenantProfile::new("metered")
                .with_rate(100.0, 10.0)
                .with_byte_rate(64.0, 64.0),
        );
        // A 48-byte payload admits; the next 48 bytes don't fit.
        d.submit(Request::new(tenant, id, 0.0).with_args(vec![7u8; 48]))
            .unwrap();
        assert_eq!(
            d.submit(Request::new(tenant, id, 0.0).with_args(vec![7u8; 48])),
            Err(ShedReason::ByteBudget)
        );
        // Zero-byte requests ride through on the request bucket alone.
        d.submit(Request::new(tenant, id, 0.0)).unwrap();
        let s = d.tenant_stats(tenant);
        assert_eq!(s.shed_byte_budget, 1);
        assert_eq!(d.stats().shed_byte_budget, 1);
        assert_eq!(s.shed(), 1);
        // The byte shed burned no *request* tokens: 10-burst minus the
        // two admissions leaves 8, and a refill later the fat payload
        // fits again (bucket refilled 64 bytes over one second).
        d.submit(Request::new(tenant, id, 1.0).with_args(vec![7u8; 48]))
            .unwrap();
        d.run_to_idle();
        assert_eq!(d.tenant_stats(tenant).served, 3);
        assert_eq!(d.tenant_stats(tenant).shed_rate_limit, 0);
        assert_eq!(
            d.stats().submitted,
            d.stats().served + d.stats().shed(),
            "conservation across byte sheds"
        );
        // Invocation payload bytes count too, not just args.
        assert_eq!(
            d.submit(
                Request::new(tenant, id, 1.0)
                    .with_invocation(Invocation::with_payload(vec![7u8; 60]))
            ),
            Err(ShedReason::ByteBudget)
        );
    }

    #[test]
    fn distance_biased_steals_drain_near_donors_first() {
        // 2 sockets x 2 CCXs x 2 shards. Tenant 0 homes on shard 0
        // (ByTenant); its six blocking-recv requests each park holding a
        // shell, so every acquire must steal. Supply: 2 shells on the CCX
        // sibling (shard 1), 1 each on the same-socket shards (2, 3), 2 on
        // a cross-socket shard (4). Steals must drain 1, then 2 and 3,
        // then 4 — never the far socket while a near shell is parked.
        let mut d = dispatcher(DispatcherConfig {
            shards: 8,
            placement: Placement::ByTenant,
            topology: Some(Topology::grouped(2, 2, 2)),
            ..DispatcherConfig::default()
        });
        let blocked = d.register(blocking_recv_spec("b")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
        d.prewarm_shard(1, MEM, 2);
        d.prewarm_shard(2, MEM, 1);
        d.prewarm_shard(3, MEM, 1);
        d.prewarm_shard(4, MEM, 2);
        for i in 0..6 {
            let (_client, server) = conn_pair(&d, 100 + i as u16);
            d.submit(
                Request::new(tenant, blocked, i as f64 * 0.001)
                    .with_invocation(Invocation::with_conn(server)),
            )
            .unwrap();
            d.run_until(0.001 * (i + 1) as f64);
        }
        assert_eq!(d.parked(), 6, "every request parked holding a shell");
        let s = d.stats();
        assert_eq!(s.stolen, 6);
        assert_eq!(
            (s.stolen_same_ccx, s.stolen_cross_ccx, s.stolen_cross_socket),
            (2, 2, 2),
            "steals resolve near-first: {s:?}"
        );
        // Donor bookkeeping matches the ladder.
        let snaps = d.shard_snapshots();
        assert_eq!(snaps[1].stats.stolen_out, 2);
        assert_eq!(snaps[2].stats.stolen_out, 1);
        assert_eq!(snaps[3].stats.stolen_out, 1);
        assert_eq!(snaps[4].stats.stolen_out, 2);
        assert_eq!(snaps[0].stats.stolen_in, 6);
    }

    #[test]
    fn resume_migration_lands_on_the_nearest_idle_sibling() {
        // Grouped topology; the consumer parks on shard 0, whose queue
        // then backs up. Every other shard is equally idle: the wake must
        // migrate to shard 1 (same CCX), not an equally idle far shard.
        let mut d = dispatcher(DispatcherConfig {
            shards: 8,
            placement: Placement::ByTenant,
            topology: Some(Topology::grouped(2, 2, 2)),
            ..DispatcherConfig::default()
        });
        let consumer = d.register(chan_recv_spec("c")).unwrap();
        let filler = d.register(halt_spec("f")).unwrap();
        let a = d.add_tenant(TenantProfile::new("a").with_mask(HypercallMask::ALLOW_ALL));
        let chan = d.wasp().kernel().chan_open(64);
        d.submit(
            Request::new(a, consumer, 0.0)
                .with_invocation(Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        d.run_until(0.001);
        assert_eq!(d.shard_snapshots()[0].parked, 1);
        for _ in 0..16 {
            d.submit(Request::new(a, filler, 0.002)).unwrap();
        }
        d.wasp().kernel().chan_send(chan, b"go").unwrap();
        d.run_until(0.0021);
        d.run_to_idle();
        let c = d
            .completions()
            .iter()
            .find(|c| c.virtine == consumer)
            .unwrap();
        assert!(c.migrated);
        assert_eq!(c.shard, 1, "nearest idle sibling, not any idle shard");
        assert_eq!(d.shard_snapshots()[1].stats.migrated_in, 1);
    }

    #[test]
    fn warm_tenant_quota_caps_residency_by_self_eviction() {
        // Quota 2: tenant A's third distinct warm park demotes its own
        // least-recently-parked shell; tenant B's single warm shell is
        // never touched.
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::SnapshotAware,
            warm_tenant_quota: Some(2),
            ..DispatcherConfig::default()
        });
        let v: Vec<_> = (0..3)
            .map(|i| d.register(snap_spec(&format!("s{i}"))).unwrap())
            .collect();
        let a = d.add_tenant(TenantProfile::new("a"));
        let b = d.add_tenant(TenantProfile::new("b"));
        // Provisioned with clean shells so acquires never have to
        // cannibalize warm state: residency is bounded by *policy* here,
        // not by shell scarcity.
        d.prewarm(MEM, 2);
        d.submit(Request::new(b, v[0], 0.0)).unwrap();
        d.run_to_idle();
        assert_eq!(d.warm_resident_of(b), 1);
        for (i, &virtine) in v.iter().enumerate() {
            d.submit(Request::new(a, virtine, 0.01 * (i + 1) as f64))
                .unwrap();
            d.run_to_idle();
            assert!(
                d.warm_resident_of(a) <= 2,
                "quota violated: {} resident",
                d.warm_resident_of(a)
            );
        }
        assert_eq!(d.warm_resident_of(a), 2, "A holds exactly its quota");
        assert_eq!(d.warm_resident_of(b), 1, "B untouched by A's churn");
        // A's oldest key (v[0]) was the self-evicted one: a repeat for
        // v[2] still warm-hits, a repeat for v[0] must re-restore.
        d.submit(Request::new(a, v[2], 1.0)).unwrap();
        d.run_to_idle();
        assert!(d.completions().last().unwrap().warm_hit);
        d.submit(Request::new(a, v[0], 1.1)).unwrap();
        d.run_to_idle();
        assert!(!d.completions().last().unwrap().warm_hit);
    }

    #[test]
    fn global_warm_budget_bounds_total_residency_across_shards() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 4,
            placement: Placement::SnapshotAware,
            warm_budget: Some(2),
            ..DispatcherConfig::default()
        });
        let v: Vec<_> = (0..4)
            .map(|i| d.register(snap_spec(&format!("s{i}"))).unwrap())
            .collect();
        let tenants: Vec<_> = (0..4)
            .map(|i| d.add_tenant(TenantProfile::new(format!("t{i}"))))
            .collect();
        d.prewarm(MEM, 2);
        for (i, (&t, &virtine)) in tenants.iter().zip(&v).enumerate() {
            d.submit(Request::new(t, virtine, 0.01 * i as f64)).unwrap();
            d.run_to_idle();
            assert!(
                d.warm_resident() <= 2,
                "budget violated: {} resident",
                d.warm_resident()
            );
        }
        assert_eq!(d.warm_resident(), 2, "steady state pins the budget");
        // The two most recently parked keys are the residents.
        d.submit(Request::new(tenants[3], v[3], 1.0)).unwrap();
        d.run_to_idle();
        assert!(d.completions().last().unwrap().warm_hit);
        d.submit(Request::new(tenants[0], v[0], 1.1)).unwrap();
        d.run_to_idle();
        assert!(!d.completions().last().unwrap().warm_hit);
    }

    #[test]
    #[should_panic(expected = "topology shard count must match")]
    fn mismatched_topology_panics_at_construction() {
        let _ = dispatcher(DispatcherConfig {
            shards: 4,
            topology: Some(Topology::grouped(2, 2, 2)),
            ..DispatcherConfig::default()
        });
    }

    #[test]
    fn prewarm_gives_first_requests_clean_shells() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t"));
        d.prewarm(MEM, 2);
        d.submit(Request::new(tenant, id, 0.0)).unwrap();
        d.run_to_idle();
        assert!(d.completions()[0].reused_shell);
    }

    #[test]
    fn drain_evacuates_shells_and_reconcile_is_idempotent() {
        // Warm a shard, then drain it: the warm shell and the clean
        // shells must move to the sibling through the cost machinery, the
        // shard must converge to Drained, and a second reconcile pass
        // must perform zero actions (the idempotence contract).
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::SnapshotAware,
            ..DispatcherConfig::default()
        });
        let id = d.register(snap_spec("s")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t"));
        d.submit(Request::new(tenant, id, 0.0)).unwrap();
        d.run_to_idle();
        let home = d.completions()[0].shard;
        let sibling = 1 - home;
        assert_eq!(d.shard_snapshots()[home].warm_shells, 1);

        let actions = d.drain_shard(home);
        assert!(
            actions.contains(&LifecycleAction::WarmMigrated {
                from: home,
                to: sibling
            }),
            "warm shell must migrate: {actions:?}"
        );
        assert!(
            actions.contains(&LifecycleAction::Drained { shard: home }),
            "evacuation must converge: {actions:?}"
        );
        assert_eq!(d.shard_state(home), ShardState::Drained);
        assert_eq!(d.shard_snapshots()[home].warm_shells, 0);
        assert_eq!(d.shard_snapshots()[home].idle_shells, 0);
        assert_eq!(d.shard_snapshots()[sibling].warm_shells, 1);
        assert!(
            d.reconcile().is_empty(),
            "second converge pass performs zero actions"
        );

        // Warm identity survived the move: the repeat chases the shell to
        // the sibling and warm-hits there.
        d.submit(Request::new(tenant, id, 0.01)).unwrap();
        d.run_to_idle();
        let c = d.completions().last().unwrap();
        assert_eq!(c.shard, sibling);
        assert!(c.warm_hit, "migrated warm shell re-arms on the sibling");
        // Inventory arithmetic: nothing leaked, nothing destroyed.
        let p = d.pool_stats();
        assert_eq!(p.dropped, 0);
        assert_eq!(
            (d.pool_stats().created - p.dropped) as usize,
            d.shard_snapshots()
                .iter()
                .map(|s| s.idle_shells + s.warm_shells)
                .sum::<usize>(),
        );
    }

    #[test]
    fn drain_requeues_queued_work_exactly_once() {
        // A huge tick keeps submissions queued on the ByTenant home; the
        // drain must re-home them to the eligible sibling, where every
        // one is served exactly once.
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            tick: vclock::Cycles::from_micros(10_000_000.0),
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t")); // home = shard 0
                                                            // Arrivals strictly inside the first tick: t=0 would *be* a batch
                                                            // boundary and execute on submission.
        for i in 0..4 {
            d.submit(Request::new(tenant, id, (i + 1) as f64 * 1e-5))
                .unwrap();
        }
        assert_eq!(d.shard_snapshots()[0].queue_depth, 4);
        let actions = d.drain_shard(0);
        let requeued = actions
            .iter()
            .filter(|a| matches!(a, LifecycleAction::RunRequeued { from: 0, to: 1, .. }))
            .count();
        assert_eq!(requeued, 4, "every queued run re-homed: {actions:?}");
        assert_eq!(d.shard_state(0), ShardState::Drained);
        d.run_to_idle();
        assert_eq!(d.stats().served, 4, "exactly once, nothing lost");
        assert_eq!(d.stats().shed_evicted, 0);
        assert!(d.completions().iter().all(|c| c.shard == 1));
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
    }

    #[test]
    fn restore_is_symmetric_and_reconciler_goes_quiet() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t")); // home = shard 0
        d.drain_shard(0);
        d.submit(Request::new(tenant, id, 0.0)).unwrap();
        d.run_to_idle();
        assert_eq!(
            d.completions()[0].shard,
            1,
            "draining home hands its tenant to the sibling"
        );
        d.restore_shard(0);
        assert_eq!(d.shard_state(0), ShardState::Active);
        assert!(
            d.reconcile().is_empty(),
            "restore leaves nothing to reconcile"
        );
        d.submit(Request::new(tenant, id, 0.01)).unwrap();
        d.run_to_idle();
        assert_eq!(
            d.completions().last().unwrap().shard,
            0,
            "restored home is re-pinned"
        );
    }

    #[test]
    fn grace_expiry_evicts_an_unmigratable_parked_run() {
        // Spin-poll pins the blocked run to its worker, so the drain
        // cannot migrate it: the grace clock arms, the expiry hard-stops
        // the run with ShedReason::Evicted — a shed, not a serve — and
        // the freed shell then evacuates like any other, converging the
        // drain.
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            block: BlockMode::SpinPoll,
            ..DispatcherConfig::default()
        });
        let blocked = d.register(blocking_recv_spec("b")).unwrap();
        let tenant = d.add_tenant(
            TenantProfile::new("t")
                .with_mask(HypercallMask::ALLOW_ALL)
                .with_drain_grace(0.002),
        );
        let (_client, server) = conn_pair(&d, 91);
        d.submit(Request::new(tenant, blocked, 0.0).with_invocation(Invocation::with_conn(server)))
            .unwrap();
        d.run_to_idle();
        assert_eq!(d.parked(), 1);
        let home = d
            .shard_snapshots()
            .iter()
            .position(|s| s.parked == 1)
            .unwrap();

        let actions = d.drain_shard(home);
        assert!(
            actions.iter().any(
                |a| matches!(a, &LifecycleAction::EvictionArmed { shard, .. } if shard == home)
            ),
            "unmigratable park gets a grace clock: {actions:?}"
        );
        assert_eq!(
            d.shard_state(home),
            ShardState::Draining,
            "not yet converged"
        );

        d.run_until(0.01); // well past the 2 ms grace
        d.run_to_idle();
        assert_eq!(d.parked(), 0);
        assert_eq!(d.completions().len(), 0, "an eviction is not a completion");
        assert_eq!(d.stats().shed_evicted, 1);
        assert_eq!(d.stats().evicted_grace, 1);
        assert_eq!(d.stats().evicted_failed, 0);
        assert_eq!(d.tenant_stats(tenant).shed_evicted, 1);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
        assert_eq!(
            d.tenant_stats(tenant).shed(),
            1,
            "conservation: the admitted run is accounted as shed"
        );
        assert!(
            d.stats().busy_wait_cycles > 0,
            "the spin window up to the eviction is busy occupancy"
        );
        // The freed shell evacuated and the drain converged (the
        // auto-reconcile inside run_to_idle did it).
        assert_eq!(d.shard_state(home), ShardState::Drained);
        assert_eq!(d.shard_snapshots()[home].idle_shells, 0);
        assert_eq!(d.shard_snapshots()[1 - home].idle_shells, 1);
        assert!(d.reconcile().is_empty());
    }

    #[test]
    fn restore_disarms_grace_clocks() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let blocked = d.register(blocking_recv_spec("b")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
        let (client, server) = conn_pair(&d, 92);
        d.submit(Request::new(tenant, blocked, 0.0).with_invocation(Invocation::with_conn(server)))
            .unwrap();
        d.run_to_idle();
        d.drain_shard(0);
        d.restore_shard(0);
        // The armed eviction must NOT fire after restore: the run waits
        // out the default 500 µs grace unharmed, then completes on wake.
        d.run_until(0.05);
        d.wasp().kernel().net_send(client, b"ping").unwrap();
        d.run_until(0.06);
        d.run_to_idle();
        assert_eq!(d.stats().shed_evicted, 0);
        assert_eq!(d.stats().served, 1);
        assert!(d.completions()[0].exit_normal);
    }

    #[test]
    fn fail_shard_drops_shells_evicts_parks_and_rehomes_queued() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            tick: vclock::Cycles::from_micros(10_000_000.0),
            ..DispatcherConfig::default()
        });
        let blocked = d.register(blocking_recv_spec("b")).unwrap();
        let fast = d.register(halt_spec("f")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
        let (_client, server) = conn_pair(&d, 93);
        // Park a run on shard 0 first (small tick run), then pile fresh
        // work onto its queue under the huge tick.
        d.submit(Request::new(tenant, blocked, 0.0).with_invocation(Invocation::with_conn(server)))
            .unwrap();
        d.run_to_idle();
        assert_eq!(d.parked(), 1);
        for i in 0..3 {
            d.submit(Request::new(tenant, fast, 1.0 + i as f64 * 1e-5))
                .unwrap();
        }

        let actions = d.fail_shard(0);
        assert_eq!(d.shard_state(0), ShardState::Failed);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, LifecycleAction::RunEvicted { shard: 0, .. })),
            "the parked run dies with its shard: {actions:?}"
        );
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, LifecycleAction::RunRequeued { from: 0, to: 1, .. }))
                .count(),
            3,
            "fresh queued work re-homes exactly once: {actions:?}"
        );
        d.run_to_idle();
        assert_eq!(d.stats().served, 3, "re-homed work completes elsewhere");
        assert_eq!(d.stats().shed_evicted, 1);
        assert_eq!(d.stats().evicted_failed, 1);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
        // No shell leaks: everything still pooled balances creations
        // minus the shells destroyed with the failed shard.
        let p = d.pool_stats();
        assert!(p.dropped > 0, "the failed shard's shells were destroyed");
        assert_eq!(
            (p.created - p.dropped) as usize,
            d.shard_snapshots()
                .iter()
                .map(|s| s.idle_shells + s.warm_shells)
                .sum::<usize>(),
        );
        assert_eq!(d.shard_snapshots()[0].idle_shells, 0);
        assert_eq!(d.shard_snapshots()[0].warm_shells, 0);

        // Failed shards restore to Active and serve again.
        d.restore_shard(0);
        d.submit(Request::new(tenant, fast, 2.0)).unwrap();
        d.run_to_idle();
        assert_eq!(d.completions().last().unwrap().shard, 0);
    }

    #[test]
    fn fault_plan_kills_fire_at_their_virtual_instant() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t")); // home = shard 0
        d.set_fault_plan(FaultPlan::new().kill_shard(0.05, 0));
        // Requests straddle the kill: before it they serve on the home,
        // after it they re-route to the survivor. Nothing is lost.
        for i in 0..10 {
            d.submit(Request::new(tenant, id, i as f64 * 0.01)).unwrap();
        }
        d.run_to_idle();
        assert_eq!(d.shard_state(0), ShardState::Failed);
        let s = d.stats();
        assert_eq!(s.served + s.shed(), 10, "conservation across the fault");
        assert_eq!(s.shed_evicted, 0, "halt runs never park, none evicted");
        assert_eq!(s.served, 10);
        let c = d.completions();
        assert!(c.iter().any(|c| c.shard == 0), "pre-fault runs on the home");
        assert!(
            c.iter().filter(|c| c.finish > 0.05).all(|c| c.shard == 1),
            "post-fault runs only on the survivor"
        );
        // Same seed, same plan, same outcome: the whole scenario replays.
        let mut d2 = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            ..DispatcherConfig::default()
        });
        let id2 = d2.register(halt_spec("t")).unwrap();
        let tenant2 = d2.add_tenant(TenantProfile::new("t"));
        d2.set_fault_plan(FaultPlan::new().kill_shard(0.05, 0));
        for i in 0..10 {
            d2.submit(Request::new(tenant2, id2, i as f64 * 0.01))
                .unwrap();
        }
        d2.run_to_idle();
        assert_eq!(
            d.completions()
                .iter()
                .map(|c| (c.shard, c.finish.to_bits()))
                .collect::<Vec<_>>(),
            d2.completions()
                .iter()
                .map(|c| (c.shard, c.finish.to_bits()))
                .collect::<Vec<_>>(),
            "fault replay is bit-for-bit deterministic"
        );
    }

    #[test]
    fn kill_shell_faults_are_absorbed_by_the_pool() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t"));
        d.prewarm(MEM, 2);
        let before = d.pool_stats().created;
        d.set_fault_plan(FaultPlan::new().kill_shell(0.01, 0));
        for i in 0..4 {
            d.submit(Request::new(tenant, id, i as f64 * 0.01)).unwrap();
        }
        d.run_to_idle();
        assert_eq!(d.stats().served, 4, "a lost shell never loses a run");
        assert_eq!(d.pool_stats().dropped, 1);
        assert_eq!(
            d.shard_state(0),
            ShardState::Active,
            "shell loss != shard loss"
        );
        // The pool re-creates on demand; inventory stays balanced.
        let p = d.pool_stats();
        assert!(p.created >= before);
        assert_eq!(
            (p.created - p.dropped) as usize,
            d.shard_snapshots()
                .iter()
                .map(|s| s.idle_shells + s.warm_shells)
                .sum::<usize>(),
        );
    }

    #[test]
    fn health_detector_declares_a_hung_shard_and_restores_it() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            placement: Placement::ByTenant,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(TenantProfile::new("t").with_retry(RetryPolicy::new()));
        d.set_health(
            HealthConfig::new()
                .with_heartbeat_interval(0.0005)
                .with_suspicion_threshold(4.0)
                .with_probes(0.00025, 3),
        );
        // A gray failure on the tenant's home shard: no FaultPlan kill,
        // only a wedged worker from 5 ms to 20 ms. The shard stays
        // Active — only its heartbeat silence gives it away.
        d.set_fault_plan(FaultPlan::new().hang_shard(0.005, 0, 0.015));
        for step in 0..120u64 {
            let t = step as f64 * 0.0005;
            d.submit(Request::new(tenant, id, t)).unwrap();
            d.run_until(t + 0.0001);
        }
        d.run_to_idle();

        let h = d.health_stats().unwrap();
        assert_eq!(h.declared, 1, "the hang was declared exactly once");
        assert_eq!(h.restored, 1, "half-open probes restored it");
        assert_eq!(h.false_positives, 0, "only the dead shard was declared");
        assert!(h.probe_failures > 0, "the wedged worker ignored probes");

        // Failover lost nothing: queued work evacuated to the sibling.
        let s = d.stats();
        assert_eq!(s.served, 120, "every request completed");
        assert_eq!(s.shed(), 0);
        assert_eq!(s.retried_in_flight, 0);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
        // While declared, everything ran on the survivor; after restore
        // the home shard serves again.
        assert!(d
            .completions()
            .iter()
            .filter(|c| c.finish > 0.008 && c.finish < 0.020)
            .all(|c| c.shard == 1));
        assert_eq!(d.completions().last().unwrap().shard, 0);
        assert!(d
            .shard_health()
            .unwrap()
            .iter()
            .all(|sh| sh.breaker == CircuitState::Closed));
    }

    #[test]
    fn detector_driven_failover_replays_bit_for_bit() {
        let run = || {
            let mut d = dispatcher(DispatcherConfig {
                shards: 2,
                placement: Placement::ByTenant,
                ..DispatcherConfig::default()
            });
            let id = d.register(halt_spec("t")).unwrap();
            let tenant = d.add_tenant(
                TenantProfile::new("t").with_retry(RetryPolicy::new().with_backoff(0.0002)),
            );
            d.set_health(
                HealthConfig::new()
                    .with_heartbeat_interval(0.0005)
                    .with_probes(0.00025, 2)
                    .with_seed(1234),
            );
            d.set_fault_plan(FaultPlan::new().hang_shard(0.003, 0, 0.01));
            for step in 0..60u64 {
                let t = step as f64 * 0.0005;
                d.submit(Request::new(tenant, id, t)).unwrap();
                d.run_until(t + 0.0001);
            }
            d.run_to_idle();
            let log: Vec<(u64, usize, u64)> = d
                .completions()
                .iter()
                .map(|c| (c.seq, c.shard, c.finish.to_bits()))
                .collect();
            (log, d.health_stats().unwrap())
        };
        let (log_a, health_a) = run();
        let (log_b, health_b) = run();
        assert_eq!(log_a, log_b, "same seed, same failover, same instants");
        assert_eq!(health_a, health_b);
        assert_eq!(health_a.declared, 1);
        assert_eq!(health_a.false_positives, 0);
    }

    #[test]
    fn queued_work_lost_with_no_surviving_shard_is_retried_not_shed() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            // One huge tick: the three requests pile up unexecuted.
            tick: vclock::Cycles::from_micros(10_000_000.0),
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(
            TenantProfile::new("t").with_retry(RetryPolicy::new().with_backoff(0.0002)),
        );
        for _ in 0..3 {
            d.submit(Request::new(tenant, id, 0.0)).unwrap();
        }
        let actions = d.fail_shard(0);
        assert_eq!(
            actions
                .iter()
                .filter(|a| matches!(a, LifecycleAction::RunRetried { shard: 0, .. }))
                .count(),
            3,
            "with no sibling to evacuate to, losses become retries: {actions:?}"
        );
        let s = d.stats();
        assert_eq!(s.retries_queued, 3);
        assert_eq!(s.retried_in_flight, 3, "riding the backoff window");
        assert_eq!(s.shed(), 0, "a retried loss is not a shed");
        assert_eq!(
            d.tenant_stats(tenant).in_flight,
            3,
            "retried work is still in flight"
        );

        d.restore_shard(0);
        d.run_to_idle();
        let s = d.stats();
        assert_eq!(s.served, 3, "every lost run re-ran after the backoff");
        assert_eq!(s.shed(), 0);
        assert_eq!(s.retried_in_flight, 0);
        assert_eq!(d.tenant_stats(tenant).retries, 3);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
        // Exactly once: three completions under three distinct logical
        // sequence numbers, none duplicated.
        let seqs: std::collections::HashSet<u64> = d.completions().iter().map(|c| c.seq).collect();
        assert_eq!(seqs.len(), 3);
    }

    #[test]
    fn parked_run_lost_to_a_shard_failure_is_retried_exactly_once() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 1,
            ..DispatcherConfig::default()
        });
        let consumer = d.register(chan_recv_spec("c")).unwrap();
        let tenant = d.add_tenant(
            TenantProfile::new("t")
                .with_mask(HypercallMask::ALLOW_ALL)
                .with_retry(RetryPolicy::new().with_backoff(0.0001).with_jitter(0.0)),
        );
        let chan = d.wasp().kernel().chan_open(256);
        d.submit(
            Request::new(tenant, consumer, 0.0)
                .with_invocation(Invocation::default().with_chans(vec![chan])),
        )
        .unwrap();
        d.run_to_idle();
        assert_eq!(d.parked(), 1, "empty channel parks the consumer");

        // The shard dies under the parked run. Idempotent re-execution
        // is safe (the consumer made no externally visible progress), so
        // the eviction becomes a retry instead of a shed.
        let actions = d.fail_shard(0);
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, LifecycleAction::RunRetried { shard: 0, .. })),
            "the parked loss was scheduled for re-submission: {actions:?}"
        );
        assert_eq!(d.stats().retries_parked, 1);
        assert_eq!(d.stats().shed_evicted, 0);
        assert_eq!(d.parked(), 0);

        d.restore_shard(0);
        d.wasp().kernel().chan_send(chan, b"work").unwrap();
        d.run_until(0.01);
        d.run_to_idle();
        assert_eq!(d.stats().served, 1, "the retried run completed");
        assert_eq!(d.stats().shed(), 0);
        assert_eq!(d.stats().retried_in_flight, 0);
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);
        assert_eq!(d.completions().len(), 1, "exactly one completion");
        assert!(d.completions()[0].exit_normal);
    }

    #[test]
    fn a_hedged_request_escapes_a_straggler_shard() {
        let mut d = dispatcher(DispatcherConfig {
            shards: 2,
            ..DispatcherConfig::default()
        });
        let id = d.register(halt_spec("t")).unwrap();
        let tenant = d.add_tenant(
            TenantProfile::new("t").with_hedge(HedgePolicy::new().with_min_delay(0.0002)),
        );
        // Shard 0 (the least-loaded pick at t=0) wedges before the
        // request's batch runs; the copy hedged at 200 µs lands on the
        // healthy sibling and wins.
        d.set_fault_plan(FaultPlan::new().hang_shard(0.0, 0, 0.01));
        d.submit(Request::new(tenant, id, 0.0)).unwrap();
        d.run_to_idle();

        let s = d.stats();
        assert_eq!(s.hedges_armed, 1);
        assert_eq!(s.hedges_fired, 1);
        assert_eq!(s.hedges_won, 1, "the copy beat the straggler");
        assert_eq!(s.hedges_canceled, 1, "the primary was suppressed");
        assert_eq!(s.served, 1, "first completion wins; one completion");
        assert_eq!(d.completions().len(), 1);
        let c = &d.completions()[0];
        assert_eq!(c.shard, 1, "served by the sibling, not the straggler");
        assert!(
            c.finish < 0.01,
            "finish {} must not wait out the 10 ms hang",
            c.finish
        );
        assert_eq!(d.tenant_stats(tenant).in_flight, 0);

        // A request with nothing to escape completes before its hedge
        // delay: armed, never fired.
        d.submit(Request::new(tenant, id, 0.02)).unwrap();
        d.run_to_idle();
        let s = d.stats();
        assert_eq!(s.served, 2);
        assert_eq!(s.hedges_armed, 2);
        assert_eq!(s.hedges_fired, 1, "a fast request never hedges");
        // Exactly once under hedging: distinct logical sequence numbers.
        let seqs: std::collections::HashSet<u64> = d.completions().iter().map(|c| c.seq).collect();
        assert_eq!(seqs.len(), 2);
    }

    #[test]
    fn brownout_sheds_low_priority_work_while_the_pager_fires() {
        use vtrace::slo::{BurnPolicy, SloEngine, SloSpec};
        let mut d = dispatcher(DispatcherConfig::default());
        let id = d.register(halt_spec("t")).unwrap();
        let noisy = d.add_tenant(TenantProfile::new("noisy").with_rate(10.0, 2.0));
        let victim = d.add_tenant(TenantProfile::new("victim"));
        d.set_slo(SloEngine::new(
            vec![SloSpec::availability("avail", 0.9)],
            BurnPolicy {
                fast_window: vclock::Cycles::from_micros(1_000.0),
                slow_window: vclock::Cycles::from_micros(5_000.0),
                page_burn: 3.0,
                ticket_burn: 1.0,
            },
        ));
        d.set_brownout(
            BrownoutConfig::new()
                .with_ladder(vec![1])
                .with_holds(0.0005, 0.002),
        );
        assert_eq!(d.brownout_level(), 0);

        // An overload burst: 2 admitted, the rest shed — burn rate 10×
        // the 10% error budget, far past the page threshold. Every
        // submit advances virtual time, so the pager fires and the door
        // engages *mid-burst*: the first refusals are rate-limit sheds,
        // the tail is browned out.
        for _ in 0..20 {
            let _ = d.submit(Request::new(noisy, id, 0.0));
        }
        d.run_until(0.0005);
        assert_eq!(d.brownout_level(), 1, "the pager stepped the ladder");
        let noisy_stats = d.tenant_stats(noisy);
        assert_eq!(noisy_stats.shed(), 18);
        assert!(noisy_stats.shed_rate_limit >= 1);
        assert!(noisy_stats.shed_brownout >= 1, "the door closed mid-burst");

        // Level 1 floor is priority 1: the victim's default-priority
        // request is shed at the door, before any token-bucket charge; a
        // boosted one passes.
        assert_eq!(
            d.submit(Request::new(victim, id, 0.0006)).unwrap_err(),
            ShedReason::Brownout
        );
        assert!(d
            .submit(Request::new(victim, id, 0.0006).with_boost(1))
            .is_ok());
        assert_eq!(d.tenant_stats(victim).shed_brownout, 1);
        assert_eq!(d.tenant_stats(victim).shed_rate_limit, 0);

        // Quiet: the burst ages out of the fast window, and after the
        // 2 ms recovery hold the ladder steps back up.
        d.run_until(0.004);
        assert_eq!(d.brownout_level(), 1, "hysteresis holds the level");
        d.run_until(0.007);
        assert_eq!(d.brownout_level(), 0, "page-free quiet recovered it");
        assert!(d.submit(Request::new(victim, id, 0.008)).is_ok());
        d.run_to_idle();
        assert_eq!(d.tenant_stats(victim).served, 2);
        assert_eq!(d.tenant_stats(victim).shed(), 1);
        assert_eq!(d.tenant_stats(victim).in_flight, 0);
    }
}
