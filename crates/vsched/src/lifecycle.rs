//! Shard lifecycle: desired-state machine, reconciler vocabulary, and
//! deterministic fault injection.
//!
//! The paper's economics — virtines cheap enough to create and destroy
//! that isolation costs almost nothing (§5.2) — extend to *operations*:
//! shells and runs must be cheap to move **off** a shard that is being
//! restarted, reconfigured, or has failed. This module gives each shard a
//! desired state:
//!
//! ```text
//!              drain_shard                converged
//!   Active ───────────────▶ Draining ───────────────▶ Drained
//!     ▲                        │                         │
//!     │      restore_shard     │      restore_shard      │
//!     ◀────────────────────────┴─────────────────────────┘
//!     │
//!     │      fail_shard (operator or FaultPlan)
//!     └───────────────────────▶ Failed ── restore_shard ─▶ Active
//! ```
//!
//! and an idempotent **reconciliation loop** (`Dispatcher::reconcile`)
//! that converges actual state to desired state in vclock time:
//!
//! * a non-`Active` shard stops being scored by the placement engine as
//!   an admit / steal / resume-migration target
//!   ([`crate::placement::Candidate::eligible`]);
//! * queued requests, migratable parked runs, and pooled shells (warm and
//!   clean) are moved to eligible siblings through the same priced,
//!   quota-respecting `Candidate` cost machinery as steals and
//!   resume-time migration;
//! * parked runs that *cannot* move (no eligible sibling, or a spin-poll
//!   wait that pins its worker) ride a per-tenant grace period
//!   ([`crate::TenantProfile::drain_grace`]) and are then hard-stopped
//!   and shed with [`crate::ShedReason::Evicted`] — the only
//!   post-admission shed besides a missed deadline;
//! * re-running the reconciler against a converged state performs zero
//!   actions, so an operator (or a control loop) can call it on every
//!   tick without thrashing.
//!
//! [`FaultPlan`] injects failures at chosen virtual instants, seeded
//! through `vclock::rng` so a whole kill-and-recover scenario replays
//! bit-for-bit: shard failure exercises the same detector → reconcile →
//! re-admit path as an operator-initiated drain.

use vclock::rng::Rng;

/// Desired/actual lifecycle state of one shard.
///
/// `Active` is the only state the placement engine scores; the other
/// three are holes in the candidate set that the reconciler is busy
/// emptying (`Draining`), has emptied (`Drained`), or abandoned wholesale
/// (`Failed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Serving normally: admits, donates steals, accepts migrations.
    Active,
    /// Marked for evacuation: no new placements; the reconciler is moving
    /// queued work, parked runs, and pooled shells to eligible siblings,
    /// and grace clocks tick on whatever cannot move.
    Draining,
    /// Evacuation converged: queue empty, no parked runs, no pooled
    /// shells. Safe to restart or reconfigure the underlying worker.
    Drained,
    /// The shard's hardware contexts are gone (fault injection or
    /// operator `fail`). Pooled shells were dropped and parked runs
    /// evicted; the shard holds nothing until restored.
    Failed,
}

impl ShardState {
    /// Stable snake_case label, matching the `vsched_shard_state` gauge
    /// documentation and the `/admin/drain` status payload.
    pub fn label(self) -> &'static str {
        match self {
            ShardState::Active => "active",
            ShardState::Draining => "draining",
            ShardState::Drained => "drained",
            ShardState::Failed => "failed",
        }
    }

    /// Numeric encoding for the `vsched_shard_state` Prometheus gauge:
    /// 0 = active, 1 = draining, 2 = drained, 3 = failed.
    pub fn gauge(self) -> u64 {
        match self {
            ShardState::Active => 0,
            ShardState::Draining => 1,
            ShardState::Drained => 2,
            ShardState::Failed => 3,
        }
    }

    /// Whether placement may score this shard as an admit / steal /
    /// migration target.
    pub fn is_active(self) -> bool {
        matches!(self, ShardState::Active)
    }
}

impl std::fmt::Display for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One observable action the reconciler took. `Dispatcher::reconcile`
/// returns the full list per pass; an empty list *is* the convergence
/// proof — the idempotence contract says a second pass over unchanged
/// state returns `[]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleAction {
    /// A queued request moved from a draining shard's run queue to an
    /// eligible sibling.
    RunRequeued { seq: u64, from: usize, to: usize },
    /// A parked (blocked) run's suspended state moved to an eligible
    /// sibling; its wait registration rides along untouched.
    ParkMigrated { seq: u64, from: usize, to: usize },
    /// A warm shell (snapshot identity and LRU stamp preserved) moved to
    /// an eligible sibling's warm list.
    WarmMigrated { from: usize, to: usize },
    /// A clean idle shell moved to an eligible sibling's clean list.
    CleanMigrated { from: usize, to: usize },
    /// An unmigratable parked run's grace clock was armed (or re-armed
    /// tighter): at timeline position `at` it will be evicted.
    EvictionArmed { seq: u64, shard: usize, at: u64 },
    /// A parked run was hard-stopped and shed with
    /// [`crate::ShedReason::Evicted`] — grace expired, or its shard
    /// failed.
    RunEvicted { seq: u64, shard: usize },
    /// A run lost to a shard failure was scheduled for an exactly-once
    /// re-submission under its tenant's [`crate::RetryPolicy`] instead
    /// of being shed (`seq` is the logical request; `shard` the failed
    /// shard that destroyed its last live copy).
    RunRetried { seq: u64, shard: usize },
    /// A failed shard's pooled shells were destroyed (`count` of them).
    ShellsDropped { shard: usize, count: usize },
    /// A draining shard's evacuation converged; its state advanced to
    /// [`ShardState::Drained`].
    Drained { shard: usize },
}

/// What a [`FaultEvent`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The whole shard fails: pooled shells dropped, parked runs evicted,
    /// queued work re-admitted elsewhere — exactly `fail_shard`.
    KillShard(usize),
    /// One idle shell on the shard is destroyed (the cheapest clean one),
    /// modelling a single context loss the pool absorbs by re-creating.
    KillShell(usize),
    /// The shard *wedges* without dying: it stops running batches and
    /// firing parked-run timeouts, but stays `Active` and keeps being
    /// scored by placement — a gray failure. Nothing in the lifecycle
    /// machinery reacts to a hang; only the health detector
    /// ([`crate::HealthConfig`]) can notice the missed heartbeats and
    /// declare the shard failed.
    HangShard(usize),
    /// The wedged shard recovers: batches and timeouts resume. If the
    /// detector declared it failed in the meantime, its half-open probes
    /// start succeeding again and eventually restore it.
    UnhangShard(usize),
}

/// One scheduled fault at a virtual instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time in seconds at which the fault fires.
    pub at_s: f64,
    /// What fails.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected faults, applied by the dispatcher
/// as virtual time advances past each event's instant.
///
/// Determinism is the point: a plan built with [`FaultPlan::random`] from
/// a seed replays the identical kill sequence on every run, so a
/// fault-recovery bench or property test is exactly reproducible. Events
/// fire in time order (ties in insertion order); the same detector →
/// reconcile → re-admit path runs whether the fault came from a plan or
/// an operator call.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Remaining events, sorted by time (stable on ties).
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a whole-shard failure at `at_s` virtual seconds
    /// (builder style).
    pub fn kill_shard(mut self, at_s: f64, shard: usize) -> FaultPlan {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::KillShard(shard),
        });
        self
    }

    /// Schedules a single-shell loss on `shard` at `at_s` virtual
    /// seconds (builder style).
    pub fn kill_shell(mut self, at_s: f64, shard: usize) -> FaultPlan {
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::KillShell(shard),
        });
        self
    }

    /// Schedules a gray failure: `shard` hangs at `at_s` and recovers
    /// `duration_s` later (builder style). The pair models a wedged
    /// worker — a straggler the lifecycle machinery alone never notices,
    /// which is exactly what the health detector exists to catch.
    pub fn hang_shard(mut self, at_s: f64, shard: usize, duration_s: f64) -> FaultPlan {
        assert!(
            duration_s.is_finite() && duration_s >= 0.0,
            "hang duration must be finite"
        );
        self.push(FaultEvent {
            at_s,
            kind: FaultKind::HangShard(shard),
        });
        self.push(FaultEvent {
            at_s: at_s + duration_s,
            kind: FaultKind::UnhangShard(shard),
        });
        self
    }

    /// A seeded random plan: `count` faults spread uniformly over
    /// `(0, horizon_s)`, each killing a random shard (with probability
    /// `shard_kill_p`) or one of its shells. Same seed, same plan.
    pub fn random(
        seed: u64,
        shards: usize,
        count: usize,
        horizon_s: f64,
        shard_kill_p: f64,
    ) -> FaultPlan {
        assert!(shards > 0, "a fault plan needs at least one shard");
        let mut rng = Rng::seeded(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let at_s = rng.range_f64(0.0, horizon_s);
            let shard = rng.below(shards);
            let kind = if rng.bool(shard_kill_p) {
                FaultKind::KillShard(shard)
            } else {
                FaultKind::KillShell(shard)
            };
            plan.push(FaultEvent { at_s, kind });
        }
        plan
    }

    fn push(&mut self, e: FaultEvent) {
        // Stable insert keeps ties in insertion order without a sort_by
        // over f64 keys (total order is fine here: NaN is rejected).
        assert!(
            e.at_s.is_finite() && e.at_s >= 0.0,
            "fault instant must be finite"
        );
        let i = self.events.partition_point(|x| x.at_s <= e.at_s);
        self.events.insert(i, e);
    }

    /// The virtual instant of the next pending fault, if any.
    pub fn next_at(&self) -> Option<f64> {
        self.events.first().map(|e| e.at_s)
    }

    /// Pops every event due at or before `now_s`, in order.
    pub fn take_due(&mut self, now_s: f64) -> Vec<FaultEvent> {
        let n = self.events.partition_point(|e| e.at_s <= now_s);
        self.events.drain(..n).collect()
    }

    /// Remaining scheduled events.
    pub fn pending(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_labels_and_gauges_are_stable() {
        let states = [
            ShardState::Active,
            ShardState::Draining,
            ShardState::Drained,
            ShardState::Failed,
        ];
        let labels: Vec<&str> = states.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["active", "draining", "drained", "failed"]);
        let gauges: Vec<u64> = states.iter().map(|s| s.gauge()).collect();
        assert_eq!(gauges, [0, 1, 2, 3]);
        assert!(ShardState::Active.is_active());
        assert!(!ShardState::Draining.is_active());
        assert_eq!(ShardState::Drained.to_string(), "drained");
    }

    #[test]
    fn plan_fires_in_time_order_with_stable_ties() {
        let mut plan = FaultPlan::new()
            .kill_shard(0.5, 1)
            .kill_shell(0.2, 0)
            .kill_shard(0.5, 2);
        assert_eq!(plan.next_at(), Some(0.2));
        let due = plan.take_due(0.5);
        assert_eq!(
            due.iter().map(|e| e.kind).collect::<Vec<_>>(),
            [
                FaultKind::KillShell(0),
                FaultKind::KillShard(1),
                FaultKind::KillShard(2),
            ],
            "time order, insertion order on the 0.5 tie"
        );
        assert_eq!(plan.pending(), 0);
        assert!(plan.take_due(9.0).is_empty());
    }

    #[test]
    fn hang_shard_schedules_the_hang_and_the_recovery() {
        let mut plan = FaultPlan::new().hang_shard(0.3, 2, 0.2);
        assert_eq!(plan.pending(), 2);
        assert_eq!(plan.next_at(), Some(0.3));
        let due = plan.take_due(1.0);
        assert_eq!(
            due.iter().map(|e| e.kind).collect::<Vec<_>>(),
            [FaultKind::HangShard(2), FaultKind::UnhangShard(2)],
            "hang first, recovery duration_s later"
        );
        assert_eq!(due[1].at_s, 0.5);
    }

    #[test]
    fn random_plan_replays_bit_for_bit_from_the_seed() {
        let a = FaultPlan::random(42, 4, 16, 1.0, 0.3);
        let b = FaultPlan::random(42, 4, 16, 1.0, 0.3);
        assert_eq!(a.events, b.events, "same seed, same plan");
        assert_eq!(a.pending(), 16);
        for w in a.events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s, "sorted by instant");
        }
        let c = FaultPlan::random(43, 4, 16, 1.0, 0.3);
        assert_ne!(a.events, c.events, "different seed, different plan");
    }
}
