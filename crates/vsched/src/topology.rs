//! Shard topology: the socket/CCX grouping that turns "cross-shard" into
//! a *distance* with a price.
//!
//! The paper's latency wins come from keeping shell acquisition on the
//! hardware fast path (§5, Figure 15); at platform scale the shards that
//! pool those shells sit on real cores, and moving a shell (a steal) or a
//! suspended run (a resume-time migration) between them moves cache lines
//! a physical distance. A flat dispatcher treats every sibling as equally
//! close and happily pulls a shell across the socket interconnect while a
//! same-L3 neighbor holds one — the exact mistake NUMA-aware runtimes
//! (Faasm's state sharing, Firecracker-style snapshot pools; see
//! PAPERS.md) are built to avoid.
//!
//! [`Topology`] maps each shard to a (socket, CCX) pair and prices every
//! ordered shard pair with a [`Hop`] class backed by the calibrated
//! per-hop transfer costs in [`vclock::costs`]:
//!
//! ```text
//!   socket 0                      socket 1
//!   ┌─────────────┬─────────────┐ ┌─────────────┬─────────────┐
//!   │ CCX 0       │ CCX 1       │ │ CCX 2       │ CCX 3       │
//!   │ shard 0 · 1 │ shard 2 · 3 │ │ shard 4 · 5 │ shard 6 · 7 │
//!   └─────────────┴─────────────┘ └─────────────┴─────────────┘
//!      SameCcx        SameSocket          CrossSocket
//!      (shared L3)    (on-die fabric)     (interconnect)
//! ```
//!
//! The topology itself is pure data: *which* hop a decision accepts and
//! what it trades against queue depth is the placement engine's job (see
//! [`crate::placement`] for the decision-point diagram). [`Topology::flat`]
//! — everything in one CCX — reproduces the pre-topology dispatcher
//! bit-for-bit, since every cross-shard hop then costs the historical
//! [`vclock::costs::VSCHED_STEAL_TRANSFER`].

use vclock::costs;

/// Distance class between two shards, ordered near to far. The `Ord`
/// instance is meaningful: placement policies compare hops directly
/// ("a same-CCX donor always beats a cross-socket one at equal load").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hop {
    /// The same shard: no transfer at all.
    Local,
    /// Different shard, same core complex (shared L3 slice).
    SameCcx,
    /// Same socket, different CCX (on-die fabric crossing).
    SameSocket,
    /// Different socket (inter-socket interconnect, NUMA-remote).
    CrossSocket,
    /// Different *node*: the run leaves shared memory entirely and
    /// crosses the cluster network. [`Topology::hop`] never returns this
    /// — a single dispatcher's shards all share one node — it exists so
    /// the cluster layer ([`crate::cluster`]) can price node-to-node
    /// evacuation through the same [`crate::placement::Candidate`]
    /// machinery as any other hop.
    CrossNode,
}

impl Hop {
    /// Cycles to move a shell or suspended run across this distance
    /// (the per-hop constants of `vclock::costs`).
    pub fn transfer_cost(self) -> u64 {
        match self {
            Hop::Local => 0,
            Hop::SameCcx => costs::VSCHED_TRANSFER_SAME_CCX,
            Hop::SameSocket => costs::VSCHED_TRANSFER_CROSS_CCX,
            Hop::CrossSocket => costs::VSCHED_TRANSFER_CROSS_SOCKET,
            Hop::CrossNode => costs::VSCHED_TRANSFER_CROSS_NODE,
        }
    }

    /// Stable label for stats surfaces (Prometheus series, bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            Hop::Local => "local",
            Hop::SameCcx => "same_ccx",
            Hop::SameSocket => "cross_ccx",
            Hop::CrossSocket => "cross_socket",
            Hop::CrossNode => "cross_node",
        }
    }
}

/// The shard→CCX→socket grouping of a dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// CCX index per shard (globally numbered across sockets).
    ccx: Vec<usize>,
    /// Socket index per shard.
    socket: Vec<usize>,
    sockets: usize,
    ccxs: usize,
}

impl Topology {
    /// A flat topology: every shard in one CCX on one socket. Every
    /// cross-shard hop is [`Hop::SameCcx`], so costs and orderings match
    /// the pre-topology dispatcher exactly.
    ///
    /// # Panics
    ///
    /// Panics on zero shards.
    pub fn flat(shards: usize) -> Topology {
        Topology::grouped(1, 1, shards)
    }

    /// A regular grouped topology: `sockets` sockets, each holding
    /// `ccxs_per_socket` CCXs of `shards_per_ccx` shards. Shards are
    /// numbered CCX-major: shard `i` lives in CCX `i / shards_per_ccx`
    /// and socket `i / (shards_per_ccx * ccxs_per_socket)`.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn grouped(sockets: usize, ccxs_per_socket: usize, shards_per_ccx: usize) -> Topology {
        assert!(sockets >= 1, "need at least one socket");
        assert!(ccxs_per_socket >= 1, "need at least one CCX per socket");
        assert!(shards_per_ccx >= 1, "need at least one shard per CCX");
        let shards = sockets * ccxs_per_socket * shards_per_ccx;
        let ccx = (0..shards).map(|i| i / shards_per_ccx).collect();
        let socket = (0..shards)
            .map(|i| i / (shards_per_ccx * ccxs_per_socket))
            .collect();
        Topology {
            ccx,
            socket,
            sockets,
            ccxs: sockets * ccxs_per_socket,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.ccx.len()
    }

    /// Number of sockets.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Number of CCXs across all sockets.
    pub fn ccxs(&self) -> usize {
        self.ccxs
    }

    /// The socket shard `i` lives on.
    pub fn socket_of(&self, i: usize) -> usize {
        self.socket[i]
    }

    /// The (global) CCX shard `i` lives in.
    pub fn ccx_of(&self, i: usize) -> usize {
        self.ccx[i]
    }

    /// Distance class between shards `a` and `b`.
    pub fn hop(&self, a: usize, b: usize) -> Hop {
        if a == b {
            Hop::Local
        } else if self.ccx[a] == self.ccx[b] {
            Hop::SameCcx
        } else if self.socket[a] == self.socket[b] {
            Hop::SameSocket
        } else {
            Hop::CrossSocket
        }
    }

    /// Cycles to move a shell or suspended run from shard `a` to `b`
    /// ([`Hop::transfer_cost`] of their distance).
    pub fn transfer_cost(&self, a: usize, b: usize) -> u64 {
        self.hop(a, b).transfer_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_is_one_ccx() {
        let t = Topology::flat(4);
        assert_eq!(t.shards(), 4);
        assert_eq!((t.sockets(), t.ccxs()), (1, 1));
        for a in 0..4 {
            for b in 0..4 {
                let hop = t.hop(a, b);
                if a == b {
                    assert_eq!(hop, Hop::Local);
                    assert_eq!(t.transfer_cost(a, b), 0);
                } else {
                    assert_eq!(hop, Hop::SameCcx);
                    assert_eq!(t.transfer_cost(a, b), costs::VSCHED_STEAL_TRANSFER);
                }
            }
        }
    }

    #[test]
    fn grouped_topology_classifies_every_hop() {
        // 2 sockets x 2 CCXs x 2 shards: the doc-comment diagram.
        let t = Topology::grouped(2, 2, 2);
        assert_eq!(t.shards(), 8);
        assert_eq!((t.sockets(), t.ccxs()), (2, 4));
        assert_eq!(t.hop(0, 0), Hop::Local);
        assert_eq!(t.hop(0, 1), Hop::SameCcx);
        assert_eq!(t.hop(0, 2), Hop::SameSocket);
        assert_eq!(t.hop(0, 3), Hop::SameSocket);
        assert_eq!(t.hop(0, 4), Hop::CrossSocket);
        assert_eq!(t.hop(0, 7), Hop::CrossSocket);
        assert_eq!(t.hop(6, 7), Hop::SameCcx);
        assert_eq!(t.hop(4, 6), Hop::SameSocket);
        // Symmetric.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.hop(a, b), t.hop(b, a));
            }
        }
    }

    #[test]
    fn hop_order_is_near_to_far_and_costs_agree() {
        assert!(Hop::Local < Hop::SameCcx);
        assert!(Hop::SameCcx < Hop::SameSocket);
        assert!(Hop::SameSocket < Hop::CrossSocket);
        assert!(Hop::CrossSocket < Hop::CrossNode);
        let costs: Vec<u64> = [
            Hop::Local,
            Hop::SameCcx,
            Hop::SameSocket,
            Hop::CrossSocket,
            Hop::CrossNode,
        ]
        .iter()
        .map(|h| h.transfer_cost())
        .collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Topology::grouped(1, 1, 0);
    }
}
