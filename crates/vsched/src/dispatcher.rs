//! The dispatcher: admission, placement, batched shard ticks, stealing.

use std::collections::HashMap;

use vclock::{costs, Clock, Cycles};
use wasp::{
    Invocation, Pool, PoolMode, PoolStats, ShellSource, VirtineId, VirtineSpec, Wasp, WaspError,
};

use crate::shard::{align_up, Queued, Shard, ShardSnapshot};
use crate::tenant::{ShedReason, TenantId, TenantProfile, TenantState, TenantStats};

/// Where an admitted request is queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Least-loaded shard (queue depth, then worker timeline, then index):
    /// spreads independent requests for throughput.
    #[default]
    LeastLoaded,
    /// `tenant index mod shards`: pins each tenant to one home shard, so a
    /// tenant's requests share warm state and its queue pressure stays
    /// local (the NUMA-style affinity the ROADMAP lists as a follow-on is
    /// a refinement of this policy).
    ByTenant,
    /// Snapshot-aware: route to the shard whose pool already parks a warm
    /// shell for this request's `(tenant, virtine)` — turning placement
    /// into a cache-hit decision, since the warm shard serves the request
    /// with a dirty-page delta re-arm instead of a full sparse restore.
    /// Falls back to least-loaded when no shard is warm for the key, or
    /// when the warm shard's queue has fallen `batch_size` behind the
    /// least-loaded one (a warm hit saves microseconds; it must not buy
    /// them with milliseconds of queueing skew).
    SnapshotAware,
}

/// Dispatcher configuration.
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// Number of shards (per-worker pools + queues). Throughput scales
    /// with shards until the offered load is covered.
    pub shards: usize,
    /// Maximum requests a shard executes per batch tick.
    pub batch_size: usize,
    /// Batch tick period in virtual time. Requests admitted mid-tick wait
    /// for the boundary; larger ticks trade latency for batching.
    pub tick: Cycles,
    /// Shell-pool mode for every shard (§5.2; `CachedAsync` is the
    /// paper's best configuration).
    pub pool_mode: PoolMode,
    /// Whether a dry shard may steal clean shells from siblings (and, as a
    /// last resort before `KVM_CREATE_VM`, demote-and-steal a sibling's
    /// warm shell).
    pub steal: bool,
    /// Queue-placement policy.
    pub placement: Placement,
    /// Bound on warm shells resident per shard pool; zero disables warm
    /// caching (the pre-warm-cache dispatcher behavior).
    pub warm_capacity: usize,
}

impl Default for DispatcherConfig {
    fn default() -> DispatcherConfig {
        DispatcherConfig {
            shards: 4,
            batch_size: 8,
            tick: Cycles::from_micros(50.0),
            pool_mode: PoolMode::CachedAsync,
            steal: true,
            placement: Placement::LeastLoaded,
            warm_capacity: wasp::DEFAULT_WARM_CAPACITY,
        }
    }
}

/// One request offered to the dispatcher.
#[derive(Debug)]
pub struct Request {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Registered virtine to run.
    pub virtine: VirtineId,
    /// Marshalled arguments (written at guest address 0, §6.1).
    pub args: Vec<u8>,
    /// Invocation state (payload, bound connection, ...).
    pub invocation: Invocation,
    /// Arrival time in virtual seconds; must be non-decreasing across
    /// `submit` calls.
    pub arrival_s: f64,
    /// Added to the tenant's base priority for this request.
    pub priority_boost: u8,
    /// Optional absolute deadline (virtual seconds): requests still queued
    /// past it are shed, not run.
    pub deadline_s: Option<f64>,
}

impl Request {
    /// A plain request: no payload, no boost, no deadline.
    pub fn new(tenant: TenantId, virtine: VirtineId, arrival_s: f64) -> Request {
        Request {
            tenant,
            virtine,
            args: Vec::new(),
            invocation: Invocation::default(),
            arrival_s,
            priority_boost: 0,
            deadline_s: None,
        }
    }

    /// Attaches an invocation (builder style).
    pub fn with_invocation(mut self, invocation: Invocation) -> Request {
        self.invocation = invocation;
        self
    }

    /// Attaches marshalled arguments (builder style).
    pub fn with_args(mut self, args: Vec<u8>) -> Request {
        self.args = args;
        self
    }

    /// Sets a deadline (builder style).
    pub fn with_deadline(mut self, deadline_s: f64) -> Request {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Boosts priority (builder style).
    pub fn with_boost(mut self, boost: u8) -> Request {
        self.priority_boost = boost;
        self
    }
}

/// One executed request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Virtine that ran.
    pub virtine: VirtineId,
    /// Shard that executed the request.
    pub shard: usize,
    /// Arrival time (virtual seconds).
    pub arrival: f64,
    /// Execution start on the shard's worker timeline.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Pure service time (start → finish).
    pub service: f64,
    /// Whether the shell came from a pool (clean, warm, or stolen) rather
    /// than a fresh `KVM_CREATE_VM`.
    pub reused_shell: bool,
    /// Whether the shell was stolen from a sibling shard.
    pub stolen_shell: bool,
    /// Whether the request was served by a warm shell re-armed with its
    /// dirty-page delta (the snapshot-aware fast path).
    pub warm_hit: bool,
    /// Whether the virtine ended by normal means (`hlt`/`exit`).
    pub exit_normal: bool,
    /// Result bytes the virtine returned (`return_data`).
    pub result: Vec<u8>,
}

impl Completion {
    /// End-to-end latency: queueing plus service.
    pub fn latency(&self) -> f64 {
        self.finish - self.arrival
    }
}

/// Aggregate dispatcher statistics, surfaced like `wasp::PoolStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatcherStats {
    /// Requests offered across all tenants.
    pub submitted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests executed.
    pub served: u64,
    /// Requests shed at the token bucket.
    pub shed_rate_limit: u64,
    /// Requests shed at the in-flight cap.
    pub shed_in_flight: u64,
    /// Requests shed in-queue at their deadline.
    pub shed_deadline: u64,
    /// Shells stolen between shards.
    pub stolen: u64,
    /// Batch ticks executed.
    pub batches: u64,
    /// Requests served by a warm-shell delta re-arm.
    pub warm_hits: u64,
    /// Warm shells demoted (wiped to clean) on the acquire path — locally
    /// for a different key, or stolen from a sibling. Pool-internal LRU
    /// evictions are counted in [`wasp::PoolStats::warm_demoted`] instead.
    pub warm_demotions: u64,
}

impl DispatcherStats {
    /// Total sheds across every cause.
    pub fn shed(&self) -> u64 {
        self.shed_rate_limit + self.shed_in_flight + self.shed_deadline
    }

    /// Fraction of served requests that hit a warm shell (0 when nothing
    /// was served).
    pub fn warm_hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.served as f64
        }
    }
}

/// The sharded, multi-tenant virtine dispatcher.
///
/// See the crate docs for the paper mapping. Construction wraps an owned
/// [`Wasp`]; virtine specs are registered through [`Dispatcher::register`]
/// so the dispatcher can segregate shells by guest-memory size exactly as
/// the internal pool does.
pub struct Dispatcher {
    wasp: Wasp,
    config: DispatcherConfig,
    shards: Vec<Shard>,
    tenants: Vec<TenantState>,
    mem_sizes: HashMap<VirtineId, usize>,
    seq: u64,
    last_arrival: u64,
    completions: Vec<Completion>,
    stats: DispatcherStats,
}

impl Dispatcher {
    /// Builds a dispatcher over an owned runtime.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count, zero batch size, or zero tick.
    pub fn new(wasp: Wasp, config: DispatcherConfig) -> Dispatcher {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.batch_size >= 1, "need a positive batch size");
        assert!(config.tick.get() >= 1, "need a positive tick");
        let shards = (0..config.shards)
            .map(|_| {
                Shard::new(
                    Pool::new(config.pool_mode, wasp::LOAD_ADDR)
                        .with_warm_capacity(config.warm_capacity),
                )
            })
            .collect();
        Dispatcher {
            wasp,
            config,
            shards,
            tenants: Vec::new(),
            mem_sizes: HashMap::new(),
            seq: 0,
            last_arrival: 0,
            completions: Vec::new(),
            stats: DispatcherStats::default(),
        }
    }

    /// The underlying runtime (clock, kernel, runtime stats).
    pub fn wasp(&self) -> &Wasp {
        &self.wasp
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> Clock {
        self.wasp.clock()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DispatcherConfig {
        &self.config
    }

    /// Registers a virtine spec through the dispatcher.
    pub fn register(&mut self, spec: VirtineSpec) -> Result<VirtineId, WaspError> {
        let mem_size = spec.mem_size;
        let id = self.wasp.register(spec)?;
        self.mem_sizes.insert(id, mem_size);
        Ok(id)
    }

    /// Registers a tenant.
    pub fn add_tenant(&mut self, profile: TenantProfile) -> TenantId {
        self.tenants.push(TenantState::new(profile));
        TenantId(self.tenants.len() - 1)
    }

    /// Pre-populates every shard's pool with `per_shard` clean shells of
    /// `mem_size` bytes (warm-up before a burst, §5.2).
    pub fn prewarm(&mut self, mem_size: usize, per_shard: usize) {
        for shard in &mut self.shards {
            shard
                .pool
                .prewarm(self.wasp.hypervisor(), mem_size, per_shard);
        }
    }

    /// Offers one request. Returns its sequence number when admitted, or
    /// the [`ShedReason`] when refused at admission (rate limit or
    /// in-flight cap; [`ShedReason::DeadlineMissed`] never comes from
    /// `submit` — deadlines are checked in-queue and surface in
    /// [`TenantStats::shed_deadline`]). Arrivals must be non-decreasing;
    /// earlier timestamps are clamped forward.
    ///
    /// Submission also advances the dispatcher: any shard batch scheduled
    /// before this arrival runs first, so admission sees up-to-date
    /// in-flight counts and the simulation stays online.
    ///
    /// # Panics
    ///
    /// Panics on a tenant or virtine the dispatcher never issued — both
    /// are programming errors, caught here rather than mid-drain.
    pub fn submit(&mut self, req: Request) -> Result<u64, ShedReason> {
        assert!(
            self.mem_sizes.contains_key(&req.virtine),
            "virtine not registered via Dispatcher::register"
        );
        let arrival = cyc(req.arrival_s).max(self.last_arrival);
        self.last_arrival = arrival;
        self.advance_to(arrival);

        let clock = self.wasp.clock();
        clock.tick(costs::VSCHED_ADMISSION);

        self.stats.submitted += 1;
        let tenant = self
            .tenants
            .get_mut(req.tenant.0)
            .expect("unknown tenant id");
        tenant.stats.submitted += 1;

        // Cap before bucket: a request refused at the in-flight cap must
        // not burn rate-limit tokens the tenant could use once a slot
        // frees up.
        if tenant.stats.in_flight >= tenant.profile.max_in_flight as u64 {
            tenant.stats.shed_in_flight += 1;
            self.stats.shed_in_flight += 1;
            return Err(ShedReason::InFlightCap);
        }
        if !tenant.bucket.admit(Cycles(arrival)) {
            tenant.stats.shed_rate_limit += 1;
            self.stats.shed_rate_limit += 1;
            return Err(ShedReason::RateLimited);
        }
        tenant.stats.admitted += 1;
        tenant.stats.in_flight += 1;
        self.stats.admitted += 1;

        let seq = self.seq;
        self.seq += 1;
        let priority = tenant.profile.priority.saturating_add(req.priority_boost);
        let deadline = req.deadline_s.map_or(u64::MAX, cyc);
        let shard = self.place(req.tenant, req.virtine);
        clock.tick(costs::VSCHED_QUEUE_OP);
        self.shards[shard].enqueue(
            Queued {
                priority,
                deadline,
                seq,
                tenant: req.tenant,
                virtine: req.virtine,
                args: req.args,
                invocation: req.invocation,
                arrival,
            },
            self.config.tick.get(),
        );
        Ok(seq)
    }

    /// Runs every queued request to completion.
    pub fn drain(&mut self) {
        self.advance_to(u64::MAX);
    }

    /// Completions so far, in execution order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Removes and returns the accumulated completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DispatcherStats {
        self.stats
    }

    /// One tenant's statistics.
    pub fn tenant_stats(&self, id: TenantId) -> TenantStats {
        self.tenants[id.0].stats
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Handles of every registered tenant, in registration order (stats
    /// surfaces iterate these).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        (0..self.tenants.len()).map(TenantId).collect()
    }

    /// One tenant's diagnostic name (stats surfaces label by it).
    pub fn tenant_name(&self, id: TenantId) -> &str {
        &self.tenants[id.0].profile.name
    }

    /// Read-only per-shard views (queue depth, idle shells, counters).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards.iter().map(Shard::snapshot).collect()
    }

    /// Shell-pool statistics summed across shards. Shard-local reuse
    /// shows up in `reused`; cross-shard steals are counted in
    /// [`DispatcherStats::stolen`] (and per shard in [`ShardStats`]),
    /// not in any single pool's numbers.
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            let p = s.pool.stats();
            total.created += p.created;
            total.reused += p.reused;
            total.released += p.released;
            total.warm_acquired += p.warm_acquired;
            total.warm_parked += p.warm_parked;
            total.warm_demoted += p.warm_demoted;
        }
        total
    }

    /// Picks the shard a request queues on.
    fn place(&self, tenant: TenantId, virtine: VirtineId) -> usize {
        let least = || {
            self.shards
                .iter()
                .enumerate()
                .min_by_key(|(i, s)| (s.queue.len(), s.free_at, *i))
                .map(|(i, _)| i)
                .expect("at least one shard")
        };
        match self.config.placement {
            Placement::ByTenant => tenant.0 % self.shards.len(),
            Placement::LeastLoaded => least(),
            Placement::SnapshotAware => {
                let fallback = least();
                self.shards
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.pool.has_warm(tenant.0 as u64, virtine.into_raw()))
                    .min_by_key(|(i, s)| (s.queue.len(), s.free_at, *i))
                    .filter(|(_, s)| {
                        // Don't trade µs of restore for ms of queueing: the
                        // warm shard must not be more than one batch behind
                        // the least-loaded alternative.
                        s.queue.len() <= self.shards[fallback].queue.len() + self.config.batch_size
                    })
                    .map_or(fallback, |(i, _)| i)
            }
        }
    }

    /// Runs shard batches whose tick lands strictly before `limit`.
    fn advance_to(&mut self, limit: u64) {
        loop {
            let next = self
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.queue.is_empty())
                .min_by_key(|(i, s)| (s.next_wake, *i))
                .map(|(i, s)| (i, s.next_wake));
            match next {
                Some((idx, wake)) if wake < limit => self.run_batch(idx),
                _ => break,
            }
        }
    }

    /// Executes one batch tick on shard `idx`.
    fn run_batch(&mut self, idx: usize) {
        let tick = self.config.tick.get();
        let t_batch = self.shards[idx].next_wake;
        let mut free = self.shards[idx].free_at.max(t_batch);
        self.stats.batches += 1;
        self.shards[idx].stats.batches += 1;
        let clock = self.wasp.clock();

        for _ in 0..self.config.batch_size {
            let Some(q) = self.shards[idx].queue.pop() else {
                break;
            };
            clock.tick(costs::VSCHED_QUEUE_OP);
            if q.deadline < free {
                // Too late to start: shed in-queue (the request's deadline
                // passed while it waited).
                let t = &mut self.tenants[q.tenant.0].stats;
                t.shed_deadline += 1;
                t.in_flight -= 1;
                self.stats.shed_deadline += 1;
                continue;
            }
            free = self.execute(idx, q, free);
        }

        let shard = &mut self.shards[idx];
        shard.free_at = free;
        shard.next_wake = if shard.queue.is_empty() {
            u64::MAX
        } else {
            align_up(free.max(t_batch + tick), tick)
        };
    }

    /// Runs one request on shard `idx`, starting no earlier than `free`;
    /// returns the shard worker's new timeline position.
    fn execute(&mut self, idx: usize, q: Queued, free: u64) -> u64 {
        let mem_size = *self
            .mem_sizes
            .get(&q.virtine)
            .expect("virtine registered via Dispatcher::register");
        let clock = self.wasp.clock();
        // Service spans acquire → run → release: a pool miss's
        // `KVM_CREATE_VM` occupies the shard worker like any other cost.
        let t0 = clock.now();

        // Acquire, cheapest sound mechanism first:
        //   1. shard-local warm shell for this exact (tenant, virtine) —
        //      delta re-arm;
        //   2. shard-local clean shell;
        //   3. steal a *clean* shell from a sibling (stealing prefers
        //      clean shells: a sibling's warm shell is its fast path, so
        //      demoting one is the last resort before KVM_CREATE_VM);
        //   4. demote a local warm shell of another key (full wipe);
        //   5. demote-and-steal a sibling's warm shell (full wipe);
        //   6. KVM_CREATE_VM.
        let key = (q.tenant.0 as u64, q.virtine.into_raw());
        let mut stolen = false;
        let (vm, source) = if let Some((vm, snap)) =
            self.shards[idx]
                .pool
                .acquire_warm(self.wasp.hypervisor(), key.0, key.1, mem_size)
        {
            (vm, ShellSource::Warm(snap))
        } else if self.shards[idx].pool.idle_shells_of(mem_size) > 0 {
            // Guaranteed hit: `acquire` pops the parked shell, counts the
            // reuse in this shard's own stats, and charges bookkeeping.
            let (vm, hit) = self.shards[idx]
                .pool
                .acquire(self.wasp.hypervisor(), mem_size);
            debug_assert!(hit);
            (vm, ShellSource::Clean)
        } else if let Some((donor, vm)) = self.steal_from_sibling(idx, mem_size) {
            clock.tick(costs::VSCHED_STEAL_TRANSFER);
            self.shards[idx].stats.stolen_in += 1;
            self.shards[donor].stats.stolen_out += 1;
            self.stats.stolen += 1;
            stolen = true;
            (vm, ShellSource::Clean)
        } else if let Some(vm) = self.shards[idx].pool.take_warm_victim(mem_size) {
            self.stats.warm_demotions += 1;
            (vm, ShellSource::Clean)
        } else if let Some((donor, vm)) = self.steal_warm_victim(idx, mem_size) {
            clock.tick(costs::VSCHED_STEAL_TRANSFER);
            self.shards[idx].stats.stolen_in += 1;
            self.shards[donor].stats.stolen_out += 1;
            self.stats.stolen += 1;
            self.stats.warm_demotions += 1;
            stolen = true;
            (vm, ShellSource::Clean)
        } else {
            let (vm, _) = self.shards[idx]
                .pool
                .acquire(self.wasp.hypervisor(), mem_size);
            (vm, ShellSource::Created)
        };
        let reused = source.is_reused();

        let mask = self.tenants[q.tenant.0].profile.mask;
        let (outcome, vm) = self
            .wasp
            .run_on_shell(
                vm,
                source,
                q.virtine,
                &q.args,
                q.invocation,
                mask,
                &mut |_, _, _, _| None,
            )
            .expect("dispatch invariants uphold spec and shell size");
        // Release: park warm (state still derives from the spec's current
        // snapshot, dirty log intact) or wipe clean.
        match outcome.warm_state.clone() {
            Some(snap) => self.shards[idx].pool.release_warm(vm, key.0, key.1, snap),
            None => self.shards[idx].pool.release(vm),
        }
        let service = (clock.now() - t0).get();
        let warm_hit = outcome.breakdown.warm_hit;

        let start = free;
        let finish = start + service;
        let tstats = &mut self.tenants[q.tenant.0].stats;
        tstats.served += 1;
        tstats.in_flight -= 1;
        if stolen {
            tstats.stolen_serves += 1;
        }
        if warm_hit {
            // Counted from the outcome, not the acquire: a stale warm
            // shell (snapshot invalidated while parked) is wiped by the
            // runtime and serves a full restore, which is not a hit.
            tstats.warm_serves += 1;
            self.stats.warm_hits += 1;
            self.shards[idx].stats.warm_hits += 1;
        }
        if !outcome.exit.is_normal() {
            tstats.abnormal += 1;
        }
        self.stats.served += 1;
        self.shards[idx].stats.served += 1;
        self.completions.push(Completion {
            tenant: q.tenant,
            virtine: q.virtine,
            shard: idx,
            arrival: secs(q.arrival),
            start: secs(start),
            finish: secs(finish),
            service: secs(service),
            reused_shell: reused,
            stolen_shell: stolen,
            warm_hit,
            exit_normal: outcome.exit.is_normal(),
            result: outcome.invocation.result,
        });
        finish
    }

    /// Steals a clean shell from the sibling with the most idle shells of
    /// the right size. Shells were wiped on release (§5.2), so the thief
    /// runs them directly — tenant data cannot cross shards.
    fn steal_from_sibling(&mut self, idx: usize, mem_size: usize) -> Option<(usize, kvmsim::VmFd)> {
        if !self.config.steal {
            return None;
        }
        let donor = self
            .shards
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != idx && s.pool.idle_shells_of(mem_size) > 0)
            .max_by_key(|(i, s)| (s.pool.idle_shells_of(mem_size), usize::MAX - *i))?
            .0;
        let vm = self.shards[donor].pool.take_idle(mem_size)?;
        Some((donor, vm))
    }

    /// Demotes and steals a warm shell from the sibling with the most warm
    /// shells of the right size — the last resort before `KVM_CREATE_VM`.
    /// The donor's pool performs the full (charged) wipe before the shell
    /// crosses shards, so no tenant data travels with it.
    fn steal_warm_victim(&mut self, idx: usize, mem_size: usize) -> Option<(usize, kvmsim::VmFd)> {
        if !self.config.steal {
            return None;
        }
        let donor = self
            .shards
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != idx && s.pool.warm_shells_of(mem_size) > 0)
            .max_by_key(|(i, s)| (s.pool.warm_shells_of(mem_size), usize::MAX - *i))?
            .0;
        let vm = self.shards[donor].pool.take_warm_victim(mem_size)?;
        Some((donor, vm))
    }
}

/// Virtual seconds → cycles.
fn cyc(s: f64) -> u64 {
    Cycles::from_micros(s * 1e6).get()
}

/// Cycles → virtual seconds.
fn secs(c: u64) -> f64 {
    Cycles(c).as_secs()
}
