//! The dispatcher: admission, batched shard ticks, and event-driven
//! suspension of runs blocked in `recv` — with every placement, steal,
//! and migration *decision* delegated to the [`PlacementEngine`].
//!
//! This file owns the mechanisms (queues, pools, transfers, accounting);
//! the scoring that picks a shard at the four routing decision points
//! lives in [`crate::placement`] (see its decision-point diagram) over
//! the shard [`Topology`] of [`crate::topology`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use vclock::rng::Rng;
use vclock::stats::Histogram;
use vclock::{costs, Clock, Cycles};
use vtrace::slo::{Severity, SloEngine};
use vtrace::TraceCollector;
use wasp::{
    Invocation, Pool, PoolMode, PoolStats, RunOutcome, RunResult, ShellSource, VirtineId,
    VirtineSpec, WaitTarget, Wasp, WaspError,
};

use crate::health::{
    BrownoutConfig, BrownoutController, HealthAction, HealthConfig, HealthDetector, HealthStats,
    ShardHealth,
};
use crate::lifecycle::{FaultKind, FaultPlan, LifecycleAction, ShardState};
use crate::placement::{Candidate, CostEngine, PlacementEngine, WarmPolicy, WarmVerdict};
use crate::shard::{align_up, Parked, Queued, Shard, ShardSnapshot};
use crate::tenant::{HedgePolicy, ShedReason, TenantId, TenantProfile, TenantState, TenantStats};
use crate::topology::{Hop, Topology};

/// What a shard worker does when its virtine blocks in `recv` with no data
/// queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockMode {
    /// Event-driven dispatch: the run suspends (`wasp::SuspendedRun`),
    /// parks in the shard's blocked set — skipped by batch ticks, shell
    /// unstealable and undemotable because it rides inside the suspension
    /// — and gives the worker back. A socket wake re-queues it at the
    /// *front* of the run queue.
    #[default]
    EventDriven,
    /// The pre-suspension baseline: the worker spin-polls the socket until
    /// data arrives. The whole wait lands on the worker timeline (and in
    /// `busy_wait_cycles`), so one slow client occupies a shard. Kept as
    /// the measurable baseline for the `blocked_io` bench.
    SpinPoll,
}

/// Where an admitted request is queued. These are *configurations* of
/// the [`CostEngine`] (match arms live there, not in the dispatcher);
/// a fully custom policy plugs in through [`Dispatcher::set_engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Least-loaded shard (queue depth, then worker timeline, then index):
    /// spreads independent requests for throughput.
    #[default]
    LeastLoaded,
    /// `tenant index mod shards`: pins each tenant to one home shard, so a
    /// tenant's requests share warm state and its queue pressure stays
    /// local.
    ByTenant,
    /// Snapshot-aware: route to the shard whose pool already parks a warm
    /// shell for this request's `(tenant, virtine)` — turning placement
    /// into a cache-hit decision, since the warm shard serves the request
    /// with a dirty-page delta re-arm instead of a full sparse restore.
    /// Falls back to least-loaded when no shard is warm for the key, or
    /// when the warm shard's queue has fallen `batch_size` behind the
    /// least-loaded one (a warm hit saves microseconds; it must not buy
    /// them with milliseconds of queueing skew).
    SnapshotAware,
}

/// Dispatcher configuration.
#[derive(Debug, Clone)]
pub struct DispatcherConfig {
    /// Number of shards (per-worker pools + queues). Throughput scales
    /// with shards until the offered load is covered.
    pub shards: usize,
    /// Maximum requests a shard executes per batch tick.
    pub batch_size: usize,
    /// Batch tick period in virtual time. Requests admitted mid-tick wait
    /// for the boundary; larger ticks trade latency for batching.
    pub tick: Cycles,
    /// Shell-pool mode for every shard (§5.2; `CachedAsync` is the
    /// paper's best configuration).
    pub pool_mode: PoolMode,
    /// Whether a dry shard may steal clean shells from siblings (and, as a
    /// last resort before `KVM_CREATE_VM`, demote-and-steal a sibling's
    /// warm shell).
    pub steal: bool,
    /// Queue-placement policy.
    pub placement: Placement,
    /// Bound on warm shells resident per shard pool; zero disables warm
    /// caching (the pre-warm-cache dispatcher behavior).
    pub warm_capacity: usize,
    /// Blocked-I/O policy: suspend and give the worker back (default) or
    /// spin-poll the socket on the worker.
    pub block: BlockMode,
    /// Whether a woken parked run is re-admitted through placement (the
    /// least-loaded shard, home on ties) instead of pinning to the shard
    /// it blocked on. The suspended shell rides inside the run, so the
    /// move is as isolation-safe as a shell steal — and a saturated home
    /// shard cannot hold a runnable virtine hostage. Forced off under
    /// [`BlockMode::SpinPoll`], where the blocking worker *is* the wait.
    pub migrate_on_resume: bool,
    /// The socket/CCX grouping of the shards; `None` puts every shard in
    /// one CCX ([`Topology::flat`]), which reproduces the pre-topology
    /// dispatcher exactly (every cross-shard hop costs the historical
    /// flat transfer). A grouped topology makes steals and resume-time
    /// migrations prefer near siblings and pay per-hop transfer costs.
    pub topology: Option<Topology>,
    /// Global cross-shard bound on resident warm shells. `None` leaves
    /// warm sizing to the fixed per-pool LRU bound (`warm_capacity`);
    /// `Some(b)` lets any one shard hold up to the whole budget (pools
    /// are opened to `b`) while the engine keeps the cross-shard total at
    /// `b` by demoting the globally least-recently-parked shell.
    pub warm_budget: Option<usize>,
    /// Cross-shard bound on warm shells per *tenant*: at quota, a
    /// tenant's next warm park demotes its own least-recently-parked
    /// shell — a churning tenant evicts itself, never a neighbor.
    pub warm_tenant_quota: Option<usize>,
    /// Default grace period for parked runs stranded on a *draining*
    /// shard (no eligible sibling to migrate to, or a spin-poll wait
    /// that pins its worker): past it the run is hard-stopped and shed
    /// with [`ShedReason::Evicted`]. Measured from the later of the
    /// drain start and the park; overridden per tenant by
    /// [`TenantProfile::drain_grace`].
    pub drain_grace: Cycles,
}

impl Default for DispatcherConfig {
    fn default() -> DispatcherConfig {
        DispatcherConfig {
            shards: 4,
            batch_size: 8,
            tick: Cycles::from_micros(50.0),
            pool_mode: PoolMode::CachedAsync,
            steal: true,
            placement: Placement::LeastLoaded,
            warm_capacity: wasp::DEFAULT_WARM_CAPACITY,
            block: BlockMode::EventDriven,
            migrate_on_resume: true,
            topology: None,
            warm_budget: None,
            warm_tenant_quota: None,
            drain_grace: Cycles::from_micros(500.0),
        }
    }
}

/// One request offered to the dispatcher.
#[derive(Debug)]
pub struct Request {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Registered virtine to run.
    pub virtine: VirtineId,
    /// Marshalled arguments (written at guest address 0, §6.1).
    pub args: Vec<u8>,
    /// Invocation state (payload, bound connection, ...).
    pub invocation: Invocation,
    /// Arrival time in virtual seconds; must be non-decreasing across
    /// `submit` calls.
    pub arrival_s: f64,
    /// Added to the tenant's base priority for this request.
    pub priority_boost: u8,
    /// Optional absolute deadline (virtual seconds): requests still queued
    /// past it are shed, not run.
    pub deadline_s: Option<f64>,
}

impl Request {
    /// A plain request: no payload, no boost, no deadline.
    pub fn new(tenant: TenantId, virtine: VirtineId, arrival_s: f64) -> Request {
        Request {
            tenant,
            virtine,
            args: Vec::new(),
            invocation: Invocation::default(),
            arrival_s,
            priority_boost: 0,
            deadline_s: None,
        }
    }

    /// Attaches an invocation (builder style).
    pub fn with_invocation(mut self, invocation: Invocation) -> Request {
        self.invocation = invocation;
        self
    }

    /// Attaches marshalled arguments (builder style).
    pub fn with_args(mut self, args: Vec<u8>) -> Request {
        self.args = args;
        self
    }

    /// Sets a deadline (builder style).
    pub fn with_deadline(mut self, deadline_s: f64) -> Request {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Boosts priority (builder style).
    pub fn with_boost(mut self, boost: u8) -> Request {
        self.priority_boost = boost;
        self
    }
}

/// One executed request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Virtine that ran.
    pub virtine: VirtineId,
    /// The *logical* request's sequence number (the value `submit`
    /// returned). Exactly one completion carries each admitted sequence
    /// number, whatever path served it — a retry re-submission or the
    /// winner of a hedge race reports the original's number, and losing
    /// hedge copies are suppressed — so a duplicate here means the
    /// exactly-once machinery double-ran a request.
    pub seq: u64,
    /// Shard that executed the request.
    pub shard: usize,
    /// Arrival time (virtual seconds).
    pub arrival: f64,
    /// Execution start on the shard's worker timeline.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Pure service time (start → finish).
    pub service: f64,
    /// Whether the shell came from a pool (clean, warm, or stolen) rather
    /// than a fresh `KVM_CREATE_VM`.
    pub reused_shell: bool,
    /// Whether the shell was stolen from a sibling shard.
    pub stolen_shell: bool,
    /// Whether the request was served by a warm shell re-armed with its
    /// dirty-page delta (the snapshot-aware fast path).
    pub warm_hit: bool,
    /// Whether the virtine ended by normal means (`hlt`/`exit`).
    pub exit_normal: bool,
    /// Times the request blocked in a wait (`recv` or a channel end) and
    /// was resumed before completing (zero for a request that never
    /// waited).
    pub resumes: u32,
    /// Whether any resume migrated the run off the shard it blocked on
    /// (the completion's `shard` is then the landing shard).
    pub migrated: bool,
    /// Guest cycles the run charged (`Breakdown::total`: image + exec,
    /// parked time excluded) — the figure the byte-identical-cycles
    /// acceptance compares across parked/unparked and migrated/pinned
    /// executions of the same virtine.
    pub exec_cycles: u64,
    /// Result bytes the virtine returned (`return_data`).
    pub result: Vec<u8>,
}

impl Completion {
    /// End-to-end latency: queueing plus service.
    pub fn latency(&self) -> f64 {
        self.finish - self.arrival
    }
}

/// Aggregate dispatcher statistics, surfaced like `wasp::PoolStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatcherStats {
    /// Requests offered across all tenants.
    pub submitted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests executed.
    pub served: u64,
    /// Requests shed at the token bucket.
    pub shed_rate_limit: u64,
    /// Requests shed at the in-flight cap.
    pub shed_in_flight: u64,
    /// Requests shed in-queue at their deadline.
    pub shed_deadline: u64,
    /// Requests shed at admission: the target shard's backlog already made
    /// the deadline unmeetable.
    pub shed_deadline_unmeetable: u64,
    /// Requests shed because the payload exceeded the tenant's byte
    /// budget.
    pub shed_byte_budget: u64,
    /// Admitted runs hard-stopped by shard lifecycle
    /// ([`ShedReason::Evicted`]): the sum of the two cause counters
    /// below, kept separately so `shed()` stays a sum of disjoint
    /// reasons.
    pub shed_evicted: u64,
    /// Evictions caused by a drain grace expiry
    /// ([`TenantProfile::drain_grace`]).
    pub evicted_grace: u64,
    /// Evictions caused by shard failure (fault injection or operator
    /// [`Dispatcher::fail_shard`]).
    pub evicted_failed: u64,
    /// Shells stolen between shards.
    pub stolen: u64,
    /// Steals whose donor shared the thief's CCX (one L3 away — the hop
    /// a topology-aware policy resolves first).
    pub stolen_same_ccx: u64,
    /// Steals whose donor sat on the thief's socket but a different CCX.
    pub stolen_cross_ccx: u64,
    /// Steals that crossed the socket interconnect — the last resort
    /// before `KVM_CREATE_VM`.
    pub stolen_cross_socket: u64,
    /// Batch ticks executed.
    pub batches: u64,
    /// Runs suspended at a blocking `recv` (block events; one request can
    /// block several times).
    pub blocked: u64,
    /// Parked runs re-queued by a socket wake.
    pub resumed: u64,
    /// Parked runs killed at their tenant's `max_block` bound.
    pub blocked_timeout: u64,
    /// Woken parked runs re-admitted on a different shard than the one
    /// they blocked on (resume-time migration).
    pub migrations: u64,
    /// Worker cycles burned waiting on blocked I/O. Event-driven dispatch
    /// keeps this at zero; the spin-poll baseline charges every parked
    /// wait here.
    pub busy_wait_cycles: u64,
    /// Requests served by a warm-shell delta re-arm.
    pub warm_hits: u64,
    /// Warm shells demoted (wiped to clean) on the acquire path — locally
    /// for a different key, or stolen from a sibling. Pool-internal LRU
    /// evictions are counted in [`wasp::PoolStats::warm_demoted`] instead.
    pub warm_demotions: u64,
    /// Virtual cycles served requests spent parked in waits
    /// (`Breakdown::blocked`, summed over completions and kills). The
    /// event-driven counterpart of `busy_wait_cycles`: time the request
    /// waited while the worker was *free* — exported as
    /// `vsched_blocked_cycles_total`.
    pub blocked_cycles: u64,
    /// Requests shed at the door by the overload brownout controller
    /// ([`ShedReason::Brownout`]): their priority sat below the active
    /// degradation level's floor.
    pub shed_brownout: u64,
    /// Retries scheduled for requests that lost their *queued* copy to a
    /// shard failure (exported as `vsched_retries_total{cause=
    /// "shard_failed_queued"}`).
    pub retries_queued: u64,
    /// Retries scheduled for requests whose *parked* (suspended) run died
    /// with its shard (`cause="shard_failed_parked"`).
    pub retries_parked: u64,
    /// Requests currently between losing their last live copy and their
    /// retry's backoff release — the `retried_in_flight` term of the
    /// extended conservation identity `admitted == served + shed +
    /// retried_in_flight`.
    pub retried_in_flight: u64,
    /// Hedges armed at submit (a fire instant was scheduled; most never
    /// fire because the primary finishes first).
    pub hedges_armed: u64,
    /// Hedge duplicates actually enqueued (`vsched_hedges_total{outcome=
    /// "fired"}`).
    pub hedges_fired: u64,
    /// Hedge races won by the *duplicate* (`outcome="won"`).
    pub hedges_won: u64,
    /// Copies suppressed after the race was decided — popped, parked, or
    /// completing after a sibling copy already reached the terminal
    /// outcome (`outcome="canceled"`).
    pub hedges_canceled: u64,
}

impl DispatcherStats {
    /// Total sheds across every cause.
    pub fn shed(&self) -> u64 {
        self.shed_rate_limit
            + self.shed_in_flight
            + self.shed_deadline
            + self.shed_deadline_unmeetable
            + self.shed_byte_budget
            + self.shed_evicted
            + self.shed_brownout
    }

    /// Fraction of served requests that hit a warm shell (0 when nothing
    /// was served).
    pub fn warm_hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.warm_hits as f64 / self.served as f64
        }
    }
}

/// Why a parked run is being evicted (the `reason` label of the
/// `vsched_evictions_total` series and the `drain_evict` span detail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailCause {
    /// Its drain grace expired while it sat unmigratable on a draining
    /// shard.
    GraceExpired,
    /// The shard it was parked on failed; the suspension died with it.
    ShardFailed,
}

impl FailCause {
    fn label(self) -> &'static str {
        match self {
            FailCause::GraceExpired => "grace_expired",
            FailCause::ShardFailed => "shard_failed",
        }
    }
}

/// Which copy of a request a shard failure destroyed — the `cause` label
/// of `vsched_retries_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RetryCause {
    /// A fresh queued entry with no eligible evacuation sibling.
    Queued,
    /// A parked (suspended) run whose hardware state died with the shard.
    Parked,
}

/// What became of a copy destroyed by a shard failure, deadline, or
/// cancellation (see [`Dispatcher::lose_copy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyLoss {
    /// Another copy of the logical request is still live (or already won);
    /// the caller must neither shed nor record anything terminal.
    Suppressed,
    /// An exactly-once retry was scheduled; the caller must not shed.
    Retried,
    /// This was the last copy and no retry applies: the caller's terminal
    /// accounting (shed) proceeds as if retry/hedging did not exist.
    Terminal,
}

/// What became of a copy that finished executing (see
/// [`Dispatcher::finish_copy`]).
enum CopyFinish {
    /// First terminal outcome for the logical request: count it, recording
    /// the completion under the logical sequence number.
    Won { logical: u64 },
    /// The race was already decided: suppress all accounting.
    Loser,
}

/// Submit-time state retained for a request whose tenant opted into
/// retries or hedging — everything needed to re-run it from scratch.
/// Entries exist only while the request is unresolved, so the map stays
/// proportional to in-flight work.
struct OpenReq {
    tenant: TenantId,
    virtine: VirtineId,
    /// Effective priority at admission (base plus boost).
    priority: u8,
    /// Absolute deadline in cycles (`u64::MAX` when none); re-submissions
    /// keep the original deadline — a retry is the same promise, not a
    /// fresh one.
    deadline: u64,
    /// Original arrival in cycles; latency spans every attempt.
    arrival: u64,
    /// Pristine marshalled arguments for a re-submission.
    args: Vec<u8>,
    /// Pristine invocation inputs ([`Invocation::respawn`] of the
    /// original) — cloned again for each re-submission.
    invocation: Invocation,
    /// Attempts consumed so far (0 = only the first run).
    attempt: u32,
    /// Live copies: queued, parked, or executing (a pending retry is not
    /// a live copy — it is counted by `pending_retry`).
    copies: u32,
    /// A terminal outcome (completion, kill, or shed) has been recorded;
    /// every later copy event is suppressed.
    done: bool,
    /// A retry sits in the backoff heap awaiting release.
    pending_retry: bool,
}

/// Metadata threaded from a request's first execution segment to its
/// completion record (possibly across blocked segments).
struct ServeMeta {
    tenant: TenantId,
    virtine: VirtineId,
    /// Dispatcher sequence number, keying the invocation's open trace.
    seq: u64,
    /// Original arrival in cycles — latency spans any parked waits.
    arrival: u64,
    /// Worker-timeline position of the first segment's start.
    first_start: u64,
    /// Worker cycles consumed by earlier segments (zero when unblocked).
    service_before: u64,
    stolen: bool,
    reused: bool,
    /// Whether any resume migrated the run off its blocking shard.
    migrated: bool,
}

/// The sharded, multi-tenant virtine dispatcher.
///
/// See the crate docs for the paper mapping. Construction wraps an owned
/// [`Wasp`]; virtine specs are registered through [`Dispatcher::register`]
/// so the dispatcher can segregate shells by guest-memory size exactly as
/// the internal pool does.
pub struct Dispatcher {
    wasp: Wasp,
    config: DispatcherConfig,
    shards: Vec<Shard>,
    tenants: Vec<TenantState>,
    mem_sizes: HashMap<VirtineId, usize>,
    seq: u64,
    last_arrival: u64,
    completions: Vec<Completion>,
    stats: DispatcherStats,
    /// Next wait token handed to `hostsim`'s readiness machinery.
    next_token: u64,
    /// Wait token → shard index of the parked run it wakes.
    parked_shard: HashMap<u64, usize>,
    /// EMA of recent per-request worker cost (cycles), feeding the
    /// deadline-unmeetable admission estimate. Zero until the first serve.
    avg_service: u64,
    /// The socket/CCX grouping the engine prices hops against.
    topology: Topology,
    /// The policy layer behind every routing decision (see
    /// `crate::placement`'s decision-point diagram).
    engine: Box<dyn PlacementEngine>,
    /// Shared park-order counter threaded through every warm park, so
    /// LRU comparisons are meaningful *across* shard pools.
    warm_stamp: u64,
    /// Per-invocation span recorder (disabled — and free — by default;
    /// see [`Dispatcher::enable_tracing`]).
    trace: TraceCollector,
    /// Declared objectives evaluated at every terminal event
    /// (completion, kill, shed); `None` until [`Dispatcher::set_slo`].
    slo: Option<SloEngine>,
    /// Scheduled deterministic faults, applied as virtual time advances
    /// past each event's instant; `None` until
    /// [`Dispatcher::set_fault_plan`].
    fault_plan: Option<FaultPlan>,
    /// Heartbeat-driven failure detector; `None` (zero overhead, bit-
    /// identical runs) until [`Dispatcher::set_health`].
    health: Option<HealthDetector>,
    /// Overload brownout controller; `None` until
    /// [`Dispatcher::set_brownout`].
    brownout: Option<BrownoutController>,
    /// Submit-time state for requests whose tenant opted into retries or
    /// hedging, keyed by logical sequence number.
    open: HashMap<u64, OpenReq>,
    /// Hedge copy sequence number → logical sequence number.
    hedge_of: HashMap<u64, u64>,
    /// Pending retry releases: `(release_at, logical_seq)`, min-first.
    retry_heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Armed hedge fire instants: `(fire_at, logical_seq)`, min-first.
    /// Entries are lazily invalidated — a fire for a finished request is
    /// a no-op — so completion never searches the heap.
    hedge_heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Deterministic jitter source for retry backoff (detector probes use
    /// the detector's own stream, seeded from [`HealthConfig::seed`]).
    retry_rng: Rng,
    /// Queue-wait distribution (arrival → first execution start).
    hist_queue_wait: Histogram,
    /// Service-time distribution (worker cycles, parked waits excluded).
    hist_exec: Histogram,
    /// End-to-end latency distribution (arrival → finish) across all
    /// tenants; per-tenant series live in `TenantState::e2e`.
    hist_e2e: Histogram,
}

impl Dispatcher {
    /// Builds a dispatcher over an owned runtime.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count, zero batch size, zero tick, or a
    /// topology whose shard count disagrees with `config.shards`.
    pub fn new(wasp: Wasp, config: DispatcherConfig) -> Dispatcher {
        assert!(config.shards >= 1, "need at least one shard");
        assert!(config.batch_size >= 1, "need a positive batch size");
        assert!(config.tick.get() >= 1, "need a positive tick");
        let topology = config
            .topology
            .clone()
            .unwrap_or_else(|| Topology::flat(config.shards));
        assert_eq!(
            topology.shards(),
            config.shards,
            "topology shard count must match config.shards"
        );
        // Under a global warm budget the engine governs the cross-shard
        // total, so any one pool may hold up to the whole budget; the
        // fixed per-pool bound only binds when no budget is set.
        let pool_capacity = config.warm_budget.unwrap_or(config.warm_capacity);
        let warm_policy = WarmPolicy {
            global_budget: config.warm_budget,
            tenant_quota: config.warm_tenant_quota,
        };
        let engine = Box::new(CostEngine::new(
            config.placement,
            topology.clone(),
            config.batch_size,
            warm_policy,
        ));
        let shards = (0..config.shards)
            .map(|_| {
                Shard::new(
                    Pool::new(config.pool_mode, wasp::LOAD_ADDR).with_warm_capacity(pool_capacity),
                )
            })
            .collect();
        Dispatcher {
            wasp,
            config,
            shards,
            tenants: Vec::new(),
            mem_sizes: HashMap::new(),
            seq: 0,
            last_arrival: 0,
            completions: Vec::new(),
            stats: DispatcherStats::default(),
            next_token: 0,
            parked_shard: HashMap::new(),
            avg_service: 0,
            topology,
            engine,
            warm_stamp: 0,
            trace: TraceCollector::disabled(),
            slo: None,
            fault_plan: None,
            health: None,
            brownout: None,
            open: HashMap::new(),
            hedge_of: HashMap::new(),
            retry_heap: BinaryHeap::new(),
            hedge_heap: BinaryHeap::new(),
            retry_rng: Rng::seeded(0x7E57_4E72),
            hist_queue_wait: Histogram::new(),
            hist_exec: Histogram::new(),
            hist_e2e: Histogram::new(),
        }
    }

    /// Replaces the placement engine — the policy layer behind admit,
    /// steal, warm-capacity, and resume decisions — leaving every
    /// mechanism (queues, pools, wipes, accounting) untouched. The
    /// default is a [`CostEngine`] configured from the
    /// [`DispatcherConfig`]'s placement, topology, and warm policy.
    pub fn set_engine(&mut self, engine: Box<dyn PlacementEngine>) {
        self.engine = engine;
    }

    /// Enables invocation tracing, retaining the most recent `capacity`
    /// finished span trees (zero disables tracing again). When enabled,
    /// every recorded span charges `vclock::costs::VTRACE_SPAN` to the
    /// shared clock, so the tracing overhead is itself deterministic in
    /// virtual time; when disabled (the default) nothing is recorded,
    /// charged, or allocated, and runs are bit-identical to a build
    /// without tracing.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = TraceCollector::with_capacity(capacity);
    }

    /// The invocation trace collector (empty and inert unless
    /// [`Dispatcher::enable_tracing`] was called).
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// Dumps retained invocation traces as JSON lines, newest first —
    /// the payload behind `GET /trace`. `tenant` filters by tenant
    /// *name*; an unknown name yields no lines.
    pub fn trace_json_lines(&self, tenant: Option<&str>, limit: usize) -> String {
        let tenant_idx = tenant.map(|name| {
            self.tenants
                .iter()
                .position(|t| t.profile.name == name)
                .unwrap_or(usize::MAX)
        });
        let names: Vec<&str> = self
            .tenants
            .iter()
            .map(|t| t.profile.name.as_str())
            .collect();
        self.trace.json_lines(tenant_idx, limit, &|i| {
            names
                .get(i)
                .map_or_else(|| format!("tenant-{i}"), |n| n.to_string())
        })
    }

    /// Installs an SLO engine; every later completion, kill, and shed is
    /// observed against its objectives.
    pub fn set_slo(&mut self, engine: SloEngine) {
        self.slo = Some(engine);
    }

    /// The installed SLO engine, if any.
    pub fn slo(&self) -> Option<&SloEngine> {
        self.slo.as_ref()
    }

    /// Advances the SLO engine's sliding windows to the dispatcher's
    /// current arrival horizon without recording an event, so alerts can
    /// clear across quiet periods.
    pub fn slo_tick(&mut self) {
        let at = self.last_arrival;
        if let Some(slo) = &mut self.slo {
            slo.tick(Cycles(at));
        }
    }

    /// Installs the heartbeat-driven failure detector (see
    /// [`crate::health`]): batch ticks feed it liveness, and as virtual
    /// time advances it drives suspected shards through the *existing*
    /// `fail_shard` → reconcile → re-admit path and restores them via
    /// half-open probes. Without this call the detector does not exist —
    /// no state, no cycles, bit-identical runs.
    pub fn set_health(&mut self, config: HealthConfig) {
        self.health = Some(HealthDetector::new(config, self.config.shards));
    }

    /// The failure detector's counters, if one is installed.
    pub fn health_stats(&self) -> Option<HealthStats> {
        self.health.as_ref().map(HealthDetector::stats)
    }

    /// Per-shard detector state (suspicion, breaker, last heartbeat), in
    /// shard index order — the payload behind `GET /admin/health` and the
    /// `vsched_suspicion` gauge family. `None` when no detector is
    /// installed.
    pub fn shard_health(&self) -> Option<Vec<ShardHealth>> {
        self.health
            .as_ref()
            .map(|h| (0..self.config.shards).map(|i| h.shard_health(i)).collect())
    }

    /// Installs the overload brownout controller (see
    /// [`crate::health::BrownoutController`]): while the installed SLO
    /// engine reports any page-severity alert, admission steps down the
    /// configured degradation ladder, shedding the lowest priority tiers
    /// first, and recovers with hysteresis once the pager clears.
    /// Requires an SLO engine ([`Dispatcher::set_slo`]) to ever trigger.
    pub fn set_brownout(&mut self, config: BrownoutConfig) {
        self.brownout = Some(BrownoutController::new(config));
    }

    /// The brownout controller's current degradation level (0 = normal
    /// operation, and always 0 when no controller is installed) — the
    /// `vsched_brownout_level` gauge.
    pub fn brownout_level(&self) -> u64 {
        self.brownout.as_ref().map_or(0, |b| b.level() as u64)
    }

    /// Queue-wait distribution (cycles from arrival to first execution
    /// start) across all served requests.
    pub fn queue_wait_hist(&self) -> &Histogram {
        &self.hist_queue_wait
    }

    /// Service-time distribution (worker cycles; parked waits excluded).
    pub fn exec_hist(&self) -> &Histogram {
        &self.hist_exec
    }

    /// End-to-end latency distribution (arrival → finish) across all
    /// tenants.
    pub fn e2e_hist(&self) -> &Histogram {
        &self.hist_e2e
    }

    /// One tenant's end-to-end latency distribution.
    pub fn tenant_e2e_hist(&self, id: TenantId) -> &Histogram {
        &self.tenants[id.0].e2e
    }

    /// Reconfigures the cross-shard warm policy at runtime — the
    /// operator knob the SLO pipeline is proven against (slash the
    /// budget, watch the burn-rate alert fire; restore it, watch the
    /// alert clear). Updates the engine's capacity policy and demotes
    /// existing resident warm shells (globally least-recently-parked
    /// first) down to the new budget. Note that per-pool capacity fixed
    /// at construction still caps any single pool: raising the budget
    /// above the construction-time bound widens the policy but not the
    /// pools.
    pub fn set_warm_budget(&mut self, budget: Option<usize>, tenant_quota: Option<usize>) {
        self.config.warm_budget = budget;
        self.config.warm_tenant_quota = tenant_quota;
        self.engine.set_warm_policy(WarmPolicy {
            global_budget: budget,
            tenant_quota,
        });
        if let Some(b) = budget {
            while self.warm_resident() > b {
                self.demote_warm_lru(None);
            }
        }
    }

    /// The shard topology in effect (flat unless configured).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The underlying runtime (clock, kernel, runtime stats).
    pub fn wasp(&self) -> &Wasp {
        &self.wasp
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> Clock {
        self.wasp.clock()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DispatcherConfig {
        &self.config
    }

    /// Registers a virtine spec through the dispatcher.
    pub fn register(&mut self, spec: VirtineSpec) -> Result<VirtineId, WaspError> {
        let mem_size = spec.mem_size;
        let id = self.wasp.register(spec)?;
        self.mem_sizes.insert(id, mem_size);
        Ok(id)
    }

    /// Registers a tenant.
    pub fn add_tenant(&mut self, profile: TenantProfile) -> TenantId {
        self.tenants.push(TenantState::new(profile));
        TenantId(self.tenants.len() - 1)
    }

    /// Pre-populates every shard's pool with `per_shard` clean shells of
    /// `mem_size` bytes (warm-up before a burst, §5.2).
    pub fn prewarm(&mut self, mem_size: usize, per_shard: usize) {
        for shard in &mut self.shards {
            shard
                .pool
                .prewarm(self.wasp.hypervisor(), mem_size, per_shard);
        }
    }

    /// Pre-populates a single shard's pool — skewed warm-ups for
    /// topology experiments (e.g. supply only one socket and watch where
    /// the other's steals land).
    ///
    /// # Panics
    ///
    /// Panics on a shard index out of range.
    pub fn prewarm_shard(&mut self, shard: usize, mem_size: usize, count: usize) {
        self.shards[shard]
            .pool
            .prewarm(self.wasp.hypervisor(), mem_size, count);
    }

    /// Warm shells a tenant has resident across every shard pool (the
    /// quantity [`DispatcherConfig::warm_tenant_quota`] bounds).
    pub fn warm_resident_of(&self, tenant: TenantId) -> usize {
        self.shards
            .iter()
            .map(|s| s.pool.warm_shells_of_tenant(tenant.0 as u64))
            .sum()
    }

    /// Warm shells resident across every shard pool (the quantity
    /// [`DispatcherConfig::warm_budget`] bounds).
    pub fn warm_resident(&self) -> usize {
        self.shards.iter().map(|s| s.pool.warm_shells()).sum()
    }

    /// Demotes the least-recently-parked warm shell across every shard
    /// pool (optionally restricted to one tenant) — the enforcement arm
    /// of the cross-shard warm budget and per-tenant quotas. The wipe is
    /// performed by the owning pool and counted in its
    /// [`wasp::PoolStats::warm_demoted`], like any LRU eviction.
    fn demote_warm_lru(&mut self, tenant: Option<u64>) {
        let oldest = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.pool.oldest_warm_stamp(tenant).map(|stamp| (stamp, i)))
            .min();
        if let Some((_, i)) = oldest {
            self.shards[i].pool.demote_oldest_warm(tenant);
        }
    }

    /// Offers one request. Returns its sequence number when admitted, or
    /// the [`ShedReason`] when refused at admission (rate limit, byte
    /// budget, or in-flight cap; [`ShedReason::DeadlineMissed`] never comes from
    /// `submit` — deadlines are checked in-queue and surface in
    /// [`TenantStats::shed_deadline`]). Arrivals must be non-decreasing;
    /// earlier timestamps are clamped forward.
    ///
    /// Submission also advances the dispatcher: any shard batch scheduled
    /// before this arrival runs first, so admission sees up-to-date
    /// in-flight counts and the simulation stays online.
    ///
    /// # Panics
    ///
    /// Panics on a tenant or virtine the dispatcher never issued — both
    /// are programming errors, caught here rather than mid-drain.
    pub fn submit(&mut self, req: Request) -> Result<u64, ShedReason> {
        assert!(
            self.mem_sizes.contains_key(&req.virtine),
            "virtine not registered via Dispatcher::register"
        );
        let arrival = cyc(req.arrival_s).max(self.last_arrival);
        self.last_arrival = arrival;
        self.deliver_wakeups(arrival);
        self.advance_with_faults(arrival);

        let clock = self.wasp.clock();
        clock.tick(costs::VSCHED_ADMISSION);

        self.stats.submitted += 1;
        let (priority, retry_policy, hedge_policy) = {
            let tenant = self
                .tenants
                .get_mut(req.tenant.0)
                .expect("unknown tenant id");
            tenant.stats.submitted += 1;
            (
                tenant.profile.priority.saturating_add(req.priority_boost),
                tenant.profile.retry,
                tenant.profile.hedge,
            )
        };

        // Brownout door: while the overload controller holds a
        // degradation level, requests below its priority floor are shed
        // before any budget (tokens, in-flight slots) is charged.
        if self.brownout.as_ref().is_some_and(|b| b.sheds(priority)) {
            self.tenants[req.tenant.0].stats.shed_brownout += 1;
            self.stats.shed_brownout += 1;
            self.note_shed(req.tenant, req.virtine, arrival, ShedReason::Brownout);
            return Err(ShedReason::Brownout);
        }

        {
            let tenant = &mut self.tenants[req.tenant.0];
            // Cap before bucket: a request refused at the in-flight cap
            // must not burn rate-limit tokens the tenant could use once a
            // slot frees up.
            if tenant.stats.in_flight >= tenant.profile.max_in_flight as u64 {
                tenant.stats.shed_in_flight += 1;
                self.stats.shed_in_flight += 1;
                self.note_shed(req.tenant, req.virtine, arrival, ShedReason::InFlightCap);
                return Err(ShedReason::InFlightCap);
            }
        }

        // Deadline-aware admission (also before the bucket — a request we
        // refuse must not burn tokens): estimate when the target shard
        // could start this request — next batch boundary after its worker
        // frees up, plus backlog × recent per-request cost — and shed now
        // if the deadline is already lost. Cheaper for everyone than
        // queueing a guaranteed miss.
        let shard = self.place(req.tenant, req.virtine);
        if let Some(dl) = req.deadline_s {
            let deadline = cyc(dl);
            let s = &self.shards[shard];
            let est_start = align_up(s.free_at.max(arrival), self.config.tick.get())
                .saturating_add((s.queue.len() as u64).saturating_mul(self.avg_service));
            if est_start > deadline {
                let tenant = &mut self.tenants[req.tenant.0];
                tenant.stats.shed_deadline_unmeetable += 1;
                self.stats.shed_deadline_unmeetable += 1;
                self.note_shed(
                    req.tenant,
                    req.virtine,
                    arrival,
                    ShedReason::DeadlineUnmeetable,
                );
                return Err(ShedReason::DeadlineUnmeetable);
            }
        }

        // Request and byte buckets are checked jointly before either is
        // charged: a request refused by one must not burn tokens from
        // the other. Bytes are the payload the platform moves for the
        // request — marshalled args plus the invocation payload.
        let bytes = (req.args.len() + req.invocation.payload.len()) as f64;
        let tenant = &mut self.tenants[req.tenant.0];
        let now = Cycles(arrival);
        if !tenant.bucket.can_admit(now, 1.0) {
            tenant.stats.shed_rate_limit += 1;
            self.stats.shed_rate_limit += 1;
            self.note_shed(req.tenant, req.virtine, arrival, ShedReason::RateLimited);
            return Err(ShedReason::RateLimited);
        }
        if !tenant.byte_bucket.can_admit(now, bytes) {
            tenant.stats.shed_byte_budget += 1;
            self.stats.shed_byte_budget += 1;
            self.note_shed(req.tenant, req.virtine, arrival, ShedReason::ByteBudget);
            return Err(ShedReason::ByteBudget);
        }
        tenant.bucket.take(1.0);
        tenant.byte_bucket.take(bytes);
        tenant.stats.admitted += 1;
        tenant.stats.in_flight += 1;
        self.stats.admitted += 1;

        let seq = self.seq;
        self.seq += 1;
        let deadline = req.deadline_s.map_or(u64::MAX, cyc);

        // Retry/hedge bookkeeping: keep a pristine copy of the inputs so
        // the request can be re-run from scratch. Connection-bound
        // invocations are excluded — replaying half a conversation on a
        // live socket is not exactly-once — and tenants with neither
        // policy pay nothing here.
        if (retry_policy.is_some() || hedge_policy.is_some()) && req.invocation.conn.is_none() {
            self.open.insert(
                seq,
                OpenReq {
                    tenant: req.tenant,
                    virtine: req.virtine,
                    priority,
                    deadline,
                    arrival,
                    args: req.args.clone(),
                    invocation: req.invocation.respawn(),
                    attempt: 0,
                    copies: 1,
                    done: false,
                    pending_retry: false,
                },
            );
            if let Some(policy) = hedge_policy {
                let at = arrival.saturating_add(self.hedge_delay(req.tenant, policy));
                self.hedge_heap.push(Reverse((at, seq)));
                self.stats.hedges_armed += 1;
            }
        }

        clock.tick(costs::VSCHED_QUEUE_OP);
        self.shards[shard].enqueue(
            Queued {
                front: false,
                priority,
                deadline,
                seq,
                tenant: req.tenant,
                virtine: req.virtine,
                args: req.args,
                invocation: req.invocation,
                arrival,
                resume: None,
            },
            self.config.tick.get(),
        );
        if self.trace.enabled() {
            self.trace.begin(
                seq,
                req.tenant.0,
                req.virtine.into_raw() as u64,
                Cycles(arrival),
            );
            self.tspan(seq, "admit", format!("shard={shard}"), arrival, arrival);
        }
        Ok(seq)
    }

    /// Observes a shed on the SLO plane and, when tracing, records a
    /// one-span trace for the refused request (sheds never enter a
    /// queue, so this is their entire timeline).
    fn note_shed(&mut self, tenant: TenantId, virtine: VirtineId, at: u64, reason: ShedReason) {
        if let Some(slo) = &mut self.slo {
            slo.observe_shed(Cycles(at));
        }
        if self.trace.enabled() {
            let id = self.seq;
            self.seq += 1;
            self.wasp.clock().tick(costs::VTRACE_SPAN);
            self.trace.record_shed(
                id,
                tenant.0,
                virtine.into_raw() as u64,
                Cycles(at),
                reason.label(),
            );
        }
    }

    /// Records one trace span, charging its calibrated cost. Callers
    /// gate on `self.trace.enabled()` so the disabled path never
    /// formats a detail string.
    fn tspan(&mut self, id: u64, label: &'static str, detail: String, start: u64, end: u64) {
        self.wasp.clock().tick(costs::VTRACE_SPAN);
        self.trace
            .span(id, label, detail, Cycles(start), Cycles(end));
    }

    /// Closes a request's trace with its terminal outcome.
    fn tfinish(&mut self, id: u64, outcome: &str, at: u64) {
        if self.trace.enabled() {
            self.wasp.clock().tick(costs::VTRACE_SPAN);
            self.trace.finish(id, outcome, Cycles(at));
        }
    }

    /// Runs every queued request to completion. Blocked runs whose sockets
    /// never become readable stay parked (forever, absent a tenant
    /// `max_block`): this is not a wait-for-the-world barrier. (Formerly
    /// `drain`; renamed so "drain" unambiguously means shard lifecycle
    /// draining — [`Dispatcher::drain_shard`].)
    pub fn run_to_idle(&mut self) {
        self.deliver_wakeups(self.last_arrival);
        self.advance_with_faults(u64::MAX);
    }

    /// Advances the dispatcher to virtual time `t_s`: delivers pending
    /// socket wake-ups (bytes sent by the driver since the last call are
    /// treated as arriving now) and runs every shard batch and block
    /// timeout scheduled before it. The trickled-delivery driver in
    /// `vhttp::dispatch` interleaves this with chunk sends.
    pub fn run_until(&mut self, t_s: f64) {
        let t = cyc(t_s).max(self.last_arrival);
        self.last_arrival = t;
        self.deliver_wakeups(t);
        self.advance_with_faults(t);
    }

    /// Blocked runs currently parked across all shards.
    pub fn parked(&self) -> usize {
        self.parked_shard.len()
    }

    /// Completions so far, in execution order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Removes and returns the accumulated completions.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DispatcherStats {
        self.stats
    }

    /// One tenant's statistics.
    pub fn tenant_stats(&self, id: TenantId) -> TenantStats {
        self.tenants[id.0].stats
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Handles of every registered tenant, in registration order (stats
    /// surfaces iterate these).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        (0..self.tenants.len()).map(TenantId).collect()
    }

    /// One tenant's diagnostic name (stats surfaces label by it).
    pub fn tenant_name(&self, id: TenantId) -> &str {
        &self.tenants[id.0].profile.name
    }

    /// Read-only per-shard views (queue depth, idle shells, counters).
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards.iter().map(Shard::snapshot).collect()
    }

    /// Shell-pool statistics summed across shards. Shard-local reuse
    /// shows up in `reused`; cross-shard steals are counted in
    /// [`DispatcherStats::stolen`] (and per shard in
    /// [`crate::ShardStats`]), not in any single pool's numbers.
    pub fn pool_stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            let p = s.pool.stats();
            total.created += p.created;
            total.reused += p.reused;
            total.released += p.released;
            total.warm_acquired += p.warm_acquired;
            total.warm_parked += p.warm_parked;
            total.warm_demoted += p.warm_demoted;
            total.dropped += p.dropped;
        }
        total
    }

    /// Builds the engine's view of every shard for one decision.
    /// `anchor` is the shard distances are measured from (`None` at
    /// admit, which has no anchor: every hop reads as local); `key`
    /// fills the warm column with the per-key placement probe, while
    /// `mem_size` fills the steal-supply columns (idle shells, and —
    /// when no key is given — victim-eligible warm shells); `clamp`
    /// floors worker timelines at the decision instant.
    fn candidates(
        &self,
        anchor: Option<usize>,
        key: Option<(u64, usize)>,
        mem_size: Option<usize>,
        clamp: u64,
    ) -> Vec<Candidate> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let hop = anchor.map_or(Hop::Local, |a| self.topology.hop(a, i));
                Candidate {
                    shard: i,
                    queue_depth: s.queue.len(),
                    free_at: s.free_at.max(clamp),
                    idle_shells: mem_size.map_or(0, |m| s.pool.idle_shells_of(m)),
                    warm_shells: match (key, mem_size) {
                        (Some((t, v)), _) => usize::from(s.pool.has_warm(t, v)),
                        (None, Some(m)) => s.pool.warm_shells_of(m),
                        (None, None) => 0,
                    },
                    hop,
                    transfer_cost: hop.transfer_cost(),
                    eligible: s.state.is_active(),
                }
            })
            .collect()
    }

    /// Decision point 1 (admit): asks the engine which shard a fresh
    /// request queues on. The per-pool warm probe is only paid when the
    /// engine's policy actually reads it (snapshot-aware placement).
    fn place(&self, tenant: TenantId, virtine: VirtineId) -> usize {
        let key = self
            .engine
            .admit_reads_warm()
            .then_some((tenant.0 as u64, virtine.into_raw()));
        let c = self.candidates(None, key, None, 0);
        self.engine.admit(tenant.0, &c)
    }

    /// Records a completed steal transfer: charges the per-hop cost and
    /// bumps the distance-classed steal counters on every stats plane.
    fn account_steal(&mut self, donor: usize, thief: usize) {
        let hop = self.topology.hop(donor, thief);
        self.wasp.clock().tick(hop.transfer_cost());
        self.shards[thief].stats.stolen_in += 1;
        self.shards[donor].stats.stolen_out += 1;
        self.stats.stolen += 1;
        match hop {
            Hop::Local => unreachable!("a steal always crosses shards"),
            Hop::SameCcx => self.stats.stolen_same_ccx += 1,
            Hop::SameSocket => self.stats.stolen_cross_ccx += 1,
            Hop::CrossSocket => self.stats.stolen_cross_socket += 1,
            Hop::CrossNode => unreachable!("intra-node topology never yields a node hop"),
        }
    }

    /// Installs a deterministic fault plan: each event fires as virtual
    /// time advances past its instant, through the same detector →
    /// reconcile → re-admit path as an operator-initiated drain or fail.
    /// Replaces any previous plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Lifecycle state of one shard.
    ///
    /// # Panics
    ///
    /// Panics on a shard index out of range.
    pub fn shard_state(&self, shard: usize) -> ShardState {
        self.shards[shard].state
    }

    /// Lifecycle states of every shard, in index order — the
    /// `vsched_shard_state` Prometheus gauge family.
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.shards.iter().map(|s| s.state).collect()
    }

    /// Marks a shard draining and runs one reconcile pass. New
    /// placements stop immediately (the shard leaves the eligible set);
    /// the returned actions show what the pass moved, armed, or
    /// converged. Idempotent: draining an already-draining or drained
    /// shard just re-runs the reconciler.
    ///
    /// # Panics
    ///
    /// Panics on a shard index out of range.
    pub fn drain_shard(&mut self, shard: usize) -> Vec<LifecycleAction> {
        if self.shards[shard].state == ShardState::Active {
            self.shards[shard].state = ShardState::Draining;
            self.shards[shard].drain_since = self.last_arrival;
        }
        self.reconcile()
    }

    /// Restores a draining, drained, or failed shard to `Active`: it
    /// rejoins the eligible set (placement, steal donation, migration
    /// target) at the next decision, and any armed grace clocks on runs
    /// still parked there are disarmed. Symmetric with
    /// [`Dispatcher::drain_shard`]; a no-op on an already-active shard.
    ///
    /// # Panics
    ///
    /// Panics on a shard index out of range.
    pub fn restore_shard(&mut self, shard: usize) {
        let s = &mut self.shards[shard];
        if s.state == ShardState::Active {
            return;
        }
        s.state = ShardState::Active;
        s.drain_since = 0;
        for p in s.blocked.values_mut() {
            p.evict_at = u64::MAX;
        }
    }

    /// Fails a shard outright (fault injection or operator action): its
    /// pooled shells are destroyed, parked runs are evicted — their
    /// suspended hardware state died with the shard — and queued
    /// requests are re-admitted on an eligible sibling exactly once
    /// (shed with [`ShedReason::Evicted`] only when no sibling is
    /// eligible). The shard stays `Failed` (and empty) until
    /// [`Dispatcher::restore_shard`]. Idempotent: failing a failed
    /// shard does nothing.
    ///
    /// # Panics
    ///
    /// Panics on a shard index out of range.
    pub fn fail_shard(&mut self, shard: usize) -> Vec<LifecycleAction> {
        let mut actions = Vec::new();
        if self.shards[shard].state == ShardState::Failed {
            return actions;
        }
        self.shards[shard].state = ShardState::Failed;
        self.shards[shard].drain_since = self.last_arrival;
        let now = self.last_arrival;
        let tick = self.config.tick.get();

        // The pooled inventory is gone: these contexts lived on the
        // failed worker.
        let count = self.shards[shard].pool.drop_all_shells();
        if count > 0 {
            actions.push(LifecycleAction::ShellsDropped { shard, count });
        }

        // Queued fresh requests move to an eligible sibling (exactly
        // once — the entry itself is re-homed, never copied). Woken runs
        // waiting in the queue hold suspended state that died with the
        // shard: they are evicted like parked runs.
        let drained: Vec<Queued> = std::mem::take(&mut self.shards[shard].queue).into_vec();
        self.shards[shard].next_wake = u64::MAX;
        for mut q in drained {
            if let Some(p) = q.resume.take() {
                let seq = p.seq;
                match self.evict_parked(shard, *p, now, FailCause::ShardFailed) {
                    CopyLoss::Retried => {
                        actions.push(LifecycleAction::RunRetried { seq, shard });
                    }
                    CopyLoss::Terminal => {
                        actions.push(LifecycleAction::RunEvicted { seq, shard });
                    }
                    CopyLoss::Suppressed => {}
                }
                continue;
            }
            let logical = self.hedge_of.get(&q.seq).copied().unwrap_or(q.seq);
            if self.open.get(&logical).is_some_and(|o| o.done) {
                // A hedge-race loser stranded on the failing shard: the
                // logical request already finished elsewhere, so the
                // entry just evaporates.
                self.lose_copy(q.seq, now, None);
                self.tfinish(q.seq, "hedge:canceled", now);
                continue;
            }
            let c = self.candidates(Some(shard), None, None, now);
            match self.engine.evacuate(&c) {
                Some(dest) => {
                    self.wasp.clock().tick(costs::VSCHED_QUEUE_OP);
                    let seq = q.seq;
                    self.shards[dest].enqueue_at(q, tick, now);
                    if self.trace.enabled() {
                        self.tspan(seq, "reconcile", format!("requeue shard={dest}"), now, now);
                    }
                    actions.push(LifecycleAction::RunRequeued {
                        seq,
                        from: shard,
                        to: dest,
                    });
                }
                None => {
                    let seq = q.seq;
                    let was_hedge_copy = self.hedge_of.contains_key(&seq);
                    match self.lose_copy(seq, now, Some(RetryCause::Queued)) {
                        CopyLoss::Suppressed => {
                            self.tfinish(seq, "hedge:canceled", now);
                            continue;
                        }
                        CopyLoss::Retried => {
                            if was_hedge_copy {
                                self.tfinish(seq, "hedge:canceled", now);
                            }
                            actions.push(LifecycleAction::RunRetried { seq, shard });
                            continue;
                        }
                        CopyLoss::Terminal => {}
                    }
                    let tstats = &mut self.tenants[q.tenant.0].stats;
                    tstats.shed_evicted += 1;
                    tstats.in_flight -= 1;
                    self.stats.shed_evicted += 1;
                    self.stats.evicted_failed += 1;
                    if let Some(slo) = &mut self.slo {
                        slo.observe_shed(Cycles(now));
                    }
                    if self.trace.enabled() {
                        self.tspan(seq, "queue_wait", String::new(), q.arrival, now);
                        self.tspan(seq, "drain_evict", "shard_failed".to_string(), now, now);
                    }
                    self.tfinish(seq, "shed:evicted", now);
                    actions.push(LifecycleAction::RunEvicted { seq, shard });
                }
            }
        }

        // Parked runs: the suspension is lost with the worker.
        let mut tokens: Vec<u64> = self.shards[shard].blocked.keys().copied().collect();
        tokens.sort_unstable();
        for token in tokens {
            let p = self.shards[shard]
                .blocked
                .remove(&token)
                .expect("token enumerated from the blocked set");
            self.parked_shard.remove(&token);
            match p.target {
                WaitTarget::Sock(sock) => self.wasp.kernel().net_clear_waiter(sock),
                WaitTarget::ChanRecv(chan) | WaitTarget::ChanSend { chan, .. } => {
                    self.wasp.kernel().chan_clear_waiter(chan, token);
                }
            }
            let seq = p.seq;
            match self.evict_parked(shard, p, now, FailCause::ShardFailed) {
                CopyLoss::Retried => {
                    actions.push(LifecycleAction::RunRetried { seq, shard });
                }
                CopyLoss::Terminal => {
                    actions.push(LifecycleAction::RunEvicted { seq, shard });
                }
                CopyLoss::Suppressed => {}
            }
        }
        actions
    }

    /// One pass of the lifecycle reconciliation loop: for every
    /// *draining* shard, moves queued work, migratable parked runs, and
    /// pooled shells (warm then clean) to eligible siblings through the
    /// engine's evacuation decision — priced hops, quota-respecting —
    /// arms per-tenant grace clocks on parked runs that cannot move, and
    /// advances fully-evacuated shards to `Drained`. Returns everything
    /// it did; **idempotent** — a second pass over unchanged state
    /// returns an empty list. Runs automatically as virtual time
    /// advances while any shard is non-active, so operators need not
    /// poll.
    pub fn reconcile(&mut self) -> Vec<LifecycleAction> {
        let mut actions = Vec::new();
        if self.shards.iter().all(|s| s.state.is_active()) {
            return actions;
        }
        let now = self.last_arrival;
        let tick = self.config.tick.get();
        for i in 0..self.shards.len() {
            if self.shards[i].state != ShardState::Draining {
                continue;
            }

            // Queued work re-homes one entry at a time, each to the
            // currently cheapest eligible sibling. No eligible sibling
            // leaves the remainder in place: a draining shard still
            // executes its own backlog (degraded mode beats losing it).
            while !self.shards[i].queue.is_empty() {
                let c = self.candidates(Some(i), None, None, now);
                let Some(dest) = self.engine.evacuate(&c) else {
                    break;
                };
                let mut q = self.shards[i].queue.pop().expect("checked non-empty");
                self.wasp.clock().tick(costs::VSCHED_QUEUE_OP);
                if let Some(p) = q.resume.as_deref_mut() {
                    // A woken run carries its suspended shell: the move
                    // is a migration and pays the hop like any other.
                    self.wasp.clock().tick(self.topology.transfer_cost(i, dest));
                    p.migrated = true;
                    self.stats.migrations += 1;
                    self.shards[i].stats.migrated_out += 1;
                    self.shards[dest].stats.migrated_in += 1;
                }
                let seq = q.seq;
                self.shards[dest].enqueue_at(q, tick, now);
                if self.trace.enabled() {
                    self.tspan(seq, "reconcile", format!("requeue shard={dest}"), now, now);
                }
                actions.push(LifecycleAction::RunRequeued {
                    seq,
                    from: i,
                    to: dest,
                });
            }
            if self.shards[i].queue.is_empty() {
                self.shards[i].next_wake = u64::MAX;
            }

            // Parked runs migrate whole — suspension, shell, and
            // token-keyed wait registration (no re-registration needed).
            // Spin-poll parks pin their worker and cannot move; they (and
            // parks with no eligible destination) get a grace clock
            // instead, armed once and re-reported only if it changes.
            let mut tokens: Vec<u64> = self.shards[i].blocked.keys().copied().collect();
            tokens.sort_unstable();
            for token in tokens {
                let dest = if self.config.block == BlockMode::SpinPoll {
                    None
                } else {
                    let c = self.candidates(Some(i), None, None, now);
                    self.engine.evacuate(&c)
                };
                match dest {
                    Some(dest) => {
                        let mut p = self.shards[i]
                            .blocked
                            .remove(&token)
                            .expect("token enumerated from the blocked set");
                        self.wasp.clock().tick(self.topology.transfer_cost(i, dest));
                        p.migrated = true;
                        p.evict_at = u64::MAX;
                        self.stats.migrations += 1;
                        self.shards[i].stats.migrated_out += 1;
                        self.shards[dest].stats.migrated_in += 1;
                        if self.trace.enabled() {
                            self.tspan(p.seq, "reconcile", format!("park shard={dest}"), now, now);
                        }
                        actions.push(LifecycleAction::ParkMigrated {
                            seq: p.seq,
                            from: i,
                            to: dest,
                        });
                        self.parked_shard.insert(token, dest);
                        self.shards[dest].blocked.insert(token, p);
                    }
                    None => {
                        let drain_since = self.shards[i].drain_since;
                        let p = self.shards[i]
                            .blocked
                            .get_mut(&token)
                            .expect("token enumerated from the blocked set");
                        let grace = self.tenants[p.tenant.0]
                            .profile
                            .drain_grace
                            .unwrap_or(self.config.drain_grace)
                            .get();
                        let at = drain_since.max(p.blocked_from).saturating_add(grace);
                        if p.evict_at != at {
                            p.evict_at = at;
                            actions.push(LifecycleAction::EvictionArmed {
                                seq: p.seq,
                                shard: i,
                                at,
                            });
                        }
                    }
                }
            }

            // Pooled shells: warm exports keep their (tenant, virtine)
            // key, snapshot identity, and LRU stamp, so cross-shard
            // budgets and quotas are unchanged by the move; clean shells
            // just change pools. Each transfer pays its hop.
            while self.shards[i].pool.warm_shells() > 0 {
                let c = self.candidates(Some(i), None, None, now);
                let Some(dest) = self.engine.evacuate(&c) else {
                    break;
                };
                let Some(export) = self.shards[i].pool.export_warm_lru() else {
                    break;
                };
                self.wasp.clock().tick(self.topology.transfer_cost(i, dest));
                self.shards[dest].pool.import_warm(export);
                actions.push(LifecycleAction::WarmMigrated { from: i, to: dest });
            }
            while self.shards[i].pool.idle_shells() > 0 {
                let c = self.candidates(Some(i), None, None, now);
                let Some(dest) = self.engine.evacuate(&c) else {
                    break;
                };
                let Some(vm) = self.shards[i].pool.take_idle_any() else {
                    break;
                };
                self.wasp.clock().tick(self.topology.transfer_cost(i, dest));
                self.shards[dest].pool.adopt_idle(vm);
                actions.push(LifecycleAction::CleanMigrated { from: i, to: dest });
            }

            // Converged: nothing queued, parked, or pooled.
            if self.shards[i].queue.is_empty()
                && self.shards[i].blocked.is_empty()
                && self.shards[i].pool.warm_shells() == 0
                && self.shards[i].pool.idle_shells() == 0
            {
                self.shards[i].state = ShardState::Drained;
                actions.push(LifecycleAction::Drained { shard: i });
            }
        }
        actions
    }

    /// Advances to `limit` like [`Dispatcher::advance_to`], firing any
    /// fault-plan events whose instant falls inside the window and
    /// running the reconciler while any shard is non-active. With no
    /// plan and every shard active this is exactly `advance_to` — the
    /// hot path pays one boolean check.
    fn advance_with_faults(&mut self, limit: u64) {
        self.reliability_eval();
        loop {
            if self.shards.iter().any(|s| !s.state.is_active()) {
                self.reconcile();
            }
            let due_at = self
                .fault_plan
                .as_ref()
                .and_then(FaultPlan::next_at)
                .filter(|&at_s| cyc(at_s) <= limit);
            let Some(at_s) = due_at else {
                break;
            };
            self.advance_to(cyc(at_s));
            let due = self
                .fault_plan
                .as_mut()
                .expect("plan present: next_at returned an instant")
                .take_due(at_s);
            for event in due {
                match event.kind {
                    FaultKind::KillShard(shard) => {
                        self.fail_shard(shard);
                    }
                    FaultKind::KillShell(shard) => {
                        self.shards[shard].pool.drop_idle();
                    }
                    FaultKind::HangShard(shard) => {
                        self.shards[shard].hung = true;
                    }
                    FaultKind::UnhangShard(shard) => {
                        let tick = self.config.tick.get();
                        let now = cyc(at_s);
                        let s = &mut self.shards[shard];
                        s.hung = false;
                        // The wedged window is lost time, not deferred
                        // time: the worker's timeline resumes *now*, so
                        // backlogged work completes after the hang — it
                        // does not retroactively fill the gap.
                        s.free_at = s.free_at.max(now);
                        if !s.queue.is_empty() {
                            s.next_wake = align_up(s.free_at, tick);
                        }
                    }
                }
            }
        }
        self.advance_to(limit);
    }

    /// Evaluates the failure detector and the brownout controller at the
    /// dispatcher's arrival horizon. Detector declarations drive the
    /// existing `fail_shard` → reconcile → re-admit path; restorations go
    /// through [`Dispatcher::restore_shard`]. Free when neither is
    /// installed.
    fn reliability_eval(&mut self) {
        if self.health.is_none() && self.brownout.is_none() {
            return;
        }
        let now = self.last_arrival;
        if self.health.is_some() {
            // A hung shard is the detector's whole reason to exist: it
            // stays `Active` (placement keeps feeding it), so only the
            // missing heartbeats give it away. `alive` is ground truth
            // for the false-positive tripwire only — the detector's
            // decisions never read it.
            let alive: Vec<bool> = self.shards.iter().map(|s| !s.hung).collect();
            let monitored: Vec<bool> = self.shards.iter().map(|s| s.state.is_active()).collect();
            let actions = self
                .health
                .as_mut()
                .expect("checked above")
                .poll(now, &alive, &monitored);
            for action in actions {
                match action {
                    HealthAction::Declare(shard) => {
                        self.fail_shard(shard);
                    }
                    HealthAction::Restore(shard) => self.restore_shard(shard),
                }
            }
        }
        if let Some(b) = &mut self.brownout {
            let paging = match &mut self.slo {
                Some(slo) => {
                    slo.tick(Cycles(now));
                    slo.report()
                        .iter()
                        .any(|r| r.severity == Some(Severity::Page))
                }
                None => false,
            };
            b.evaluate(now, paging);
        }
    }

    /// Runs shard batches, block timeouts, retry releases, and hedge
    /// fires scheduled strictly before `limit`, earliest event first.
    /// Shards whose worker is spin-polling a blocked socket
    /// (`BlockMode::SpinPoll`) run no batches until the wake; their
    /// queued work backs up — that occupancy is exactly what
    /// event-driven dispatch removes. *Hung* shards run nothing at all:
    /// neither batches nor parked-run timeouts fire while the worker is
    /// wedged, so their queues back up silently until the health
    /// detector declares the failure.
    ///
    /// Simultaneous events resolve by a fixed rank — timeout, then retry
    /// release, then hedge fire, then batch — preserving the historical
    /// timeout-beats-batch tie and letting released work join a batch
    /// starting at the same instant.
    fn advance_to(&mut self, limit: u64) {
        loop {
            let next_batch = self
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.queue.is_empty() && s.spinning == 0 && !s.hung)
                .map(|(i, s)| (s.next_wake, i))
                .min()
                .filter(|&(wake, _)| wake < limit);
            let next_timeout = self
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.hung)
                .filter_map(|(i, s)| s.next_timeout().map(|(at, token)| (at, i, token)))
                .min()
                .filter(|&(at, _, _)| at < limit);
            let next_retry = self
                .retry_heap
                .peek()
                .map(|&Reverse((at, seq))| (at, seq))
                .filter(|&(at, _)| at < limit);
            let next_hedge = self
                .hedge_heap
                .peek()
                .map(|&Reverse((at, seq))| (at, seq))
                .filter(|&(at, _)| at < limit);
            let candidates = [
                next_timeout.map(|(at, _, _)| (at, 0u8)),
                next_retry.map(|(at, _)| (at, 1u8)),
                next_hedge.map(|(at, _)| (at, 2u8)),
                next_batch.map(|(wake, _)| (wake, 3u8)),
            ];
            let Some(&(_, rank)) = candidates.iter().flatten().min() else {
                break;
            };
            match rank {
                0 => {
                    let (at, tidx, token) = next_timeout.expect("rank 0 came from next_timeout");
                    self.kill_blocked(tidx, token, at);
                }
                1 => {
                    let Reverse((at, seq)) =
                        self.retry_heap.pop().expect("rank 1 came from retry_heap");
                    self.release_retry(seq, at);
                }
                2 => {
                    let Reverse((at, seq)) =
                        self.hedge_heap.pop().expect("rank 2 came from hedge_heap");
                    self.fire_hedge(seq, at);
                }
                _ => {
                    let (_, idx) = next_batch.expect("rank 3 came from next_batch");
                    self.run_batch_and_deliver(idx);
                }
            }
        }
    }

    /// Executes one batch tick on shard `idx`, then delivers any socket
    /// wake-ups the batch itself produced (a virtine `send`ing to a socket
    /// another virtine is parked on), stamped at the worker's finish
    /// position — so guest-to-guest wakes resume within the same
    /// `drain`/`run_until` instead of waiting for the next external call.
    fn run_batch_and_deliver(&mut self, idx: usize) {
        self.run_batch(idx);
        self.deliver_wakeups(self.shards[idx].free_at);
    }

    /// Executes one batch tick on shard `idx`.
    fn run_batch(&mut self, idx: usize) {
        let tick = self.config.tick.get();
        let t_batch = self.shards[idx].next_wake;
        let mut free = self.shards[idx].free_at.max(t_batch);
        self.stats.batches += 1;
        self.shards[idx].stats.batches += 1;
        // A batch tick is the worker's proof of life: the detector's
        // suspicion for this shard resets here, and *only* here — a hung
        // worker runs no batches, so its silence accrues.
        if let Some(h) = &mut self.health {
            h.heartbeat(idx, t_batch);
        }
        let clock = self.wasp.clock();

        for _ in 0..self.config.batch_size {
            let Some(mut q) = self.shards[idx].queue.pop() else {
                break;
            };
            clock.tick(costs::VSCHED_QUEUE_OP);
            let logical = self.hedge_of.get(&q.seq).copied().unwrap_or(q.seq);
            if self.open.get(&logical).is_some_and(|o| o.done) {
                // A hedge-race loser whose sibling copy already reached
                // the terminal outcome: it never executes. A woken
                // suspension aborts; its shell survives (the worker is
                // alive) and returns to the pool wiped.
                if let Some(p) = q.resume.take() {
                    let (outcome, vm) = self.wasp.abort_suspended(p.run);
                    debug_assert!(outcome.warm_state.is_none());
                    self.shards[idx].pool.release(vm);
                }
                self.lose_copy(q.seq, free, None);
                self.tfinish(q.seq, "hedge:canceled", free);
                continue;
            }
            if q.resume.is_none() && q.deadline < free {
                // Too late to start: shed in-queue (the request's deadline
                // passed while it waited). Woken blocked runs are exempt —
                // they hold a live shell that must run to completion or be
                // killed explicitly, never silently dropped.
                if self.lose_copy(q.seq, free, None) != CopyLoss::Terminal {
                    // Another copy still carries the request.
                    self.tfinish(q.seq, "hedge:canceled", free);
                    continue;
                }
                let t = &mut self.tenants[q.tenant.0].stats;
                t.shed_deadline += 1;
                t.in_flight -= 1;
                self.stats.shed_deadline += 1;
                if let Some(slo) = &mut self.slo {
                    slo.observe_shed(Cycles(free));
                }
                if self.trace.enabled() {
                    self.tspan(q.seq, "queue_wait", String::new(), q.arrival, free);
                    self.tspan(
                        q.seq,
                        "shed",
                        ShedReason::DeadlineMissed.label().to_string(),
                        free,
                        free,
                    );
                }
                self.tfinish(q.seq, "shed:deadline", free);
                continue;
            }
            free = self.execute(idx, q, free);
            if self.shards[idx].spinning > 0 {
                // Spin-poll baseline: the worker just pinned itself on a
                // blocked socket; the rest of the batch waits behind it.
                break;
            }
        }

        let shard = &mut self.shards[idx];
        shard.free_at = free;
        shard.next_wake = if shard.queue.is_empty() {
            u64::MAX
        } else {
            align_up(free.max(t_batch + tick), tick)
        };
    }

    /// Runs one request on shard `idx`, starting no earlier than `free`;
    /// returns the shard worker's new timeline position. A request that
    /// blocks in `recv` parks instead of completing; a woken parked run
    /// resumes at the suspended hypercall instead of acquiring a shell.
    fn execute(&mut self, idx: usize, q: Queued, free: u64) -> u64 {
        if let Some(parked) = q.resume {
            return self.execute_resume(idx, *parked, free);
        }
        let mem_size = *self
            .mem_sizes
            .get(&q.virtine)
            .expect("virtine registered via Dispatcher::register");
        let clock = self.wasp.clock();
        // Service spans acquire → run → release: a pool miss's
        // `KVM_CREATE_VM` occupies the shard worker like any other cost.
        let t0 = clock.now();

        // Acquire, cheapest sound mechanism first — steps 3 and 5 pick
        // their donor through the placement engine (near siblings first,
        // per-hop transfer cost):
        //   1. shard-local warm shell for this exact (tenant, virtine) —
        //      delta re-arm;
        //   2. shard-local clean shell;
        //   3. steal a *clean* shell from a sibling (stealing prefers
        //      clean shells: a sibling's warm shell is its fast path, so
        //      demoting one is the last resort before KVM_CREATE_VM);
        //   4. demote a local warm shell of another key (full wipe; the
        //      victim tenant is the requester itself when possible,
        //      otherwise the biggest warm hoard);
        //   5. demote-and-steal a sibling's warm shell (full wipe, same
        //      victim-tenant rule);
        //   6. KVM_CREATE_VM.
        let key = (q.tenant.0 as u64, q.virtine.into_raw());
        let mut stolen = false;
        let (vm, source) = if let Some((vm, snap)) =
            self.shards[idx]
                .pool
                .acquire_warm(self.wasp.hypervisor(), key.0, key.1, mem_size)
        {
            (vm, ShellSource::Warm(snap))
        } else if self.shards[idx].pool.idle_shells_of(mem_size) > 0 {
            // Guaranteed hit: `acquire` pops the parked shell, counts the
            // reuse in this shard's own stats, and charges bookkeeping.
            let (vm, hit) = self.shards[idx]
                .pool
                .acquire(self.wasp.hypervisor(), mem_size);
            debug_assert!(hit);
            (vm, ShellSource::Clean)
        } else if let Some((donor, vm)) = self.steal_from_sibling(idx, mem_size) {
            self.account_steal(donor, idx);
            stolen = true;
            (vm, ShellSource::Clean)
        } else if let Some(vm) = self.shards[idx]
            .pool
            .warm_victim_tenant(mem_size, key.0)
            .and_then(|victim| self.shards[idx].pool.take_warm_victim_of(victim, mem_size))
        {
            self.stats.warm_demotions += 1;
            (vm, ShellSource::Clean)
        } else if let Some((donor, vm)) = self.steal_warm_victim(idx, key.0, mem_size) {
            self.account_steal(donor, idx);
            self.stats.warm_demotions += 1;
            stolen = true;
            (vm, ShellSource::Clean)
        } else {
            let (vm, _) = self.shards[idx]
                .pool
                .acquire(self.wasp.hypervisor(), mem_size);
            (vm, ShellSource::Created)
        };
        let reused = source.is_reused();
        let acquire = (clock.now() - t0).get();
        let src = self.trace.enabled().then_some(match &source {
            ShellSource::Warm(_) => "warm",
            ShellSource::Clean if stolen => "stolen_clean",
            ShellSource::Clean => "clean",
            ShellSource::Created => "cold_create",
        });

        let mask = self.tenants[q.tenant.0].profile.mask;
        let run = self
            .wasp
            .run_on_shell_resumable(
                vm,
                source,
                q.virtine,
                &q.args,
                q.invocation,
                mask,
                &mut |_, _, _, _| None,
            )
            .expect("dispatch invariants uphold spec and shell size");
        let segment = (clock.now() - t0).get();
        if let Some(src) = src {
            self.tspan(q.seq, "queue_wait", String::new(), q.arrival, free);
            self.tspan(
                q.seq,
                "shell_acquire",
                src.to_string(),
                free,
                free + acquire,
            );
            self.tspan(q.seq, "exec", String::new(), free + acquire, free + segment);
        }
        match run {
            RunResult::Done(outcome, vm) => self.complete(
                idx,
                ServeMeta {
                    tenant: q.tenant,
                    virtine: q.virtine,
                    seq: q.seq,
                    arrival: q.arrival,
                    first_start: free,
                    service_before: 0,
                    stolen,
                    reused,
                    migrated: false,
                },
                outcome,
                vm,
                free,
                segment,
            ),
            RunResult::Blocked(s) => self.park_suspended(
                idx,
                Parked {
                    target: s.wait().target(),
                    run: s,
                    tenant: q.tenant,
                    virtine: q.virtine,
                    seq: q.seq,
                    priority: q.priority,
                    arrival: q.arrival,
                    first_start: free,
                    service_so_far: segment,
                    stolen,
                    migrated: false,
                    blocked_from: free + segment,
                    timeout_at: 0,      // Filled in by park_suspended.
                    evict_at: u64::MAX, // Likewise.
                },
            ),
        }
    }

    /// Resumes a woken parked run on its shard; returns the new worker
    /// timeline position. The run either completes or blocks again (its
    /// next `recv` found the socket empty) and re-parks.
    fn execute_resume(&mut self, idx: usize, p: Parked, free: u64) -> u64 {
        let clock = self.wasp.clock();
        let t0 = clock.now();
        let run = self
            .wasp
            .resume_on_shell(p.run, &mut |_, _, _, _| None)
            .expect("suspended runs carry a registered virtine");
        let segment = (clock.now() - t0).get();
        if self.trace.enabled() {
            self.tspan(p.seq, "exec", "resumed".to_string(), free, free + segment);
        }
        match run {
            RunResult::Done(outcome, vm) => self.complete(
                idx,
                ServeMeta {
                    tenant: p.tenant,
                    virtine: p.virtine,
                    seq: p.seq,
                    arrival: p.arrival,
                    first_start: p.first_start,
                    service_before: p.service_so_far,
                    stolen: p.stolen,
                    reused: outcome.breakdown.reused_shell,
                    migrated: p.migrated,
                },
                outcome,
                vm,
                free,
                segment,
            ),
            // Blocked again — possibly on a *different* object than last
            // time (a pipeline stage parks on its input channel, then on
            // its output's backpressure): re-read the wait target.
            RunResult::Blocked(s) => self.park_suspended(
                idx,
                Parked {
                    target: s.wait().target(),
                    run: s,
                    service_so_far: p.service_so_far + segment,
                    blocked_from: free + segment,
                    timeout_at: 0, // Filled in by park_suspended.
                    ..p
                },
            ),
        }
    }

    /// Parks a suspended run on shard `idx` and registers its wake-up.
    /// Returns the worker's new timeline position (the block instant: the
    /// worker is given back in event-driven mode; in spin-poll mode the
    /// shard's `spinning` gate holds further batches until the wake).
    fn park_suspended(&mut self, idx: usize, mut p: Parked) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        p.timeout_at = match self.tenants[p.tenant.0].profile.max_block {
            Some(max) => p.blocked_from.saturating_add(max.get()),
            None => u64::MAX,
        };
        // Parking on a draining shard arms the grace clock immediately;
        // the next reconcile pass may still migrate the run out (and
        // disarm it) before the clock fires.
        p.evict_at = if self.shards[idx].state == ShardState::Draining {
            let grace = self.tenants[p.tenant.0]
                .profile
                .drain_grace
                .unwrap_or(self.config.drain_grace)
                .get();
            self.shards[idx]
                .drain_since
                .max(p.blocked_from)
                .saturating_add(grace)
        } else {
            u64::MAX
        };
        // Registration is race-free: an object that became ready between
        // the block decision and this call wakes immediately.
        let kernel = self.wasp.kernel();
        match p.target {
            WaitTarget::Sock(sock) => kernel
                .net_register_waiter(sock, token)
                .expect("a parked run's connection outlives the park"),
            WaitTarget::ChanRecv(chan) => kernel
                .chan_register_recv_waiter(chan, token)
                .expect("a parked run's channel outlives the park"),
            WaitTarget::ChanSend { chan, len } => kernel
                .chan_register_send_waiter(chan, token, len)
                .expect("a parked run's channel outlives the park"),
        }
        let blocked_from = p.blocked_from;
        let tstats = &mut self.tenants[p.tenant.0].stats;
        tstats.blocked += 1;
        self.stats.blocked += 1;
        self.shards[idx].stats.blocked += 1;
        if self.config.block == BlockMode::SpinPoll {
            self.shards[idx].spinning += 1;
        }
        self.shards[idx].blocked.insert(token, p);
        self.parked_shard.insert(token, idx);
        blocked_from
    }

    /// Moves every parked run whose wait object became ready back to the
    /// *front* of a run queue, stamped no earlier than `stamp`. The queue
    /// is chosen by *placement* ([`Dispatcher::resume_shard`]): under
    /// skewed load a wake re-admits the run on the least-loaded shard
    /// instead of pinning it to the (possibly saturated) shard it blocked
    /// on — the suspended shell rides inside the run, so the move is as
    /// isolation-safe as a shell steal, and completion accounting follows
    /// the landing shard.
    fn deliver_wakeups(&mut self, stamp: u64) {
        let tick = self.config.tick.get();
        let kernel = self.wasp.kernel();
        let mut woken = kernel.net_take_woken();
        woken.extend(kernel.chan_take_woken());
        for token in woken {
            let Some(idx) = self.parked_shard.remove(&token) else {
                // The run was killed after the wake was queued.
                continue;
            };
            let Some(mut p) = self.shards[idx].blocked.remove(&token) else {
                continue;
            };
            let wake = stamp.max(p.blocked_from);
            let logical = self.hedge_of.get(&p.seq).copied().unwrap_or(p.seq);
            if self.open.get(&logical).is_some_and(|o| o.done) {
                // A parked hedge-race loser: its sibling copy finished
                // while it waited. Abort the suspension instead of
                // resuming it — the wake's bytes stay with the winner's
                // accounting.
                self.settle_spin(idx, p.blocked_from, wake);
                let (outcome, vm) = self.wasp.abort_suspended(p.run);
                debug_assert!(outcome.warm_state.is_none());
                self.shards[idx].pool.release(vm);
                self.lose_copy(p.seq, wake, None);
                self.tfinish(p.seq, "hedge:canceled", wake);
                continue;
            }
            let bound = p.timeout_at.min(p.evict_at);
            if wake > bound {
                // The data arrived, but only after the tenant's max_block
                // bound (or the lifecycle grace clock) had already
                // expired: the kill fires at the bound, not the wake —
                // the budget is a hard ceiling, not a race against late
                // bytes. (A wake exactly at the bound still resumes,
                // matching advance_to's strict `at < limit`.)
                if p.evict_at < p.timeout_at {
                    self.evict_parked(idx, p, bound, FailCause::GraceExpired);
                } else {
                    self.kill_parked(idx, p, bound);
                }
                continue;
            }
            self.settle_spin(idx, p.blocked_from, wake);
            self.shards[idx].stats.resumed += 1;
            self.stats.resumed += 1;
            self.wasp.clock().tick(costs::VSCHED_QUEUE_OP);
            if self.trace.enabled() {
                self.tspan(
                    p.seq,
                    "park",
                    format!("{:?}", p.target),
                    p.blocked_from,
                    wake,
                );
            }
            let dest = self.resume_shard(idx, wake);
            if dest != idx {
                // The run (and the shell inside it) crosses shards: one
                // explicit transfer cost, priced by the hop it crosses
                // exactly like a clean-shell steal.
                self.wasp
                    .clock()
                    .tick(self.topology.transfer_cost(idx, dest));
                p.migrated = true;
                self.stats.migrations += 1;
                self.shards[idx].stats.migrated_out += 1;
                self.shards[dest].stats.migrated_in += 1;
                if self.trace.enabled() {
                    self.tspan(
                        p.seq,
                        "migrate",
                        format!("hop={:?}", self.topology.hop(idx, dest)),
                        wake,
                        wake,
                    );
                }
            }
            if self.trace.enabled() {
                self.tspan(p.seq, "resume", format!("shard={dest}"), wake, wake);
            }
            let q = Queued {
                front: true,
                priority: p.priority,
                // Exempt from in-queue deadline shedding: a woken run
                // holds a live shell and must complete or be killed.
                deadline: u64::MAX,
                seq: p.seq,
                tenant: p.tenant,
                virtine: p.virtine,
                args: Vec::new(),
                invocation: Invocation::default(),
                arrival: p.arrival,
                resume: Some(Box::new(p)),
            };
            self.shards[dest].enqueue_at(q, tick, wake);
        }
    }

    /// Decision point 4 (resume-migrate): asks the engine which shard a
    /// woken parked run resumes on, anchored at the blocking shard — an
    /// idle home never loses a tie, and among equally loaded siblings the
    /// nearest wins, so migration only happens when it buys an earlier
    /// start, and then over the shortest hop. Worker timelines are
    /// clamped to `wake`: a `free_at` in the past means "free now", not
    /// "freer than the other idle shard". A resume needs no shell acquire
    /// — the shell rides inside the suspension — so warm-list affinity is
    /// irrelevant. Pinned home when migration is disabled or under
    /// [`BlockMode::SpinPoll`] (the home worker *is* the wait there).
    fn resume_shard(&self, home: usize, wake: u64) -> usize {
        if !self.config.migrate_on_resume || self.config.block == BlockMode::SpinPoll {
            return home;
        }
        let c = self.candidates(Some(home), None, None, wake);
        self.engine.resume(&c)
    }

    /// Under [`BlockMode::SpinPoll`], closes out a parked run's spin
    /// window `[from, to]`: the worker was busy-polling the whole wait, so
    /// it lands on the worker timeline and in `busy_wait_cycles`. A no-op
    /// in event-driven mode.
    fn settle_spin(&mut self, idx: usize, from: u64, to: u64) {
        if self.config.block == BlockMode::SpinPoll {
            let spin = to - from;
            self.shards[idx].spinning -= 1;
            self.shards[idx].stats.busy_wait_cycles += spin;
            self.stats.busy_wait_cycles += spin;
            self.shards[idx].free_at = self.shards[idx].free_at.max(to);
        }
    }

    /// Kills or evicts the parked run registered under `token`: whichever
    /// of its `max_block` bound and lifecycle grace clock expired first
    /// fired at timeline position `at` with no wake in sight (ties go to
    /// the `max_block` kill, preserving pre-lifecycle behavior exactly).
    fn kill_blocked(&mut self, idx: usize, token: u64, at: u64) {
        let p = self.shards[idx]
            .blocked
            .remove(&token)
            .expect("timeout points at a parked run");
        self.parked_shard.remove(&token);
        match p.target {
            WaitTarget::Sock(sock) => self.wasp.kernel().net_clear_waiter(sock),
            WaitTarget::ChanRecv(chan) | WaitTarget::ChanSend { chan, .. } => {
                self.wasp.kernel().chan_clear_waiter(chan, token);
            }
        }
        if p.evict_at < p.timeout_at {
            self.evict_parked(idx, p, at, FailCause::GraceExpired);
        } else {
            self.kill_parked(idx, p, at);
        }
    }

    /// Hard-stops a parked run on behalf of shard lifecycle: the run is
    /// aborted, its shell wiped back into the (draining) shard's pool —
    /// or destroyed outright when the shard failed, taking the hardware
    /// context with it — and the request is shed with
    /// [`ShedReason::Evicted`]. Unlike [`Dispatcher::kill_parked`] this
    /// is a *shed*, not an abnormal serve: no completion is recorded and
    /// the conservation identity stays `submitted == served + shed`. The
    /// caller has already detached the run from the blocked set and
    /// wait-token index.
    fn evict_parked(&mut self, idx: usize, p: Parked, at: u64, cause: FailCause) -> CopyLoss {
        let at = at.max(p.blocked_from);
        self.settle_spin(idx, p.blocked_from, at);
        let (outcome, vm) = self.wasp.abort_suspended(p.run);
        debug_assert!(outcome.warm_state.is_none());
        match cause {
            // Draining: the worker is alive, the shell survives its run —
            // the ordinary wiped release, then the next reconcile pass
            // evacuates it like any other idle shell.
            FailCause::GraceExpired => self.shards[idx].pool.release(vm),
            // Failed: the context died with the shard.
            FailCause::ShardFailed => self.shards[idx].pool.drop_shell(vm),
        }
        // Shard failure is the retryable loss: the suspension died
        // through no fault of the request. A drain-grace expiry is a
        // policy decision against this very run — retrying it would
        // reverse the operator.
        let retry = match cause {
            FailCause::ShardFailed => Some(RetryCause::Parked),
            FailCause::GraceExpired => None,
        };
        let was_hedge_copy = self.hedge_of.contains_key(&p.seq);
        match self.lose_copy(p.seq, at, retry) {
            CopyLoss::Suppressed => {
                if self.trace.enabled() {
                    self.tspan(p.seq, "park", format!("{:?}", p.target), p.blocked_from, at);
                }
                self.tfinish(p.seq, "hedge:canceled", at);
                return CopyLoss::Suppressed;
            }
            CopyLoss::Retried => {
                if self.trace.enabled() {
                    self.tspan(p.seq, "park", format!("{:?}", p.target), p.blocked_from, at);
                }
                if was_hedge_copy {
                    // The retry continues under the logical trace; this
                    // duplicate's own trace closes here.
                    self.tfinish(p.seq, "hedge:canceled", at);
                }
                return CopyLoss::Retried;
            }
            CopyLoss::Terminal => {}
        }
        let tstats = &mut self.tenants[p.tenant.0].stats;
        tstats.shed_evicted += 1;
        tstats.in_flight -= 1;
        self.stats.shed_evicted += 1;
        match cause {
            FailCause::GraceExpired => self.stats.evicted_grace += 1,
            FailCause::ShardFailed => self.stats.evicted_failed += 1,
        }
        self.stats.blocked_cycles += outcome.breakdown.blocked.get();
        if let Some(slo) = &mut self.slo {
            slo.observe_shed(Cycles(at));
        }
        if self.trace.enabled() {
            self.tspan(p.seq, "park", format!("{:?}", p.target), p.blocked_from, at);
            self.tspan(p.seq, "drain_evict", cause.label().to_string(), at, at);
        }
        self.tfinish(p.seq, "shed:evicted", at);
        CopyLoss::Terminal
    }

    /// Kills a parked run whose tenant `max_block` expired at timeline
    /// position `at`: the shell is wiped back into the shard pool, the
    /// tenant's in-flight slot is released, and the completion surfaces as
    /// abnormal (`ExitKind::Blocked`). The caller has already detached the
    /// run from the blocked set and wait-token index.
    fn kill_parked(&mut self, idx: usize, p: Parked, at: u64) {
        self.settle_spin(idx, p.blocked_from, at);
        let (outcome, vm) = self.wasp.abort_suspended(p.run);
        debug_assert!(outcome.warm_state.is_none());
        // The shell still holds the killed invocation's state: the
        // ordinary wiped release (§5.2) erases it before any reuse.
        self.shards[idx].pool.release(vm);
        let logical = match self.finish_copy(p.seq) {
            CopyFinish::Won { logical } => logical,
            CopyFinish::Loser => {
                // The race was already decided elsewhere: suppress the
                // kill's accounting entirely.
                self.tfinish(p.seq, "hedge:canceled", at);
                return;
            }
        };
        let tstats = &mut self.tenants[p.tenant.0].stats;
        tstats.blocked_timeout += 1;
        tstats.abnormal += 1;
        tstats.served += 1;
        tstats.in_flight -= 1;
        self.stats.blocked_timeout += 1;
        self.stats.served += 1;
        self.stats.blocked_cycles += outcome.breakdown.blocked.get();
        self.shards[idx].stats.blocked_timeout += 1;
        self.shards[idx].stats.served += 1;
        let e2e = at - p.arrival;
        self.hist_queue_wait.record(p.first_start - p.arrival);
        self.hist_exec.record(p.service_so_far);
        self.hist_e2e.record(e2e);
        self.tenants[p.tenant.0].e2e.record(e2e);
        if let Some(slo) = &mut self.slo {
            slo.observe_served(Cycles(at), Cycles(e2e));
        }
        if self.trace.enabled() {
            self.tspan(p.seq, "park", format!("{:?}", p.target), p.blocked_from, at);
        }
        self.tfinish(p.seq, "timeout", at);
        self.completions.push(Completion {
            tenant: p.tenant,
            virtine: p.virtine,
            seq: logical,
            shard: idx,
            arrival: secs(p.arrival),
            start: secs(p.first_start),
            finish: secs(at),
            service: secs(p.service_so_far),
            reused_shell: outcome.breakdown.reused_shell,
            stolen_shell: p.stolen,
            warm_hit: outcome.breakdown.warm_hit,
            exit_normal: false,
            resumes: outcome.breakdown.resumes,
            migrated: p.migrated,
            exec_cycles: outcome.breakdown.total.get(),
            result: outcome.invocation.result,
        });
    }

    /// Shared completion epilogue for fresh and resumed serves: releases
    /// the shell (warm when permitted), updates the stats surfaces and the
    /// admission cost estimate, and records the [`Completion`]. Returns
    /// the worker's new timeline position.
    #[allow(clippy::too_many_arguments)]
    fn complete(
        &mut self,
        idx: usize,
        meta: ServeMeta,
        outcome: RunOutcome,
        vm: kvmsim::VmFd,
        free: u64,
        segment: u64,
    ) -> u64 {
        let key = (meta.tenant.0 as u64, meta.virtine.into_raw());
        let finish_at = free + segment;
        let logical = match self.finish_copy(meta.seq) {
            CopyFinish::Won { logical } => logical,
            CopyFinish::Loser => {
                // This copy lost the hedge race: the logical request was
                // already served (or shed) by a sibling copy. Wipe the
                // shell back into the pool and suppress every stat — one
                // logical request, one terminal outcome.
                self.shards[idx].pool.release(vm);
                self.tfinish(meta.seq, "hedge:canceled", finish_at);
                return finish_at;
            }
        };
        // Release: park warm (state still derives from the spec's current
        // snapshot, dirty log intact) or wipe clean. Warm parks go
        // through the engine's capacity verdict — decision point
        // "warm_release": cross-shard budget and per-tenant quota first,
        // the per-pool LRU bound as the remaining backstop.
        match outcome.warm_state.clone() {
            Some(snap) => {
                // The cross-shard accounting walk only runs when the
                // engine's capacity policy will actually read the counts;
                // the default (no budget, no quota) parks unconditionally
                // and leaves sizing to the per-pool LRU bound.
                let verdict = if self.engine.warm_policy_active() {
                    let tenant_resident: usize = self
                        .shards
                        .iter()
                        .map(|s| s.pool.warm_shells_of_tenant(key.0))
                        .sum();
                    let global_resident: usize =
                        self.shards.iter().map(|s| s.pool.warm_shells()).sum();
                    self.engine.warm_release(tenant_resident, global_resident)
                } else {
                    WarmVerdict::Park {
                        evict_tenant_lru: false,
                        evict_global_lru: false,
                    }
                };
                match verdict {
                    WarmVerdict::Demote => self.shards[idx].pool.release(vm),
                    WarmVerdict::Park {
                        evict_tenant_lru,
                        evict_global_lru,
                    } => {
                        if evict_tenant_lru {
                            self.demote_warm_lru(Some(key.0));
                        }
                        if evict_global_lru {
                            self.demote_warm_lru(None);
                        }
                        let stamp = self.warm_stamp;
                        self.warm_stamp += 1;
                        self.shards[idx]
                            .pool
                            .release_warm_stamped(vm, key.0, key.1, snap, stamp);
                    }
                }
            }
            None => self.shards[idx].pool.release(vm),
        }
        let warm_hit = outcome.breakdown.warm_hit;
        let service = meta.service_before + segment;
        let finish = free + segment;

        self.avg_service = if self.avg_service == 0 {
            service
        } else {
            (7 * self.avg_service + service) / 8
        };

        let tstats = &mut self.tenants[meta.tenant.0].stats;
        tstats.served += 1;
        tstats.in_flight -= 1;
        if meta.stolen {
            tstats.stolen_serves += 1;
        }
        if warm_hit {
            // Counted from the outcome, not the acquire: a stale warm
            // shell (snapshot invalidated while parked) is wiped by the
            // runtime and serves a full restore, which is not a hit.
            tstats.warm_serves += 1;
            self.stats.warm_hits += 1;
            self.shards[idx].stats.warm_hits += 1;
        }
        if !outcome.exit.is_normal() {
            tstats.abnormal += 1;
        }
        self.stats.served += 1;
        self.stats.blocked_cycles += outcome.breakdown.blocked.get();
        self.shards[idx].stats.served += 1;
        let e2e = finish - meta.arrival;
        self.hist_queue_wait.record(meta.first_start - meta.arrival);
        self.hist_exec.record(service);
        self.hist_e2e.record(e2e);
        self.tenants[meta.tenant.0].e2e.record(e2e);
        if let Some(slo) = &mut self.slo {
            slo.observe_served(Cycles(finish), Cycles(e2e));
        }
        if self.trace.enabled() {
            let detail = if warm_hit {
                format!("warm_delta={}", outcome.breakdown.delta_pages)
            } else {
                String::new()
            };
            self.tspan(meta.seq, "complete", detail, finish, finish);
        }
        self.tfinish(
            meta.seq,
            if outcome.exit.is_normal() {
                "completed"
            } else {
                "abnormal"
            },
            finish,
        );
        self.completions.push(Completion {
            tenant: meta.tenant,
            virtine: meta.virtine,
            seq: logical,
            shard: idx,
            arrival: secs(meta.arrival),
            start: secs(meta.first_start),
            finish: secs(finish),
            service: secs(service),
            reused_shell: meta.reused,
            stolen_shell: meta.stolen,
            warm_hit,
            exit_normal: outcome.exit.is_normal(),
            resumes: outcome.breakdown.resumes,
            migrated: meta.migrated,
            exec_cycles: outcome.breakdown.total.get(),
            result: outcome.invocation.result,
        });
        finish
    }

    /// Records the destruction of one copy of a request (shard failure,
    /// deadline, or cancellation at `now`) against the open-request
    /// tracker, and decides what the caller must do:
    ///
    /// - [`CopyLoss::Suppressed`]: the logical request is already done,
    ///   or another copy is still live (or a retry is pending) — the
    ///   caller records nothing terminal.
    /// - [`CopyLoss::Retried`]: this was the last live copy and an
    ///   exactly-once retry was scheduled (`retry` names the cause) —
    ///   the caller records nothing terminal; the in-flight slot rides
    ///   through the backoff as `retried_in_flight`.
    /// - [`CopyLoss::Terminal`]: the caller's ordinary shed accounting
    ///   proceeds. Untracked requests (no retry/hedge policy) always
    ///   land here.
    fn lose_copy(&mut self, copy_seq: u64, now: u64, retry: Option<RetryCause>) -> CopyLoss {
        let logical = self.hedge_of.remove(&copy_seq).unwrap_or(copy_seq);
        if !self.open.contains_key(&logical) {
            return CopyLoss::Terminal;
        }
        {
            let o = self.open.get_mut(&logical).expect("checked above");
            o.copies = o.copies.saturating_sub(1);
            if o.done {
                // A loser of an already-decided race.
                self.stats.hedges_canceled += 1;
                let o = self.open.get(&logical).expect("still present");
                if o.copies == 0 && !o.pending_retry {
                    self.open.remove(&logical);
                }
                return CopyLoss::Suppressed;
            }
            if o.copies > 0 || o.pending_retry {
                // A surviving copy (or a pending retry) still carries
                // the request.
                return CopyLoss::Suppressed;
            }
        }
        if let Some(cause) = retry {
            if self.try_schedule_retry(logical, now, cause) {
                return CopyLoss::Retried;
            }
        }
        // Last copy, no retry: the request's fate is the caller's shed.
        self.open.remove(&logical);
        CopyLoss::Terminal
    }

    /// Records a finished execution (completion or `max_block` kill) of
    /// one copy against the open-request tracker. The first terminal
    /// outcome wins and is recorded under the *logical* sequence number;
    /// every later copy is a [`CopyFinish::Loser`] the caller must
    /// suppress entirely.
    fn finish_copy(&mut self, copy_seq: u64) -> CopyFinish {
        let logical = self.hedge_of.remove(&copy_seq).unwrap_or(copy_seq);
        let Some(o) = self.open.get_mut(&logical) else {
            return CopyFinish::Won { logical };
        };
        o.copies = o.copies.saturating_sub(1);
        if o.done {
            self.stats.hedges_canceled += 1;
            let o = self.open.get(&logical).expect("still present");
            if o.copies == 0 && !o.pending_retry {
                self.open.remove(&logical);
            }
            return CopyFinish::Loser;
        }
        o.done = true;
        if copy_seq != logical {
            self.stats.hedges_won += 1;
        }
        let o = self.open.get(&logical).expect("still present");
        if o.copies == 0 && !o.pending_retry {
            self.open.remove(&logical);
        }
        CopyFinish::Won { logical }
    }

    /// Attempts to schedule an exactly-once re-submission of `logical`
    /// after it lost its last live copy to a shard failure at `now`.
    /// Returns whether a retry was scheduled; refusals (no policy,
    /// attempts exhausted, retry budget empty) leave the caller to shed.
    /// The release instant is `now + backoff × 2^(attempt−1)`, jittered
    /// by the dispatcher's deterministic stream so synchronized losses
    /// do not re-converge into a thundering herd.
    fn try_schedule_retry(&mut self, logical: u64, now: u64, cause: RetryCause) -> bool {
        let (tenant, attempt) = {
            let o = self.open.get(&logical).expect("caller verified the entry");
            (o.tenant, o.attempt)
        };
        let Some(policy) = self.tenants[tenant.0].profile.retry else {
            return false;
        };
        if attempt + 1 >= policy.max_attempts {
            return false;
        }
        {
            let bucket = self.tenants[tenant.0]
                .retry_bucket
                .as_mut()
                .expect("a retry policy always builds a budget bucket");
            if !bucket.can_admit(Cycles(now), 1.0) {
                return false;
            }
            bucket.take(1.0);
        }
        let base = policy.backoff.get() as f64 * 2f64.powi(attempt as i32);
        let factor = if policy.jitter_frac > 0.0 {
            self.retry_rng
                .range_f64(1.0 - policy.jitter_frac, 1.0 + policy.jitter_frac)
        } else {
            1.0
        };
        let at = now.saturating_add((base * factor) as u64);
        {
            let o = self
                .open
                .get_mut(&logical)
                .expect("caller verified the entry");
            o.attempt += 1;
            o.pending_retry = true;
        }
        self.retry_heap.push(Reverse((at, logical)));
        let tstats = &mut self.tenants[tenant.0].stats;
        tstats.retries += 1;
        tstats.retried_in_flight += 1;
        self.stats.retried_in_flight += 1;
        match cause {
            RetryCause::Queued => self.stats.retries_queued += 1,
            RetryCause::Parked => self.stats.retries_parked += 1,
        }
        if self.trace.enabled() {
            self.tspan(
                logical,
                "retry",
                format!(
                    "attempt={} cause=shard_failed_{}",
                    attempt + 1,
                    match cause {
                        RetryCause::Queued => "queued",
                        RetryCause::Parked => "parked",
                    }
                ),
                now,
                at,
            );
        }
        true
    }

    /// Releases a pending retry at its backoff instant: re-places the
    /// request through ordinary admission placement and enqueues a fresh
    /// copy rebuilt from the pristine submit-time inputs, under the
    /// original sequence number, arrival, and deadline. A retry whose
    /// request finished while it waited (a hedge copy won the race) is
    /// silently dropped.
    fn release_retry(&mut self, logical: u64, at: u64) {
        let Some(o) = self.open.get_mut(&logical) else {
            return;
        };
        if !o.pending_retry {
            return;
        }
        o.pending_retry = false;
        let tenant = o.tenant;
        if o.done {
            // Decided while the retry waited out its backoff.
            let gone = o.copies == 0;
            if gone {
                self.open.remove(&logical);
            }
            self.tenants[tenant.0].stats.retried_in_flight -= 1;
            self.stats.retried_in_flight -= 1;
            return;
        }
        o.copies += 1;
        let virtine = o.virtine;
        let priority = o.priority;
        let deadline = o.deadline;
        let arrival = o.arrival;
        let args = o.args.clone();
        let invocation = o.invocation.respawn();
        self.tenants[tenant.0].stats.retried_in_flight -= 1;
        self.stats.retried_in_flight -= 1;
        let shard = self.place(tenant, virtine);
        self.wasp.clock().tick(costs::VSCHED_QUEUE_OP);
        self.shards[shard].enqueue_at(
            Queued {
                front: false,
                priority,
                deadline,
                seq: logical,
                tenant,
                virtine,
                args,
                invocation,
                arrival,
                resume: None,
            },
            self.config.tick.get(),
            at,
        );
        if self.trace.enabled() {
            self.tspan(logical, "retry", format!("resubmit shard={shard}"), at, at);
        }
    }

    /// Fires an armed hedge at `at`: enqueues a duplicate copy of the
    /// still-unfinished request under a fresh sequence number, placed
    /// through ordinary admission placement. First completion wins;
    /// [`Dispatcher::finish_copy`] / [`Dispatcher::lose_copy`] suppress
    /// the loser wherever it surfaces next. A hedge for a request that
    /// already finished — or one waiting on a retry backoff — is a
    /// no-op.
    fn fire_hedge(&mut self, logical: u64, at: u64) {
        let Some(o) = self.open.get_mut(&logical) else {
            return;
        };
        if o.done || o.pending_retry || o.copies == 0 {
            return;
        }
        o.copies += 1;
        let tenant = o.tenant;
        let virtine = o.virtine;
        let priority = o.priority;
        let deadline = o.deadline;
        let arrival = o.arrival;
        let args = o.args.clone();
        let invocation = o.invocation.respawn();
        let copy = self.seq;
        self.seq += 1;
        self.hedge_of.insert(copy, logical);
        self.stats.hedges_fired += 1;
        let shard = self.place(tenant, virtine);
        self.wasp.clock().tick(costs::VSCHED_QUEUE_OP);
        self.shards[shard].enqueue_at(
            Queued {
                front: false,
                priority,
                deadline,
                seq: copy,
                tenant,
                virtine,
                args,
                invocation,
                arrival,
                resume: None,
            },
            self.config.tick.get(),
            at,
        );
        if self.trace.enabled() {
            self.trace
                .begin(copy, tenant.0, virtine.into_raw() as u64, Cycles(at));
            self.tspan(copy, "hedge", format!("of={logical} shard={shard}"), at, at);
            self.tspan(
                logical,
                "hedge",
                format!("copy={copy} shard={shard}"),
                at,
                at,
            );
        }
    }

    /// The hedge fire delay for one request: the observed tail
    /// (`quantile × multiplier`) of the tenant's end-to-end latency
    /// distribution — falling back to the global distribution, then to
    /// the policy's floor while samples are scarce — but never below
    /// [`HedgePolicy::min_delay`].
    fn hedge_delay(&self, tenant: TenantId, policy: HedgePolicy) -> u64 {
        let tenant_hist = &self.tenants[tenant.0].e2e;
        let hist = if tenant_hist.count() >= policy.min_samples {
            tenant_hist
        } else {
            &self.hist_e2e
        };
        let mut delay = policy.min_delay.get();
        if hist.count() >= policy.min_samples {
            let tail = hist.quantile(policy.quantile) as f64 * policy.multiplier;
            delay = delay.max(tail as u64);
        }
        delay
    }

    /// Decision point 2 (acquire → clean steal): asks the engine for the
    /// donor — the nearest sibling with idle shells of the right size,
    /// richest within a hop class. Shells were wiped on release (§5.2),
    /// so the thief runs them directly — tenant data cannot cross shards.
    fn steal_from_sibling(&mut self, idx: usize, mem_size: usize) -> Option<(usize, kvmsim::VmFd)> {
        if !self.config.steal {
            return None;
        }
        let c = self.candidates(Some(idx), None, Some(mem_size), 0);
        let donor = self.engine.steal_clean(&c)?;
        let vm = self.shards[donor].pool.take_idle(mem_size)?;
        Some((donor, vm))
    }

    /// Decision point 3 (acquire → warm demote-steal): asks the engine
    /// for the donor shard (nearest first), then picks the victim
    /// *tenant* fairly — the thief's own warm shell when it has one
    /// parked there, otherwise the tenant holding the most (so one
    /// tenant's pressure thins the biggest hoard and can never wipe out a
    /// minority tenant's entire warm set). The last resort before
    /// `KVM_CREATE_VM`; the donor's pool performs the full (charged) wipe
    /// before the shell crosses shards, so no tenant data travels with it.
    fn steal_warm_victim(
        &mut self,
        idx: usize,
        thief_tenant: u64,
        mem_size: usize,
    ) -> Option<(usize, kvmsim::VmFd)> {
        if !self.config.steal {
            return None;
        }
        let c = self.candidates(Some(idx), None, Some(mem_size), 0);
        let donor = self.engine.steal_warm(&c)?;
        let victim = self.shards[donor]
            .pool
            .warm_victim_tenant(mem_size, thief_tenant)?;
        let vm = self.shards[donor]
            .pool
            .take_warm_victim_of(victim, mem_size)?;
        Some((donor, vm))
    }
}

/// Virtual seconds → cycles.
fn cyc(s: f64) -> u64 {
    Cycles::from_micros(s * 1e6).get()
}

/// Cycles → virtual seconds.
fn secs(c: u64) -> f64 {
    Cycles(c).as_secs()
}
