//! Per-worker shards: a private shell pool plus a priority/deadline run
//! queue and a parked set of blocked runs.
//!
//! §5.2's single shell pool amortizes `KVM_CREATE_VM`; at platform scale a
//! single pool becomes the serialization point every worker contends on.
//! Each shard therefore wraps its own [`wasp::Pool`], so the hot path —
//! clean-shell reuse, within a few percent of bare `vmrun` (Figure 8) —
//! touches only shard-local state. Cross-shard traffic exists on exactly
//! one path: work stealing, when a shard's clean list runs dry and a
//! sibling has idle shells — the donor picked by the placement engine
//! (near siblings first over the shard topology; see `crate::placement`
//! and `crate::topology`), with the per-hop transfer cost charged by
//! `dispatcher`.
//!
//! A run that blocks in `recv` (or a channel end) parks in the shard's
//! parked set: batch ticks skip it, its shell rides inside the
//! `wasp::SuspendedRun` (outside the pool — unstealable, undemotable),
//! and a wake re-queues it at the *front* of a run queue — chosen by
//! placement, not pinned to this shard — so the delivered bytes are
//! consumed before any newly admitted work.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use vclock::Cycles;
use wasp::{Invocation, Pool, SuspendedRun, VirtineId, WaitTarget};

use crate::lifecycle::ShardState;
use crate::tenant::TenantId;

/// A run suspended in a blocking wait, parked on the shard that was
/// executing it. On wake it is re-admitted through *placement* — the
/// least-loaded shard, which may not be the one it blocked on — so a
/// saturated home shard cannot hold a runnable virtine hostage (the
/// resume-time migration half of the cross-virtine-channel work).
#[derive(Debug)]
pub(crate) struct Parked {
    /// The suspended virtine: shell, invocation, and segment accounting.
    pub run: SuspendedRun,
    pub tenant: TenantId,
    pub virtine: VirtineId,
    pub seq: u64,
    pub priority: u8,
    /// Original arrival (cycles); end-to-end latency spans the park.
    pub arrival: u64,
    /// Worker-timeline position of the first execution segment's start.
    pub first_start: u64,
    /// Worker cycles consumed by the segments executed so far.
    pub service_so_far: u64,
    /// Whether the first segment ran on a stolen shell.
    pub stolen: bool,
    /// Whether any resume of this run migrated it off its blocking shard.
    pub migrated: bool,
    /// Worker-timeline position when the run parked.
    pub blocked_from: u64,
    /// Timeline position at which the tenant's `max_block` kills the run;
    /// `u64::MAX` when unbounded.
    pub timeout_at: u64,
    /// Timeline position at which shard lifecycle hard-stops the run
    /// with `ShedReason::Evicted`; `u64::MAX` while the shard is active
    /// or while the run can still be migrated out. Armed by the
    /// reconciler (drain grace) and disarmed when the shard is restored.
    pub evict_at: u64,
    /// The host object (socket or channel end) whose readiness wakes the
    /// run.
    pub target: WaitTarget,
}

/// A queued, admitted request waiting for its shard's next batch tick.
#[derive(Debug)]
pub(crate) struct Queued {
    /// Woken blocked runs re-queue at the front: they hold a live shell
    /// and already-delivered bytes, so they outrank every priority class.
    pub front: bool,
    /// Effective priority: tenant base plus per-request boost.
    pub priority: u8,
    /// Absolute deadline in cycles; `u64::MAX` when none.
    pub deadline: u64,
    /// Global submission sequence number (FIFO tie-break).
    pub seq: u64,
    pub tenant: TenantId,
    pub virtine: VirtineId,
    pub args: Vec<u8>,
    pub invocation: Invocation,
    /// Arrival timestamp in cycles.
    pub arrival: u64,
    /// A woken blocked run to resume instead of acquiring a shell and
    /// starting fresh.
    pub resume: Option<Box<Parked>>,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Queued) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Queued {}

impl Ord for Queued {
    /// Max-heap order: woken blocked runs first, then higher priority,
    /// then earlier deadline, then submission order.
    fn cmp(&self, other: &Queued) -> Ordering {
        self.front
            .cmp(&other.front)
            .then(self.priority.cmp(&other.priority))
            .then(other.deadline.cmp(&self.deadline))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Queued) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-shard statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests this shard executed.
    pub served: u64,
    /// Batch ticks this shard ran.
    pub batches: u64,
    /// Shells this shard stole from siblings.
    pub stolen_in: u64,
    /// Shells siblings stole from this shard.
    pub stolen_out: u64,
    /// Requests this shard served from its own warm list (delta re-arm).
    pub warm_hits: u64,
    /// High-water mark of the shard's queue depth.
    pub max_queue_depth: usize,
    /// Runs that parked in a blocking wait on this shard (block events).
    pub blocked: u64,
    /// Parked runs resumed after their socket became readable.
    pub resumed: u64,
    /// Parked runs killed at their tenant's `max_block` bound.
    pub blocked_timeout: u64,
    /// Worker cycles burned waiting on blocked I/O (spin-poll dispatch
    /// charges the whole park here; event-driven dispatch charges none).
    pub busy_wait_cycles: u64,
    /// Woken runs this shard received from another shard's blocked set
    /// (resume-time migration, inbound).
    pub migrated_in: u64,
    /// Woken runs that left this shard's blocked set for another shard
    /// (resume-time migration, outbound).
    pub migrated_out: u64,
}

/// One dispatcher shard: pool, run queue, parked blocked runs, and a
/// worker timeline.
pub(crate) struct Shard {
    pub pool: Pool,
    pub queue: BinaryHeap<Queued>,
    /// Blocked runs parked on this shard, keyed by their wait token.
    /// Batch ticks skip these; a socket wake moves them back to the run
    /// queue's front. Their shells live inside the `SuspendedRun`s.
    pub blocked: HashMap<u64, Parked>,
    /// Number of parked runs the worker is *spin-polling* on (spin-poll
    /// dispatch only): while nonzero the worker is occupied and runs no
    /// batches.
    pub spinning: usize,
    /// When this shard's worker finishes its current work (cycles).
    pub free_at: u64,
    /// The next batch tick at which this shard will run, `u64::MAX` when
    /// its queue is empty.
    pub next_wake: u64,
    /// Lifecycle desired/actual state (see `crate::lifecycle`). Placement
    /// only scores `Active` shards; the reconciler empties the rest.
    pub state: ShardState,
    /// Timeline position at which the current drain began; meaningful
    /// only while `state` is `Draining` (grace periods are measured from
    /// the later of this and the park).
    pub drain_since: u64,
    /// Gray failure: the worker is wedged — it runs no batches and fires
    /// no parked-run timeouts — but the shard stays `Active` and keeps
    /// being scored by placement. Only [`crate::FaultKind::HangShard`]
    /// sets this, only `UnhangShard` clears it, and only the health
    /// detector can turn the hang into a declared failure.
    pub hung: bool,
    pub stats: ShardStats,
}

impl Shard {
    pub(crate) fn new(pool: Pool) -> Shard {
        Shard {
            pool,
            queue: BinaryHeap::new(),
            blocked: HashMap::new(),
            spinning: 0,
            free_at: 0,
            next_wake: u64::MAX,
            state: ShardState::Active,
            drain_since: 0,
            hung: false,
            stats: ShardStats::default(),
        }
    }

    pub(crate) fn enqueue(&mut self, q: Queued, tick: u64) {
        self.enqueue_at(q, tick, 0);
    }

    /// Enqueues with an explicit lower bound on the batch tick — used by
    /// wake delivery, where the original arrival predates the wake.
    pub(crate) fn enqueue_at(&mut self, q: Queued, tick: u64, not_before: u64) {
        let wake = align_up(self.free_at.max(q.arrival).max(not_before), tick);
        self.next_wake = self.next_wake.min(wake);
        self.queue.push(q);
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }

    /// The earliest `max_block` expiry or lifecycle eviction instant
    /// among this shard's parked runs.
    pub(crate) fn next_timeout(&self) -> Option<(u64, u64)> {
        self.blocked
            .iter()
            .map(|(&token, p)| (p.timeout_at.min(p.evict_at), token))
            .filter(|&(at, _)| at != u64::MAX)
            .min()
    }
}

/// Rounds `t` up to the next multiple of `tick` (identity on boundaries).
pub(crate) fn align_up(t: u64, tick: u64) -> u64 {
    debug_assert!(tick > 0);
    t.div_ceil(tick) * tick
}

/// A read-only view of one shard, for stats surfaces and experiments.
#[derive(Debug, Clone, Copy)]
pub struct ShardSnapshot {
    /// Requests waiting in the shard's run queue.
    pub queue_depth: usize,
    /// Blocked runs currently parked on this shard.
    pub parked: usize,
    /// Clean shells parked in the shard's pool.
    pub idle_shells: usize,
    /// Warm shells parked in the shard's pool.
    pub warm_shells: usize,
    /// The shard worker's timeline position in virtual seconds.
    pub free_at_s: f64,
    /// Lifecycle state at snapshot time.
    pub state: ShardState,
    /// Counters.
    pub stats: ShardStats,
    /// The shard pool's own statistics.
    pub pool: wasp::PoolStats,
}

impl Shard {
    pub(crate) fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            queue_depth: self.queue.len(),
            parked: self.blocked.len(),
            idle_shells: self.pool.idle_shells(),
            warm_shells: self.pool.warm_shells(),
            free_at_s: Cycles(self.free_at).as_secs(),
            state: self.state,
            stats: self.stats,
            pool: self.pool.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(priority: u8, deadline: u64, seq: u64) -> Queued {
        Queued {
            front: false,
            priority,
            deadline,
            seq,
            tenant: TenantId(0),
            virtine: VirtineId::from_raw(0),
            args: Vec::new(),
            invocation: Invocation::default(),
            arrival: 0,
            resume: None,
        }
    }

    #[test]
    fn heap_pops_priority_then_deadline_then_fifo() {
        let mut h = BinaryHeap::new();
        h.push(q(0, u64::MAX, 1));
        h.push(q(2, u64::MAX, 2));
        h.push(q(2, 500, 3));
        h.push(q(1, 100, 4));
        h.push(q(0, u64::MAX, 0));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop()).map(|x| x.seq).collect();
        // Priority 2 first (deadline 500 beats none), then priority 1,
        // then priority 0 in submission order.
        assert_eq!(order, vec![3, 2, 4, 0, 1]);
    }

    #[test]
    fn woken_blocked_runs_outrank_every_priority_class() {
        let mut h = BinaryHeap::new();
        h.push(q(9, 100, 0));
        let mut woken = q(0, u64::MAX, 1);
        woken.front = true;
        h.push(woken);
        let order: Vec<u64> = std::iter::from_fn(|| h.pop()).map(|x| x.seq).collect();
        assert_eq!(order, vec![1, 0], "front-of-queue beats priority 9");
    }

    #[test]
    fn align_up_is_identity_on_boundaries() {
        assert_eq!(align_up(0, 100), 0);
        assert_eq!(align_up(100, 100), 100);
        assert_eq!(align_up(101, 100), 200);
        assert_eq!(align_up(1, 100), 100);
    }
}
