//! Per-worker shards: a private shell pool plus a priority/deadline run
//! queue.
//!
//! §5.2's single shell pool amortizes `KVM_CREATE_VM`; at platform scale a
//! single pool becomes the serialization point every worker contends on.
//! Each shard therefore wraps its own [`wasp::Pool`], so the hot path —
//! clean-shell reuse, within a few percent of bare `vmrun` (Figure 8) —
//! touches only shard-local state. Cross-shard traffic exists on exactly
//! one path: work stealing, when a shard's clean list runs dry and a
//! sibling has idle shells (see `dispatcher`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use vclock::Cycles;
use wasp::{Invocation, Pool, VirtineId};

use crate::tenant::TenantId;

/// A queued, admitted request waiting for its shard's next batch tick.
#[derive(Debug)]
pub(crate) struct Queued {
    /// Effective priority: tenant base plus per-request boost.
    pub priority: u8,
    /// Absolute deadline in cycles; `u64::MAX` when none.
    pub deadline: u64,
    /// Global submission sequence number (FIFO tie-break).
    pub seq: u64,
    pub tenant: TenantId,
    pub virtine: VirtineId,
    pub args: Vec<u8>,
    pub invocation: Invocation,
    /// Arrival timestamp in cycles.
    pub arrival: u64,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Queued) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Queued {}

impl Ord for Queued {
    /// Max-heap order: higher priority first, then earlier deadline, then
    /// submission order.
    fn cmp(&self, other: &Queued) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.deadline.cmp(&self.deadline))
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Queued) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-shard statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests this shard executed.
    pub served: u64,
    /// Batch ticks this shard ran.
    pub batches: u64,
    /// Shells this shard stole from siblings.
    pub stolen_in: u64,
    /// Shells siblings stole from this shard.
    pub stolen_out: u64,
    /// Requests this shard served from its own warm list (delta re-arm).
    pub warm_hits: u64,
    /// High-water mark of the shard's queue depth.
    pub max_queue_depth: usize,
}

/// One dispatcher shard: pool, run queue, and a worker timeline.
pub(crate) struct Shard {
    pub pool: Pool,
    pub queue: BinaryHeap<Queued>,
    /// When this shard's worker finishes its current work (cycles).
    pub free_at: u64,
    /// The next batch tick at which this shard will run, `u64::MAX` when
    /// its queue is empty.
    pub next_wake: u64,
    pub stats: ShardStats,
}

impl Shard {
    pub(crate) fn new(pool: Pool) -> Shard {
        Shard {
            pool,
            queue: BinaryHeap::new(),
            free_at: 0,
            next_wake: u64::MAX,
            stats: ShardStats::default(),
        }
    }

    pub(crate) fn enqueue(&mut self, q: Queued, tick: u64) {
        let wake = align_up(self.free_at.max(q.arrival), tick);
        self.next_wake = self.next_wake.min(wake);
        self.queue.push(q);
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
    }
}

/// Rounds `t` up to the next multiple of `tick` (identity on boundaries).
pub(crate) fn align_up(t: u64, tick: u64) -> u64 {
    debug_assert!(tick > 0);
    t.div_ceil(tick) * tick
}

/// A read-only view of one shard, for stats surfaces and experiments.
#[derive(Debug, Clone, Copy)]
pub struct ShardSnapshot {
    /// Requests waiting in the shard's run queue.
    pub queue_depth: usize,
    /// Clean shells parked in the shard's pool.
    pub idle_shells: usize,
    /// Warm shells parked in the shard's pool.
    pub warm_shells: usize,
    /// The shard worker's timeline position in virtual seconds.
    pub free_at_s: f64,
    /// Counters.
    pub stats: ShardStats,
    /// The shard pool's own statistics.
    pub pool: wasp::PoolStats,
}

impl Shard {
    pub(crate) fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            queue_depth: self.queue.len(),
            idle_shells: self.pool.idle_shells(),
            warm_shells: self.pool.warm_shells(),
            free_at_s: Cycles(self.free_at).as_secs(),
            stats: self.stats,
            pool: self.pool.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(priority: u8, deadline: u64, seq: u64) -> Queued {
        Queued {
            priority,
            deadline,
            seq,
            tenant: TenantId(0),
            virtine: VirtineId::from_raw(0),
            args: Vec::new(),
            invocation: Invocation::default(),
            arrival: 0,
        }
    }

    #[test]
    fn heap_pops_priority_then_deadline_then_fifo() {
        let mut h = BinaryHeap::new();
        h.push(q(0, u64::MAX, 1));
        h.push(q(2, u64::MAX, 2));
        h.push(q(2, 500, 3));
        h.push(q(1, 100, 4));
        h.push(q(0, u64::MAX, 0));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop()).map(|x| x.seq).collect();
        // Priority 2 first (deadline 500 beats none), then priority 1,
        // then priority 0 in submission order.
        assert_eq!(order, vec![3, 2, 4, 0, 1]);
    }

    #[test]
    fn align_up_is_identity_on_boundaries() {
        assert_eq!(align_up(0, 100), 0);
        assert_eq!(align_up(100, 100), 100);
        assert_eq!(align_up(101, 100), 200);
        assert_eq!(align_up(1, 100), 100);
    }
}
