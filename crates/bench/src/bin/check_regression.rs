//! CI bench-regression gate.
//!
//! Compares the headline metrics of freshly produced `BENCH_*.json`
//! artifacts (in the working directory, written by the acceptance bench
//! steps) against the committed baselines in `bench/baselines/`, and
//! exits non-zero when any metric regresses more than 15%:
//!
//! * lower-is-better metrics (latencies, cycles) fail above
//!   `baseline × 1.15`;
//! * higher-is-better metrics (hit rates) fail below `baseline × 0.85`;
//! * invariant metrics (busy-wait cycles, cycle identity) must hold
//!   exactly — they are correctness claims, not performance numbers.
//!
//! The benches run on a deterministic virtual clock, so in an unchanged
//! tree current == baseline bit-for-bit; the 15% band exists to absorb
//! intentional cost-model tweaks while still catching real regressions.
//! Refresh a baseline by re-running the bench and committing the JSON.

use bench::json::Json;

/// Relative tolerance before a drift counts as a regression.
const TOLERANCE: f64 = 0.15;

struct Gate {
    failures: u32,
    checks: u32,
}

impl Gate {
    /// One lower-is-better comparison.
    fn lower(&mut self, what: &str, baseline: f64, current: f64) {
        self.report(
            what,
            baseline,
            current,
            current <= baseline * (1.0 + TOLERANCE),
        );
    }

    /// One higher-is-better comparison.
    fn higher(&mut self, what: &str, baseline: f64, current: f64) {
        self.report(
            what,
            baseline,
            current,
            current >= baseline * (1.0 - TOLERANCE),
        );
    }

    /// One exact invariant (correctness, not performance).
    fn exact(&mut self, what: &str, baseline: f64, current: f64) {
        self.report(what, baseline, current, current == baseline);
    }

    /// One baseline-independent floor: `current` must be at least `floor`.
    fn at_least(&mut self, what: &str, floor: f64, current: f64) {
        self.report(what, floor, current, current >= floor);
    }

    fn report(&mut self, what: &str, baseline: f64, current: f64, ok: bool) {
        self.checks += 1;
        let delta = if baseline != 0.0 {
            format!("{:+.1}%", (current - baseline) / baseline * 100.0)
        } else {
            "n/a".to_string()
        };
        let verdict = if ok { "ok" } else { "REGRESSED" };
        println!("{verdict:>10}  {what:<58} baseline {baseline:>12.4}  current {current:>12.4}  ({delta})");
        if !ok {
            self.failures += 1;
        }
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

/// Loads a committed baseline by stem, resolving the baselines directory
/// from the repo root (`crates/bench/baselines`) or the bench crate
/// (`baselines`) so the gate runs from either working directory.
fn load_baseline(stem: &str) -> Json {
    for dir in ["crates/bench/baselines", "bench/baselines", "baselines"] {
        let path = format!("{dir}/{stem}.json");
        if std::path::Path::new(&path).exists() {
            return load(&path);
        }
    }
    panic!("no committed baseline for `{stem}` (looked under crates/bench/baselines)");
}

fn num(j: &Json, path: &str, file: &str) -> f64 {
    j.path(path)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{file}: missing numeric field `{path}`"))
}

/// The warm_placement macro row the gate tracks: snapshot-aware placement
/// at 4 shards with warm capacity 2 (the configuration the PR 2
/// acceptance pinned).
fn warm_macro_row(j: &Json, file: &str) -> Json {
    j.get("macro")
        .map(Json::items)
        .unwrap_or_default()
        .iter()
        .find(|row| {
            row.get("label").and_then(Json::as_str) == Some("snapshot-aware")
                && row.get("shards").and_then(Json::as_f64) == Some(4.0)
                && row.get("warm_capacity").and_then(Json::as_f64) == Some(2.0)
        })
        .cloned()
        .unwrap_or_else(|| panic!("{file}: no snapshot-aware/4-shard/cap-2 macro row"))
}

/// The blocked_io run row with the given label.
fn blocked_run_row(j: &Json, label: &str, file: &str) -> Json {
    j.get("runs")
        .map(Json::items)
        .unwrap_or_default()
        .iter()
        .find(|row| row.get("label").and_then(Json::as_str) == Some(label))
        .cloned()
        .unwrap_or_else(|| panic!("{file}: no run labelled `{label}`"))
}

fn main() {
    let mut gate = Gate {
        failures: 0,
        checks: 0,
    };
    println!(
        "# bench regression gate: current BENCH_*.json vs bench/baselines/ (>{:.0}% fails)",
        TOLERANCE * 100.0
    );

    // -- warm_placement -----------------------------------------------------
    let base = load_baseline("warm_placement");
    let cur = load("BENCH_warm_placement.json");
    gate.lower(
        "warm_placement: micro.warm_acquire_image_cycles",
        num(&base, "micro.warm_acquire_image_cycles", "baseline"),
        num(&cur, "micro.warm_acquire_image_cycles", "current"),
    );
    let (b_row, c_row) = (
        warm_macro_row(&base, "baseline"),
        warm_macro_row(&cur, "current"),
    );
    gate.lower(
        "warm_placement: snapshot-aware/4sh/cap2 p99_ms",
        num(&b_row, "p99_ms", "baseline"),
        num(&c_row, "p99_ms", "current"),
    );
    gate.higher(
        "warm_placement: snapshot-aware/4sh/cap2 warm_hit_rate",
        num(&b_row, "warm_hit_rate", "baseline"),
        num(&c_row, "warm_hit_rate", "current"),
    );

    // -- blocked_io ---------------------------------------------------------
    let base = load_baseline("blocked_io");
    let cur = load("BENCH_blocked_io.json");
    for label in ["baseline (no slow clients)", "event-driven + slow clients"] {
        let b = blocked_run_row(&base, label, "baseline");
        let c = blocked_run_row(&cur, label, "current");
        gate.lower(
            &format!("blocked_io: `{label}` fast_p99_ms"),
            num(&b, "fast_p99_ms", "baseline"),
            num(&c, "fast_p99_ms", "current"),
        );
    }
    let event = blocked_run_row(&cur, "event-driven + slow clients", "current");
    gate.exact(
        "blocked_io: event-driven busy_wait_cycles stays zero",
        0.0,
        num(&event, "busy_wait_cycles", "current"),
    );

    // -- topology_steal -----------------------------------------------------
    let base = load_baseline("topology_steal");
    let cur = load("BENCH_topology_steal.json");
    for metric in ["steal.same_ccx", "steal.cross_ccx", "steal.cross_socket"] {
        // Steal-distance resolution is a correctness claim of the
        // placement engine, not a performance number: the ladder must
        // drain exactly near-to-far.
        gate.exact(
            &format!("topology_steal: {metric}"),
            num(&base, metric, "baseline"),
            num(&cur, metric, "current"),
        );
    }
    let warm_row = |j: &Json, label: &str, file: &str| -> Json {
        j.get("warm")
            .map(Json::items)
            .unwrap_or_default()
            .iter()
            .find(|row| row.get("label").and_then(Json::as_str) == Some(label))
            .cloned()
            .unwrap_or_else(|| panic!("{file}: no warm run labelled `{label}`"))
    };
    let (b_row, c_row) = (
        warm_row(&base, "budget 11 + quota 3", "baseline"),
        warm_row(&cur, "budget 11 + quota 3", "current"),
    );
    gate.higher(
        "topology_steal: budget+quota overall_hit_rate",
        num(&b_row, "overall_hit_rate", "baseline"),
        num(&c_row, "overall_hit_rate", "current"),
    );
    gate.higher(
        "topology_steal: budget+quota heavy_hit_rate",
        num(&b_row, "heavy_hit_rate", "baseline"),
        num(&c_row, "heavy_hit_rate", "current"),
    );
    gate.lower(
        "topology_steal: budget+quota p50_ms",
        num(&b_row, "p50_ms", "baseline"),
        num(&c_row, "p50_ms", "current"),
    );

    // -- chan_pipeline ------------------------------------------------------
    let base = load_baseline("chan_pipeline");
    let cur = load("BENCH_chan_pipeline.json");
    for metric in ["pipeline.stage_p99_ms", "pipeline.e2e_p99_ms"] {
        gate.lower(
            &format!("chan_pipeline: {metric}"),
            num(&base, metric, "baseline"),
            num(&cur, metric, "current"),
        );
    }
    gate.exact(
        "chan_pipeline: parked == unparked guest cycles (identity)",
        num(&cur, "cycle_identity.unparked_exec_cycles", "current"),
        num(&cur, "cycle_identity.parked_exec_cycles", "current"),
    );
    gate.higher(
        "chan_pipeline: skew migrations >= baseline floor",
        1.0,
        num(&cur, "skew.migrations", "current"),
    );

    // -- slo_observe --------------------------------------------------------
    let base = load_baseline("slo_observe");
    let cur = load("BENCH_slo_observe.json");
    gate.lower(
        "slo_observe: page alert_fire_cycles after budget slash",
        num(&base, "alert_fire_cycles", "baseline"),
        num(&cur, "alert_fire_cycles", "current"),
    );
    gate.exact(
        "slo_observe: page alert clears after recovery",
        1.0,
        num(&cur, "alert_cleared", "current"),
    );
    // Tracing must stay off the served-latency critical path: the
    // ablation overhead is a correctness claim (spans charge the global
    // clock, never the worker timeline), gated exactly at zero.
    gate.exact(
        "slo_observe: tracing overhead_pct on served e2e",
        num(&base, "overhead_pct", "baseline"),
        num(&cur, "overhead_pct", "current"),
    );
    gate.lower(
        "slo_observe: healthy-phase warm p90 (µs)",
        num(&base, "warm_p90_us", "baseline"),
        num(&cur, "warm_p90_us", "current"),
    );

    // -- drain_evict --------------------------------------------------------
    let base = load_baseline("drain_evict");
    let cur = load("BENCH_drain_evict.json");
    // Exactly-once under lifecycle churn is a correctness invariant, not
    // a performance number: gated exactly at zero, no drift allowance.
    gate.exact(
        "drain_evict: zero lost runs across drain/restore/fault phases",
        0.0,
        num(&cur, "lost", "current"),
    );
    gate.exact(
        "drain_evict: zero double-runs (re-homed work executes once)",
        0.0,
        num(&cur, "double_run", "current"),
    );
    gate.lower(
        "drain_evict: drain-window p99 (µs)",
        num(&base, "drain.p99_us", "baseline"),
        num(&cur, "drain.p99_us", "current"),
    );
    gate.higher(
        "drain_evict: post-restore warm-hit rate",
        num(&base, "recovered.warm_hit_rate", "baseline"),
        num(&cur, "recovered.warm_hit_rate", "current"),
    );

    // -- fault_recovery -----------------------------------------------------
    let base = load_baseline("fault_recovery");
    let cur = load("BENCH_fault_recovery.json");
    // The failover contract is correctness, not performance: nothing
    // lost, nothing double-run, and the detector never pages on a live
    // shard — all gated exactly, no drift allowance.
    gate.exact(
        "fault_recovery: zero lost runs across failover",
        0.0,
        num(&cur, "lost", "current"),
    );
    gate.exact(
        "fault_recovery: zero duplicates (retries and hedges dedup)",
        0.0,
        num(&cur, "duplicates", "current"),
    );
    gate.exact(
        "fault_recovery: detector false positives",
        0.0,
        num(&cur, "detector.false_positives", "current"),
    );
    gate.exact(
        "fault_recovery: detector-declared failures",
        num(&base, "detector.declared", "baseline"),
        num(&cur, "detector.declared", "current"),
    );
    gate.exact(
        "fault_recovery: probe-driven restores",
        num(&base, "detector.restored", "baseline"),
        num(&cur, "detector.restored", "current"),
    );
    gate.lower(
        "fault_recovery: steady p99 (µs)",
        num(&base, "steady.p99_us", "baseline"),
        num(&cur, "steady.p99_us", "current"),
    );
    gate.lower(
        "fault_recovery: hedged straggler-mix p99 factor",
        num(&base, "straggler.p99_factor", "baseline"),
        num(&cur, "straggler.p99_factor", "current"),
    );

    // -- ingress_fanout -------------------------------------------------------
    let base = load_baseline("ingress_fanout");
    let cur = load("BENCH_ingress_fanout.json");
    // Cluster-scale exactly-once is correctness: nothing lost in any
    // scenario, nothing double-run across a fence-and-replay failover,
    // and the node-level detector neither misses nor invents failures.
    for scenario in ["single", "fanout", "failover"] {
        gate.exact(
            &format!("ingress_fanout: zero lost connections ({scenario})"),
            0.0,
            num(&cur, &format!("{scenario}.lost"), "current"),
        );
    }
    gate.exact(
        "ingress_fanout: zero duplicates across cross-node failover",
        0.0,
        num(&cur, "failover.duplicates", "current"),
    );
    gate.exact(
        "ingress_fanout: detector-declared node failures",
        num(&base, "failover.detector.declared", "baseline"),
        num(&cur, "failover.detector.declared", "current"),
    );
    gate.exact(
        "ingress_fanout: probe-driven node restores",
        num(&base, "failover.detector.restored", "baseline"),
        num(&cur, "failover.detector.restored", "current"),
    );
    gate.exact(
        "ingress_fanout: node-detector false positives",
        0.0,
        num(&cur, "failover.detector.false_positives", "current"),
    );
    gate.lower(
        "ingress_fanout: fan-out p99 drift vs single-node (factor)",
        num(&base, "fanout.p99_factor", "baseline"),
        num(&cur, "fanout.p99_factor", "current"),
    );
    gate.lower(
        "ingress_fanout: failover p99 (µs)",
        num(&base, "failover.p99_us", "baseline"),
        num(&cur, "failover.p99_us", "current"),
    );

    // -- interp_speed ---------------------------------------------------------
    let base = load_baseline("interp_speed");
    let cur = load("BENCH_interp_speed.json");
    for (i, kernel) in ["fib", "http"].iter().enumerate() {
        // Retired instructions and virtual cycles are the deterministic
        // guest-side observables: any drift means the interpreter's
        // semantics or cost model changed, not the host machine.
        for field in ["insts", "virt_cycles"] {
            gate.exact(
                &format!("interp_speed: {kernel} {field}"),
                num(&base, &format!("kernels.{i}.{field}"), "baseline"),
                num(&cur, &format!("kernels.{i}.{field}"), "current"),
            );
        }
        // The cycle-identity contract: fast and reference engines agree on
        // instructions, cycles, and the computed result, bit for bit.
        gate.exact(
            &format!("interp_speed: {kernel} engines byte- and cycle-identical"),
            1.0,
            num(&cur, &format!("kernels.{i}.cycle_identical"), "current"),
        );
        // Host wall-clock is nondeterministic, so the speedup is gated as a
        // floor against the PR's >=2x claim, not against the baseline.
        gate.at_least(
            &format!("interp_speed: {kernel} fast-over-reference speedup >= 2x"),
            2.0,
            num(&cur, &format!("kernels.{i}.speedup"), "current"),
        );
    }

    println!("#");
    if gate.failures > 0 {
        println!(
            "# {} of {} checks regressed beyond {:.0}%",
            gate.failures,
            gate.checks,
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("# all {} checks within tolerance", gate.checks);
}
