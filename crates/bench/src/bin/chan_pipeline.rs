//! Cross-virtine channel pipelines: producer/consumer stages at 4 shards.
//!
//! The FaaS-chaining workload (Catalyzer/SEUSS): each item flows through
//! an N-stage virtine pipeline — producer → middle stages → consumer —
//! wired over host-mediated channels (`vchan`). Every hop is a mask-gated
//! hypercall; a stage that outruns its upstream parks in `chan_recv`
//! (an exit, not a busy-wait) and the wake re-admits it through
//! *placement*, migrating it off a saturated shard.
//!
//! Three measurements:
//!
//! * **pipeline** — M items × S stages at 4 shards: per-stage and
//!   end-to-end latency (p50/p99), park/resume counts, and migrations.
//! * **cycle identity** — the §5/§6 accounting invariant extended to
//!   channels: a consumer that parked mid-stream (twice!) charges
//!   byte-identical guest cycles to one that never parked.
//! * **skew** — a consumer parks on a shard whose queue then backs up;
//!   its wake must land on a non-blocking shard (≥1 resume-time
//!   migration) and still charge identical guest cycles.
//!
//! Writes `BENCH_chan_pipeline.json` for CI; `check_regression` gates the
//! p99s against the committed baseline.

use std::fmt::Write as _;

use vsched::{Dispatcher, DispatcherConfig, Placement, Request, TenantProfile};
use wasp::{HypercallMask, Invocation, VirtineSpec, Wasp};

const MEM: usize = 64 * 1024;
const SHARDS: usize = 4;
const STAGES: usize = 3;
const ITEMS: usize = 200;

fn dispatcher(config: DispatcherConfig) -> Dispatcher {
    Dispatcher::new(Wasp::new_kvm_default(), config)
}

/// Stage 0: writes an 8-byte payload and sends it downstream (handle 0).
fn producer_spec() -> VirtineSpec {
    let img = visa::assemble(
        "
.org 0x8000
  mov r1, 0x100
  mov r5, 0x1122334455667788
  store.q [r1], r5
  mov r0, 12           ; chan_send(0, 0x100, 8)
  mov r1, 0
  mov r2, 0x100
  mov r3, 8
  mov r4, 0
  out 0x1, r0
  hlt
",
    )
    .unwrap();
    VirtineSpec::new("producer", img, MEM)
        .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_SEND]))
        .with_snapshot(false)
}

/// Middle stage: receives from handle 0, forwards to handle 1.
fn relay_spec() -> VirtineSpec {
    let img = visa::assemble(
        "
.org 0x8000
  mov r0, 13           ; chan_recv(0, 0x200, 64)
  mov r1, 0
  mov r2, 0x200
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  mov r7, r0           ; received length
  mov r0, 12           ; chan_send(1, 0x200, len)
  mov r1, 1
  mov r2, 0x200
  mov r3, r7
  mov r4, 0
  out 0x1, r0
  hlt
",
    )
    .unwrap();
    VirtineSpec::new("relay", img, MEM)
        .with_policy(HypercallMask::allowing(&[
            wasp::nr::CHAN_RECV,
            wasp::nr::CHAN_SEND,
        ]))
        .with_snapshot(false)
}

/// Final stage: receives from handle 0, returns the bytes, exits.
fn consumer_spec() -> VirtineSpec {
    let img = visa::assemble(
        "
.org 0x8000
  mov r0, 13           ; chan_recv(0, 0x200, 64)
  mov r1, 0
  mov r2, 0x200
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  mov r7, r0
  mov r0, 10           ; return_data(0x200, len)
  mov r1, 0x200
  mov r2, r7
  out 0x1, r0
  mov r0, 0            ; exit(0)
  mov r1, 0
  out 0x1, r0
",
    )
    .unwrap();
    VirtineSpec::new("consumer", img, MEM)
        .with_policy(HypercallMask::allowing(&[
            wasp::nr::CHAN_RECV,
            wasp::nr::RETURN_DATA,
        ]))
        .with_snapshot(false)
}

/// A two-recv consumer for the cycle-identity check: parks mid-stream
/// when the second message lags, never parks when both are pre-queued.
fn two_recv_spec() -> VirtineSpec {
    let img = visa::assemble(
        "
.org 0x8000
  mov r0, 13           ; chan_recv #1
  mov r1, 0
  mov r2, 0x200
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  mov r7, r0
  mov r0, 13           ; chan_recv #2
  mov r1, 0
  mov r2, 0x300
  mov r3, 64
  mov r4, 0
  out 0x1, r0
  add r7, r0
  mov r0, r7
  hlt
",
    )
    .unwrap();
    VirtineSpec::new("two_recv", img, MEM)
        .with_policy(HypercallMask::allowing(&[wasp::nr::CHAN_RECV]))
        .with_snapshot(false)
}

struct PipelineResult {
    stage_p50_ms: f64,
    stage_p99_ms: f64,
    e2e_p50_ms: f64,
    e2e_p99_ms: f64,
    served: u64,
    blocked: u64,
    resumed: u64,
    migrations: u64,
}

/// M items through an S-stage pipeline at 4 shards.
fn run_pipeline() -> PipelineResult {
    let mut d = dispatcher(DispatcherConfig {
        shards: SHARDS,
        ..DispatcherConfig::default()
    });
    let producer = d.register(producer_spec()).unwrap();
    let relay = d.register(relay_spec()).unwrap();
    let consumer = d.register(consumer_spec()).unwrap();
    let tenant = d.add_tenant(TenantProfile::new("pipe").with_mask(HypercallMask::ALLOW_ALL));

    let kernel = d.wasp().kernel().clone();
    for item in 0..ITEMS {
        let t = item as f64 * 50e-6;
        // S stages need S-1 channels: stage i reads chans[i-1], writes
        // chans[i] (guest handle 0 = upstream, handle 1 = downstream).
        let chans: Vec<_> = (0..STAGES - 1).map(|_| kernel.chan_open(256)).collect();
        d.submit(
            Request::new(tenant, producer, t)
                .with_invocation(Invocation::default().with_chans(vec![chans[0]])),
        )
        .unwrap();
        for mid in 1..STAGES - 1 {
            d.submit(Request::new(tenant, relay, t).with_invocation(
                Invocation::default().with_chans(vec![chans[mid - 1], chans[mid]]),
            ))
            .unwrap();
        }
        d.submit(
            Request::new(tenant, consumer, t)
                .with_invocation(Invocation::default().with_chans(vec![chans[STAGES - 2]])),
        )
        .unwrap();
    }
    d.run_to_idle();

    let completions = d.completions();
    assert_eq!(completions.len(), ITEMS * STAGES, "every stage completes");
    for c in completions {
        assert!(c.exit_normal, "stage failed");
    }
    // The payload survived every hop.
    let payload = 0x1122334455667788u64.to_le_bytes();
    for c in completions.iter().filter(|c| c.virtine == consumer) {
        assert_eq!(c.result, payload, "payload corrupted in flight");
    }

    let stage_lat: Vec<f64> = completions
        .iter()
        .map(vsched::Completion::latency)
        .collect();
    let e2e_lat: Vec<f64> = completions
        .iter()
        .filter(|c| c.virtine == consumer)
        .map(vsched::Completion::latency)
        .collect();
    let s = d.stats();
    // Shared cycle histogram (the /metrics bucketing), not ad-hoc math.
    let stage_h = bench::latency_histogram(&stage_lat);
    let e2e_h = bench::latency_histogram(&e2e_lat);
    PipelineResult {
        stage_p50_ms: bench::hist_percentile_ms(&stage_h, 50.0),
        stage_p99_ms: bench::hist_percentile_ms(&stage_h, 99.0),
        e2e_p50_ms: bench::hist_percentile_ms(&e2e_h, 50.0),
        e2e_p99_ms: bench::hist_percentile_ms(&e2e_h, 99.0),
        served: s.served,
        blocked: s.blocked,
        resumed: s.resumed,
        migrations: s.migrations,
    }
}

/// The cycle-identity scenario: one consumer, two messages, one shard.
/// With `pre_send` both messages wait in the channel before the consumer
/// runs; without it the consumer parks for each. Returns
/// (exec_cycles, resumes) of the consumer's completion.
fn run_identity(pre_send: bool) -> (u64, u32) {
    let mut d = dispatcher(DispatcherConfig {
        shards: 1,
        ..DispatcherConfig::default()
    });
    let consumer = d.register(two_recv_spec()).unwrap();
    let tenant = d.add_tenant(TenantProfile::new("t").with_mask(HypercallMask::ALLOW_ALL));
    let chan = d.wasp().kernel().chan_open(256);
    if pre_send {
        d.wasp().kernel().chan_send(chan, b"alpha---").unwrap();
        d.wasp().kernel().chan_send(chan, b"beta----").unwrap();
    }
    d.submit(
        Request::new(tenant, consumer, 0.0)
            .with_invocation(Invocation::default().with_chans(vec![chan])),
    )
    .unwrap();
    if !pre_send {
        // Park at recv #1, deliver, let the resume actually execute (a
        // wake delivered at time t runs in the *next* advance past t) and
        // park at recv #2, then deliver again — two full rounds.
        d.run_until(0.002);
        d.wasp().kernel().chan_send(chan, b"alpha---").unwrap();
        d.run_until(0.005);
        d.run_until(0.008);
        d.wasp().kernel().chan_send(chan, b"beta----").unwrap();
    }
    d.run_to_idle();
    let c = d.completions().last().unwrap();
    assert!(c.exit_normal);
    (c.exec_cycles, c.resumes)
}

/// The skew scenario: a consumer parks on its tenant's home shard 0;
/// while it waits, 24 filler requests pile onto that shard's queue; the
/// wake must re-admit it on a less-loaded sibling. Returns
/// (migrations, landing shard, exec_cycles of the migrated consumer).
fn run_skew() -> (u64, usize, u64) {
    let mut d = dispatcher(DispatcherConfig {
        shards: SHARDS,
        placement: Placement::ByTenant,
        ..DispatcherConfig::default()
    });
    let consumer = d.register(consumer_spec()).unwrap();
    let filler_img = visa::assemble(".org 0x8000\n mov r0, 7\n hlt\n").unwrap();
    let filler = d
        .register(VirtineSpec::new("filler", filler_img, MEM).with_snapshot(false))
        .unwrap();
    let a = d.add_tenant(TenantProfile::new("a").with_mask(HypercallMask::ALLOW_ALL));
    let chan = d.wasp().kernel().chan_open(256);
    d.submit(
        Request::new(a, consumer, 0.0)
            .with_invocation(Invocation::default().with_chans(vec![chan])),
    )
    .unwrap();
    d.run_until(0.001);
    assert_eq!(d.parked(), 1, "consumer must park on the empty channel");
    for _ in 0..24 {
        d.submit(Request::new(a, filler, 0.002)).unwrap();
    }
    d.wasp().kernel().chan_send(chan, b"deadbeef").unwrap();
    d.run_until(0.0021);
    d.run_to_idle();
    let c = d
        .completions()
        .iter()
        .find(|c| c.virtine == consumer)
        .unwrap();
    assert!(c.exit_normal && c.migrated);
    (d.stats().migrations, c.shard, c.exec_cycles)
}

fn main() {
    let host = bench::HostTimer::start();
    bench::header(
        "Cross-virtine channel pipeline: producer/consumer stages at 4 shards",
        "pipeline stages exchange bytes over host-mediated channels; a \
         stage that outruns its upstream parks (an exit, not a busy-wait) \
         and its wake re-admits it through placement — migrating off a \
         saturated shard — while charging byte-identical guest cycles",
    );
    println!("# {ITEMS} items x {STAGES} stages, {SHARDS} shards");

    let p = run_pipeline();
    println!(
        "{:<28} | {:>14} {:>14} {:>12} {:>12} {:>8} {:>8} {:>10}",
        "run",
        "stage p50(ms)",
        "stage p99(ms)",
        "e2e p50(ms)",
        "e2e p99(ms)",
        "blocked",
        "resumed",
        "migrations"
    );
    println!(
        "{:<28} | {:>14.4} {:>14.4} {:>12.4} {:>12.4} {:>8} {:>8} {:>10}",
        "pipeline",
        p.stage_p50_ms,
        p.stage_p99_ms,
        p.e2e_p50_ms,
        p.e2e_p99_ms,
        p.blocked,
        p.resumed,
        p.migrations,
    );

    // Acceptance 1: byte-identical guest cycles, parked or not.
    let (unparked_cycles, unparked_resumes) = run_identity(true);
    let (parked_cycles, parked_resumes) = run_identity(false);
    assert_eq!(unparked_resumes, 0, "pre-queued messages must not park");
    assert_eq!(
        parked_resumes, 2,
        "lagging messages park the consumer twice"
    );
    assert_eq!(
        parked_cycles, unparked_cycles,
        "a consumer that parked mid-stream must charge byte-identical \
         guest cycles ({parked_cycles} vs {unparked_cycles})"
    );
    println!("#");
    println!(
        "# cycle identity: unparked {unparked_cycles} cycles == parked {parked_cycles} \
         (over {parked_resumes} park/resume rounds)"
    );

    // Acceptance 2: under skewed load, the resume lands on a non-blocking
    // shard — and still charges the same guest cycles as an unskewed run.
    let (migrations, landed, skew_cycles) = run_skew();
    assert!(
        migrations >= 1,
        "skew must force >= 1 resume-time migration"
    );
    assert_ne!(landed, 0, "the wake must land off the saturated home shard");
    println!(
        "# skew: {migrations} migration(s), consumer landed on shard {landed} \
         ({skew_cycles} guest cycles)"
    );

    // The migrated consumer's guest cycles match the pipeline consumers'
    // (same image, same payload size): migration is accounting-invisible.
    assert!(
        p.resumed >= p.blocked / 2,
        "wakes must actually resume runs"
    );
    assert_eq!(p.served, (ITEMS * STAGES) as u64);

    // JSON artifact for the CI regression gate.
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"pipeline\": {{\"stages\": {STAGES}, \"items\": {ITEMS}, \"shards\": {SHARDS}, \
         \"stage_p50_ms\": {:.6}, \"stage_p99_ms\": {:.6}, \"e2e_p50_ms\": {:.6}, \
         \"e2e_p99_ms\": {:.6}, \"served\": {}, \"blocked\": {}, \"resumed\": {}, \
         \"migrations\": {}}},",
        p.stage_p50_ms,
        p.stage_p99_ms,
        p.e2e_p50_ms,
        p.e2e_p99_ms,
        p.served,
        p.blocked,
        p.resumed,
        p.migrations
    );
    let _ = writeln!(
        json,
        "  \"cycle_identity\": {{\"unparked_exec_cycles\": {unparked_cycles}, \
         \"parked_exec_cycles\": {parked_cycles}, \"parked_resumes\": {parked_resumes}}},"
    );
    let _ = writeln!(
        json,
        "  \"skew\": {{\"migrations\": {migrations}, \"landed_shard\": {landed}, \
         \"exec_cycles\": {skew_cycles}}}\n}}"
    );
    bench::write_artifact("chan_pipeline", &json, &host);
}
