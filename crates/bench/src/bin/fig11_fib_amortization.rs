//! Figure 11: latency of `virtine int fib(n)` as computation grows.
//!
//! Native vs virtine vs virtine+snapshot across n; fib(0) exposes raw
//! creation overhead, larger n amortizes it (paper: ~100 µs of work).

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::stats::Summary;
use vclock::Clock;
use wasp::{Invocation, NativeRunner, Wasp, WaspConfig};

const FIB_C: &str = "
virtine int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
";

fn main() {
    let base_trials = bench::trials(50);
    bench::header(
        "Figure 11: fib(n) latency, native vs virtine vs virtine+snapshot (µs)",
        "fib(0): snapshot ~2.5x faster than cold virtine, several x slower \
         than native; slowdown ~1.0x by n=25..30 (~100µs of work amortizes)",
    );
    let unit = vcc::compile(FIB_C).expect("compile fib");
    let v = unit.virtine("fib").expect("fib");

    println!(
        "{:>3} {:>7} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "n", "trials", "native(µs)", "virtine(µs)", "snapshot(µs)", "slow", "slow+snap"
    );
    for n in [0i64, 5, 10, 15, 20, 25] {
        // Recursion cost explodes with n; scale trials down.
        let trials = match n {
            0..=10 => base_trials,
            11..=20 => (base_trials / 5).max(3),
            _ => 3,
        };

        // Native: the same image run as ordinary code.
        let native_clock = Clock::new();
        let native = NativeRunner::new(HostKernel::new(native_clock.clone(), None));
        let native_us: Vec<f64> = (0..trials)
            .map(|_| {
                let t0 = native_clock.now();
                let out = native.run(
                    &v.image,
                    v.image.entry,
                    &vcc::marshal_args(&[n]),
                    Invocation::default(),
                    v.mem_size,
                );
                assert!(matches!(
                    out.exit,
                    wasp::NativeExit::Returned(_) | wasp::NativeExit::Exited(_)
                ));
                (native_clock.now() - t0).as_micros()
            })
            .collect();

        let run_virtine = |snapshot: bool| -> Vec<f64> {
            let clock = Clock::new();
            let w = Wasp::new(
                Hypervisor::kvm(HostKernel::new(clock.clone(), None)),
                WaspConfig {
                    disable_snapshots: !snapshot,
                    ..WaspConfig::default()
                },
            );
            let id = v.register(&w).expect("register");
            (0..trials)
                .map(|_| {
                    let out = vcc::invoke(&w, id, &[n]).expect("invoke");
                    assert!(out.exit.is_normal(), "fib({n}): {:?}", out.exit);
                    out.breakdown.total.as_micros()
                })
                .collect()
        };
        let virt_us = run_virtine(false);
        let snap_us = run_virtine(true);

        let nm = Summary::of(&native_us).mean;
        let vm = Summary::of(&virt_us).mean;
        let sm = Summary::of(&snap_us).mean;
        println!(
            "{n:>3} {trials:>7} {nm:>14.2} {vm:>14.2} {sm:>14.2} {:>8.2}x {:>8.2}x",
            vm / nm,
            sm / nm
        );
    }
}
