//! Figure 2: lower bounds on execution-context creation.
//!
//! Four bars: full KVM VM creation (create + enter + hlt), bare `vmrun`
//! (`KVM_RUN` only, reusing the context), `pthread_create`+`join`, and a
//! null function call.

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::stats::Summary;
use vclock::Clock;

fn main() {
    let trials = bench::trials(1000);
    bench::header(
        "Figure 2: lower bounds on execution context creation (cycles)",
        "function << vmrun << pthread << KVM create; virtine creation \
         competes with threads and far outstrips processes",
    );
    let hlt = visa::assemble(".org 0x8000\n hlt\n hlt\n hlt\n").expect("image");

    // KVM: create VM + enter + hlt, from scratch each trial.
    let mut kvm = Vec::new();
    for _ in 0..trials {
        let clock = Clock::new();
        let hv = Hypervisor::kvm(HostKernel::new(clock.clone(), None));
        let t0 = clock.now();
        let vm = hv.create_vm(64 * 1024, 0x8000);
        vm.load_image(&hlt);
        vm.vcpu().run(100).expect("run");
        kvm.push((clock.now() - t0).get() as f64);
    }

    // vmrun: KVM_RUN on an existing context.
    let mut vmrun = Vec::new();
    {
        let clock = Clock::new();
        let hv = Hypervisor::kvm(HostKernel::new(clock.clone(), None));
        let vm = hv.create_vm(64 * 1024, 0x8000);
        vm.load_image(&hlt);
        let vcpu = vm.vcpu();
        vcpu.run(100).expect("warm");
        for _ in 0..trials.min(2) {
            // Only two further hlts in the image; re-load for more.
            let t0 = clock.now();
            vcpu.run(100).expect("run");
            vmrun.push((clock.now() - t0).get() as f64);
        }
        for _ in vmrun.len()..trials {
            vm.load_image(&hlt);
            let vcpu = vm.vcpu();
            let t0 = clock.now();
            vcpu.run(100).expect("run");
            vmrun.push((clock.now() - t0).get() as f64);
        }
    }

    // pthread create+join and null function call.
    let clock = Clock::new();
    let kernel = HostKernel::new(clock.clone(), None);
    let mut pthread = Vec::new();
    let mut func = Vec::new();
    for _ in 0..trials {
        let (_, d) = clock.time(|| kernel.pthread_create_join());
        pthread.push(d.get() as f64);
        let (_, d) = clock.time(|| kernel.function_call());
        func.push(d.get() as f64);
    }

    for (label, xs) in [
        ("KVM (create+enter+hlt)", &kvm),
        ("vmrun (KVM_RUN only)", &vmrun),
        ("Linux pthread", &pthread),
        ("function", &func),
    ] {
        bench::row(label, &Summary::of(xs));
    }
}
