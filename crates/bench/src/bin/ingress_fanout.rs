//! Cluster-scale serving: the Figure 15-style mix fanned out across
//! 2–4 `vsched` nodes behind the `vhttp` ingress tier.
//!
//! The paper stops at one machine: virtines make isolated contexts
//! cheap enough that a single host serves the §6.3 workload at native
//! speed. This bench asks the platform question on top of that
//! economics — what does the same mix look like behind an edge tier
//! that routes connections across *nodes*? Three scenarios, one
//! workload (snapshotted fast function at a fixed cadence with a
//! no-snapshot slow spin riding along — the Figure 15 mix shape):
//!
//! * **single** — one node, the intra-node baseline;
//! * **fanout** — the same offered load across `FANOUT_NODES` nodes,
//!   each identical to the single-node config: the edge's least-loaded
//!   routing (node-level `Candidate` rows, every node one `CrossNode`
//!   hop) spreads the bursts, and the p99 drops;
//! * **failover** — the fanout run with a mid-run gray failure: one
//!   node goes silent with work queued, the node-level detector
//!   declares it from observed silence alone, the cluster fences it
//!   (every shard failed — no stranded copy can double-run), the edge
//!   re-dispatches its unresolved requests cross-node (each charged
//!   `VSCHED_TRANSFER_CROSS_NODE` cycles of arrival latency), and
//!   half-open probes restore the node once the hang lifts.
//!
//! Acceptance:
//! * zero lost connections in every scenario: every accepted request
//!   ends in exactly one terminal completion or an accounted shed;
//! * zero duplicates: first-terminal-outcome-wins at the edge, fencing
//!   before re-dispatch — the exactly-once tripwire stays at zero;
//! * the failover is detector-declared (`declared == 1`, no operator
//!   call, no kill in the plan), actually exercises the replay path
//!   (`redispatched >= 1`), and is probe-restored (`restored == 1`)
//!   with zero false positives;
//! * fan-out helps: the fanout p99 stays below the single-node p99
//!   (the committed `p99_factor` gates its drift);
//! * the whole failover scenario replays bit-for-bit: two runs under
//!   one seed produce identical (edge seq, node, finish) streams.
//!
//! Writes `BENCH_ingress_fanout.json` for the CI gate.

use std::fmt::Write as _;

use vclock::stats::percentile;
use vhttp::ingress::{EdgeCompletion, Ingress, IngressRun};
use vsched::HealthConfig;
use wasp::VirtineSpec;

const MEM: usize = 64 * 1024;
const SHARDS_PER_NODE: usize = 2;
const FANOUT_NODES: usize = 3;

/// Offered load: a burst of fast connections every 100 µs, with a slow
/// one riding along every other round. Heavy enough that queues form on
/// one node (the fan-out has something to win) while a three-node
/// cluster stays comfortable.
const CADENCE_S: f64 = 0.0001;
const FAST_PER_ROUND: usize = 3;
const SLOW_EVERY: usize = 2;
const ROUNDS: usize = 200;

/// Detector randomness (probe jitter) — the replay gate runs the whole
/// failover scenario twice under this one seed.
const HEALTH_SEED: u64 = 0xFA90;

/// The failover hang: node 0 goes silent for 8 ms starting 4 ms in —
/// an eternity against the 500 µs heartbeat interval, lifted early
/// enough that recovery probes restore the node inside the run.
const FAIL_NODE: usize = 0;
const HANG_AT_S: f64 = 0.004;
const HANG_S: f64 = 0.008;

/// The §5.2 snapshotted fast function (same shape as the
/// fault_recovery mix).
fn fast_image() -> visa::asm::Image {
    visa::assemble(
        "
.org 0x8000
  mov r1, 0xA000
  mov r2, 0
fill:
  store.q [r1], r2
  add r1, 8
  add r2, 1
  cmp r2, 512
  jl fill
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r6, 0xC000
  store.q [r6], r2
  hlt
",
    )
    .expect("assemble")
}

/// The slow function: ~40k iterations of real work on every invocation
/// (no snapshot, so warm re-arms cannot shortcut it) — the mix's tail
/// and the queue-builder that gives fan-out something to win.
fn slow_image() -> visa::asm::Image {
    visa::assemble(
        "
.org 0x8000
  mov r1, 0xA000
  mov r2, 0
spin:
  store.q [r1], r2
  add r2, 1
  cmp r2, 40000
  jl spin
  hlt
",
    )
    .expect("assemble")
}

struct Outcome {
    run: IngressRun,
    nodes: usize,
    routed: Vec<u64>,
    declared_mid_run: bool,
    /// Replay fingerprint: every completion as (edge seq, node, finish
    /// bits).
    trace: Vec<(u64, usize, u64)>,
}

impl Outcome {
    fn p99_us(&self) -> f64 {
        let lat: Vec<f64> = self
            .run
            .completions
            .iter()
            .map(|c: &EdgeCompletion| (c.finish - c.arrival) * 1e6)
            .collect();
        percentile(&lat, 99.0)
    }
}

fn run_scenario(nodes: usize, with_fault: bool) -> Outcome {
    let mut ing = Ingress::new(nodes, SHARDS_PER_NODE);
    let fast = ing.register(VirtineSpec::new("fast", fast_image(), MEM));
    let slow = ing.register(VirtineSpec::new("slow", slow_image(), MEM).with_snapshot(false));
    let tenant = ing.add_tenant(
        vsched::TenantProfile::new("app"),
        f64::INFINITY,
        f64::INFINITY,
    );
    ing.set_health(HealthConfig::new().with_seed(HEALTH_SEED));
    if with_fault {
        ing.cluster_mut().hang_node_at(HANG_AT_S, FAIL_NODE, HANG_S);
    }

    let mut declared_mid_run = false;
    let mut client: u64 = 0;
    let mut t = 0.0;
    for round in 0..ROUNDS {
        t += CADENCE_S;
        for _ in 0..FAST_PER_ROUND {
            client += 1;
            ing.offer(tenant, client, fast, b"", t).expect("edge admit");
        }
        if round % SLOW_EVERY == 0 {
            client += 1;
            ing.offer(tenant, client, slow, b"", t).expect("edge admit");
        }
        ing.advance(t);
        // Declarations fire inside advance calls (including the ones
        // `offer` makes); the stats counter sees them all.
        declared_mid_run |= ing.cluster().health_stats().is_some_and(|h| h.declared > 0);
    }
    // Settle window: lets the last bursts drain and — in the failover
    // scenario — gives the recovery probes room after the hang lifts.
    ing.advance(t + 0.005);
    let routed = (0..nodes).map(|i| ing.cluster().routed_to(i)).collect();
    let run = ing.finish();
    let trace = run
        .completions
        .iter()
        .map(|c| (c.edge_seq, c.node, c.finish.to_bits()))
        .collect();
    Outcome {
        run,
        nodes,
        routed,
        declared_mid_run,
        trace,
    }
}

fn main() {
    let host = bench::HostTimer::start();
    bench::header(
        "Cluster fan-out: the Figure 15-style mix across nodes behind the vhttp ingress",
        "one edge tier routes the mix across identical vsched nodes by health \
         and load; a mid-run node failure is detector-declared, fenced, \
         replayed cross-node exactly once, and probe-restored — bit-for-bit \
         reproducibly",
    );
    println!(
        "# {FAST_PER_ROUND} fast (+ slow every {SLOW_EVERY} rounds) per {:.0} µs round, \
         {ROUNDS} rounds; {SHARDS_PER_NODE} shards/node; failover: node {FAIL_NODE} hangs \
         {:.0} ms at t={:.0} ms",
        CADENCE_S * 1e6,
        HANG_S * 1e3,
        HANG_AT_S * 1e3,
    );

    let single = run_scenario(1, false);
    let fanout = run_scenario(FANOUT_NODES, false);
    let failover = run_scenario(FANOUT_NODES, true);
    let replay = run_scenario(FANOUT_NODES, true);
    assert_eq!(
        failover.trace, replay.trace,
        "two invocations of the same seed must replay bit-for-bit"
    );

    println!(
        "{:<10} | {:>5} {:>6} {:>10} {:>6} {:>12} {:>9}",
        "scenario", "nodes", "served", "p99(µs)", "lost", "redispatched", "declared"
    );
    for (label, o) in [
        ("single", &single),
        ("fanout", &fanout),
        ("failover", &failover),
    ] {
        let h = o.run.health.as_ref().expect("detector installed");
        println!(
            "{label:<10} | {:>5} {:>6} {:>10.2} {:>6} {:>12} {:>9}",
            o.nodes,
            o.run.completions.len(),
            o.p99_us(),
            o.run.lost,
            o.run.stats.redispatched,
            h.declared,
        );
    }
    let p99_factor = fanout.p99_us() / single.p99_us();
    let h = failover.run.health.as_ref().expect("detector installed");
    println!("#");
    println!(
        "# fanout p99 ×{p99_factor:.2} of single-node; failover: declared {} restored {} \
         false-positives {} redispatched {} duplicates {}; replay ok",
        h.declared,
        h.restored,
        h.false_positives,
        failover.run.stats.redispatched,
        failover.run.stats.duplicates,
    );

    // Acceptance.
    for (label, o) in [
        ("single", &single),
        ("fanout", &fanout),
        ("failover", &failover),
    ] {
        assert_eq!(o.run.lost, 0, "{label}: accepted connections lost");
        assert_eq!(
            o.run.stats.duplicates, 0,
            "{label}: a connection completed twice"
        );
        assert!(
            o.run.stats.acceptor_wakes > 0,
            "{label}: the accept-loop virtine never woke"
        );
        assert!(o.run.acceptor.exit_normal, "{label}: acceptor died");
    }
    assert_eq!(
        single.run.health.as_ref().unwrap().declared + fanout.run.health.as_ref().unwrap().declared,
        0,
        "no declarations without a fault"
    );
    assert!(failover.declared_mid_run, "the failure must land mid-run");
    assert_eq!(
        h.declared, 1,
        "exactly the hung node must be declared — by the detector, not a plan"
    );
    assert_eq!(h.restored, 1, "the recovered node must be probed back in");
    assert_eq!(h.false_positives, 0, "the detector paged on a live node");
    assert!(
        failover.run.stats.redispatched >= 1,
        "the failover must exercise the cross-node replay path"
    );
    assert!(
        failover
            .run
            .completions
            .iter()
            .any(|c| c.evacuated && c.node != FAIL_NODE),
        "an evacuated connection should finish on a survivor"
    );
    assert!(
        fanout.routed.iter().all(|&r| r > 0),
        "fan-out must spread the load across every node (got {:?})",
        fanout.routed
    );
    assert!(
        p99_factor <= 1.0,
        "spreading the same load across {FANOUT_NODES} nodes must not raise \
         the p99 (got ×{p99_factor:.2})"
    );

    let routed_json = |o: &Outcome| {
        let items: Vec<String> = o.routed.iter().map(u64::to_string).collect();
        format!("[{}]", items.join(", "))
    };
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"single\": {{\"served\": {}, \"p99_us\": {:.4}, \"lost\": {}}},",
        single.run.completions.len(),
        single.p99_us(),
        single.run.lost
    );
    let _ = writeln!(
        json,
        "  \"fanout\": {{\"nodes\": {}, \"served\": {}, \"p99_us\": {:.4}, \
         \"p99_factor\": {:.4}, \"lost\": {}, \"routed\": {}}},",
        fanout.nodes,
        fanout.run.completions.len(),
        fanout.p99_us(),
        p99_factor,
        fanout.run.lost,
        routed_json(&fanout)
    );
    let _ = writeln!(
        json,
        "  \"failover\": {{\"served\": {}, \"p99_us\": {:.4}, \"lost\": {}, \
         \"duplicates\": {}, \"redispatched\": {}, \"transfer_cycles\": {},",
        failover.run.completions.len(),
        failover.p99_us(),
        failover.run.lost,
        failover.run.stats.duplicates,
        failover.run.stats.redispatched,
        failover.run.stats.redispatched * vclock::costs::VSCHED_TRANSFER_CROSS_NODE
    );
    let _ = writeln!(
        json,
        "    \"detector\": {{\"declared\": {}, \"restored\": {}, \"false_positives\": {}, \
         \"probes\": {}}}}},",
        h.declared, h.restored, h.false_positives, h.probes
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"fanout_nodes\": {FANOUT_NODES}, \"shards_per_node\": {SHARDS_PER_NODE}, \
         \"cadence_s\": {CADENCE_S}, \"fast_per_round\": {FAST_PER_ROUND}, \
         \"slow_every\": {SLOW_EVERY}, \"rounds\": {ROUNDS}, \"health_seed\": {HEALTH_SEED}}}\n}}"
    );
    bench::write_artifact("ingress_fanout", &json, &host);
}
