//! Health-driven failover under the Figure 15-style mix: a detector — not
//! an operator, not a scripted kill — declares a wedged shard failed,
//! the evacuation/retry machinery loses nothing, hedges escape an
//! injected straggler, and half-open probes bring the shard back.
//!
//! The reliability claim on top of the paper's economics: because
//! isolation contexts are cheap to kill and re-create (Wanninger et
//! al., EuroSys '22), failure handling can be *transparent*. The only
//! fault injected here is a gray one — [`vsched::FaultPlan::hang_shard`]
//! wedges a shard without marking it failed. Everything downstream is
//! observed behavior: suspicion accrues from missing batch-tick
//! heartbeats, a probe confirms the silence, the detector drives the
//! existing `fail_shard → reconcile → re-admit` path, and recovery
//! probes restore the shard once it wakes. Meanwhile tail hedging
//! (delay derived from the tenant's observed p99) rescues requests
//! stuck behind a straggler that never trips the detector.
//!
//! Acceptance:
//! * zero lost runs: `admitted == served + shed() + retried_in_flight`
//!   with the bridge term drained at quiesce;
//! * zero double-runs: every completion's logical sequence number is
//!   unique (hedge losers and stale retries are suppressed);
//! * the shard failure is detector-declared (`declared == 1`) and
//!   probe-restored (`restored == 1`) with `false_positives == 0` —
//!   the plan contains no `kill_shard` entry at all;
//! * hedging holds the straggler-mix p99 within 1.5× the no-straggler
//!   baseline, though the straggler wedges for 6× the baseline p99;
//! * the whole scenario replays bit-for-bit: two invocations with the
//!   same seed produce identical (seq, shard, finish) streams.
//!
//! Writes `BENCH_fault_recovery.json` for the CI gate.

use std::collections::HashSet;
use std::fmt::Write as _;

use vclock::stats::percentile;
use vclock::Cycles;
use vsched::{
    Completion, Dispatcher, DispatcherConfig, FaultPlan, HealthConfig, HedgePolicy, Placement,
    Request, RetryPolicy, ShardState, TenantProfile,
};
use wasp::{VirtineSpec, Wasp};

const MEM: usize = 64 * 1024;
const SHARDS: usize = 4;

/// Steady cadence: one fast request every 100 µs of virtual time, with
/// a slow one riding along every `SLOW_EVERY` rounds — the mix has a
/// genuine tail for the hedge delay to be derived from.
const CADENCE_S: f64 = 0.0001;
const SLOW_EVERY: usize = 4;

const STEADY_ROUNDS: usize = 100;
const STRAGGLER_ROUNDS: usize = 150;
const FAILOVER_ROUNDS: usize = 130;

/// Detector randomness (probe jitter) — the replay gate runs the whole
/// scenario twice under this one seed.
const HEALTH_SEED: u64 = 0xFA17;

/// The straggler wedges for 500 µs at a time: long enough to strand
/// work (≈ 3× the slow service time), short enough that suspicion
/// never crosses the declare threshold — a tail problem, not a failure.
const STRAGGLER_SHARD: usize = 1;
const STRAGGLER_HANG_S: f64 = 0.0005;
const STRAGGLER_PERIOD_S: f64 = 0.003;
const STRAGGLER_WINDOWS: usize = 5;

/// The failover hang: 10 ms of silence on shard 2, an eternity against
/// the 500 µs heartbeat interval. No `kill_shard` is planned — the
/// detector alone turns the silence into a declared failure.
const FAILOVER_SHARD: usize = 2;
const FAILOVER_HANG_S: f64 = 0.010;

/// The §5.2 snapshotted fast function (same shape as the drain_evict mix).
fn fast_image() -> visa::asm::Image {
    visa::assemble(
        "
.org 0x8000
  mov r1, 0xA000
  mov r2, 0
fill:
  store.q [r1], r2
  add r1, 8
  add r2, 1
  cmp r2, 512
  jl fill
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r6, 0xC000
  store.q [r6], r2
  hlt
",
    )
    .expect("assemble")
}

/// The slow function: ~40k iterations of real work on every invocation
/// (no snapshot, so warm re-arms cannot shortcut it). This is the
/// mix's tail — and the head-of-line blocker that gives hedging
/// something to do even before the straggler shows up.
fn slow_image() -> visa::asm::Image {
    visa::assemble(
        "
.org 0x8000
  mov r1, 0xA000
  mov r2, 0
spin:
  store.q [r1], r2
  add r2, 1
  cmp r2, 40000
  jl spin
  hlt
",
    )
    .expect("assemble")
}

struct Phase {
    label: &'static str,
    completions: Vec<Completion>,
    served: u64,
    hedges_fired: u64,
    hedges_won: u64,
}

impl Phase {
    fn p99_us(&self) -> f64 {
        let lat: Vec<f64> = self.completions.iter().map(|c| c.latency() * 1e6).collect();
        percentile(&lat, 99.0)
    }
}

struct Outcome {
    phases: Vec<Phase>,
    lost: i64,
    duplicates: i64,
    retries: u64,
    declared: u64,
    restored: u64,
    false_positives: u64,
    probes: u64,
    /// Replay fingerprint: every completion as (seq, shard, finish bits).
    trace: Vec<(u64, usize, u64)>,
}

fn run_scenario() -> Outcome {
    let mut d = Dispatcher::new(
        Wasp::new_kvm_default(),
        DispatcherConfig {
            shards: SHARDS,
            placement: Placement::LeastLoaded,
            warm_capacity: 4,
            tick: Cycles::from_micros(5.0),
            ..DispatcherConfig::default()
        },
    );
    d.set_health(HealthConfig::new().with_seed(HEALTH_SEED));
    // Hedge delay rides the observed p99 at a 0.25 multiplier (floored
    // at 30 µs): well under the tail it escapes, well over the fast
    // path it must not duplicate. Retry is armed so detector-driven
    // evacuation with no survivor would re-submit rather than shed.
    let tenant = d.add_tenant(
        TenantProfile::new("app")
            .with_hedge(
                HedgePolicy::new()
                    .with_quantile(0.99, 0.25)
                    .with_min_delay(0.00003),
            )
            .with_retry(RetryPolicy::new()),
    );
    let fast = d
        .register(VirtineSpec::new("fast", fast_image(), MEM))
        .expect("register");
    let slow = d
        .register(VirtineSpec::new("slow", slow_image(), MEM).with_snapshot(false))
        .expect("register");
    d.prewarm(MEM, 2);

    // Warm-up: establish the fast function's snapshot and one slow
    // sample outside the measured phases.
    let mut t = 0.0;
    for _ in 0..4 {
        t += CADENCE_S;
        d.submit(Request::new(tenant, fast, t)).expect("admit");
    }
    t += CADENCE_S;
    d.submit(Request::new(tenant, slow, t)).expect("admit");
    d.run_until(t + 0.001);
    t += 0.001;
    d.take_completions();

    let drive = |d: &mut Dispatcher, t: &mut f64, rounds: usize| {
        for round in 0..rounds {
            *t += CADENCE_S;
            d.submit(Request::new(tenant, fast, *t)).expect("admit");
            if round % SLOW_EVERY == 0 {
                d.submit(Request::new(tenant, slow, *t)).expect("admit");
            }
            d.run_until(*t);
        }
    };
    let phase = |d: &mut Dispatcher,
                 t: &mut f64,
                 label: &'static str,
                 body: &mut dyn FnMut(&mut Dispatcher, &mut f64)|
     -> Phase {
        let before = d.stats();
        body(d, t);
        // Settle, then move the cursor past the settle window so the
        // next phase's arrivals never land behind the advanced clock.
        d.run_until(*t + 0.002);
        *t += 0.002;
        let after = d.stats();
        Phase {
            label,
            completions: d.take_completions(),
            served: after.served - before.served,
            hedges_fired: after.hedges_fired - before.hedges_fired,
            hedges_won: after.hedges_won - before.hedges_won,
        }
    };

    // Steady state: the no-straggler baseline the hedge gate compares
    // against.
    let steady = phase(&mut d, &mut t, "steady", &mut |d, t| {
        drive(d, t, STEADY_ROUNDS)
    });

    // Straggler: shard 1 wedges periodically — a gray failure the
    // detector must NOT declare (suspicion stays under threshold) and
    // hedging must absorb.
    let mut plan = FaultPlan::new();
    for k in 0..STRAGGLER_WINDOWS {
        plan = plan.hang_shard(
            t + 0.0005 + k as f64 * STRAGGLER_PERIOD_S,
            STRAGGLER_SHARD,
            STRAGGLER_HANG_S,
        );
    }
    d.set_fault_plan(plan);
    let straggler = phase(&mut d, &mut t, "straggler", &mut |d, t| {
        drive(d, t, STRAGGLER_ROUNDS)
    });
    let declared_after_straggler = d.health_stats().expect("detector installed").declared;

    // Failover: shard 2 goes silent for 10 ms. The detector declares it
    // (probe-confirmed), evacuation re-homes its queue, and once the
    // hang lifts, half-open probes restore it — no operator calls.
    d.set_fault_plan(FaultPlan::new().hang_shard(t + 0.001, FAILOVER_SHARD, FAILOVER_HANG_S));
    let failover = phase(&mut d, &mut t, "failover", &mut |d, t| {
        drive(d, t, FAILOVER_ROUNDS)
    });
    assert_eq!(
        d.shard_state(FAILOVER_SHARD),
        ShardState::Active,
        "the detector must have probed the recovered shard back in"
    );
    assert!(
        d.reconcile().is_empty(),
        "a restored fleet has nothing to reconcile"
    );

    d.run_to_idle();
    let s = d.stats();
    let h = d.health_stats().expect("detector installed");
    assert_eq!(
        declared_after_straggler, 0,
        "the straggler is a tail problem, not a failure — no declaration"
    );

    let lost = s.admitted as i64 - s.served as i64 - s.shed() as i64 - s.retried_in_flight as i64;
    let all: Vec<&Completion> = [&steady, &straggler, &failover]
        .iter()
        .flat_map(|ph| ph.completions.iter())
        .collect();
    let unique: HashSet<u64> = all.iter().map(|c| c.seq).collect();
    let duplicates = all.len() as i64 - unique.len() as i64;
    let trace = all
        .iter()
        .map(|c| (c.seq, c.shard, c.finish.to_bits()))
        .collect();

    Outcome {
        phases: vec![steady, straggler, failover],
        lost,
        duplicates,
        retries: s.retries_queued + s.retries_parked,
        declared: h.declared,
        restored: h.restored,
        false_positives: h.false_positives,
        probes: h.probes,
        trace,
    }
}

fn main() {
    let host = bench::HostTimer::start();
    bench::header(
        "Health-driven failover: detector-declared failure, hedged straggler, probe-driven restore",
        "a wedged shard is declared failed from observed silence alone, its \
         work is recovered exactly once, hedges escape a straggler that never \
         trips the detector, and the whole scenario replays bit-for-bit",
    );
    println!(
        "# fast fn at {:.0} µs cadence (+ slow fn every {SLOW_EVERY} rounds) on {SHARDS} shards; \
         {STEADY_ROUNDS} steady / {STRAGGLER_ROUNDS} straggler / {FAILOVER_ROUNDS} failover rounds; \
         straggler hangs {}x{:.0} µs, failover hang {:.0} ms",
        CADENCE_S * 1e6,
        STRAGGLER_WINDOWS,
        STRAGGLER_HANG_S * 1e6,
        FAILOVER_HANG_S * 1e3,
    );

    let run = run_scenario();
    let replay = run_scenario();
    assert_eq!(
        run.trace, replay.trace,
        "two invocations of the same seed must replay bit-for-bit"
    );

    println!(
        "{:<12} | {:>6} {:>10} {:>8} {:>8}",
        "phase", "served", "p99(µs)", "hedged", "won"
    );
    for ph in &run.phases {
        println!(
            "{:<12} | {:>6} {:>10.2} {:>8} {:>8}",
            ph.label,
            ph.served,
            ph.p99_us(),
            ph.hedges_fired,
            ph.hedges_won
        );
    }
    let steady = &run.phases[0];
    let straggler = &run.phases[1];
    let failover = &run.phases[2];
    let p99_factor = straggler.p99_us() / steady.p99_us();
    println!("#");
    println!(
        "# lost {}, duplicates {}, retries {}; detector declared {} restored {} \
         false-positives {} (probes {}); straggler p99 ×{p99_factor:.2}; replay ok",
        run.lost,
        run.duplicates,
        run.retries,
        run.declared,
        run.restored,
        run.false_positives,
        run.probes,
    );

    // Acceptance.
    assert_eq!(run.lost, 0, "failover lost runs");
    assert_eq!(run.duplicates, 0, "a logical request completed twice");
    assert_eq!(
        run.declared, 1,
        "exactly the hung shard must be declared failed — by the detector, \
         not the fault plan"
    );
    assert_eq!(
        run.restored, 1,
        "the recovered shard must be probed back in"
    );
    assert_eq!(run.false_positives, 0, "the detector paged on a live shard");
    assert!(
        run.phases[1].hedges_won > 0,
        "hedges must actually rescue straggler-stranded work"
    );
    assert!(
        p99_factor <= 1.5,
        "hedging must hold the straggler-mix p99 within 1.5× the baseline \
         (got ×{p99_factor:.2})"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"lost\": {},\n  \"duplicates\": {},\n  \"retries\": {},",
        run.lost, run.duplicates, run.retries
    );
    let _ = writeln!(
        json,
        "  \"detector\": {{\"declared\": {}, \"restored\": {}, \"false_positives\": {}, \
         \"probes\": {}}},",
        run.declared, run.restored, run.false_positives, run.probes
    );
    let _ = writeln!(
        json,
        "  \"steady\": {{\"served\": {}, \"p99_us\": {:.4}, \"hedges_fired\": {}}},",
        steady.served,
        steady.p99_us(),
        steady.hedges_fired
    );
    let _ = writeln!(
        json,
        "  \"straggler\": {{\"served\": {}, \"p99_us\": {:.4}, \"hedges_fired\": {}, \
         \"hedges_won\": {}, \"p99_factor\": {:.4}}},",
        straggler.served,
        straggler.p99_us(),
        straggler.hedges_fired,
        straggler.hedges_won,
        p99_factor
    );
    let _ = writeln!(
        json,
        "  \"failover\": {{\"served\": {}, \"p99_us\": {:.4}, \"hedges_won\": {}}},",
        failover.served,
        failover.p99_us(),
        failover.hedges_won
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"shards\": {SHARDS}, \"cadence_s\": {CADENCE_S}, \
         \"slow_every\": {SLOW_EVERY}, \"steady_rounds\": {STEADY_ROUNDS}, \
         \"straggler_rounds\": {STRAGGLER_ROUNDS}, \"failover_rounds\": {FAILOVER_ROUNDS}, \
         \"health_seed\": {HEALTH_SEED}}}\n}}"
    );
    bench::write_artifact("fault_recovery", &json, &host);
}
