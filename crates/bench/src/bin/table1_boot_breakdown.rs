//! Table 1: boot-time breakdown for the minimal runtime environment.
//!
//! Instruments the classic bring-up with zero-cost milestone marks and
//! reports minimum per-component latencies in cycles, like the paper
//! (which reports minima to exclude scheduling noise).

use vclock::stats::Summary;
use vclock::Clock;
use visa::{assemble, CpuConfig, Machine};

/// Boot sequence with a mark around every Table 1 component.
const BOOT: &str = "
.org 0x8000
.equ EFER, 0xC0000080
  mark 0               ; entry (first-instruction cost already charged)
  lgdt gdt
  mark 1               ; after 16-bit lgdt
  mov r0, 1
  mov cr0, r0
  mark 2               ; after protected transition (CR0.PE)
  ljmp32 prot
prot:
  mark 3               ; after jump to 32-bit
  lgdt gdt
  mark 4               ; after 32-bit lgdt reload ('long transition')
  mov r1, 0x1000
  mov r2, 0x2003
  store.q [r1], r2
  mov r1, 0x2000
  mov r2, 0x3003
  store.q [r1], r2
  mov r3, 0
  mov r4, 0x83
  mov r5, 0x3000
loop:
  store.q [r5], r4
  add r5, 8
  add r4, 0x200000
  add r3, 1
  cmp r3, 512
  jl loop
  mov r7, 0x1000
  mov cr3, r7
  mov r7, 0x20
  mov cr4, r7
  mov r7, 0x100
  wrmsr EFER, r7
  mov r7, 0x80000001
  mov cr0, r7
  mark 5               ; after identity map + EPT construction
  ljmp64 longm
longm:
  mark 6               ; after jump to 64-bit
  hlt
gdt: .dq 0
";

fn main() {
    let trials = bench::trials(100);
    bench::header(
        "Table 1: boot-time breakdown (KVM, cycles)",
        "ident map ~28109, protected transition ~3217, lgdt(16) ~4118, \
         long transition (lgdt) ~681, ljmp32 ~175, ljmp64 ~190, first inst ~74",
    );

    let img = assemble(BOOT).expect("boot");
    let mut rows: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for _ in 0..trials {
        let clock = Clock::new();
        let mut m = Machine::new(clock.clone(), CpuConfig::default(), 4 << 20, img.entry);
        m.load_image(&img);
        // Model VM entry so the first-instruction charge applies.
        m.cpu.note_vmentry();
        let t0 = clock.now();
        m.run(100_000).expect("boot runs");
        let at = |id: u8| {
            m.cpu
                .marks
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, t)| *t)
                .expect("mark")
        };
        rows[0].push((at(0) - t0).get() as f64); // First instruction.
        rows[1].push((at(1) - at(0)).get() as f64); // lgdt from 16-bit.
        rows[2].push((at(2) - at(1)).get() as f64); // CR0.PE.
        rows[3].push((at(3) - at(2)).get() as f64); // ljmp32.
        rows[4].push((at(4) - at(3)).get() as f64); // lgdt from 32-bit.
        rows[5].push((at(5) - at(4)).get() as f64); // Ident map + EPT.
        rows[6].push((at(6) - at(5)).get() as f64); // ljmp64.
    }

    println!("{:<34} {:>10} {:>10}", "component", "min(cyc)", "paper");
    let paper = [74.0, 4118.0, 3217.0, 175.0, 681.0, 28109.0, 190.0];
    let labels = [
        "First instruction",
        "Load 32-bit GDT (lgdt, 16-bit)",
        "Protected transition (CR0.PE)",
        "Jump to 32-bit (ljmp)",
        "Long transition (lgdt, 32-bit)",
        "Paging identity mapping (+EPT)",
        "Jump to 64-bit (ljmp)",
    ];
    let mut total = 0.0;
    for ((label, samples), paper) in labels.iter().zip(&rows).zip(paper) {
        let s = Summary::of(samples);
        total += s.min;
        println!("{label:<34} {:>10.0} {paper:>10.0}", s.min);
    }
    println!("{:<34} {total:>10.0}", "total");
}
