//! Figure 12: impact of virtine image size on start-up latency.
//!
//! A minimal halting image is zero-padded from 16 KB to 16 MB; start-up
//! cost becomes memcpy-bound (the paper measures 6.7 GB/s, a 2.3 ms
//! start-up at 16 MB, with the knee at 1–2 MB).

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::stats::Summary;
use vclock::Clock;
use wasp::{HypercallMask, Invocation, VirtineSpec, Wasp, WaspConfig};

fn main() {
    let trials = bench::trials(20);
    bench::header(
        "Figure 12: image size vs start-up latency",
        "linear in image size at memcpy bandwidth (6.7 GB/s => ~2.3ms at \
         16MB); knee at 1-2MB where copying starts to dominate",
    );
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "size(KB)", "latency(µs)", "std(µs)", "MB/s"
    );

    let mut sizes = vec![16 * 1024usize];
    while *sizes.last().expect("nonempty") < 16 * 1024 * 1024 {
        sizes.push(sizes.last().expect("nonempty") * 2);
    }
    for size in sizes {
        let mut img = visa::assemble(".org 0x8000\n hlt\n").expect("image");
        img.pad_to(size);
        let mem_size = (size + 0x8000 + 4096).next_power_of_two().max(64 * 1024);

        let clock = Clock::new();
        let wasp = Wasp::new(
            Hypervisor::kvm(HostKernel::new(clock.clone(), None)),
            WaspConfig::default(),
        );
        let id = wasp
            .register(
                VirtineSpec::new("padded", img, mem_size)
                    .with_policy(HypercallMask::DENY_ALL)
                    .with_snapshot(false),
            )
            .expect("register");
        wasp.run(id, &[], Invocation::default()).expect("warm");

        let us: Vec<f64> = (0..trials)
            .map(|_| {
                let out = wasp.run(id, &[], Invocation::default()).expect("run");
                out.breakdown.total.as_micros()
            })
            .collect();
        let s = Summary::of(&us);
        let mbps = (size as f64 / (1024.0 * 1024.0)) / (s.mean / 1e6);
        println!(
            "{:>10} {:>14.1} {:>12.2} {:>12.0}",
            size / 1024,
            s.mean,
            s.std_dev,
            mbps
        );
    }
}
