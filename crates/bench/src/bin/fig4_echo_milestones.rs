//! Figure 4: echo-server startup milestones in protected mode (no paging).

use vclock::stats::Summary;
use vhttp::echo::run_echo_server;

fn main() {
    let trials = bench::trials(500);
    bench::header(
        "Figure 4: echo server startup milestones (cycles from launch)",
        "main entry ~10K cycles; request/response complete within 100-500K \
         cycles (<300µs); large stddev from the host network stack",
    );
    let runs = run_echo_server(trials, Some(42));
    let series =
        |f: fn(&vhttp::echo::EchoMilestones) -> f64| -> Vec<f64> { runs.iter().map(f).collect() };
    bench::row(
        "main entry (C code)",
        &Summary::of(&series(|m| m.to_main.get() as f64)),
    );
    bench::row(
        "recv() returned",
        &Summary::of(&series(|m| m.to_recv.get() as f64)),
    );
    bench::row(
        "send() complete",
        &Summary::of(&series(|m| m.to_send.get() as f64)),
    );
    bench::row(
        "client end-to-end",
        &Summary::of(&series(|m| m.total.get() as f64)),
    );
}
