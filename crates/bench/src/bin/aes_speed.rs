//! §6.4: `openssl speed -evp aes-128-cbc` analogue — AES-128-CBC
//! throughput natively and in a per-call virtine with snapshotting.

use vaes::run_speed;

fn main() {
    let iters = bench::trials(5);
    bench::header(
        "OpenSSL study (6.4): AES-128-CBC speed, native vs virtine+snapshot",
        "virtine invocation is memory-bound on the ~21KB image copy; \
         slowdown shrinks as the cipher block grows (paper: 17x at 16KB \
         against an AES-NI native; see EXPERIMENTS.md on the scale shift)",
    );
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "block(B)", "native(MB/s)", "virtine(MB/s)", "slowdown"
    );
    for row in run_speed(&[16, 64, 256, 1024, 4096, 16 * 1024], iters) {
        println!(
            "{:>10} {:>14.2} {:>14.2} {:>9.2}x",
            row.block_size, row.native_mbps, row.virtine_mbps, row.slowdown
        );
    }
}
