//! Topology-aware placement: near-first steal resolution and the
//! cross-shard warm budget/quota policy, at 8 shards over 2 sockets.
//!
//! Two questions, two parts:
//!
//! 1. **Steal distance**: when a shard runs dry under skewed load, do its
//!    steals drain the CCX sibling first, then the same-socket shards,
//!    and only then cross the interconnect? Six blocking-recv virtines
//!    park on shard 0 holding their shells (each acquire must steal), in
//!    three phases sized to the supply at each distance — the
//!    distance-classed steal counters must fill strictly near-to-far.
//!
//! 2. **Warm sizing**: does the engine's global-budget + per-tenant-quota
//!    policy beat the fixed per-pool LRU capacity on warm-hit rate under
//!    a cache-hostile mix? Six steady tenants (one snapshotted function
//!    each) share the platform with one churning "hog" cycling 12
//!    functions. Fixed per-pool capacity lets the hog's parks evict the
//!    steady tenants' warm shells wherever they co-reside; a quota of 2
//!    makes the hog evict *itself*, so the steady tenants keep hitting —
//!    with the budget capping total residency at *half* the fixed
//!    configuration's worst case.
//!
//! Writes `BENCH_topology_steal.json` for the CI regression gate.

use std::fmt::Write as _;

use vsched::{
    BlockMode, Dispatcher, DispatcherConfig, Placement, Request, TenantProfile, Topology,
};
use wasp::{HypercallMask, Invocation, VirtineSpec, Wasp};

const MEM: usize = 64 * 1024;

fn dispatcher(config: DispatcherConfig) -> Dispatcher {
    Dispatcher::new(Wasp::new_kvm_default(), config)
}

/// A connection-bound spec: blocking-recvs and halts — parks forever,
/// keeping its shell inside the suspension so every acquire must steal.
fn blocking_recv_spec() -> VirtineSpec {
    let img = visa::assemble(
        "
.org 0x8000
  mov r0, 7            ; recv
  mov r1, 0x4000
  mov r2, 64
  mov r3, 0            ; flags: blocking
  out 0x1, r0
  hlt
",
    )
    .expect("assemble");
    VirtineSpec::new("parked", img, MEM)
        .with_policy(HypercallMask::allowing(&[wasp::nr::RECV]))
        .with_snapshot(false)
}

struct StealLadder {
    same_ccx: u64,
    cross_ccx: u64,
    cross_socket: u64,
    /// Distance-class counters after each phase: the near-first proof.
    phases: Vec<(u64, u64, u64)>,
}

/// Part 1: drain the supply ladder. Shard 0 is the thief; supply is 2
/// shells on the CCX sibling (1), 1 each on the same-socket shards (2, 3),
/// and 2 on cross-socket shard 4.
fn steal_ladder() -> StealLadder {
    let mut d = dispatcher(DispatcherConfig {
        shards: 8,
        placement: Placement::ByTenant,
        topology: Some(Topology::grouped(2, 2, 2)),
        block: BlockMode::EventDriven,
        ..DispatcherConfig::default()
    });
    let blocked = d.register(blocking_recv_spec()).expect("register");
    let tenant = d.add_tenant(TenantProfile::new("skewed").with_mask(HypercallMask::ALLOW_ALL));
    d.prewarm_shard(1, MEM, 2);
    d.prewarm_shard(2, MEM, 1);
    d.prewarm_shard(3, MEM, 1);
    d.prewarm_shard(4, MEM, 2);

    let mut phases = Vec::new();
    let mut t = 0.0;
    let mut port = 100u16;
    // Phase sizes match the supply at each distance class.
    for phase in [2usize, 2, 2] {
        for _ in 0..phase {
            let k = d.wasp().kernel();
            k.net_listen(port).expect("listen");
            let _client = k.net_connect(port).expect("connect");
            let server = k.net_accept(port).expect("accept").expect("pending");
            port += 1;
            t += 0.001;
            d.submit(
                Request::new(tenant, blocked, t).with_invocation(Invocation::with_conn(server)),
            )
            .expect("admit");
            d.run_until(t + 0.0005);
        }
        let s = d.stats();
        phases.push((s.stolen_same_ccx, s.stolen_cross_ccx, s.stolen_cross_socket));
    }
    let s = d.stats();
    assert_eq!(d.parked(), 6, "every request parked holding a stolen shell");
    StealLadder {
        same_ccx: s.stolen_same_ccx,
        cross_ccx: s.stolen_cross_ccx,
        cross_socket: s.stolen_cross_socket,
        phases,
    }
}

/// A snapshotted function: modest init footprint, one-page per-invocation
/// dirt, so warm hits are cheap delta re-arms.
fn snap_image() -> visa::asm::Image {
    visa::assemble(
        "
.org 0x8000
  mov r1, 0xA000
  mov r2, 0
fill:
  store.q [r1], r2
  add r1, 8
  add r2, 1
  cmp r2, 512
  jl fill
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r6, 0xC000
  store.q [r6], r2
  hlt
",
    )
    .expect("assemble")
}

struct WarmRun {
    label: &'static str,
    heavy_hit_rate: f64,
    steady_hit_rate: f64,
    overall_hit_rate: f64,
    p50_ms: f64,
    max_resident: usize,
}

/// Part 2: one replay of the concentration-vs-churn mix under a
/// warm-capacity policy. Tenants home by index (ByTenant): a *heavy*
/// tenant whose three functions all land on shard 0 (more keys than the
/// fixed per-pool capacity — the classic 3-keys-over-2-LRU-slots cycle
/// that never hits), five steady single-function tenants on shards 1-5,
/// and a *hog* cycling six functions on shard 6. The fixed per-pool
/// bound thrashes the heavy tenant while five pools sit half empty; a
/// global budget lets shard 0 hold all three keys, and the per-tenant
/// quota stops the hog's churn from claiming the budget.
fn warm_run(
    label: &'static str,
    warm_capacity: usize,
    warm_budget: Option<usize>,
    warm_tenant_quota: Option<usize>,
) -> WarmRun {
    const HEAVY_FNS: usize = 3;
    const STEADY: usize = 5;
    const HOG_FNS: usize = 6;
    const ROUNDS: usize = 25;

    let mut d = dispatcher(DispatcherConfig {
        shards: 8,
        placement: Placement::ByTenant,
        topology: Some(Topology::grouped(2, 2, 2)),
        warm_capacity,
        warm_budget,
        warm_tenant_quota,
        tick: vclock::Cycles::from_micros(5.0),
        ..DispatcherConfig::default()
    });
    let img = snap_image();
    // Tenant index = home shard under ByTenant: heavy → 0, steady → 1-5,
    // hog → 6.
    let heavy = d.add_tenant(TenantProfile::new("heavy"));
    let heavy_fns: Vec<_> = (0..HEAVY_FNS)
        .map(|i| {
            d.register(VirtineSpec::new(format!("heavy{i}"), img.clone(), MEM))
                .expect("register")
        })
        .collect();
    let steady: Vec<_> = (0..STEADY)
        .map(|i| {
            let t = d.add_tenant(TenantProfile::new(format!("steady{i}")));
            let v = d
                .register(VirtineSpec::new(format!("steady{i}"), img.clone(), MEM))
                .expect("register");
            (t, v)
        })
        .collect();
    let hog = d.add_tenant(TenantProfile::new("hog"));
    let hog_fns: Vec<_> = (0..HOG_FNS)
        .map(|i| {
            d.register(VirtineSpec::new(format!("hog{i}"), img.clone(), MEM))
                .expect("register")
        })
        .collect();
    // Provisioned clean shells: residency is bounded by policy, not by
    // shell scarcity.
    d.prewarm(MEM, 2);

    let mut t = 0.0;
    let mut hog_next = 0;
    let mut max_resident = 0;
    for _ in 0..ROUNDS {
        for &virtine in &heavy_fns {
            t += 0.0001;
            d.submit(Request::new(heavy, virtine, t)).expect("admit");
        }
        for &(tenant, virtine) in &steady {
            t += 0.0001;
            d.submit(Request::new(tenant, virtine, t)).expect("admit");
        }
        for _ in 0..HOG_FNS {
            t += 0.0001;
            d.submit(Request::new(hog, hog_fns[hog_next % HOG_FNS], t))
                .expect("admit");
            hog_next += 1;
        }
        d.run_to_idle();
        max_resident = max_resident.max(d.warm_resident());
    }

    let completions = d.take_completions();
    let lat_s: Vec<f64> = completions.iter().map(|c| c.latency()).collect();
    let (mut steady_warm, mut steady_served) = (0u64, 0u64);
    for &(tenant, _) in &steady {
        let ts = d.tenant_stats(tenant);
        steady_warm += ts.warm_serves;
        steady_served += ts.served;
    }
    let hs = d.tenant_stats(heavy);
    WarmRun {
        label,
        heavy_hit_rate: hs.warm_serves as f64 / hs.served as f64,
        steady_hit_rate: steady_warm as f64 / steady_served as f64,
        overall_hit_rate: d.stats().warm_hit_rate(),
        p50_ms: bench::hist_percentile_ms(&bench::latency_histogram(&lat_s), 50.0),
        max_resident,
    }
}

fn main() {
    let host = bench::HostTimer::start();
    bench::header(
        "Topology-aware placement: near-first steals + warm budget/quota (8 shards, 2 sockets)",
        "steals drain same-CCX, then same-socket, then cross-socket donors; \
         a global warm budget + per-tenant quotas beat fixed per-pool LRU \
         capacity on hit rate under a concentrated working set",
    );

    // Part 1: the steal-distance ladder.
    let ladder = steal_ladder();
    println!("# steal ladder: supply 2 same-CCX / 2 same-socket / 2 cross-socket shells");
    println!(
        "{:<28} {:>9} {:>10} {:>13}",
        "phase", "same_ccx", "cross_ccx", "cross_socket"
    );
    for (i, &(a, b, c)) in ladder.phases.iter().enumerate() {
        println!(
            "{:<28} {a:>9} {b:>10} {c:>13}",
            format!("after {} steals", 2 * (i + 1))
        );
    }
    assert_eq!(
        ladder.phases,
        vec![(2, 0, 0), (2, 2, 0), (2, 2, 2)],
        "steals must resolve strictly near-first"
    );
    assert_eq!(
        (ladder.same_ccx, ladder.cross_ccx, ladder.cross_socket),
        (2, 2, 2)
    );
    println!("# near donors drained before far ones at every phase");

    // Part 2: warm sizing policy — fixed per-pool LRU, a bare global
    // budget, and budget + quota. The fixed baseline may keep up to 16
    // shells resident (2 × 8 pools); both policy runs are capped at 11.
    let fixed = warm_run("fixed cap 2/pool", 2, None, None);
    let bare = warm_run("budget 11", 2, Some(11), None);
    let quota = warm_run("budget 11 + quota 3", 2, Some(11), Some(3));
    println!("#");
    println!(
        "# warm sizing: heavy tenant (3 fns, one shard) + 5 steady + 1 hog \
         cycling 6 fns, 25 rounds"
    );
    println!(
        "{:<22} {:>10} {:>11} {:>12} {:>9} {:>13}",
        "policy", "heavy-hit", "steady-hit", "overall-hit", "p50(ms)", "max-resident"
    );
    for r in [&fixed, &bare, &quota] {
        println!(
            "{:<22} {:>9.1}% {:>10.1}% {:>11.1}% {:>9.4} {:>13}",
            r.label,
            r.heavy_hit_rate * 100.0,
            r.steady_hit_rate * 100.0,
            r.overall_hit_rate * 100.0,
            r.p50_ms,
            r.max_resident,
        );
    }
    assert!(
        quota.heavy_hit_rate > fixed.heavy_hit_rate,
        "the global budget must un-thrash the heavy tenant: {:.3} vs {:.3}",
        quota.heavy_hit_rate,
        fixed.heavy_hit_rate
    );
    assert!(
        quota.overall_hit_rate > fixed.overall_hit_rate,
        "budget+quota must beat fixed per-pool capacity overall: {:.3} vs {:.3}",
        quota.overall_hit_rate,
        fixed.overall_hit_rate
    );
    assert!(
        quota.overall_hit_rate > bare.overall_hit_rate
            && quota.steady_hit_rate > bare.steady_hit_rate,
        "the quota is what keeps the hog's churn out of the budget: \
         overall {:.3} vs {:.3}",
        quota.overall_hit_rate,
        bare.overall_hit_rate
    );
    assert!(
        quota.max_resident <= 11 && bare.max_resident <= 11,
        "the budget is a hard residency ceiling: {} / {} vs 11",
        quota.max_resident,
        bare.max_resident
    );
    println!("# warm budget + tenant quota beat fixed per-pool capacity on hit rate");

    // JSON artifact for the CI regression gate.
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"steal\": {{\"same_ccx\": {}, \"cross_ccx\": {}, \"cross_socket\": {}}},",
        ladder.same_ccx, ladder.cross_ccx, ladder.cross_socket
    );
    let _ = writeln!(json, "  \"warm\": [");
    let runs = [&fixed, &bare, &quota];
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"heavy_hit_rate\": {:.6}, \"steady_hit_rate\": {:.6}, \
             \"overall_hit_rate\": {:.6}, \"p50_ms\": {:.6}, \"max_resident\": {}}}{}",
            r.label,
            r.heavy_hit_rate,
            r.steady_hit_rate,
            r.overall_hit_rate,
            r.p50_ms,
            r.max_resident,
            if i + 1 == runs.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]\n}}");
    bench::write_artifact("topology_steal", &json, &host);
}
