//! Shard lifecycle under live traffic: a rolling drain/restore of half
//! the shards, then deterministic fault injection, under the Figure
//! 15-style serverless mix (snapshotted functions served by warm delta
//! re-arms, snapshot-aware placement).
//!
//! The operational claim on top of the paper's economics: shells and
//! runs are cheap enough to *move* that taking shards out of service
//! under live traffic costs little and loses nothing. One shard at a
//! time is drained (warm and clean shells evacuated through the priced
//! candidate machinery, queued work re-homed exactly once) and later
//! restored; then a seeded [`vsched::FaultPlan`] kills a shell and a
//! whole shard mid-traffic, exercising the same reconcile → re-admit
//! path without operator involvement.
//!
//! Acceptance:
//! * zero lost runs: `admitted == served + shed_deadline + shed_evicted`
//!   across the whole run, fault phase included;
//! * zero double-runs: every completion's arrival stamp is unique;
//! * the drained shard serves nothing that arrived after its drain
//!   began — placement routes around the hole;
//! * post-restore warm-hit rate reconverges to within 10% of the steady
//!   state (the evacuated warm shells kept their identity);
//! * the drain-window p99 stays within a small factor of steady state
//!   (gated against the committed baseline by `check_regression`).
//!
//! Writes `BENCH_drain_evict.json` for the CI gate.

use std::collections::HashSet;
use std::fmt::Write as _;

use vclock::stats::percentile;
use vclock::Cycles;
use vsched::{
    Completion, Dispatcher, DispatcherConfig, FaultPlan, Placement, Request, ShardState,
    TenantProfile,
};
use wasp::{VirtineSpec, Wasp};

const MEM: usize = 64 * 1024;
const SHARDS: usize = 4;
const FNS: usize = 2;

/// Steady cadence: one request per function every 100 µs of virtual time.
const CADENCE_S: f64 = 0.0001;

const STEADY_ROUNDS: usize = 60;
/// Rounds with one shard down, per drained shard (shards 0 and 1 take
/// turns — half the fleet cycles through maintenance).
const DRAIN_ROUNDS_EACH: usize = 30;
const RECOVER_ROUNDS: usize = 60;
const FAULT_ROUNDS: usize = 40;

/// The §5.2 snapshotted function (same shape as the slo_observe mix).
fn snap_image() -> visa::asm::Image {
    visa::assemble(
        "
.org 0x8000
  mov r1, 0xA000
  mov r2, 0
fill:
  store.q [r1], r2
  add r1, 8
  add r2, 1
  cmp r2, 512
  jl fill
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r6, 0xC000
  store.q [r6], r2
  hlt
",
    )
    .expect("assemble")
}

struct Phase {
    label: &'static str,
    completions: Vec<Completion>,
    served: u64,
    warm_hits: u64,
}

impl Phase {
    fn p99_us(&self) -> f64 {
        let lat: Vec<f64> = self.completions.iter().map(|c| c.latency() * 1e6).collect();
        percentile(&lat, 99.0)
    }

    fn warm_rate(&self) -> f64 {
        self.warm_hits as f64 / self.served.max(1) as f64
    }
}

fn main() {
    let host = bench::HostTimer::start();
    bench::header(
        "Shard lifecycle: rolling drain/restore and fault injection under live traffic",
        "draining half the shards one at a time loses nothing, double-runs \
         nothing, and the evacuated warm set reconverges after restore; a \
         seeded fault plan exercises the same reconcile path",
    );
    println!(
        "# {FNS} snapshotted fns at {:.0} µs cadence on {SHARDS} shards; \
         {STEADY_ROUNDS} steady / {}x{DRAIN_ROUNDS_EACH} drained / \
         {RECOVER_ROUNDS} recovered / {FAULT_ROUNDS} fault rounds",
        CADENCE_S * 1e6,
        2
    );

    let mut d = Dispatcher::new(
        Wasp::new_kvm_default(),
        DispatcherConfig {
            shards: SHARDS,
            placement: Placement::SnapshotAware,
            warm_capacity: 4,
            tick: Cycles::from_micros(5.0),
            ..DispatcherConfig::default()
        },
    );
    let tenant = d.add_tenant(TenantProfile::new("app"));
    let fns: Vec<_> = (0..FNS)
        .map(|i| {
            d.register(VirtineSpec::new(format!("fn{i}"), snap_image(), MEM))
                .expect("register")
        })
        .collect();
    d.prewarm(MEM, 2);

    // Warm-up: establish each function's snapshot outside the measured
    // phases.
    let mut t = 0.0;
    for &f in &fns {
        t += CADENCE_S;
        d.submit(Request::new(tenant, f, t)).expect("admit");
    }
    d.run_until(t + 0.001);
    t += 0.001;
    d.take_completions();

    let drive = |d: &mut Dispatcher, t: &mut f64, rounds: usize| {
        for _ in 0..rounds {
            for &f in &fns {
                *t += CADENCE_S;
                d.submit(Request::new(tenant, f, *t)).expect("admit");
            }
            d.run_until(*t);
        }
    };
    let phase = |d: &mut Dispatcher,
                 t: &mut f64,
                 label: &'static str,
                 body: &mut dyn FnMut(&mut Dispatcher, &mut f64)|
     -> Phase {
        let before = d.stats();
        body(d, t);
        // Settle, then move the cursor past the settle window: arrivals
        // submitted behind the advanced clock would be clamped to "now"
        // and collide, defeating the unique-arrival double-run check.
        d.run_until(*t + 0.0005);
        *t += 0.0005;
        let after = d.stats();
        Phase {
            label,
            completions: d.take_completions(),
            served: after.served - before.served,
            warm_hits: after.warm_hits - before.warm_hits,
        }
    };

    // Steady state.
    let steady = phase(&mut d, &mut t, "steady", &mut |d, t| {
        drive(d, t, STEADY_ROUNDS)
    });

    // Rolling drain: shard 0 out, restore, then shard 1 out, restore.
    let mut drain_started_at = [0.0f64; 2];
    let drained = phase(&mut d, &mut t, "rolling drain", &mut |d, t| {
        for (i, &shard) in [0usize, 1].iter().enumerate() {
            drain_started_at[i] = *t;
            d.drain_shard(shard);
            assert!(
                !d.shard_state(shard).is_active(),
                "shard {shard} must leave the candidate set"
            );
            drive(d, t, DRAIN_ROUNDS_EACH);
            assert_eq!(
                d.shard_state(shard),
                ShardState::Drained,
                "evacuation must converge under live traffic"
            );
            d.restore_shard(shard);
        }
    });
    // Nothing that arrived after a shard's drain began may have served
    // on it while it was out.
    for (i, &shard) in [0usize, 1].iter().enumerate() {
        let window_end = drain_started_at[i] + DRAIN_ROUNDS_EACH as f64 * FNS as f64 * CADENCE_S;
        assert!(
            drained
                .completions
                .iter()
                .filter(|c| c.arrival > drain_started_at[i] && c.arrival <= window_end)
                .all(|c| c.shard != shard),
            "shard {shard} served traffic while draining"
        );
    }

    // Recovery: both shards back; the warm set must reconverge.
    let recovered = phase(&mut d, &mut t, "recovered", &mut |d, t| {
        drive(d, t, RECOVER_ROUNDS)
    });

    // Fault injection: a single shell loss on shard 3, then shard 2
    // fails outright — both at fixed virtual instants, replayable from
    // the plan alone.
    let evictions_before = d.stats().shed_evicted;
    let fault_at = (t + 0.001, t + 0.002);
    d.set_fault_plan(
        FaultPlan::new()
            .kill_shell(fault_at.0, 3)
            .kill_shard(fault_at.1, 2),
    );
    let faulted = phase(&mut d, &mut t, "fault plan", &mut |d, t| {
        drive(d, t, FAULT_ROUNDS)
    });
    assert_eq!(
        d.shard_state(2),
        ShardState::Failed,
        "the planned shard kill must have fired"
    );
    d.restore_shard(2);
    assert!(
        d.reconcile().is_empty(),
        "a fully restored fleet has nothing to reconcile"
    );

    d.run_to_idle();
    let s = d.stats();
    let p = d.pool_stats();

    // Exactly-once accounting across every phase, faults included.
    let lost = s.admitted as i64 - s.served as i64 - s.shed_deadline as i64 - s.shed_evicted as i64;
    let all: Vec<&Completion> = [&steady, &drained, &recovered, &faulted]
        .iter()
        .flat_map(|ph| ph.completions.iter())
        .collect();
    let unique: HashSet<u64> = all.iter().map(|c| c.arrival.to_bits()).collect();
    let double_run = all.len() as i64 - unique.len() as i64;

    println!(
        "{:<16} | {:>6} {:>10} {:>10} {:>12}",
        "phase", "served", "p99(µs)", "warm-rate", "on-shard-0/1"
    );
    for ph in [&steady, &drained, &recovered, &faulted] {
        let on_drained = ph
            .completions
            .iter()
            .filter(|c| c.shard == 0 || c.shard == 1)
            .count();
        println!(
            "{:<16} | {:>6} {:>10.2} {:>10.3} {:>12}",
            ph.label,
            ph.served,
            ph.p99_us(),
            ph.warm_rate(),
            on_drained
        );
    }
    let p99_factor = drained.p99_us() / steady.p99_us();
    let warm_recovery = recovered.warm_rate() / steady.warm_rate();
    println!("#");
    println!(
        "# lost {lost}, double-run {double_run}, evictions {} (grace {}, failed {}), \
         shells dropped {}; drain p99 ×{p99_factor:.2}, warm recovery {warm_recovery:.3}",
        s.shed_evicted, s.evicted_grace, s.evicted_failed, p.dropped
    );

    // Acceptance.
    assert_eq!(lost, 0, "lifecycle churn lost runs");
    assert_eq!(double_run, 0, "a re-homed run executed twice");
    assert!(
        warm_recovery >= 0.9,
        "post-restore warm-hit rate {:.3} fell more than 10% below steady {:.3}",
        recovered.warm_rate(),
        steady.warm_rate()
    );
    assert!(
        p.dropped > 0,
        "the planned faults must actually destroy shells"
    );
    assert_eq!(
        s.shed_evicted - evictions_before,
        s.evicted_failed,
        "this mix never parks, so only shard failure may evict"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"lost\": {lost},\n  \"double_run\": {double_run},\n  \
         \"evictions\": {},\n  \"shells_dropped\": {},",
        s.shed_evicted, p.dropped
    );
    let _ = writeln!(
        json,
        "  \"steady\": {{\"served\": {}, \"p99_us\": {:.4}, \"warm_hit_rate\": {:.6}}},",
        steady.served,
        steady.p99_us(),
        steady.warm_rate()
    );
    let _ = writeln!(
        json,
        "  \"drain\": {{\"served\": {}, \"p99_us\": {:.4}, \"warm_hit_rate\": {:.6}, \
         \"p99_factor\": {:.4}}},",
        drained.served,
        drained.p99_us(),
        drained.warm_rate(),
        p99_factor
    );
    let _ = writeln!(
        json,
        "  \"recovered\": {{\"served\": {}, \"p99_us\": {:.4}, \"warm_hit_rate\": {:.6}, \
         \"warm_recovery_ratio\": {:.6}}},",
        recovered.served,
        recovered.p99_us(),
        recovered.warm_rate(),
        warm_recovery
    );
    let _ = writeln!(
        json,
        "  \"fault\": {{\"served\": {}, \"p99_us\": {:.4}, \"warm_hit_rate\": {:.6}}},",
        faulted.served,
        faulted.p99_us(),
        faulted.warm_rate()
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"shards\": {SHARDS}, \"fns\": {FNS}, \"cadence_s\": {CADENCE_S}, \
         \"steady_rounds\": {STEADY_ROUNDS}, \"drain_rounds_each\": {DRAIN_ROUNDS_EACH}, \
         \"recover_rounds\": {RECOVER_ROUNDS}, \"fault_rounds\": {FAULT_ROUNDS}}}\n}}"
    );
    bench::write_artifact("drain_evict", &json, &host);
}
