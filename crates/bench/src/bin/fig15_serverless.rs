//! Figure 15: serverless virtine performance (Vespid) vs an OpenWhisk-like
//! container platform under the Locust burst pattern.

use vespid::{
    load::{locust_pattern, pattern_arrivals},
    simulate, OpenWhiskModel, SimResult, VespidPlatform,
};

fn report(run: &SimResult) {
    println!("## {} ({} workers)", run.platform, run.workers);
    println!(
        "requests={} p50={:.2}ms p95={:.2}ms p99={:.2}ms makespan={:.1}s",
        run.completed.len(),
        run.latency_percentile(50.0) * 1e3,
        run.latency_percentile(95.0) * 1e3,
        run.latency_percentile(99.0) * 1e3,
        run.makespan()
    );
    println!("{:>8} {:>12} {:>14}", "t(s)", "tput(req/s)", "p50 lat(ms)");
    let tput = run.throughput_series(2.0);
    for (t, rps) in tput {
        let window: Vec<f64> = run
            .completed
            .iter()
            .filter(|c| c.arrival >= t && c.arrival < t + 2.0)
            .map(|c| c.latency)
            .collect();
        let lat = if window.is_empty() {
            0.0
        } else {
            vclock::stats::percentile(&window, 50.0) * 1e3
        };
        println!("{t:>8.0} {rps:>12.1} {lat:>14.2}");
    }
}

fn main() {
    // Scale: fraction of the full Locust pattern to generate (the full
    // pattern is ~4600 requests; Vespid executes each one for real).
    let scale = bench::trials(25) as f64 / 100.0;
    bench::header(
        "Figure 15: serverless platform comparison under bursty load",
        "Vespid sustains low latency through both bursts; vanilla \
         OpenWhisk-style containers queue and fall behind",
    );
    let arrivals = pattern_arrivals(&locust_pattern(), scale);
    println!(
        "# offered load: {} requests over 42s (scale {scale})",
        arrivals.len()
    );

    let mut vespid = VespidPlatform::new(4096).expect("vespid engine");
    report(&simulate(&mut vespid, &arrivals, 8));

    let mut ow = OpenWhiskModel::default_vanilla();
    report(&simulate(&mut ow, &arrivals, 8));
}
