//! Warm-shell snapshot cache × snapshot-aware placement, under the
//! Figure 15 burst pattern.
//!
//! Two questions, two parts:
//!
//! 1. **Micro**: how close does a warm-hit acquire+re-arm land to the bare
//!    `vmrun` floor the paper targets (§5.2: pooling + snapshotting puts
//!    provisioning "within 4% of a bare vmrun")? The warm path copies only
//!    the dirty-page delta of the previous invocation, so for a
//!    small-dirty-footprint virtine it must sit within 2x of
//!    `kvm_run_round_trip()` — versus the full sparse-snapshot memcpy the
//!    cold (clean-shell) path pays.
//! 2. **Macro**: does snapshot-aware placement in `vsched` convert that
//!    micro win into platform-level latency? The Locust pattern (§7.1:
//!    ramp, two bursts, ramp-down) is time-compressed until the bursts
//!    saturate the shards, with six tenants round-robined over their own
//!    snapshotted virtines, and replayed against a sweep of warm-cache
//!    size × placement policy at 4 and 8 shards.
//!
//! Expected shape: snapshot-aware placement achieves a strictly higher
//! warm-hit rate and lower p50 than the PR 1 least-loaded baseline; with
//! least-loaded placement the warm cache can even backfire (empty-queue
//! placement alternates shards and each landing demote-steals the *other*
//! shard's warm shell).
//!
//! Writes `BENCH_warm_placement.json` so CI can track the perf trajectory
//! across PRs.

use std::fmt::Write as _;

use vclock::{costs, stats};
use vespid::load::{locust_pattern, pattern_arrivals};
use vsched::{Dispatcher, DispatcherConfig, Placement, Request, TenantProfile};
use wasp::{Invocation, VirtineSpec, Wasp, WaspConfig};

/// Time-compression factor for the 42 s Locust pattern.
const COMPRESS: f64 = 4_000.0;

/// Pattern scale (fraction of the full request count, same shape).
const SCALE: f64 = 0.5;

/// Tenants in the mix, each with its own snapshotted virtine.
const TENANTS: usize = 6;

/// Guest memory per virtine.
const MEM: usize = 256 * 1024;

/// The benchmark virtine: a fat init footprint (48 KiB written before the
/// snapshot point, so the full sparse restore is tens of microseconds),
/// then a small per-invocation footprint (the args page plus one store).
fn snap_image() -> visa::asm::Image {
    visa::assemble(
        "
.org 0x8000
  mov r1, 0x10000
  mov r2, 0
fill:
  store.q [r1], r2
  add r1, 8
  add r2, 1
  cmp r2, 6144
  jl fill
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r4, 0
  load.q r5, [r4]      ; arg
  mov r6, 0x12000
  store.q [r6], r5     ; one-page per-invocation footprint
  mov r0, r5
  add r0, 1
  hlt
",
    )
    .expect("assemble")
}

struct MicroResult {
    warm_acquire_image: u64,
    full_acquire_image: u64,
    delta_pages: u64,
    floor_2x: u64,
}

/// Part 1: warm-hit acquire+image versus the full-sparse-restore cold path.
fn micro() -> MicroResult {
    let run_pair = |warm_capacity: usize| {
        let w = Wasp::new(
            kvmsim::Hypervisor::kvm(hostsim::HostKernel::new(vclock::Clock::new(), None)),
            WaspConfig {
                warm_capacity,
                ..WaspConfig::default()
            },
        );
        let id = w
            .register(VirtineSpec::new("bench", snap_image(), MEM))
            .expect("register");
        w.run(id, &1u64.to_le_bytes(), Invocation::default())
            .expect("cold run");
        // Steady state: repeat runs all take the same fast path; sample a
        // few to confirm and report the last.
        let mut out = None;
        for i in 2..6u64 {
            out = Some(
                w.run(id, &i.to_le_bytes(), Invocation::default())
                    .expect("repeat run"),
            );
        }
        out.expect("sampled")
    };

    let warm = run_pair(wasp::DEFAULT_WARM_CAPACITY);
    assert!(warm.breakdown.warm_hit, "repeat run must warm-hit");
    let full = run_pair(0);
    assert!(
        full.breakdown.restored_snapshot && !full.breakdown.warm_hit,
        "warm-disabled repeat run must pay the full sparse restore"
    );
    MicroResult {
        warm_acquire_image: (warm.breakdown.acquire + warm.breakdown.image).get(),
        full_acquire_image: (full.breakdown.acquire + full.breakdown.image).get(),
        delta_pages: warm.breakdown.delta_pages,
        floor_2x: 2 * costs::kvm_run_round_trip(),
    }
}

struct MacroRun {
    label: &'static str,
    shards: usize,
    warm_capacity: usize,
    placement: &'static str,
    served: u64,
    p50_ms: f64,
    p99_ms: f64,
    warm_hit_rate: f64,
    warm_demotions: u64,
    stolen: u64,
    created: u64,
}

/// Part 2: one Figure 15 replay through the dispatcher.
fn macro_run(
    label: &'static str,
    shards: usize,
    warm_capacity: usize,
    placement: Placement,
    arrivals: &[f64],
) -> MacroRun {
    let mut d = Dispatcher::new(
        Wasp::new_kvm_default(),
        DispatcherConfig {
            shards,
            warm_capacity,
            placement,
            // A 5 µs tick so batching quantization stays below the
            // restore-cost differences under study.
            tick: vclock::Cycles::from_micros(5.0),
            ..DispatcherConfig::default()
        },
    );
    let img = snap_image();
    let tenants: Vec<_> = (0..TENANTS)
        .map(|i| {
            let id = d
                .register(VirtineSpec::new(format!("fn{i}"), img.clone(), MEM))
                .expect("register");
            let t = d.add_tenant(TenantProfile::new(format!("tenant{i}")));
            (t, id)
        })
        .collect();
    // A provisioned platform fronts the burst with prewarmed shells (§5.2,
    // "warm-up before a burst"); without them a single shell would serve
    // the whole replay by migrating between shards, and every config would
    // measure steal traffic instead of placement quality.
    d.prewarm(MEM, TENANTS);

    for (i, &t) in arrivals.iter().enumerate() {
        let (tenant, virtine) = tenants[i % TENANTS];
        d.submit(
            Request::new(tenant, virtine, t / COMPRESS).with_args((i as u64).to_le_bytes().into()),
        )
        .expect("unthrottled tenants admit");
    }
    d.run_to_idle();

    let completions = d.take_completions();
    for c in &completions {
        assert!(c.exit_normal, "virtine failed under {label}");
    }
    let lat_ms: Vec<f64> = completions.iter().map(|c| c.latency() * 1e3).collect();
    let s = d.stats();
    MacroRun {
        label,
        shards,
        warm_capacity,
        placement: match placement {
            Placement::SnapshotAware => "snapshot-aware",
            Placement::LeastLoaded => "least-loaded",
            Placement::ByTenant => "by-tenant",
        },
        served: s.served,
        p50_ms: stats::percentile(&lat_ms, 50.0),
        p99_ms: stats::percentile(&lat_ms, 99.0),
        warm_hit_rate: s.warm_hit_rate(),
        // Acquire-path demotions and pool-internal LRU evictions disjointly
        // partition all warm-shell demotions.
        warm_demotions: d.pool_stats().warm_demoted,
        stolen: s.stolen,
        created: d.pool_stats().created,
    }
}

fn main() {
    let host = bench::HostTimer::start();
    bench::header(
        "Warm-shell snapshot cache + snapshot-aware placement (Fig. 15 bursts)",
        "warm-hit re-arm lands near the bare-vmrun floor (within 4% of vmrun, \
         §5.2); snapshot-aware placement beats least-loaded on warm-hit rate \
         and p50 at >= 4 shards",
    );

    // Part 1: micro.
    let m = micro();
    println!("# micro: warm-hit vs full-restore provisioning (acquire+image)");
    println!(
        "{:<26} {:>10} cyc  ({:>6.2} µs, {} delta pages)",
        "warm hit",
        m.warm_acquire_image,
        vclock::Cycles(m.warm_acquire_image).as_micros(),
        m.delta_pages,
    );
    println!(
        "{:<26} {:>10} cyc  ({:>6.2} µs)",
        "full sparse restore",
        m.full_acquire_image,
        vclock::Cycles(m.full_acquire_image).as_micros(),
    );
    println!(
        "{:<26} {:>10} cyc  (2x kvm_run_round_trip)",
        "acceptance ceiling", m.floor_2x,
    );
    assert!(
        m.warm_acquire_image <= m.floor_2x,
        "warm-hit acquire+image {} exceeds 2x vmrun floor {}",
        m.warm_acquire_image,
        m.floor_2x
    );
    assert!(
        m.warm_acquire_image < m.full_acquire_image,
        "warm hit must beat the full restore"
    );

    // Part 2: macro sweep.
    let arrivals = pattern_arrivals(&locust_pattern(), SCALE);
    println!("#");
    println!(
        "# macro: {} requests over {:.1} ms (scale {SCALE}, compression {COMPRESS}x, \
         {TENANTS} tenants)",
        arrivals.len(),
        42.0 / COMPRESS * 1e3,
    );
    println!(
        "{:>6} {:>5} {:>15} | {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "shards",
        "warm",
        "placement",
        "served",
        "p50(ms)",
        "p99(ms)",
        "hit-rate",
        "demoted",
        "stolen",
        "created"
    );

    let mut runs: Vec<MacroRun> = Vec::new();
    for &shards in &[4usize, 8] {
        runs.push(macro_run(
            "baseline",
            shards,
            0,
            Placement::LeastLoaded,
            &arrivals,
        ));
        for &cap in &[1usize, 2, 8] {
            runs.push(macro_run(
                "least-loaded+warm",
                shards,
                cap,
                Placement::LeastLoaded,
                &arrivals,
            ));
            runs.push(macro_run(
                "snapshot-aware",
                shards,
                cap,
                Placement::SnapshotAware,
                &arrivals,
            ));
        }
    }
    for r in &runs {
        println!(
            "{:>6} {:>5} {:>15} | {:>8} {:>9.4} {:>9.4} {:>8.1}% {:>8} {:>8} {:>8}",
            r.shards,
            r.warm_capacity,
            r.placement,
            r.served,
            r.p50_ms,
            r.p99_ms,
            r.warm_hit_rate * 100.0,
            r.warm_demotions,
            r.stolen,
            r.created,
        );
    }

    // Acceptance: at >= 4 shards, snapshot-aware placement must beat both
    // the PR 1 baseline (no warm cache) and warm-cache-without-placement on
    // warm-hit rate, and beat the baseline on p50.
    for &shards in &[4usize, 8] {
        let pick = |label: &str, cap: usize| {
            runs.iter()
                .find(|r| r.label == label && r.shards == shards && r.warm_capacity == cap)
                .expect("run present")
        };
        let baseline = pick("baseline", 0);
        for cap in [1, 2, 8] {
            let aware = pick("snapshot-aware", cap);
            let ll = pick("least-loaded+warm", cap);
            assert!(
                aware.warm_hit_rate > ll.warm_hit_rate && aware.warm_hit_rate > 0.0,
                "{shards} shards, cap {cap}: snapshot-aware hit rate {:.3} must strictly \
                 beat least-loaded {:.3}",
                aware.warm_hit_rate,
                ll.warm_hit_rate
            );
            assert!(
                aware.p50_ms < baseline.p50_ms,
                "{shards} shards, cap {cap}: snapshot-aware p50 {:.4} must beat the \
                 least-loaded baseline {:.4}",
                aware.p50_ms,
                baseline.p50_ms
            );
        }
    }
    println!("#");
    println!("# snapshot-aware placement beats the least-loaded baseline at 4 and 8 shards");

    // JSON artifact for CI trend tracking.
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"micro\": {{\"warm_acquire_image_cycles\": {}, \"full_acquire_image_cycles\": {}, \
         \"delta_pages\": {}, \"ceiling_2x_vmrun\": {}}},",
        m.warm_acquire_image, m.full_acquire_image, m.delta_pages, m.floor_2x
    );
    let _ = writeln!(json, "  \"macro\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"shards\": {}, \"warm_capacity\": {}, \
             \"placement\": \"{}\", \"served\": {}, \"p50_ms\": {:.6}, \"p99_ms\": {:.6}, \
             \"warm_hit_rate\": {:.6}, \"warm_demotions\": {}, \"stolen\": {}, \
             \"created\": {}}}{}",
            r.label,
            r.shards,
            r.warm_capacity,
            r.placement,
            r.served,
            r.p50_ms,
            r.p99_ms,
            r.warm_hit_rate,
            r.warm_demotions,
            r.stolen,
            r.created,
            if i + 1 == runs.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ]\n}}");
    bench::write_artifact("warm_placement", &json, &host);
}
