//! Dispatcher scaling: shard count × tenant mix under the Figure 15 burst
//! pattern.
//!
//! The paper stops at one virtine client driving Wasp; this sweep shows
//! the `vsched` layer turning the same runtime into a traffic-serving
//! platform. The Locust pattern (§7.1: ramp, two bursts, ramp-down) is
//! time-compressed until one shard saturates, then replayed against
//! 1–8 shards with a three-tenant mix:
//!
//! * `free`      — unthrottled, the paying customer;
//! * `throttled` — token-bucketed at 50 rps, offered far more than that;
//! * `bursty`    — unthrottled but deprioritized (priority 0 vs 5).
//!
//! Expected shape: throughput scales ≥2× from 1 → 8 shards, the throttled
//! tenant's excess is shed at admission without touching the others, and
//! shed counts plus stolen-shell counts come straight from the dispatcher
//! stats surface.

use vclock::stats;
use vespid::load::{locust_pattern, pattern_arrivals};
use vespid::VespidPlatform;
use vsched::TenantProfile;
use wasp::HypercallMask;

/// Time-compression factor: the 42 s Locust pattern replayed in 42/C s,
/// multiplying every offered rate by C.
const COMPRESS: f64 = 400.0;

/// Token-bucket limit for the throttled tenant (requests per second).
const THROTTLE_RPS: f64 = 50.0;

struct RunResult {
    shards: usize,
    served: u64,
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    stolen: u64,
    free_served: u64,
    free_shed: u64,
    throttled_served: u64,
    throttled_shed: u64,
    bursty_served: u64,
}

fn run(shards: usize, arrivals: &[f64]) -> RunResult {
    let mut p = VespidPlatform::with_shards(4096, shards).expect("vespid engine");
    // The paying customer: unthrottled, priority 5 (the platform's own
    // default tenant sits at priority 0, so register a dedicated one).
    let free = p.add_tenant(
        TenantProfile::new("free")
            .with_mask(HypercallMask::ALLOW_ALL)
            .with_priority(5),
    );
    let throttled = p.add_tenant(
        TenantProfile::new("throttled")
            .with_rate(THROTTLE_RPS, 8.0)
            .with_mask(HypercallMask::ALLOW_ALL)
            .with_priority(5),
    );
    let bursty = p.add_tenant(
        TenantProfile::new("bursty")
            .with_mask(HypercallMask::ALLOW_ALL)
            .with_priority(0),
    );

    for (i, &t) in arrivals.iter().enumerate() {
        // Mix: 2 free : 1 throttled : 1 bursty.
        let tenant = match i % 4 {
            0 | 2 => free,
            1 => throttled,
            _ => bursty,
        };
        let _ = p.submit_for(tenant, t / COMPRESS);
    }
    p.dispatcher_mut().run_to_idle();

    let completions = p.dispatcher_mut().take_completions();
    for c in &completions {
        p.check(c);
    }
    let first = completions
        .iter()
        .map(|c| c.arrival)
        .fold(f64::MAX, f64::min);
    let last = completions.iter().map(|c| c.finish).fold(0.0f64, f64::max);
    let lat_ms: Vec<f64> = completions.iter().map(|c| c.latency() * 1e3).collect();
    let d = p.dispatcher();
    let (fs, ts, bs) = (
        d.tenant_stats(free),
        d.tenant_stats(throttled),
        d.tenant_stats(bursty),
    );
    RunResult {
        shards,
        served: d.stats().served,
        throughput: completions.len() as f64 / (last - first),
        p50_ms: stats::percentile(&lat_ms, 50.0),
        p99_ms: stats::percentile(&lat_ms, 99.0),
        stolen: d.stats().stolen,
        free_served: fs.served,
        free_shed: fs.shed(),
        throttled_served: ts.served,
        throttled_shed: ts.shed(),
        bursty_served: bs.served,
    }
}

fn main() {
    let scale = bench::trials(25) as f64 / 100.0;
    bench::header(
        "Dispatcher scaling: shards x tenant mix under the Figure 15 bursts",
        "throughput scales with shards; per-tenant rate limits shed the \
         abusive tenant without touching the others",
    );
    let arrivals = pattern_arrivals(&locust_pattern(), scale);
    println!(
        "# offered: {} requests over {:.2}s (scale {scale}, compression {COMPRESS}x, \
         peak ~{:.0} rps)",
        arrivals.len(),
        42.0 / COMPRESS,
        180.0 * COMPRESS * scale,
    );
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>10} {:>8} | {:>11} {:>14} {:>12}",
        "shards",
        "served",
        "tput(req/s)",
        "p50(ms)",
        "p99(ms)",
        "stolen",
        "free s/shed",
        "throttled s/shed",
        "bursty s"
    );

    let mut by_shards = Vec::new();
    for shards in [1, 2, 4, 8] {
        let r = run(shards, &arrivals);
        println!(
            "{:>6} {:>8} {:>12.1} {:>10.3} {:>10.3} {:>8} | {:>7}/{:<4} {:>9}/{:<5} {:>12}",
            r.shards,
            r.served,
            r.throughput,
            r.p50_ms,
            r.p99_ms,
            r.stolen,
            r.free_served,
            r.free_shed,
            r.throttled_served,
            r.throttled_shed,
            r.bursty_served,
        );
        by_shards.push(r);
    }

    let one = &by_shards[0];
    let eight = &by_shards[by_shards.len() - 1];
    let speedup = eight.throughput / one.throughput;
    println!("#");
    println!("# 1 -> 8 shard throughput: {speedup:.2}x");
    // Below scale 0.25 the compressed pattern no longer saturates one
    // shard, so there is no queueing for sharding to relieve and the
    // speedup claim is vacuous — only assert it when the load binds.
    if scale >= 0.25 {
        assert!(
            speedup >= 2.0,
            "sharding must scale throughput >= 2x under the burst (got {speedup:.2}x)"
        );
    } else {
        println!(
            "# (scale {scale} < 0.25: load does not saturate one shard; speedup not asserted)"
        );
    }
    for r in &by_shards {
        assert_eq!(r.free_shed, 0, "unthrottled tenant must never be shed");
        assert!(
            r.throttled_shed > 0,
            "throttled tenant must hit its token bucket"
        );
        assert_eq!(
            r.free_served + r.throttled_served + r.bursty_served,
            r.served,
            "per-tenant stats must cover every served request"
        );
    }
    println!("# rate limits held; unthrottled tenants unaffected");
}
