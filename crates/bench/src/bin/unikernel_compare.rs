//! §6.2's boot-time discussion: virtine start-up vs unikernel boots.
//!
//! The unikernel rows are the published numbers §6.2 quotes (Unikraft
//! 10s–100s of µs; MirageOS/Solo5-HVT ~12 ms; OSv ~600 ms on the paper's
//! testbed); the virtine rows are measured on this substrate.

use vclock::stats::Summary;
use wasp::{Invocation, Wasp};

fn main() {
    let trials = bench::trials(100);
    bench::header(
        "Unikernel comparison (6.2): no-op boot-to-exit latency",
        "virtines boot in tens of µs cold and ~µs from snapshot, below \
         even the fastest unikernels the paper cites",
    );

    let unit = vcc::compile("virtine int nop(int x) { return x; }").expect("compile");
    let v = unit.virtine("nop").expect("nop");

    let measure = |snapshot: bool| -> f64 {
        let wasp = Wasp::new_kvm_default();
        let id = v
            .register(&wasp)
            .inspect(|&id| {
                if !snapshot {
                    wasp.invalidate_snapshot(id);
                }
            })
            .expect("register");
        if snapshot {
            vcc::invoke(&wasp, id, &[0]).expect("warm snapshot");
        }
        let us: Vec<f64> = (0..trials)
            .map(|_| {
                if !snapshot {
                    wasp.invalidate_snapshot(id);
                }
                let out = vcc::invoke(&wasp, id, &[0]).expect("invoke");
                assert!(out.exit.is_normal());
                out.breakdown.total.as_micros()
            })
            .collect();
        Summary::of(&us).mean
    };

    let cold = measure(false);
    let warm = measure(true);

    println!("{:<28} {:>14}", "system", "no-op latency");
    println!(
        "{:<28} {:>11.1} µs   (measured)",
        "virtine (cold boot)", cold
    );
    println!(
        "{:<28} {:>11.1} µs   (measured)",
        "virtine (snapshot)", warm
    );
    println!("{:<28} {:>14}", "Unikraft", "10s-100s µs");
    println!("{:<28} {:>14}", "MirageOS / Solo5 HVT", "~12 ms");
    println!("{:<28} {:>14}", "HermiTux/Rump/Lupine", "10s-100s ms");
    println!("{:<28} {:>14}", "OSv", "~600 ms");
    let _ = Invocation::default();
}
