//! SLO-grade observability end-to-end: tracing, histograms, and
//! multiwindow burn-rate alerting over a degradation the operator
//! injects and then repairs.
//!
//! The Figure 15-style serverless mix (snapshotted functions served by
//! warm delta re-arms) runs healthy, then the warm budget is slashed to
//! zero mid-run — every invocation falls back to a cold create and
//! end-to-end latency jumps past the declared p99 threshold. The SLO
//! engine's fast (5-min-equivalent) and slow (1-hr-equivalent) windows,
//! scaled into virtual time, must both saturate and fire the *page*
//! alert within a bounded number of virtual cycles; restoring the budget
//! must clear it. A second, untraced run of the identical workload pins
//! the tracing ablation: span capture charges deterministic
//! `VTRACE_SPAN` cycles, and the total served-latency overhead must stay
//! under 3%.
//!
//! Acceptance:
//! * the page alert fires after the degradation, within
//!   `FIRE_BOUND_CYCLES` of virtual time, and clears after recovery;
//! * the availability SLO stays quiet (nothing is shed — this is a
//!   latency regression, and the alert taxonomy must say so);
//! * `/metrics` text carries `vslo_alert{slo="e2e_p99",severity="page"} 1`
//!   at the degraded steady state;
//! * tracing-on vs tracing-off end-to-end overhead < 3%.
//!
//! Writes `BENCH_slo_observe.json` for the CI gate and
//! `TRACE_slo_observe.jsonl` (the traced run's span trees) as a CI
//! artifact.

use std::fmt::Write as _;

use vclock::Cycles;
use vsched::{Dispatcher, DispatcherConfig, Placement, Request, TenantProfile};
use vtrace::slo::{BurnPolicy, Severity, SloEngine, SloSpec};
use wasp::{VirtineSpec, Wasp};

const MEM: usize = 64 * 1024;
const SHARDS: usize = 4;
const FNS: usize = 2;

/// Steady cadence: one request per function every 100 µs of virtual time.
const CADENCE_S: f64 = 0.0001;

/// Rounds before the budget slash, between slash and restore, and after.
const HEALTHY_ROUNDS: usize = 40;
const DEGRADED_ROUNDS: usize = 40;
const RECOVERED_ROUNDS: usize = 60;

/// The end-to-end objective threshold: steady-state warm delta re-arms
/// land at 1.9-3.8 µs, clean re-arms at 6.2 µs — 5 µs splits them.
const E2E_THRESHOLD_US: f64 = 5.0;

/// The page alert must fire within this much virtual time of the
/// degradation (about 1.5 ms: enough bad events to saturate both
/// windows at the request cadence).
const FIRE_BOUND_CYCLES: u64 = 6_000_000;

/// The §5.2 snapshotted function: modest init footprint, one-page
/// per-invocation dirt, so a warm hit is a cheap delta re-arm and a
/// cold create pays the full fill loop.
fn snap_image() -> visa::asm::Image {
    visa::assemble(
        "
.org 0x8000
  mov r1, 0xA000
  mov r2, 0
fill:
  store.q [r1], r2
  add r1, 8
  add r2, 1
  cmp r2, 512
  jl fill
  mov r0, 8            ; snapshot()
  out 0x1, r0
  mov r6, 0xC000
  store.q [r6], r2
  hlt
",
    )
    .expect("assemble")
}

struct RunOut {
    served: u64,
    warm_hits: u64,
    /// Sum of end-to-end cycles across served requests (the ablation
    /// metric: deterministic in virtual time).
    e2e_sum_cycles: u64,
    /// Virtual cycles from the budget slash to the page alert firing.
    alert_fire_cycles: u64,
    /// 1 when the page alert cleared after the budget was restored.
    alert_cleared: u64,
    /// Availability alert transitions (must stay zero: nothing is shed).
    availability_events: u64,
    /// Healthy-phase p90 off the dispatcher's own e2e histogram (the
    /// p99 of the small healthy sample is its first cold starts; p90 is
    /// the steady state the objective is set against).
    warm_p90_us: f64,
    degraded_metrics: String,
    trace_lines: String,
    spans: u64,
}

fn run(traced: bool) -> RunOut {
    let mut d = Dispatcher::new(
        Wasp::new_kvm_default(),
        DispatcherConfig {
            shards: SHARDS,
            placement: Placement::SnapshotAware,
            warm_capacity: 4,
            tick: Cycles::from_micros(5.0),
            ..DispatcherConfig::default()
        },
    );
    let tenant = d.add_tenant(TenantProfile::new("app"));
    let fns: Vec<_> = (0..FNS)
        .map(|i| {
            d.register(VirtineSpec::new(format!("fn{i}"), snap_image(), MEM))
                .expect("register")
        })
        .collect();
    // Provisioned clean shells: an acquire never has to steal a sibling's
    // warm shell, so the healthy phase genuinely runs on delta re-arms.
    d.prewarm(MEM, 2);
    if traced {
        d.enable_tracing(4096);
    }

    // Warm-up: establish each function's snapshot before the SLO clock
    // starts, so the healthy phase measures the steady state.
    let mut t = 0.0;
    for &f in &fns {
        t += CADENCE_S;
        d.submit(Request::new(tenant, f, t)).expect("admit");
    }
    d.run_until(t + 0.001);

    // Virtual-time windows: the SRE workbook's 5-min/1-hr pair scaled so
    // the fast window holds ~4 rounds and the slow window ~24 rounds of
    // events at the request cadence.
    d.set_slo(SloEngine::new(
        vec![
            SloSpec::latency("e2e_p99", 0.99, Cycles::from_micros(E2E_THRESHOLD_US)),
            SloSpec::availability("availability", 0.999),
        ],
        BurnPolicy {
            fast_window: Cycles::from_micros(800.0),
            slow_window: Cycles::from_micros(4800.0),
            ..BurnPolicy::default()
        },
    ));

    let mut degrade_at = Cycles(0);
    let mut recovered_at = Cycles(0);
    let mut degraded_metrics = String::new();
    let mut warm_phase = vclock::stats::Histogram::new();
    let rounds = HEALTHY_ROUNDS + DEGRADED_ROUNDS + RECOVERED_ROUNDS;
    for round in 0..rounds {
        if round == HEALTHY_ROUNDS {
            // The injected incident: no warm shells anywhere, every
            // invocation cold-creates.
            degrade_at = Cycles::from_micros(t * 1e6);
            d.set_warm_budget(Some(0), Some(0));
            warm_phase = d.e2e_hist().clone();
        }
        if round == HEALTHY_ROUNDS + DEGRADED_ROUNDS {
            recovered_at = Cycles::from_micros(t * 1e6);
            d.set_warm_budget(None, None);
        }
        for &f in &fns {
            t += CADENCE_S;
            d.submit(Request::new(tenant, f, t)).expect("admit");
        }
        d.run_until(t);
        d.slo_tick();
        if round == HEALTHY_ROUNDS + DEGRADED_ROUNDS - 1 {
            // Degraded steady state: the scrape must show the page firing.
            degraded_metrics = vhttp::dispatch::prometheus_text(&d);
        }
    }
    d.run_to_idle();
    d.slo_tick();

    let log = d.slo().expect("slo engine").alert_log();
    let fire = log
        .iter()
        .find(|ev| {
            ev.slo == "e2e_p99" && ev.fired && ev.severity == Severity::Page && ev.at >= degrade_at
        })
        .unwrap_or_else(|| panic!("page alert never fired; log: {log:?}"));
    let cleared = log.iter().any(|ev| {
        ev.slo == "e2e_p99" && !ev.fired && ev.severity == Severity::Page && ev.at >= recovered_at
    });
    let availability_events = log.iter().filter(|ev| ev.slo == "availability").count() as u64;

    let s = d.stats();
    RunOut {
        served: s.served,
        warm_hits: s.warm_hits,
        e2e_sum_cycles: d.e2e_hist().sum(),
        alert_fire_cycles: fire.at.saturating_sub(degrade_at).get(),
        alert_cleared: cleared as u64,
        availability_events,
        warm_p90_us: Cycles(warm_phase.quantile(0.9)).as_micros(),
        degraded_metrics,
        trace_lines: d.trace_json_lines(None, 10_000),
        spans: d.trace().spans_recorded(),
    }
}

fn main() {
    let host = bench::HostTimer::start();
    bench::header(
        "SLO observability: burn-rate paging over an injected warm-budget incident",
        "multiwindow burn-rate alerts page within bounded virtual time of a \
         latency regression and clear after recovery; span tracing costs \
         <3% end-to-end",
    );
    println!(
        "# {FNS} snapshotted fns at {:.0} µs cadence on {SHARDS} shards; \
         p99 objective {E2E_THRESHOLD_US} µs; {HEALTHY_ROUNDS} healthy / \
         {DEGRADED_ROUNDS} degraded / {RECOVERED_ROUNDS} recovered rounds",
        CADENCE_S * 1e6
    );

    let traced = run(true);
    let untraced = run(false);

    let overhead_pct = 100.0 * (traced.e2e_sum_cycles as f64 - untraced.e2e_sum_cycles as f64)
        / untraced.e2e_sum_cycles as f64;
    let fire_ms = Cycles(traced.alert_fire_cycles).as_millis();
    println!(
        "{:<22} | {:>6} {:>10} {:>14} {:>12} {:>8}",
        "run", "served", "warm-hits", "e2e-sum(cyc)", "fire(cyc)", "cleared"
    );
    for (label, r) in [("traced", &traced), ("untraced", &untraced)] {
        println!(
            "{label:<22} | {:>6} {:>10} {:>14} {:>12} {:>8}",
            r.served, r.warm_hits, r.e2e_sum_cycles, r.alert_fire_cycles, r.alert_cleared
        );
    }
    println!("#");
    println!(
        "# warm-phase p90 {:.2} µs vs {E2E_THRESHOLD_US} µs objective; page fired {:.3} ms \
         after the budget slash ({} spans, tracing overhead {overhead_pct:+.3}%)",
        traced.warm_p90_us, fire_ms, traced.spans
    );

    // Acceptance.
    assert!(
        traced.warm_p90_us < E2E_THRESHOLD_US,
        "healthy steady state must meet the objective (p90 {:.2} µs)",
        traced.warm_p90_us
    );
    for r in [&traced, &untraced] {
        assert!(
            r.alert_fire_cycles <= FIRE_BOUND_CYCLES,
            "page alert took {} cycles (> {FIRE_BOUND_CYCLES}) to fire",
            r.alert_fire_cycles
        );
        assert_eq!(r.alert_cleared, 1, "page alert must clear after recovery");
        assert_eq!(
            r.availability_events, 0,
            "nothing was shed; the availability SLO must stay quiet"
        );
    }
    assert!(
        overhead_pct.abs() < 3.0,
        "tracing overhead {overhead_pct:.3}% breaches the 3% ablation bound"
    );
    assert!(
        traced
            .degraded_metrics
            .lines()
            .any(|l| l == "vslo_alert{slo=\"e2e_p99\",severity=\"page\"} 1"),
        "degraded /metrics must export the firing page alert:\n{}",
        traced.degraded_metrics
    );
    assert!(
        traced
            .degraded_metrics
            .lines()
            .any(|l| l == "vslo_alert{slo=\"availability\",severity=\"page\"} 0"),
        "availability page gauge must read 0"
    );
    assert!(traced.spans > 0 && !traced.trace_lines.is_empty());
    assert_eq!(
        untraced.spans, 0,
        "the untraced run must record nothing (zero-cost when disabled)"
    );

    // Artifacts: the gated numbers and the span trees.
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"alert_fire_cycles\": {},\n  \"alert_cleared\": {},\n  \
         \"overhead_pct\": {:.6},\n  \"served\": {},\n  \"spans\": {},\n  \
         \"warm_p90_us\": {:.4},",
        traced.alert_fire_cycles,
        traced.alert_cleared,
        overhead_pct,
        traced.served,
        traced.spans,
        traced.warm_p90_us,
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"shards\": {SHARDS}, \"fns\": {FNS}, \"cadence_s\": {CADENCE_S}, \
         \"healthy_rounds\": {HEALTHY_ROUNDS}, \"degraded_rounds\": {DEGRADED_ROUNDS}, \
         \"recovered_rounds\": {RECOVERED_ROUNDS}, \"e2e_threshold_us\": {E2E_THRESHOLD_US}}}\n}}"
    );
    bench::write_artifact("slo_observe", &json, &host);
    std::fs::write("TRACE_slo_observe.jsonl", &traced.trace_lines).expect("write trace artifact");
    println!("# wrote TRACE_slo_observe.jsonl");
}
