//! Event-driven blocked I/O under a slowloris mix.
//!
//! The §6.3 HTTP workload blocks in `vrecv` between boundary crossings.
//! Before this PR that wait was dead weight: a virtine parked in `recv`
//! either spin-polled (burning its shard worker for the whole wait) or the
//! host had to buffer the entire request before the virtine ever ran. The
//! run-loop contract now makes blocking an *exit*: the run suspends
//! (`wasp::SuspendedRun`), the shard worker goes back to useful work, and a
//! socket wake resumes the guest at the faulting hypercall.
//!
//! The adversarial mix: K slow clients trickle their request headers over
//! tens of milliseconds of virtual time (chunked `offer_trickled`
//! deliveries) while a fast tenant sustains steady traffic. Three runs:
//!
//! * **baseline** — the fast tenant alone (no slow clients): the floor.
//! * **spin-poll** — the pre-suspension policy: each blocked handler pins
//!   its shard worker until the next chunk lands, so the slow clients
//!   occupy every shard and the fast tenant queues behind them.
//! * **event-driven** — blocked handlers park; workers keep serving.
//!
//! Acceptance: event-driven keeps fast-tenant p99 within 2x of the
//! no-slow-client baseline while spin-poll degrades it >= 10x, and the
//! worker busy cycles charged to blocked waits drop to zero. Parked-run
//! and busy-wait gauges are exported via the server's `/metrics` endpoint
//! (asserted mid-run). Writes `BENCH_blocked_io.json` for CI.

use std::fmt::Write as _;

use vhttp::dispatch::DispatchedServer;
use vsched::BlockMode;

/// Dispatcher shards.
const SHARDS: usize = 4;

/// Slow (slowloris) clients, all offered in the first few milliseconds.
const SLOW_CLIENTS: usize = 8;

/// Chunks each slow client's request headers arrive in.
const SLOW_CHUNKS: usize = 4;

/// Virtual time a slow client spreads its chunks over.
const SLOW_SPREAD_S: f64 = 0.030;

/// Fast tenants (one warm home shard each under snapshot-aware placement,
/// so the fast class genuinely runs on every shard — a single fast tenant
/// would hide on its one warm shard and dodge the pinned workers).
const FAST_TENANTS: usize = SHARDS;

/// Fast-class requests (round-robined over the fast tenants) and the
/// window they arrive in. The stream is large enough that the handful of
/// fast requests sharing a batch with a slow client's *boot* segment
/// (legitimate execution, present in any multi-tenant mix) sit above p99;
/// what p99 then measures is whether the slow clients' 30 ms *waits* leak
/// into fast-class latency.
const FAST_REQUESTS: usize = 1000;
const FAST_WINDOW_S: f64 = 0.040;

/// Static file size served.
const FILE_SIZE: usize = 512;

struct RunResultRow {
    label: &'static str,
    fast_p50_ms: f64,
    fast_p99_ms: f64,
    slow_p99_ms: f64,
    served: u64,
    blocked: u64,
    resumed: u64,
    busy_wait_cycles: u64,
    max_parked_seen: usize,
}

fn run(label: &'static str, block: BlockMode, with_slow: bool) -> RunResultRow {
    let mut server = DispatchedServer::new_with(SHARDS, FILE_SIZE, block);
    let fast: Vec<_> = (0..FAST_TENANTS)
        .map(|i| server.add_tenant(vhttp::dispatch::http_tenant(format!("fast{i}"))))
        .collect();
    let slow = server.add_tenant(vhttp::dispatch::http_tenant("slow"));

    // Offers interleave in arrival order (arrivals must be non-decreasing
    // across submits): slow connections staggered across the first few
    // milliseconds — least-loaded fallback spreads them over every shard —
    // and the fast stream at a steady cadence through their trickle
    // windows. The fast offers pump the clock; sample the parked gauge as
    // time passes.
    enum Offer {
        Slow,
        Fast,
    }
    let mut offers: Vec<(f64, Offer)> = Vec::new();
    if with_slow {
        for i in 0..SLOW_CLIENTS {
            offers.push((i as f64 * 0.0005, Offer::Slow));
        }
    }
    for i in 0..FAST_REQUESTS {
        let arrival = 0.0001 + i as f64 * (FAST_WINDOW_S / FAST_REQUESTS as f64);
        offers.push((arrival, Offer::Fast));
    }
    offers.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut max_parked_seen = 0;
    let mut scraped = false;
    let mut fast_rr = 0usize;
    for (arrival, kind) in offers {
        match kind {
            Offer::Slow => server
                .offer_trickled(slow, arrival, SLOW_CHUNKS, SLOW_SPREAD_S)
                .expect("unthrottled"),
            Offer::Fast => {
                server
                    .offer(fast[fast_rr % FAST_TENANTS], arrival)
                    .expect("unthrottled");
                fast_rr += 1;
            }
        }
        max_parked_seen = max_parked_seen.max(server.dispatcher().parked());
        if with_slow && !scraped && arrival > SLOW_SPREAD_S / 2.0 {
            // Mid-trickle observability: the /metrics scrape exposes the
            // blocked-I/O gauges (and never occupies a shard worker).
            scraped = true;
            let resp = server.fetch_metrics();
            assert_eq!(vhttp::response_status(&resp), Some(200));
            let text = String::from_utf8(resp).expect("utf8 metrics");
            assert!(
                text.contains("vsched_parked") && text.contains("vsched_busy_wait_cycles_total"),
                "blocked-I/O gauges missing from /metrics"
            );
        }
    }
    if with_slow && block == BlockMode::EventDriven {
        assert!(
            max_parked_seen > 0,
            "slow clients must have been parked mid-trickle"
        );
    }

    let run = server.finish();
    let expected = FAST_REQUESTS as u64 + if with_slow { SLOW_CLIENTS as u64 } else { 0 };
    assert_eq!(run.served, expected, "{label}: every request must complete");

    // Percentiles come off the shared cycle histogram (the same bucketing
    // `/metrics` exports), not ad-hoc sorted-slice math.
    let fast_lat: Vec<f64> = fast
        .iter()
        .flat_map(|t| run.latencies_by_tenant[t.index()].iter().copied())
        .collect();
    let fast_h = bench::latency_histogram(&fast_lat);
    let slow_h = bench::latency_histogram(&run.latencies_by_tenant[slow.index()]);
    RunResultRow {
        label,
        fast_p50_ms: bench::hist_percentile_ms(&fast_h, 50.0),
        fast_p99_ms: bench::hist_percentile_ms(&fast_h, 99.0),
        slow_p99_ms: if with_slow {
            bench::hist_percentile_ms(&slow_h, 99.0)
        } else {
            0.0
        },
        served: run.served,
        blocked: run.stats.blocked,
        resumed: run.stats.resumed,
        busy_wait_cycles: run.stats.busy_wait_cycles,
        max_parked_seen,
    }
}

fn main() {
    let host = bench::HostTimer::start();
    bench::header(
        "Event-driven blocked I/O: slowloris clients vs fast tenants",
        "suspending virtines parked in recv keeps fast-tenant p99 near the \
         no-slow-client baseline while the spin-poll baseline collapses; \
         worker busy cycles charged to blocked waits drop to zero",
    );
    println!(
        "# {SLOW_CLIENTS} slow clients x {SLOW_CHUNKS} chunks over {:.0} ms, \
         {FAST_REQUESTS} fast requests over {:.0} ms, {SHARDS} shards",
        SLOW_SPREAD_S * 1e3,
        FAST_WINDOW_S * 1e3,
    );

    let baseline = run("baseline (no slow clients)", BlockMode::EventDriven, false);
    let spin = run("spin-poll + slow clients", BlockMode::SpinPoll, true);
    let event = run("event-driven + slow clients", BlockMode::EventDriven, true);

    println!(
        "{:<28} | {:>12} {:>12} {:>12} {:>8} {:>8} {:>14} {:>7}",
        "run",
        "fast p50(ms)",
        "fast p99(ms)",
        "slow p99(ms)",
        "blocked",
        "resumed",
        "busy-wait(cyc)",
        "parked"
    );
    for r in [&baseline, &spin, &event] {
        println!(
            "{:<28} | {:>12.4} {:>12.4} {:>12.4} {:>8} {:>8} {:>14} {:>7}",
            r.label,
            r.fast_p50_ms,
            r.fast_p99_ms,
            r.slow_p99_ms,
            r.blocked,
            r.resumed,
            r.busy_wait_cycles,
            r.max_parked_seen,
        );
    }

    // Acceptance.
    assert_eq!(
        event.busy_wait_cycles, 0,
        "event-driven dispatch must charge no worker cycles to blocked waits"
    );
    assert!(
        spin.busy_wait_cycles > 0,
        "the spin-poll baseline burns workers on the wait"
    );
    assert!(
        event.fast_p99_ms <= 2.0 * baseline.fast_p99_ms,
        "event-driven fast p99 {:.4} ms must stay within 2x of the \
         no-slow-client baseline {:.4} ms",
        event.fast_p99_ms,
        baseline.fast_p99_ms
    );
    assert!(
        spin.fast_p99_ms >= 10.0 * baseline.fast_p99_ms,
        "spin-poll fast p99 {:.4} ms should collapse >= 10x vs baseline \
         {:.4} ms (otherwise the workload is not adversarial enough)",
        spin.fast_p99_ms,
        baseline.fast_p99_ms
    );
    assert!(
        event.resumed >= (SLOW_CLIENTS * (SLOW_CHUNKS - 1)) as u64 / 2,
        "slow clients must exercise repeated park/resume"
    );
    println!("#");
    println!(
        "# event-driven holds fast p99 at {:.1}x baseline while spin-poll degrades {:.1}x",
        event.fast_p99_ms / baseline.fast_p99_ms,
        spin.fast_p99_ms / baseline.fast_p99_ms
    );

    // JSON artifact for CI trend tracking.
    let mut json = String::from("{\n  \"runs\": [\n");
    let rows = [&baseline, &spin, &event];
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"fast_p50_ms\": {:.6}, \"fast_p99_ms\": {:.6}, \
             \"slow_p99_ms\": {:.6}, \"served\": {}, \"blocked\": {}, \"resumed\": {}, \
             \"busy_wait_cycles\": {}, \"max_parked_seen\": {}}}{}",
            r.label,
            r.fast_p50_ms,
            r.fast_p99_ms,
            r.slow_p99_ms,
            r.served,
            r.blocked,
            r.resumed,
            r.busy_wait_cycles,
            r.max_parked_seen,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"config\": {{\"shards\": {SHARDS}, \"slow_clients\": {SLOW_CLIENTS}, \
         \"slow_chunks\": {SLOW_CHUNKS}, \"slow_spread_s\": {SLOW_SPREAD_S}, \
         \"fast_requests\": {FAST_REQUESTS}, \"fast_window_s\": {FAST_WINDOW_S}}}\n}}"
    );
    bench::write_artifact("blocked_io", &json, &host);
}
