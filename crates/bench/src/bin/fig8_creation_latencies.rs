//! Figure 8: creation latencies for execution contexts, including Wasp's
//! pooled variants and the SGX comparison points (log-scale bars in the
//! paper).
//!
//! Wasp rows use a paper-realistic ~16 KB minimal image (§2: "virtine
//! images are typically small (~16KB)"), so the synchronous cleaning cost
//! of Wasp+C is visible while Wasp+CA hides it in the background.

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::stats::Summary;
use vclock::Clock;
use wasp::{HypercallMask, Invocation, PoolMode, VirtineSpec, Wasp, WaspConfig};

fn minimal_image() -> visa::Image {
    let mut img = visa::assemble(".org 0x8000\n hlt\n").expect("image");
    img.pad_to(16 * 1024);
    img
}

fn wasp_times(mode: PoolMode, trials: usize) -> Vec<f64> {
    let clock = Clock::new();
    let wasp = Wasp::new(
        Hypervisor::kvm(HostKernel::new(clock.clone(), None)),
        WaspConfig {
            pool_mode: mode,
            ..WaspConfig::default()
        },
    );
    let id = wasp
        .register(
            VirtineSpec::new("hlt", minimal_image(), 64 * 1024)
                .with_policy(HypercallMask::DENY_ALL)
                .with_snapshot(false),
        )
        .expect("register");
    // Warm the pool once so cached modes measure reuse.
    wasp.run(id, &[], Invocation::default()).expect("warm");
    let mut xs = Vec::with_capacity(trials);
    for _ in 0..trials {
        let out = wasp.run(id, &[], Invocation::default()).expect("run");
        xs.push(out.breakdown.total.get() as f64);
    }
    xs
}

/// Shell provisioning only (§5.2's "cost of provisioning a virtine shell"):
/// the invocation minus the per-request image install.
fn wasp_provision_times(trials: usize) -> Vec<f64> {
    let clock = Clock::new();
    let wasp = Wasp::new(
        Hypervisor::kvm(HostKernel::new(clock.clone(), None)),
        WaspConfig::default(),
    );
    let id = wasp
        .register(
            VirtineSpec::new("hlt", minimal_image(), 64 * 1024)
                .with_policy(HypercallMask::DENY_ALL)
                .with_snapshot(false),
        )
        .expect("register");
    wasp.run(id, &[], Invocation::default()).expect("warm");
    (0..trials)
        .map(|_| {
            let out = wasp.run(id, &[], Invocation::default()).expect("run");
            (out.breakdown.total - out.breakdown.image).get() as f64
        })
        .collect()
}

fn main() {
    let trials = bench::trials(500);
    bench::header(
        "Figure 8: creation latencies on the simulated tinker (cycles, log-scale in paper)",
        "Wasp+C / Wasp+CA approach the vmrun floor (CA within ~4%), beat \
         pthreads; process and SGX creation are orders of magnitude above",
    );

    let clock = Clock::new();
    let kernel = HostKernel::new(clock.clone(), None);

    // Host primitives.
    let sample = |f: &mut dyn FnMut()| -> Vec<f64> {
        (0..trials)
            .map(|_| {
                let (_, d) = clock.time(&mut *f);
                d.get() as f64
            })
            .collect()
    };
    let process = sample(&mut || kernel.process_spawn());
    let pthread = sample(&mut || kernel.pthread_create_join());
    let sgx_ecall = sample(&mut || kernel.sgx_ecall());
    let sgx_create: Vec<f64> = (0..trials.min(20))
        .map(|_| {
            let (_, d) = clock.time(|| kernel.sgx_create_enclave());
            d.get() as f64
        })
        .collect();

    // KVM create and the bare vmrun floor.
    let hv = Hypervisor::kvm(kernel.clone());
    let img = minimal_image();
    let kvm: Vec<f64> = (0..trials)
        .map(|_| {
            let t0 = clock.now();
            let vm = hv.create_vm(64 * 1024, 0x8000);
            vm.load_image(&img);
            vm.vcpu().run(100).expect("run");
            (clock.now() - t0).get() as f64
        })
        .collect();
    let vmrun: Vec<f64> = {
        let vm = hv.create_vm(64 * 1024, 0x8000);
        (0..trials)
            .map(|_| {
                vm.load_image(&visa::assemble(".org 0x8000\n hlt\n").expect("tiny"));
                let vcpu = vm.vcpu();
                let t0 = clock.now();
                vcpu.run(100).expect("run");
                (clock.now() - t0).get() as f64
            })
            .collect()
    };

    let wasp_fresh = wasp_times(PoolMode::Disabled, trials);
    let wasp_c = wasp_times(PoolMode::Cached, trials);
    let wasp_ca = wasp_times(PoolMode::CachedAsync, trials);
    let wasp_shell = wasp_provision_times(trials);

    for (label, xs) in [
        ("process (fork+exec)", &process),
        ("Linux pthread", &pthread),
        ("KVM (create VM)", &kvm),
        ("Wasp (no pooling)", &wasp_fresh),
        ("Wasp+C (cached)", &wasp_c),
        ("Wasp+CA (cached+async)", &wasp_ca),
        ("Wasp+CA shell provision", &wasp_shell),
        ("vmrun (floor)", &vmrun),
        ("SGX ECALL", &sgx_ecall),
        ("SGX Create", &sgx_create),
    ] {
        bench::row(label, &Summary::of(xs));
    }

    let floor = Summary::of(&vmrun).mean;
    let ca = Summary::of(&wasp_ca).mean;
    let shell = Summary::of(&wasp_shell).mean;
    println!(
        "#\n# Wasp+CA shell provisioning vs bare vmrun: {:+.1}% (paper: within 4%)\n\
         # Wasp+CA incl. 16KB image install: {:+.1}% (the install is the\n\
         # memcpy-bound cost Figure 12 studies)",
        (shell / floor - 1.0) * 100.0,
        (ca / floor - 1.0) * 100.0
    );
}
