//! Interpreter speed: the predecoded fast engine vs the reference
//! decode-dispatch loop.
//!
//! `visa::cpu` is the cycle floor under every bench and serving scenario;
//! this bench measures what one retired guest instruction costs the *host*
//! on each engine, over two kernels:
//!
//! * **fib** — the recursive fib(20) of Figure 3/9 in hand-written asm:
//!   call/ret, stack traffic, `cmp`+`jcc` at every node.
//! * **http** — a `vcc`-compiled request-handler shape: itoa/strlen byte
//!   loops, constant-operand ALU, and a checksum loop over the response.
//!
//! Each engine runs every kernel to completion `--trials` times; the
//! min-of-reps wall time yields host ns/inst and guest MIPS. The two
//! engines must agree *exactly* on retired instructions, virtual cycles,
//! and the computed result (the cycle-identity contract,
//! `docs/interpreter.md`); `check_regression` gates that identity and a
//! ≥2× fast-over-reference speedup floor on both kernels. Writes
//! `BENCH_interp_speed.json`.

use std::fmt::Write;
use std::time::Instant;

use vclock::rng::Rng;
use vclock::Clock;
use visa::cpu::{CpuConfig, CpuExit, Machine};
use visa::{assemble, Engine, Reg};

/// The Figure 3/9 recursive fib kernel (same source as visa's cpu tests).
const FIB_SRC: &str = "
.org 0x8000
  mov sp, 0x8000
  mov r1, 20
  call fib
  hlt
fib:
  cmp r1, 2
  jl .base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
.base:
  mov r0, r1
  ret
";

/// An http-handler-shaped virtine: format a status body, then checksum a
/// synthetic response buffer — string byte loops plus ALU-heavy scanning.
const HTTP_SRC: &str = "
virtine int handle(int n) {
    char body[32];
    itoa(n * 37 % 100000, body);
    int len = strlen(body);
    int acc = 521;
    int i = 0;
    while (i < 5000) {
        acc = acc + (i * 31 + len) % 97;
        acc = acc % 1000000007;
        i = i + 1;
    }
    return acc + len;
}
";

/// A named kernel paired with its runner.
type Kernel = (&'static str, fn(Engine) -> Run);

/// One timed engine run: min-of-reps wall time plus the deterministic
/// guest-side observables every rep must reproduce exactly.
struct Run {
    wall_ns: f64,
    insts: u64,
    virt_cycles: u64,
    result: u64,
}

impl Run {
    fn ns_per_inst(&self) -> f64 {
        self.wall_ns / self.insts as f64
    }

    /// Million guest instructions retired per host second.
    fn mips(&self) -> f64 {
        self.insts as f64 / (self.wall_ns / 1e3)
    }
}

/// Interleaves fast and reference reps — host noise (a scheduler burst, a
/// frequency excursion) then degrades both engines' samples alike instead of
/// skewing whichever engine happened to own that window — and keeps the
/// minimum of each.
fn min_interleaved(reps: usize, mut one: impl FnMut(Engine) -> Run) -> (Run, Run) {
    let keep_min = |best: &mut Run, r: Run| {
        assert_eq!(r.insts, best.insts, "reps must retire identically");
        assert_eq!(
            r.virt_cycles, best.virt_cycles,
            "reps must tick identically"
        );
        assert_eq!(r.result, best.result, "reps must compute identically");
        if r.wall_ns < best.wall_ns {
            *best = r;
        }
    };
    let mut fast = one(Engine::Fast);
    let mut reference = one(Engine::Reference);
    for _ in 1..reps {
        keep_min(&mut fast, one(Engine::Fast));
        keep_min(&mut reference, one(Engine::Reference));
    }
    (fast, reference)
}

fn run_fib(engine: Engine) -> Run {
    let img = assemble(FIB_SRC).expect("fib kernel assembles");
    let clock = Clock::new();
    let mut m = Machine::new(clock.clone(), CpuConfig::native(), 64 * 1024, img.entry);
    m.load_image(&img);
    m.cpu.set_engine(engine);
    let t = Instant::now();
    let exit = m.run(10_000_000).expect("fib kernel must not fault");
    let wall_ns = t.elapsed().as_nanos() as f64;
    assert_eq!(exit, CpuExit::Hlt);
    assert_eq!(m.cpu.reg(Reg(0)), 6765, "fib(20)");
    Run {
        wall_ns,
        insts: m.cpu.insts_retired(),
        virt_cycles: clock.now().get(),
        result: m.cpu.reg(Reg(0)),
    }
}

fn run_http(engine: Engine) -> Run {
    let unit = vcc::compile(HTTP_SRC).expect("http kernel compiles");
    let v = &unit.virtines[0];
    let clock = Clock::new();
    let mut m = Machine::new(
        clock.clone(),
        CpuConfig::default(),
        v.mem_size,
        v.image.entry,
    );
    m.load_image(&v.image);
    m.mem
        .write_bytes(wasp::ARGS_ADDR, &vcc::marshal_args(&[4217]))
        .expect("args fit");
    m.cpu.set_engine(engine);
    m.cpu.note_vmentry();
    let mut rng = Rng::seeded(0x1777);
    let t = Instant::now();
    let result = loop {
        match m.run(50_000_000).expect("http kernel must not fault") {
            CpuExit::Hlt => break m.cpu.reg(Reg(0)),
            CpuExit::IoOut { .. } => {}
            CpuExit::IoIn { .. } => m.cpu.provide_in(rng.next_u64()),
            CpuExit::StepLimit => panic!("http kernel blew its step budget"),
        }
    };
    let wall_ns = t.elapsed().as_nanos() as f64;
    Run {
        wall_ns,
        insts: m.cpu.insts_retired(),
        virt_cycles: clock.now().get(),
        result,
    }
}

fn main() {
    let host = bench::HostTimer::start();
    let reps = bench::trials(9);
    bench::header(
        "Interpreter speed: predecoded fast engine vs reference",
        "the simulation substrate must not be the slow part — host ns/inst \
         drops >=2x while virtual time stays bit-identical",
    );
    println!("# min of {reps} reps per engine per kernel");
    println!("#");
    println!(
        "# {:<6} {:>12} {:>14} {:>14} {:>10} {:>10} {:>9} {:>6}",
        "kernel", "insts", "virt_cycles", "engine", "ns/inst", "MIPS", "speedup", "ident"
    );

    let mut json = String::from("{\n  \"kernels\": [\n");
    let kernels: [Kernel; 2] = [("fib", run_fib), ("http", run_http)];
    for (i, (name, runner)) in kernels.iter().enumerate() {
        let (fast, reference) = min_interleaved(reps, runner);
        let identical = fast.insts == reference.insts
            && fast.virt_cycles == reference.virt_cycles
            && fast.result == reference.result;
        let speedup = reference.ns_per_inst() / fast.ns_per_inst();
        for (engine, r) in [("fast", &fast), ("ref", &reference)] {
            println!(
                "# {:<6} {:>12} {:>14} {:>14} {:>10.1} {:>10.1} {:>9} {:>6}",
                name,
                r.insts,
                r.virt_cycles,
                engine,
                r.ns_per_inst(),
                r.mips(),
                if engine == "fast" {
                    format!("{speedup:.2}x")
                } else {
                    "-".into()
                },
                if identical { "yes" } else { "NO" },
            );
        }
        assert!(
            identical,
            "{name}: engines diverged — run the differential fuzzer"
        );
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{name}\", \"insts\": {}, \"virt_cycles\": {}, \
             \"cycle_identical\": {}, \"speedup\": {speedup:.3}, \
             \"fast_ns_per_inst\": {:.2}, \"ref_ns_per_inst\": {:.2}, \
             \"fast_mips\": {:.1}, \"ref_mips\": {:.1}}}{}",
            fast.insts,
            fast.virt_cycles,
            if identical { 1 } else { 0 },
            fast.ns_per_inst(),
            reference.ns_per_inst(),
            fast.mips(),
            reference.mips(),
            if i + 1 == kernels.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],\n  \"config\": {{\"reps\": {reps}}}\n}}");
    println!("#");
    bench::write_artifact("interp_speed", &json, &host);
}
