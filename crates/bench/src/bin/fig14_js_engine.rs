//! Figure 14: slowdown of JavaScript virtines relative to native Duktide.

use vjs::study::run_js_study;

fn main() {
    let trials = bench::trials(20);
    bench::header(
        "Figure 14: JS engine slowdown vs native (base64 workload)",
        "plain virtine 1.5-2x; +snapshot ~2x overhead reduction; \
         +snapshot+NT drops below native (137µs vs 419µs in the paper) \
         by keeping engine setup/teardown off the path",
    );
    println!(
        "{:<24} {:>12} {:>10}",
        "configuration", "mean(µs)", "slowdown"
    );
    for bar in run_js_study(trials, 4096) {
        println!(
            "{:<24} {:>12.1} {:>9.2}x",
            bar.name, bar.micros, bar.slowdown
        );
    }
}
