//! Figure 3: latency to run fib(20) in the three classic x86 modes.
//!
//! Each trial enters a fresh virtual context, brings it up to the target
//! mode (16-bit does nothing, 32-bit does lgdt+PE+ljmp, 64-bit does the
//! full boot with paging), runs a recursive fib(20), and exits. Outliers
//! are removed with Tukey's method, as in the paper (footnote 3).

use hostsim::HostKernel;
use kvmsim::Hypervisor;
use vclock::stats::Summary;
use vclock::Clock;
use wasp::{HypercallMask, Invocation, PoolMode, Wasp, WaspConfig};

const FIB_BODY: &str = "
  mov r1, 20
  call fib
  hlt
fib:
  cmp r1, 2
  jl .base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
.base:
  mov r0, r1
  ret
";

fn image_for_mode(mode: u32) -> visa::Image {
    let src = match mode {
        16 => format!(".org 0x8000\n  mov sp, 0x7000\n{FIB_BODY}"),
        32 => format!(
            ".org 0x8000
  lgdt gdt
  mov r0, 1
  mov cr0, r0
  ljmp32 prot
prot:
  mov sp, 0x100000
{FIB_BODY}
gdt: .dq 0
"
        ),
        64 => format!(
            ".org 0x8000
.equ EFER, 0xC0000080
  lgdt gdt
  mov r0, 1
  mov cr0, r0
  ljmp32 prot
prot:
  mov r1, 0x1000
  mov r2, 0x2003
  store.q [r1], r2
  mov r1, 0x2000
  mov r2, 0x3003
  store.q [r1], r2
  mov r3, 0
  mov r4, 0x83
  mov r5, 0x3000
ptloop:
  store.q [r5], r4
  add r5, 8
  add r4, 0x200000
  add r3, 1
  cmp r3, 512
  jl ptloop
  mov r7, 0x1000
  mov cr3, r7
  mov r7, 0x20
  mov cr4, r7
  mov r7, 0x100
  wrmsr EFER, r7
  mov r7, 0x80000001
  mov cr0, r7
  ljmp64 longm
longm:
  mov sp, 0x200000
{FIB_BODY}
gdt: .dq 0
"
        ),
        _ => unreachable!(),
    };
    visa::assemble(&src).expect("fib image")
}

fn main() {
    let trials = bench::trials(200);
    bench::header(
        "Figure 3: fib(20) latency by processor mode (cycles, Tukey-filtered)",
        "16-bit cheapest (skips paging+PE costs); 32 and 64-bit essentially \
         equal; ~10K cycles separate real mode from long mode",
    );

    for mode in [16u32, 32, 64] {
        let img = image_for_mode(mode);
        let clock = Clock::new();
        let wasp = Wasp::new(
            Hypervisor::kvm(HostKernel::new(clock.clone(), None)),
            WaspConfig {
                pool_mode: PoolMode::CachedAsync,
                ..WaspConfig::default()
            },
        );
        let id = wasp
            .register(
                wasp::VirtineSpec::new(format!("fib{mode}"), img, 4 << 20).with_snapshot(false),
            )
            .expect("register");
        let mut xs = Vec::with_capacity(trials);
        for _ in 0..trials {
            let out = wasp.run(id, &[], Invocation::default()).expect("run");
            assert_eq!(out.ret, 6765, "fib(20) in {mode}-bit mode");
            xs.push(out.breakdown.total.get() as f64);
        }
        let _ = HypercallMask::DENY_ALL; // Policy is default-deny already.
        bench::row(&format!("{mode}-bit mode"), &Summary::of_tukey(&xs));
    }
}
