//! Table 2: comparing costs of crossing isolation boundaries.
//!
//! The related-system rows are literature constants quoted by the paper;
//! the virtine row is *measured* here the way the paper measures it:
//! "from userspace on the host, surrounding the KVM_RUN ioctl" — a
//! snapshot-enabled fib(0) language-extension virtine.

use vclock::stats::Summary;
use wasp::Wasp;

fn main() {
    let trials = bench::trials(200);
    bench::header(
        "Table 2: isolation boundary-crossing costs",
        "virtines ~5µs (syscall interface + VMRUN); between LwC (2µs) and \
         Wedge (60µs); SeCage/Hodor VMFUNC-only are sub-µs",
    );

    let unit =
        vcc::compile("virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }")
            .expect("compile");
    let v = unit.virtine("fib").expect("fib");
    let wasp = Wasp::new_kvm_default();
    let id = v.register(&wasp).expect("register");
    // First call takes the snapshot; measure steady-state crossings.
    vcc::invoke(&wasp, id, &[0]).expect("warm");
    let us: Vec<f64> = (0..trials)
        .map(|_| {
            let out = vcc::invoke(&wasp, id, &[0]).expect("invoke");
            assert!(out.exit.is_normal());
            out.breakdown.total.as_micros()
        })
        .collect();
    let measured = Summary::of(&us);

    println!(
        "{:<14} {:>12} {:<38}",
        "system", "latency", "boundary-cross mechanism"
    );
    for (system, latency, mech) in [
        ("Wedge", "~60 µs".to_string(), "sthread call"),
        ("LwC", "2.01 µs".to_string(), "lwSwitch"),
        (
            "Enclosures",
            "0.9 µs".to_string(),
            "custom syscall interface",
        ),
        ("SeCage", "0.5 µs".to_string(), "VMRUN/VMFUNC"),
        ("Hodor", "0.1 µs".to_string(), "VMRUN/VMFUNC"),
        (
            "Virtines",
            format!("{:.2} µs", measured.mean),
            "syscall interface + VMRUN (measured)",
        ),
    ] {
        println!("{system:<14} {latency:>12} {mech:<38}");
    }
    println!(
        "#\n# measured detail: mean {:.2} µs, std {:.2} µs, min {:.2} µs (paper: 5 µs)",
        measured.mean, measured.std_dev, measured.min
    );
}
