//! Figure 13: HTTP static-content server — mean response latency and
//! harmonic-mean throughput, native vs virtine vs virtine+snapshot.

use vclock::stats::{harmonic_mean, Summary};
use vhttp::server::{run_server, ServerMode};

fn main() {
    let trials = bench::trials(200);
    bench::header(
        "Figure 13: HTTP server latency (a) and throughput (b)",
        "virtines with snapshots lose ~12% throughput vs native on tinker \
         (artifact notes up to ~2x elsewhere); 7 hypercalls per request are \
         most of the cost",
    );
    println!(
        "{:<22} {:>14} {:>12} {:>14} {:>8}",
        "mode", "latency(µs)", "std(µs)", "tput(req/s)", "hc/req"
    );
    let mut rows = Vec::new();
    for mode in [
        ServerMode::Native,
        ServerMode::Virtine,
        ServerMode::VirtineSnapshot,
    ] {
        let run = run_server(mode, trials, 4096, Some(13));
        let us: Vec<f64> = run.latencies.iter().map(|c| c.as_micros()).collect();
        let s = Summary::of(&us);
        // The paper aggregates throughput with the harmonic mean; compute
        // it over per-request rates.
        let rates: Vec<f64> = us.iter().map(|l| 1e6 / l).collect();
        let hm = harmonic_mean(&rates);
        println!(
            "{:<22} {:>14.1} {:>12.1} {:>14.0} {:>8.1}",
            format!("{:?}", run.mode),
            s.mean,
            s.std_dev,
            hm,
            run.interactions_per_request
        );
        rows.push((mode, hm));
    }
    let native = rows[0].1;
    let snap = rows[2].1;
    println!(
        "#\n# snapshot throughput drop vs native: {:.1}%",
        (1.0 - snap / native) * 100.0
    );
}
