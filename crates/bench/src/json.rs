//! A minimal JSON reader for the bench artifacts.
//!
//! The workspace deliberately carries no external crates, so the CI
//! regression gate (`check_regression`) parses the committed baseline and
//! freshly produced `BENCH_*.json` files with this ~150-line recursive
//! descent parser instead of serde. It covers exactly the JSON the bench
//! binaries emit: objects, arrays, strings (with the escapes the writers
//! use), numbers, booleans, and null.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the artifacts only use f64-representable values).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// Dot-separated path lookup: object keys and array indices, e.g.
    /// `"runs.2.fast_p99_ms"` or `"micro.warm_acquire_image_cycles"`.
    pub fn path(&self, p: &str) -> Option<&Json> {
        let mut cur = self;
        for seg in p.split('.') {
            cur = match seg.parse::<usize>() {
                Ok(i) => cur.idx(i)?,
                Err(_) => cur.get(seg)?,
            };
        }
        Some(cur)
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {pos}", c as char))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                fields.push((key, value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => keyword(b, pos, "null", Json::Null),
        Some(_) => number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn keyword(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad keyword at offset {pos}"))
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => return Err(format!("unsupported escape `\\{}`", *other as char)),
                }
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_shapes() {
        let doc = r#"{
  "runs": [
    {"label": "a b", "p99_ms": 1.25, "served": 1000, "ok": true},
    {"label": "c", "p99_ms": -2e-3, "served": 0, "ok": false}
  ],
  "config": {"shards": 4, "note": null}
}"#;
        let j = Json::parse(doc).unwrap();
        assert_eq!(j.path("runs.0.label").unwrap().as_str(), Some("a b"));
        assert_eq!(j.path("runs.1.p99_ms").unwrap().as_f64(), Some(-2e-3));
        assert_eq!(j.path("config.shards").unwrap().as_f64(), Some(4.0));
        assert_eq!(j.path("config.note"), Some(&Json::Null));
        assert_eq!(j.path("runs").unwrap().items().len(), 2);
        assert_eq!(j.path("runs.0.ok"), Some(&Json::Bool(true)));
        assert!(j.path("runs.5.label").is_none());
        assert!(j.path("nope").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let j = Json::parse(r#"{"s": "a\"b\\c\nd"}"#).unwrap();
        assert_eq!(j.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }
}
