//! Shared helpers for the per-figure benchmark binaries.
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation, printing the same rows/series the paper reports (in cycles
//! and/or µs of virtual time at 2.69 GHz). Trial counts follow the paper's
//! "1000 trials unless otherwise noted", scaled down by default for quick
//! runs; pass `--trials N` (or set `TRIALS=N`) to override.

pub mod json;

use vclock::stats::{Histogram, Summary};
use vclock::Cycles;

/// Parses `--trials N` from argv or `TRIALS` from the environment,
/// defaulting to `default`.
pub fn trials(default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trials" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        }
    }
    std::env::var("TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Converts per-trial cycle samples into floats.
pub fn cycles_f64(samples: &[Cycles]) -> Vec<f64> {
    samples.iter().map(|c| c.get() as f64).collect()
}

/// Prints a header for a figure/table reproduction.
pub fn header(title: &str, claim: &str) {
    println!("# {title}");
    println!("# paper claim: {claim}");
    println!("#");
}

/// Formats a `Summary` of cycle samples as `mean ± std (min)` with µs.
pub fn fmt_cycles(s: &Summary) -> String {
    let us = Cycles(s.mean as u64).as_micros();
    format!(
        "{:>12.0} ± {:>8.0} cyc  ({:>9.2} µs, min {:>10.0})",
        s.mean, s.std_dev, us, s.min
    )
}

/// One labelled measurement row.
pub fn row(label: &str, s: &Summary) {
    println!("{label:<28} {}", fmt_cycles(s));
}

/// Folds end-to-end latencies in virtual seconds into the shared cycle
/// [`Histogram`] — the same log-linear bucketing the `/metrics` endpoint
/// exports, so bench percentiles and scraped quantiles agree to the
/// histogram's ≤6.25% bucket error instead of disagreeing by methodology.
pub fn latency_histogram(lat_s: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in lat_s {
        h.record(Cycles::from_micros(s * 1e6).get());
    }
    h
}

/// Reads percentile `p` (0–100) out of a cycle histogram in milliseconds.
pub fn hist_percentile_ms(h: &Histogram, p: f64) -> f64 {
    Cycles(h.quantile(p / 100.0)).as_millis()
}

/// Host-side wall-clock attribution for a bench run.
///
/// Everything above reports *virtual* time (guest cycles at 2.69 GHz); this
/// measures what the simulation costs the *host* — wall time elapsed and
/// host nanoseconds per retired guest instruction, from the process-wide
/// [`visa::pred::counters`] retired totals. Started at the top of a bench's
/// `main` and folded into its JSON artifact by [`write_artifact`], so every
/// `BENCH_*.json` carries a `host` object tracking interpreter speed.
pub struct HostTimer {
    start: std::time::Instant,
    retired0: u64,
}

impl HostTimer {
    /// Starts the timer and snapshots the retired-instruction counters.
    pub fn start() -> Self {
        let c = visa::pred::counters();
        Self {
            start: std::time::Instant::now(),
            retired0: c.retired_fast + c.retired_ref,
        }
    }

    /// Wall nanoseconds elapsed since [`HostTimer::start`].
    pub fn wall_ns(&self) -> f64 {
        self.start.elapsed().as_nanos() as f64
    }

    /// Guest instructions retired (both engines) since the timer started.
    pub fn guest_insts(&self) -> u64 {
        let c = visa::pred::counters();
        (c.retired_fast + c.retired_ref).saturating_sub(self.retired0)
    }

    /// The `"host": {...}` JSON fragment: wall ms, retired guest
    /// instructions, and host ns per guest instruction (0 when the bench
    /// ran no guest code).
    pub fn json(&self) -> String {
        let wall_ns = self.wall_ns();
        let insts = self.guest_insts();
        let ns_per_inst = if insts == 0 {
            0.0
        } else {
            wall_ns / insts as f64
        };
        format!(
            "\"host\": {{\"wall_ms\": {:.3}, \"guest_insts\": {insts}, \"ns_per_inst\": {ns_per_inst:.2}}}",
            wall_ns / 1e6
        )
    }
}

/// Writes `BENCH_<name>.json`, appending the [`HostTimer`]'s `host` object
/// as a final top-level field. `json` must be a complete object (ending in
/// `}`); the regression gate ignores keys it doesn't check, so the
/// wall-clock numbers ride along without perturbing any committed baseline.
pub fn write_artifact(name: &str, json: &str, host: &HostTimer) {
    let body = json
        .trim_end()
        .strip_suffix('}')
        .expect("artifact JSON must end with `}`")
        .trim_end();
    let out = format!("{body},\n  {}\n}}\n", host.json());
    std::fs::write(format!("BENCH_{name}.json"), out).expect("write JSON artifact");
    println!("# wrote BENCH_{name}.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_env_default() {
        // No --trials in the test harness argv; default comes back unless
        // TRIALS happens to be set.
        if std::env::var("TRIALS").is_err() {
            assert_eq!(trials(123), 123);
        }
    }

    #[test]
    fn host_timer_emits_a_json_object() {
        let t = HostTimer::start();
        let j = t.json();
        assert!(j.starts_with("\"host\": {"));
        assert!(j.contains("\"wall_ms\""));
        assert!(j.contains("\"ns_per_inst\""));
    }

    #[test]
    fn cycle_formatting_contains_units() {
        let s = Summary::of(&[1000.0, 2000.0]);
        let out = fmt_cycles(&s);
        assert!(out.contains("cyc"));
        assert!(out.contains("µs"));
    }
}
