//! Shared helpers for the per-figure benchmark binaries.
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation, printing the same rows/series the paper reports (in cycles
//! and/or µs of virtual time at 2.69 GHz). Trial counts follow the paper's
//! "1000 trials unless otherwise noted", scaled down by default for quick
//! runs; pass `--trials N` (or set `TRIALS=N`) to override.

pub mod json;

use vclock::stats::{Histogram, Summary};
use vclock::Cycles;

/// Parses `--trials N` from argv or `TRIALS` from the environment,
/// defaulting to `default`.
pub fn trials(default: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trials" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        }
    }
    std::env::var("TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Converts per-trial cycle samples into floats.
pub fn cycles_f64(samples: &[Cycles]) -> Vec<f64> {
    samples.iter().map(|c| c.get() as f64).collect()
}

/// Prints a header for a figure/table reproduction.
pub fn header(title: &str, claim: &str) {
    println!("# {title}");
    println!("# paper claim: {claim}");
    println!("#");
}

/// Formats a `Summary` of cycle samples as `mean ± std (min)` with µs.
pub fn fmt_cycles(s: &Summary) -> String {
    let us = Cycles(s.mean as u64).as_micros();
    format!(
        "{:>12.0} ± {:>8.0} cyc  ({:>9.2} µs, min {:>10.0})",
        s.mean, s.std_dev, us, s.min
    )
}

/// One labelled measurement row.
pub fn row(label: &str, s: &Summary) {
    println!("{label:<28} {}", fmt_cycles(s));
}

/// Folds end-to-end latencies in virtual seconds into the shared cycle
/// [`Histogram`] — the same log-linear bucketing the `/metrics` endpoint
/// exports, so bench percentiles and scraped quantiles agree to the
/// histogram's ≤6.25% bucket error instead of disagreeing by methodology.
pub fn latency_histogram(lat_s: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in lat_s {
        h.record(Cycles::from_micros(s * 1e6).get());
    }
    h
}

/// Reads percentile `p` (0–100) out of a cycle histogram in milliseconds.
pub fn hist_percentile_ms(h: &Histogram, p: f64) -> f64 {
    Cycles(h.quantile(p / 100.0)).as_millis()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_env_default() {
        // No --trials in the test harness argv; default comes back unless
        // TRIALS happens to be set.
        if std::env::var("TRIALS").is_err() {
            assert_eq!(trials(123), 123);
        }
    }

    #[test]
    fn cycle_formatting_contains_units() {
        let s = Summary::of(&[1000.0, 2000.0]);
        let out = fmt_cycles(&s);
        assert!(out.contains("cyc"));
        assert!(out.contains("µs"));
    }
}
