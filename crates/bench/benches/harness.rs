//! Wall-clock benches of the simulator's hot paths: these measure the
//! *reproduction harness itself*, complementing the per-figure binaries
//! which report virtual time. Dependency-free (`harness = false`): each
//! case is timed with `std::time::Instant` over a fixed iteration count.

use std::time::Instant;

use vclock::Clock;
use visa::{assemble, CpuConfig, Machine};
use wasp::{HypercallMask, Invocation, Wasp};

const FIB15: &str = "
.org 0x8000
  mov sp, 0x7000
  mov r1, 15
  call fib
  hlt
fib:
  cmp r1, 2
  jl .base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
.base:
  mov r0, r1
  ret
";

/// Times `iters` runs of `f` and prints a per-iteration figure.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // Warm up.
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<24} {:>12.2} µs/iter  ({iters} iters)", per * 1e6);
}

fn main() {
    bench("assemble_fib", 2_000, || {
        assemble(std::hint::black_box(FIB15)).expect("assemble");
    });

    let img = assemble(FIB15).expect("assemble");
    bench("interpret_fib15", 200, || {
        let mut m = Machine::new(Clock::new(), CpuConfig::native(), 64 * 1024, img.entry);
        m.load_image(&img);
        m.run(10_000_000).expect("run");
    });

    let wasp = Wasp::new_kvm_default();
    let hlt = assemble(".org 0x8000\n mov r0, 1\n hlt\n").expect("assemble");
    let id = wasp
        .register(
            wasp::VirtineSpec::new("hlt", hlt, 64 * 1024)
                .with_policy(HypercallMask::DENY_ALL)
                .with_snapshot(false),
        )
        .expect("register");
    bench("wasp_invoke_minimal", 2_000, || {
        wasp.run(id, &[], Invocation::default()).expect("run");
    });

    let src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
    bench("vcc_compile_fib", 1_000, || {
        vcc::compile(std::hint::black_box(src)).expect("compile");
    });
}
