//! Criterion benches of the simulator's hot paths: these measure the
//! *reproduction harness itself* (wall-clock), complementing the per-figure
//! binaries which report virtual time.

use criterion::{criterion_group, criterion_main, Criterion};
use vclock::Clock;
use visa::{assemble, CpuConfig, Machine};
use wasp::{HypercallMask, Invocation, Wasp};

const FIB15: &str = "
.org 0x8000
  mov sp, 0x7000
  mov r1, 15
  call fib
  hlt
fib:
  cmp r1, 2
  jl .base
  push r1
  sub r1, 1
  call fib
  pop r1
  push r0
  sub r1, 2
  call fib
  pop r2
  add r0, r2
  ret
.base:
  mov r0, r1
  ret
";

fn bench_assembler(c: &mut Criterion) {
    c.bench_function("assemble_fib", |b| {
        b.iter(|| assemble(std::hint::black_box(FIB15)).expect("assemble"))
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let img = assemble(FIB15).expect("assemble");
    c.bench_function("interpret_fib15", |b| {
        b.iter(|| {
            let mut m = Machine::new(Clock::new(), CpuConfig::native(), 64 * 1024, img.entry);
            m.load_image(&img);
            m.run(10_000_000).expect("run")
        })
    });
}

fn bench_wasp_invoke(c: &mut Criterion) {
    let wasp = Wasp::new_kvm_default();
    let img = assemble(".org 0x8000\n mov r0, 1\n hlt\n").expect("assemble");
    let id = wasp
        .register(
            wasp::VirtineSpec::new("hlt", img, 64 * 1024)
                .with_policy(HypercallMask::DENY_ALL)
                .with_snapshot(false),
        )
        .expect("register");
    c.bench_function("wasp_invoke_minimal", |b| {
        b.iter(|| wasp.run(id, &[], Invocation::default()).expect("run"))
    });
}

fn bench_compiler(c: &mut Criterion) {
    let src = "virtine int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
    c.bench_function("vcc_compile_fib", |b| {
        b.iter(|| vcc::compile(std::hint::black_box(src)).expect("compile"))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_assembler, bench_interpreter, bench_wasp_invoke, bench_compiler
}
criterion_main!(benches);
