//! # hostsim — the simulated host operating system
//!
//! The virtines paper measures its abstractions *relative to* host-OS
//! primitives: null function calls, `pthread_create`/`join`, process spawns
//! (Figures 2 and 8), POSIX file I/O re-created from hypercalls (§6.3), the
//! loopback network stack (Figure 4), and SGX enclaves (Figure 8). This
//! crate provides those primitives as cost-charging operations over the
//! shared virtual [`Clock`], plus small functional models (an in-memory
//! filesystem, a loopback socket layer) for the experiments that actually
//! move bytes.
//!
//! The kernel object is cheaply cloneable and single-threaded, mirroring the
//! deterministic discrete simulation used across the workspace.

pub mod chan;
pub mod fs;
pub mod net;

use std::cell::RefCell;
use std::rc::Rc;

use vclock::noise::NoiseModel;
use vclock::{costs, Clock, Cycles};

pub use chan::{ChanError, ChanId, ChanRecvReady, ChanSendReady};
pub use fs::{Fd, FileStat, FsError};
pub use net::{NetError, SockId, SockReady};

/// A provider-independent classification of host I/O failures, shared by
/// the [`fs`], [`net`], and [`chan`] layers. Wasp maps every hypercall
/// failure to a guest return code by *class*, so "end of stream", "you
/// closed this", "backpressure", and "never existed" keep their meanings
/// across files, sockets, and channels instead of each layer inventing
/// its own aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// The handle was never issued (a caller bug).
    BadHandle,
    /// The handle (or its connection) was closed.
    Closed,
    /// Clean end-of-stream: not an error; guests see `0`.
    Eof,
    /// A bounded queue is at capacity: retry or park (backpressure).
    Full,
    /// The named object does not exist.
    NotFound,
    /// The operation was refused (no listener, not listening).
    Refused,
    /// A resource is busy (address in use, waiter slot taken).
    Busy,
}

impl FsError {
    /// This error's [`IoClass`].
    pub fn class(&self) -> IoClass {
        match self {
            FsError::NotFound(_) => IoClass::NotFound,
            FsError::BadFd(_) => IoClass::BadHandle,
            FsError::Closed(_) => IoClass::Closed,
            FsError::Eof(_) => IoClass::Eof,
        }
    }
}

impl NetError {
    /// This error's [`IoClass`].
    pub fn class(&self) -> IoClass {
        match self {
            NetError::ConnectionRefused(_) | NetError::NotListening(_) => IoClass::Refused,
            NetError::AddrInUse(_) | NetError::WaiterBusy(_) => IoClass::Busy,
            NetError::BadSocket(_) => IoClass::BadHandle,
            NetError::Closed(_) => IoClass::Closed,
        }
    }
}

impl ChanError {
    /// This error's [`IoClass`].
    pub fn class(&self) -> IoClass {
        match self {
            ChanError::BadChan(_) => IoClass::BadHandle,
            ChanError::Closed(_) => IoClass::Closed,
            ChanError::Full(_) => IoClass::Full,
        }
    }
}

struct Inner {
    clock: Clock,
    noise: RefCell<NoiseModel>,
    fs: RefCell<fs::InMemFs>,
    net: RefCell<net::LoopbackNet>,
    chan: RefCell<chan::ChanTable>,
}

/// A handle to the simulated host kernel.
///
/// # Examples
///
/// ```
/// use vclock::Clock;
/// use hostsim::HostKernel;
///
/// let clock = Clock::new();
/// let kernel = HostKernel::new(clock.clone(), None);
/// let t0 = clock.now();
/// kernel.pthread_create_join();
/// assert!(clock.now() > t0);
/// ```
#[derive(Clone)]
pub struct HostKernel {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for HostKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostKernel(t={})", self.inner.clock.now())
    }
}

impl HostKernel {
    /// Creates a kernel charging to `clock`. With `noise_seed = None` the
    /// kernel is noise-free (exact minimum latencies, as in Table 1); with a
    /// seed it reproduces the jitter texture of the paper's error bars.
    pub fn new(clock: Clock, noise_seed: Option<u64>) -> HostKernel {
        let noise = match noise_seed {
            Some(seed) => NoiseModel::seeded(seed),
            None => NoiseModel::disabled(),
        };
        HostKernel {
            inner: Rc::new(Inner {
                clock,
                noise: RefCell::new(noise),
                fs: RefCell::new(fs::InMemFs::default()),
                net: RefCell::new(net::LoopbackNet::default()),
                chan: RefCell::new(chan::ChanTable::default()),
            }),
        }
    }

    /// The clock this kernel charges.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> Cycles {
        self.inner.clock.now()
    }

    fn charge(&self, cycles: u64) {
        self.inner.clock.tick(cycles);
    }

    fn charge_jittered(&self, cycles: u64, spread: f64) {
        let c = self.inner.noise.borrow_mut().jitter(cycles, spread);
        self.charge(c);
    }

    // -- Host execution primitives (Figures 2 and 8 baselines). ----------

    /// A null function call and return ("function" bar of Figure 2).
    pub fn function_call(&self) {
        self.charge(costs::HOST_FUNCTION_CALL);
    }

    /// One user/kernel ring transition.
    pub fn ring_transition(&self) {
        self.charge(costs::HOST_RING_TRANSITION);
    }

    /// A full system-call round trip, excluding any operation-specific work.
    pub fn syscall_overhead(&self) {
        self.charge_jittered(
            2 * costs::HOST_RING_TRANSITION + costs::HOST_SYSCALL_BASE,
            0.02,
        );
    }

    /// `pthread_create` immediately followed by `pthread_join`
    /// ("Linux pthread" of Figure 2).
    pub fn pthread_create_join(&self) {
        self.charge_jittered(costs::HOST_PTHREAD_CREATE_JOIN, 0.04);
    }

    /// `fork`+`exec`+`wait` of a minimal process (Figure 8 "process").
    pub fn process_spawn(&self) {
        self.charge_jittered(costs::HOST_PROCESS_SPAWN, 0.05);
    }

    /// Copies `bytes` at the measured 6.7 GB/s memcpy bandwidth (§6.2).
    pub fn memcpy(&self, bytes: usize) {
        self.charge(costs::memcpy_cycles(bytes));
    }

    /// Zeroes `bytes` at memset bandwidth (virtine shell cleaning, §5.2).
    pub fn memset(&self, bytes: usize) {
        self.charge(costs::memset_cycles(bytes));
    }

    /// Per-byte user/kernel copy cost for I/O system calls.
    fn copy_cost(&self, bytes: usize) -> u64 {
        (bytes as u64 * costs::HOST_COPY_PER_BYTE_X1000) / 1_000
    }

    /// Samples (and charges) a host-scheduling outlier; returns the extra
    /// cycles so harnesses can flag the sample.
    pub fn scheduling_event(&self) -> u64 {
        let extra = self.inner.noise.borrow_mut().scheduling_outlier();
        self.charge(extra);
        extra
    }

    // -- SGX comparison points (Figure 8). --------------------------------

    /// Creates an SGX enclave ("SGX Create", Figure 8).
    pub fn sgx_create_enclave(&self) {
        self.charge_jittered(costs::SGX_CREATE, 0.03);
    }

    /// Enters a previously created enclave ("ECALL", Figure 8).
    pub fn sgx_ecall(&self) {
        self.charge_jittered(costs::SGX_ECALL, 0.03);
    }

    // -- Filesystem (the 7-hypercall request path of §6.3). ---------------

    /// Installs a file in the in-memory filesystem (no cost; test setup).
    pub fn fs_add_file(&self, path: &str, content: Vec<u8>) {
        self.inner.fs.borrow_mut().add_file(path, content);
    }

    /// `open(2)`.
    pub fn sys_open(&self, path: &str) -> Result<Fd, FsError> {
        self.syscall_overhead();
        self.inner.fs.borrow_mut().open(path)
    }

    /// `stat(2)`.
    pub fn sys_stat(&self, path: &str) -> Result<FileStat, FsError> {
        self.syscall_overhead();
        self.inner.fs.borrow().stat(path)
    }

    /// `read(2)`: reads up to `len` bytes from the descriptor's cursor.
    pub fn sys_read(&self, fd: Fd, len: usize) -> Result<Vec<u8>, FsError> {
        self.syscall_overhead();
        let data = self.inner.fs.borrow_mut().read(fd, len)?;
        self.charge(self.copy_cost(data.len()));
        Ok(data)
    }

    /// `close(2)`.
    pub fn sys_close(&self, fd: Fd) -> Result<(), FsError> {
        self.syscall_overhead();
        self.inner.fs.borrow_mut().close(fd)
    }

    // -- Loopback sockets (Figures 4 and 13). ------------------------------

    /// Binds a listener on `port`.
    pub fn net_listen(&self, port: u16) -> Result<(), NetError> {
        self.syscall_overhead();
        self.inner.net.borrow_mut().listen(port)
    }

    /// Connects to a listening port; returns the client socket.
    pub fn net_connect(&self, port: u16) -> Result<SockId, NetError> {
        self.syscall_overhead();
        let base = costs::HOST_NET_STACK;
        let jittered = self.inner.noise.borrow_mut().net_jitter(base);
        self.charge(jittered);
        self.inner.net.borrow_mut().connect(port)
    }

    /// Accepts a pending connection; `None` if none is queued.
    pub fn net_accept(&self, port: u16) -> Result<Option<SockId>, NetError> {
        self.syscall_overhead();
        let got = self.inner.net.borrow_mut().accept(port)?;
        if got.is_some() {
            let jittered = self
                .inner
                .noise
                .borrow_mut()
                .net_jitter(costs::HOST_NET_ACCEPT);
            self.charge(jittered);
        }
        Ok(got)
    }

    /// `send(2)` on a loopback socket.
    pub fn net_send(&self, sock: SockId, data: &[u8]) -> Result<(), NetError> {
        self.syscall_overhead();
        let base = costs::HOST_NET_STACK + self.copy_cost(data.len());
        let jittered = self.inner.noise.borrow_mut().net_jitter(base);
        self.charge(jittered);
        self.inner.net.borrow_mut().send(sock, data)
    }

    /// `recv(2)` on a loopback socket; `None` if the peer queue is empty.
    pub fn net_recv(&self, sock: SockId, max_len: usize) -> Result<Option<Vec<u8>>, NetError> {
        self.syscall_overhead();
        let got = self.inner.net.borrow_mut().recv(sock, max_len)?;
        if let Some(data) = &got {
            let base = costs::HOST_NET_STACK + self.copy_cost(data.len());
            let jittered = self.inner.noise.borrow_mut().net_jitter(base);
            self.charge(jittered);
        }
        Ok(got)
    }

    /// Closes a socket.
    pub fn net_close(&self, sock: SockId) -> Result<(), NetError> {
        self.syscall_overhead();
        self.inner.net.borrow_mut().close(sock)
    }

    // -- Readiness machinery for event-driven blocked I/O. -----------------
    //
    // These are kernel-internal bookkeeping, not guest-visible system
    // calls: a blocking `recv` is *one* syscall that parks in the kernel
    // and completes when data arrives, so registration, probing, and wake
    // delivery charge nothing. The data-delivery `net_recv` at wake time
    // carries the full syscall + copy cost, exactly once.

    /// Probes a socket's receive side without consuming data or cycles.
    pub fn net_poll(&self, sock: SockId) -> Result<SockReady, NetError> {
        self.inner.net.borrow().poll(sock)
    }

    /// Registers a one-shot waiter woken when `sock` becomes readable.
    pub fn net_register_waiter(&self, sock: SockId, token: u64) -> Result<(), NetError> {
        self.inner.net.borrow_mut().register_waiter(sock, token)
    }

    /// Drops any waiter registered on `sock`.
    pub fn net_clear_waiter(&self, sock: SockId) {
        self.inner.net.borrow_mut().clear_waiter(sock);
    }

    /// Drains the waiter tokens whose sockets became readable.
    pub fn net_take_woken(&self) -> Vec<u64> {
        self.inner.net.borrow_mut().take_woken()
    }

    // -- Cross-virtine channels (host-mediated pipeline plumbing). ---------
    //
    // Channels live entirely in the host: guests reach them only through
    // the `chan_*` hypercalls, each one a mediated exit. Data-moving
    // operations charge like the socket layer (one syscall round trip plus
    // a queue-management cost and the per-byte copy); the readiness
    // machinery is kernel-internal bookkeeping and charges nothing, for
    // the same reason the socket waiters charge nothing — a blocking
    // `chan_recv` is *one* syscall whose cost is paid when the message is
    // delivered.

    /// Creates a channel bounded to `capacity` queued bytes.
    pub fn chan_open(&self, capacity: usize) -> ChanId {
        self.syscall_overhead();
        self.inner.chan.borrow_mut().open(capacity)
    }

    /// Queues one message on a channel (backpressure via
    /// [`ChanError::Full`]), waking parked receivers.
    pub fn chan_send(&self, id: ChanId, data: &[u8]) -> Result<(), ChanError> {
        self.syscall_overhead();
        self.inner.chan.borrow_mut().send(id, data)?;
        self.charge(costs::HOST_CHAN_OP + self.copy_cost(data.len()));
        Ok(())
    }

    /// Pops one message from a channel (`None` would block *or* is EOF —
    /// use [`HostKernel::chan_poll_recv`]), waking parked senders when
    /// capacity frees up.
    pub fn chan_recv(&self, id: ChanId, max_len: usize) -> Result<Option<Vec<u8>>, ChanError> {
        self.syscall_overhead();
        let got = self.inner.chan.borrow_mut().recv(id, max_len)?;
        if let Some(data) = &got {
            self.charge(costs::HOST_CHAN_OP + self.copy_cost(data.len()));
        }
        Ok(got)
    }

    /// Closes a channel: refuses further sends, wakes every waiter.
    pub fn chan_close(&self, id: ChanId) -> Result<(), ChanError> {
        self.syscall_overhead();
        self.inner.chan.borrow_mut().close(id)
    }

    /// Probes a channel's receive side without consuming data or cycles.
    pub fn chan_poll_recv(&self, id: ChanId) -> Result<ChanRecvReady, ChanError> {
        self.inner.chan.borrow().poll_recv(id)
    }

    /// Probes a channel's send side without consuming cycles.
    pub fn chan_poll_send(&self, id: ChanId) -> Result<ChanSendReady, ChanError> {
        self.inner.chan.borrow().poll_send(id)
    }

    /// Free probe: would a send of `len` bytes be admitted right now?
    /// `Err(Closed)` when the channel no longer accepts sends at all.
    pub fn chan_send_fits(&self, id: ChanId, len: usize) -> Result<bool, ChanError> {
        self.inner.chan.borrow().send_fits(id, len)
    }

    /// Registers a one-shot waiter woken when `id` becomes readable. Any
    /// number of waiters may park on one channel.
    pub fn chan_register_recv_waiter(&self, id: ChanId, token: u64) -> Result<(), ChanError> {
        self.inner.chan.borrow_mut().register_recv_waiter(id, token)
    }

    /// Registers a one-shot waiter woken when a send of `len` bytes to
    /// `id` would be admitted (or the channel closes).
    pub fn chan_register_send_waiter(
        &self,
        id: ChanId,
        token: u64,
        len: usize,
    ) -> Result<(), ChanError> {
        self.inner
            .chan
            .borrow_mut()
            .register_send_waiter(id, token, len)
    }

    /// Drops `token` from both waiter lists of `id`.
    pub fn chan_clear_waiter(&self, id: ChanId, token: u64) {
        self.inner.chan.borrow_mut().clear_waiter(id, token);
    }

    /// Drains the channel waiter tokens whose wait conditions became true.
    pub fn chan_take_woken(&self) -> Vec<u64> {
        self.inner.chan.borrow_mut().take_woken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel() -> (Clock, HostKernel) {
        let clock = Clock::new();
        let k = HostKernel::new(clock.clone(), None);
        (clock, k)
    }

    #[test]
    fn primitive_costs_follow_figure_2_ordering() {
        let (clock, k) = kernel();
        let (_, f) = clock.time(|| k.function_call());
        let (_, t) = clock.time(|| k.pthread_create_join());
        let (_, p) = clock.time(|| k.process_spawn());
        assert!(f < t && t < p, "f={f} t={t} p={p}");
    }

    #[test]
    fn noise_free_kernel_is_deterministic() {
        let (c1, k1) = kernel();
        let (c2, k2) = kernel();
        k1.pthread_create_join();
        k2.pthread_create_join();
        assert_eq!(c1.now(), c2.now());
    }

    #[test]
    fn seeded_kernels_reproduce_each_other() {
        let ca = Clock::new();
        let ka = HostKernel::new(ca.clone(), Some(11));
        let cb = Clock::new();
        let kb = HostKernel::new(cb.clone(), Some(11));
        for _ in 0..10 {
            ka.process_spawn();
            kb.process_spawn();
        }
        assert_eq!(ca.now(), cb.now());
    }

    #[test]
    fn file_io_round_trip_charges_per_byte() {
        let (clock, k) = kernel();
        k.fs_add_file("/www/index.html", b"hello world".to_vec());

        let st = k.sys_stat("/www/index.html").unwrap();
        assert_eq!(st.size, 11);

        let fd = k.sys_open("/www/index.html").unwrap();
        let t0 = clock.now();
        let data = k.sys_read(fd, 1024).unwrap();
        let small_read = clock.now() - t0;
        assert_eq!(data, b"hello world");
        // Subsequent read hits EOF — the distinct condition, not an error
        // and not an empty read.
        assert_eq!(k.sys_read(fd, 1024), Err(FsError::Eof(fd)));
        k.sys_close(fd).unwrap();

        // A bigger file costs more to read.
        k.fs_add_file("/big", vec![7u8; 1 << 20]);
        let fd = k.sys_open("/big").unwrap();
        let t0 = clock.now();
        let data = k.sys_read(fd, 1 << 20).unwrap();
        let big_read = clock.now() - t0;
        assert_eq!(data.len(), 1 << 20);
        assert!(big_read > small_read);
    }

    #[test]
    fn missing_file_is_an_error() {
        let (_, k) = kernel();
        assert!(k.sys_open("/nope").is_err());
        assert!(k.sys_stat("/nope").is_err());
    }

    #[test]
    fn sockets_pass_messages_in_order() {
        let (_, k) = kernel();
        k.net_listen(80).unwrap();
        let client = k.net_connect(80).unwrap();
        let server = k.net_accept(80).unwrap().expect("pending connection");

        k.net_send(client, b"GET / HTTP/1.0\r\n\r\n").unwrap();
        let got = k.net_recv(server, 4096).unwrap().expect("data");
        assert_eq!(got, b"GET / HTTP/1.0\r\n\r\n");

        k.net_send(server, b"200 OK").unwrap();
        assert_eq!(k.net_recv(client, 4096).unwrap().unwrap(), b"200 OK");

        // Empty queue reads as None (would block).
        assert!(k.net_recv(client, 4096).unwrap().is_none());
        k.net_close(client).unwrap();
        k.net_close(server).unwrap();
    }

    #[test]
    fn accept_without_connection_is_none() {
        let (_, k) = kernel();
        k.net_listen(8080).unwrap();
        assert!(k.net_accept(8080).unwrap().is_none());
    }

    #[test]
    fn sgx_costs_dwarf_everything_else() {
        let (clock, k) = kernel();
        let (_, create) = clock.time(|| k.sgx_create_enclave());
        let (_, ecall) = clock.time(|| k.sgx_ecall());
        let (_, thread) = clock.time(|| k.pthread_create_join());
        assert!(create > Cycles(10_000_000));
        assert!(ecall < thread);
    }

    #[test]
    fn channels_pass_messages_and_charge_per_byte() {
        let (clock, k) = kernel();
        let c = k.chan_open(4096);
        let t0 = clock.now();
        k.chan_send(c, b"small").unwrap();
        let small = clock.now() - t0;
        assert_eq!(k.chan_recv(c, 64).unwrap().unwrap(), b"small");

        let t0 = clock.now();
        k.chan_send(c, &vec![7u8; 4096]).unwrap();
        let big = clock.now() - t0;
        assert!(big > small, "bigger sends cost more: {big} !> {small}");
        assert!(k.chan_recv(c, 8192).unwrap().is_some());
        assert!(k.chan_recv(c, 8192).unwrap().is_none(), "drained");

        k.chan_close(c).unwrap();
        assert_eq!(k.chan_poll_recv(c).unwrap(), ChanRecvReady::Eof);
        assert_eq!(k.chan_send(c, b"x"), Err(ChanError::Closed(c)));
    }

    #[test]
    fn error_classes_unify_across_fs_net_and_chan() {
        let (_, k) = kernel();
        // Closed means closed, everywhere.
        let c = k.chan_open(8);
        k.chan_close(c).unwrap();
        assert_eq!(k.chan_send(c, b"x").unwrap_err().class(), IoClass::Closed);
        k.net_listen(4).unwrap();
        let s = k.net_connect(4).unwrap();
        k.net_close(s).unwrap();
        assert_eq!(k.net_recv(s, 8).unwrap_err().class(), IoClass::Closed);
        k.fs_add_file("/f", b"z".to_vec());
        let fd = k.sys_open("/f").unwrap();
        k.sys_close(fd).unwrap();
        assert_eq!(k.sys_read(fd, 8).unwrap_err().class(), IoClass::Closed);
        // Bad handles and EOF keep their own classes.
        assert_eq!(
            k.chan_send(ChanId(99), b"x").unwrap_err().class(),
            IoClass::BadHandle
        );
        assert_eq!(
            k.net_recv(SockId(99), 8).unwrap_err().class(),
            IoClass::BadHandle
        );
        let fd = k.sys_open("/f").unwrap();
        k.sys_read(fd, 8).unwrap();
        assert_eq!(k.sys_read(fd, 8).unwrap_err().class(), IoClass::Eof);
    }

    #[test]
    fn memcpy_charges_at_measured_bandwidth() {
        let (clock, k) = kernel();
        let (_, d) = clock.time(|| k.memcpy(16 * 1024 * 1024));
        let ms = d.as_millis();
        assert!((2.0..2.8).contains(&ms), "16MB memcpy = {ms} ms");
    }
}
