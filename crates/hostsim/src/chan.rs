//! Host-mediated cross-virtine channels.
//!
//! The paper's hypercall model makes every guest interaction an exit the
//! host mediates (§5.1); composing virtines into pipelines — the FaaS
//! chaining pattern of Catalyzer (ASPLOS '20) and SEUSS (EuroSys '20) —
//! needs a primitive two virtines can exchange bytes over *without* ever
//! sharing memory. This module is that primitive: bounded, message-oriented
//! byte queues living entirely in the host, reachable from guests only
//! through the `chan_*` hypercalls, each one a mediated exit checked
//! against the `HypercallMask` like any other.
//!
//! ## Readiness and waiters
//!
//! The channel layer mirrors [`crate::net`]'s poll contract so the same
//! event-driven block/park/resume machinery drives both:
//!
//! * the **receive side** is [`ChanRecvReady::Readable`] when a message is
//!   queued, [`ChanRecvReady::WouldBlock`] when empty but open, and
//!   [`ChanRecvReady::Eof`] when empty and closed;
//! * the **send side** is [`ChanSendReady::Writable`] while the queue has
//!   byte capacity left, [`ChanSendReady::Full`] when a send would overrun
//!   the bound (backpressure), and [`ChanSendReady::Closed`] after close.
//!
//! Waiter tokens are edge-triggered and one-shot, exactly as in `net` —
//! but unlike a socket, a channel may have **many** waiters per side
//! (several consumers can park on one queue; a close must wake the whole
//! storm). A `send` wakes every registered receive-side waiter, a `recv`
//! that frees capacity wakes every send-side waiter, and `close` wakes
//! both sides. Spurious wake-ups are therefore possible by design; the
//! resume path re-parks a run whose condition evaporated before it ran.

use std::collections::HashMap;
use std::fmt;

/// A channel handle. Host-global: the dispatcher binds the same id into
/// the producer's and the consumer's invocation to wire a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChanId(pub u64);

/// Channel-layer errors. `Closed` is distinct from `BadChan` for the same
/// reason [`crate::fs::FsError::Closed`] is distinct from `BadFd`: "you
/// closed this" and "this never existed" are different bugs, and aliasing
/// them costs exactly the diagnostic a guest (or a test) needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChanError {
    /// The id was never issued.
    BadChan(ChanId),
    /// The channel was closed (send refused, or an operation on a fully
    /// torn-down channel).
    Closed(ChanId),
    /// The send would overrun the byte bound; retry after a recv drains
    /// capacity (or park on [`ChanSendReady::Full`]).
    Full(ChanId),
}

impl fmt::Display for ChanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanError::BadChan(c) => write!(f, "bad channel {}", c.0),
            ChanError::Closed(c) => write!(f, "channel {} is closed", c.0),
            ChanError::Full(c) => write!(f, "channel {} is full", c.0),
        }
    }
}

impl std::error::Error for ChanError {}

/// What a non-destructive probe of a channel's receive side says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanRecvReady {
    /// At least one message is queued; a `recv` returns data.
    Readable,
    /// Empty but open: a `recv` would block.
    WouldBlock,
    /// Empty and closed: a `recv` returns EOF.
    Eof,
}

/// What a probe of a channel's send side says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanSendReady {
    /// Capacity remains; a send of up to the remaining bytes succeeds.
    Writable,
    /// The queue is at its byte bound: a send would block (backpressure).
    Full,
    /// The channel was closed; sends fail permanently.
    Closed,
}

#[derive(Debug)]
struct Channel {
    /// Queued messages, FIFO.
    queue: std::collections::VecDeque<Vec<u8>>,
    /// Bytes across all queued messages.
    queued_bytes: usize,
    /// Byte bound on `queued_bytes`.
    capacity: usize,
    /// Closed channels refuse sends; recv drains then reports EOF.
    closed: bool,
    /// One-shot tokens woken when the receive side becomes readable.
    recv_waiters: Vec<u64>,
    /// One-shot tokens woken when send capacity frees up (or on close).
    send_waiters: Vec<u64>,
}

impl Channel {
    fn recv_ready(&self) -> ChanRecvReady {
        if !self.queue.is_empty() {
            ChanRecvReady::Readable
        } else if self.closed {
            ChanRecvReady::Eof
        } else {
            ChanRecvReady::WouldBlock
        }
    }

    fn send_ready(&self) -> ChanSendReady {
        if self.closed {
            ChanSendReady::Closed
        } else if self.queued_bytes >= self.capacity {
            ChanSendReady::Full
        } else {
            ChanSendReady::Writable
        }
    }
}

/// The channel table: all live channels plus the shared wake queue.
///
/// Closed channels are *reaped* once drained: the entry is dropped
/// entirely (monotonic id allocation makes "issued but gone" derivable
/// with zero retained state), so a long-running host that opens a
/// channel per request holds memory proportional to *live* channels,
/// not to history. A reaped id still answers exactly like a drained
/// closed channel — recv is EOF, send is refused, waiters wake
/// immediately — so no caller can observe the reclamation.
#[derive(Debug, Default)]
pub struct ChanTable {
    chans: HashMap<ChanId, Channel>,
    next_id: u64,
    /// Tokens whose wait condition became true, in wake order.
    woken: Vec<u64>,
}

impl ChanTable {
    /// Creates a channel bounded to `capacity` queued bytes (at least one
    /// byte: a zero-capacity channel could never pass a message).
    pub fn open(&mut self, capacity: usize) -> ChanId {
        self.next_id += 1;
        let id = ChanId(self.next_id);
        self.chans.insert(
            id,
            Channel {
                queue: std::collections::VecDeque::new(),
                queued_bytes: 0,
                capacity: capacity.max(1),
                closed: false,
                recv_waiters: Vec::new(),
                send_waiters: Vec::new(),
            },
        );
        id
    }

    fn chan(&self, id: ChanId) -> Result<&Channel, ChanError> {
        self.chans.get(&id).ok_or(ChanError::BadChan(id))
    }

    fn chan_mut(&mut self, id: ChanId) -> Result<&mut Channel, ChanError> {
        self.chans.get_mut(&id).ok_or(ChanError::BadChan(id))
    }

    /// Whether `id` was closed, drained, and reaped. Ids are allocated
    /// monotonically, so "issued once but no longer live" is derivable
    /// with zero retained state — no per-closed-channel history grows.
    fn reaped(&self, id: ChanId) -> bool {
        id.0 >= 1 && id.0 <= self.next_id && !self.chans.contains_key(&id)
    }

    /// Drops a channel's entry once it is closed with nothing left to
    /// drain (close already woke every waiter, and registration on a
    /// closed channel wakes immediately, so no waiter can be parked).
    fn reap_if_drained(&mut self, id: ChanId) {
        if self
            .chans
            .get(&id)
            .is_some_and(|ch| ch.closed && ch.queue.is_empty())
        {
            self.chans.remove(&id);
        }
    }

    /// Queues one message, waking every receive-side waiter. Refused with
    /// [`ChanError::Closed`] after close and [`ChanError::Full`] when the
    /// byte bound would be overrun — except that a message larger than the
    /// whole capacity is admitted into an *empty* queue (it could never
    /// fit otherwise, and refusing it forever would deadlock the pipeline).
    pub fn send(&mut self, id: ChanId, data: &[u8]) -> Result<(), ChanError> {
        if !self.send_fits(id, data.len())? {
            return Err(ChanError::Full(id));
        }
        debug_assert!(!self.reaped(id), "send_fits refuses reaped channels");
        let ch = self.chan_mut(id)?;
        ch.queued_bytes += data.len();
        ch.queue.push_back(data.to_vec());
        let woken = std::mem::take(&mut ch.recv_waiters);
        self.woken.extend(woken);
        Ok(())
    }

    /// Pops one message (truncated to `max_len`), waking every send-side
    /// waiter when capacity frees up; `None` means would-block *or* EOF —
    /// use [`ChanTable::poll_recv`] to tell the two apart. Truncation
    /// discards the tail, as datagram reads do; the capacity accounting
    /// releases the full message.
    pub fn recv(&mut self, id: ChanId, max_len: usize) -> Result<Option<Vec<u8>>, ChanError> {
        if self.reaped(id) {
            // Closed and drained: permanently at end-of-stream.
            return Ok(None);
        }
        let ch = self.chan_mut(id)?;
        let Some(mut msg) = ch.queue.pop_front() else {
            return Ok(None);
        };
        ch.queued_bytes -= msg.len();
        msg.truncate(max_len);
        let woken = std::mem::take(&mut ch.send_waiters);
        self.woken.extend(woken);
        self.reap_if_drained(id);
        Ok(Some(msg))
    }

    /// Probes the receive side without consuming anything.
    pub fn poll_recv(&self, id: ChanId) -> Result<ChanRecvReady, ChanError> {
        if self.reaped(id) {
            return Ok(ChanRecvReady::Eof);
        }
        Ok(self.chan(id)?.recv_ready())
    }

    /// Probes the send side.
    pub fn poll_send(&self, id: ChanId) -> Result<ChanSendReady, ChanError> {
        if self.reaped(id) {
            return Ok(ChanSendReady::Closed);
        }
        Ok(self.chan(id)?.send_ready())
    }

    /// Whether a send of `len` bytes would be admitted right now — the
    /// exact predicate [`ChanTable::send`] applies, as a free probe so a
    /// blocking sender can decide park-or-deliver without charging the
    /// failed attempt. `len` is guest-controlled upstream, so the
    /// capacity check must not trust it: the addition saturates instead
    /// of overflowing.
    pub fn send_fits(&self, id: ChanId, len: usize) -> Result<bool, ChanError> {
        if self.reaped(id) {
            return Err(ChanError::Closed(id));
        }
        let ch = self.chan(id)?;
        if ch.closed {
            return Err(ChanError::Closed(id));
        }
        Ok(ch.queued_bytes.saturating_add(len) <= ch.capacity
            || (ch.queue.is_empty() && len > ch.capacity))
    }

    /// Registers `token` to be woken when `id` becomes readable. A channel
    /// that is *already* readable (or at EOF) wakes the token immediately —
    /// registration never loses a wake that raced the block decision.
    /// Unlike sockets, any number of waiters may park on one channel.
    pub fn register_recv_waiter(&mut self, id: ChanId, token: u64) -> Result<(), ChanError> {
        if self.reaped(id) {
            // EOF is readable: the wake is immediate.
            self.woken.push(token);
            return Ok(());
        }
        let ch = self.chan_mut(id)?;
        if ch.recv_ready() == ChanRecvReady::WouldBlock {
            ch.recv_waiters.push(token);
        } else {
            self.woken.push(token);
        }
        Ok(())
    }

    /// Registers `token` to be woken when a send of `len` bytes to `id`
    /// would be admitted (or the channel closes, which ends the wait with
    /// a refusal rather than forever). The registration predicate is
    /// exactly [`ChanTable::send_fits`] for the *pending message*, not a
    /// queue-is-completely-full test: a 3-byte send into a 6-of-8-full
    /// queue must park, and a waiter woken the instant it registered
    /// would spin the scheduler's park/wake loop forever.
    pub fn register_send_waiter(
        &mut self,
        id: ChanId,
        token: u64,
        len: usize,
    ) -> Result<(), ChanError> {
        match self.send_fits(id, len) {
            // Closed ends the wait immediately: the resume delivers the
            // refusal instead of parking a sender no recv can ever free.
            Ok(true) | Err(ChanError::Closed(_)) => {
                self.woken.push(token);
                Ok(())
            }
            Ok(false) => {
                self.chan_mut(id)?.send_waiters.push(token);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Drops `token` from both waiter lists of `id` (e.g. the parked run
    /// was killed). Missing channels are fine: close already cleared it.
    pub fn clear_waiter(&mut self, id: ChanId, token: u64) {
        if let Some(ch) = self.chans.get_mut(&id) {
            ch.recv_waiters.retain(|&t| t != token);
            ch.send_waiters.retain(|&t| t != token);
        }
    }

    /// Drains the tokens whose wait conditions became true.
    pub fn take_woken(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.woken)
    }

    /// Closes a channel: sends are refused from here on, queued messages
    /// remain drainable, and *every* waiter on both sides wakes (receivers
    /// observe EOF once drained; senders observe the refusal). Double
    /// close is an error — the caller's handle was already dead.
    pub fn close(&mut self, id: ChanId) -> Result<(), ChanError> {
        if self.reaped(id) {
            return Err(ChanError::Closed(id));
        }
        let ch = self.chan_mut(id)?;
        if ch.closed {
            return Err(ChanError::Closed(id));
        }
        ch.closed = true;
        let mut woken = std::mem::take(&mut ch.recv_waiters);
        woken.append(&mut ch.send_waiters);
        self.woken.extend(woken);
        self.reap_if_drained(id);
        Ok(())
    }

    /// Number of live (unreaped) channels (leak checks in tests).
    pub fn len(&self) -> usize {
        self.chans.len()
    }

    /// Whether no channels exist.
    pub fn is_empty(&self) -> bool {
        self.chans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ChanTable {
        ChanTable::default()
    }

    #[test]
    fn messages_flow_in_order_within_capacity() {
        let mut t = table();
        let c = t.open(64);
        t.send(c, b"one").unwrap();
        t.send(c, b"two").unwrap();
        assert_eq!(t.recv(c, 16).unwrap().unwrap(), b"one");
        assert_eq!(t.recv(c, 16).unwrap().unwrap(), b"two");
        assert_eq!(t.recv(c, 16).unwrap(), None);
    }

    #[test]
    fn recv_truncates_but_releases_full_capacity() {
        let mut t = table();
        let c = t.open(8);
        t.send(c, b"12345678").unwrap();
        assert_eq!(t.poll_send(c).unwrap(), ChanSendReady::Full);
        assert_eq!(t.recv(c, 4).unwrap().unwrap(), b"1234");
        // The whole 8 bytes were released, not just the 4 delivered.
        assert_eq!(t.poll_send(c).unwrap(), ChanSendReady::Writable);
        t.send(c, b"12345678").unwrap();
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let mut t = table();
        let c = t.open(8);
        t.send(c, b"123456").unwrap();
        assert_eq!(t.send(c, b"789"), Err(ChanError::Full(c)));
        assert_eq!(t.send(c, b"78"), Ok(()));
        assert_eq!(t.poll_send(c).unwrap(), ChanSendReady::Full);
    }

    #[test]
    fn oversized_message_admits_into_an_empty_queue_only() {
        let mut t = table();
        let c = t.open(4);
        // Larger than the whole capacity, empty queue: admitted (otherwise
        // it could never pass and the pipeline would deadlock).
        t.send(c, b"123456789").unwrap();
        assert_eq!(t.send(c, b"x"), Err(ChanError::Full(c)));
        assert_eq!(t.recv(c, 64).unwrap().unwrap(), b"123456789");
        t.send(c, b"x").unwrap();
    }

    #[test]
    fn poll_recv_distinguishes_data_wouldblock_and_eof() {
        let mut t = table();
        let c = t.open(64);
        assert_eq!(t.poll_recv(c).unwrap(), ChanRecvReady::WouldBlock);
        t.send(c, b"x").unwrap();
        assert_eq!(t.poll_recv(c).unwrap(), ChanRecvReady::Readable);
        t.recv(c, 8).unwrap().unwrap();
        assert_eq!(t.poll_recv(c).unwrap(), ChanRecvReady::WouldBlock);
        t.close(c).unwrap();
        assert_eq!(t.poll_recv(c).unwrap(), ChanRecvReady::Eof);
    }

    #[test]
    fn send_wakes_every_parked_receiver() {
        let mut t = table();
        let c = t.open(64);
        t.register_recv_waiter(c, 1).unwrap();
        t.register_recv_waiter(c, 2).unwrap();
        t.register_recv_waiter(c, 3).unwrap();
        assert!(t.take_woken().is_empty(), "nothing readable yet");
        t.send(c, b"go").unwrap();
        assert_eq!(t.take_woken(), vec![1, 2, 3]);
        // One-shot: another send with no registrations wakes nobody.
        t.send(c, b"again").unwrap();
        assert!(t.take_woken().is_empty());
    }

    #[test]
    fn recv_wakes_parked_senders_when_capacity_frees() {
        let mut t = table();
        let c = t.open(4);
        t.send(c, b"1234").unwrap();
        t.register_send_waiter(c, 7, 1).unwrap();
        assert!(t.take_woken().is_empty(), "still full");
        t.recv(c, 64).unwrap().unwrap();
        assert_eq!(t.take_woken(), vec![7]);
    }

    #[test]
    fn send_waiter_on_a_partially_full_queue_parks_until_its_message_fits() {
        // The livelock regression: 6 of 8 bytes used is not "Full", but a
        // 3-byte send still cannot proceed — registering its waiter must
        // PARK it (an immediate wake would spin the park/wake loop
        // forever), and the wake must fire only once enough drains.
        let mut t = table();
        let c = t.open(8);
        t.send(c, b"12").unwrap();
        t.send(c, b"3456").unwrap(); // 6 of 8 used.
        t.register_send_waiter(c, 9, 3).unwrap();
        assert!(
            t.take_woken().is_empty(),
            "a send that doesn't fit must park even though the queue \
             isn't at capacity"
        );
        // Draining the 2-byte message leaves 4 used; 4 + 3 fits, and the
        // recv wakes the waiter.
        t.recv(c, 64).unwrap().unwrap();
        assert_eq!(t.take_woken(), vec![9]);
        assert!(t.send_fits(c, 3).unwrap(), "and the send now proceeds");
        // A send that fits registers straight to the wake queue.
        t.register_send_waiter(c, 10, 1).unwrap();
        assert_eq!(t.take_woken(), vec![10]);
    }

    #[test]
    fn close_wakes_parked_senders_and_refuses_further_sends() {
        let mut t = table();
        let c = t.open(2);
        t.send(c, b"xx").unwrap(); // Full.
        t.register_send_waiter(c, 10, 1).unwrap();
        t.close(c).unwrap();
        assert_eq!(t.take_woken(), vec![10], "close ends the send wait");
        assert_eq!(t.send(c, b"y"), Err(ChanError::Closed(c)));
        // Queued data drains, then EOF.
        assert_eq!(t.recv(c, 8).unwrap().unwrap(), b"xx");
        assert_eq!(t.poll_recv(c).unwrap(), ChanRecvReady::Eof);
        assert_eq!(t.close(c), Err(ChanError::Closed(c)), "double close");
    }

    #[test]
    fn close_wakes_the_whole_parked_receiver_storm() {
        let mut t = table();
        let c = t.open(16);
        for token in 0..10 {
            t.register_recv_waiter(c, token).unwrap();
        }
        assert!(t.take_woken().is_empty());
        t.close(c).unwrap();
        assert_eq!(t.take_woken(), (0..10).collect::<Vec<u64>>());
        assert_eq!(t.poll_recv(c).unwrap(), ChanRecvReady::Eof);
    }

    #[test]
    fn registering_on_a_ready_channel_wakes_immediately() {
        let mut t = table();
        let c = t.open(64);
        t.send(c, b"early").unwrap();
        t.register_recv_waiter(c, 5).unwrap();
        assert_eq!(t.take_woken(), vec![5], "no lost wake-up");
        // EOF is readable too.
        t.recv(c, 64).unwrap().unwrap();
        t.close(c).unwrap();
        t.register_recv_waiter(c, 6).unwrap();
        assert_eq!(t.take_woken(), vec![6]);
        // A closed channel also ends a send wait immediately.
        t.register_send_waiter(c, 8, 1).unwrap();
        assert_eq!(t.take_woken(), vec![8]);
    }

    #[test]
    fn clear_waiter_prevents_wake() {
        let mut t = table();
        let c = t.open(64);
        t.register_recv_waiter(c, 1).unwrap();
        t.register_recv_waiter(c, 2).unwrap();
        t.clear_waiter(c, 1);
        t.send(c, b"z").unwrap();
        assert_eq!(t.take_woken(), vec![2]);
    }

    #[test]
    fn closed_and_drained_channels_are_reaped_but_keep_their_semantics() {
        let mut t = table();
        // Close-then-drain: the entry survives until the last message is
        // consumed, then only the id remains.
        let c = t.open(64);
        t.send(c, b"tail").unwrap();
        t.close(c).unwrap();
        assert_eq!(t.len(), 1, "undrained channel must not be reaped");
        assert_eq!(t.recv(c, 64).unwrap().unwrap(), b"tail");
        assert_eq!(t.len(), 0, "drained closed channel is reaped");
        // Every observable behavior of a drained closed channel holds.
        assert_eq!(t.poll_recv(c).unwrap(), ChanRecvReady::Eof);
        assert_eq!(t.recv(c, 8).unwrap(), None, "EOF, not an error");
        assert_eq!(t.poll_send(c).unwrap(), ChanSendReady::Closed);
        assert_eq!(t.send(c, b"x"), Err(ChanError::Closed(c)));
        assert_eq!(t.send_fits(c, 1), Err(ChanError::Closed(c)));
        assert_eq!(t.close(c), Err(ChanError::Closed(c)));
        t.register_recv_waiter(c, 1).unwrap();
        t.register_send_waiter(c, 2, 1).unwrap();
        assert_eq!(t.take_woken(), vec![1, 2], "waits end immediately");
        // Close on an already-empty channel reaps on the spot.
        let e = t.open(8);
        t.close(e).unwrap();
        assert_eq!(t.len(), 0);
        // And the ids stay distinct from never-issued ones.
        assert_eq!(t.recv(ChanId(99), 8), Err(ChanError::BadChan(ChanId(99))));
    }

    #[test]
    fn oversized_send_length_cannot_overflow_the_capacity_check() {
        let mut t = table();
        let c = t.open(8);
        t.send(c, b"123456").unwrap();
        // queued_bytes + usize::MAX must saturate, not wrap into "fits".
        assert!(!t.send_fits(c, usize::MAX).unwrap());
        assert_eq!(
            t.send(c, &[0u8; 3]).unwrap_err(),
            ChanError::Full(c),
            "the queue is still intact after the probe"
        );
    }

    #[test]
    fn bad_channel_is_distinct_from_closed() {
        let mut t = table();
        let c = t.open(8);
        t.close(c).unwrap();
        assert_eq!(t.send(c, b"x"), Err(ChanError::Closed(c)));
        let never = ChanId(999);
        assert_eq!(t.send(never, b"x"), Err(ChanError::BadChan(never)));
        assert!(matches!(t.poll_recv(never), Err(ChanError::BadChan(_))));
    }
}
