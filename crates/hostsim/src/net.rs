//! Loopback socket layer.
//!
//! The paper's network experiments (the §4.2 echo server, the §6.3 HTTP
//! server) generate requests "from localhost"; this module is the
//! deterministic loopback fabric those bytes travel over. Message-oriented
//! FIFO queues per direction are sufficient for the request/response
//! patterns the experiments use.

use std::collections::{HashMap, VecDeque};
use std::fmt;

/// A socket handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId(pub u64);

/// Socket-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No listener on the port.
    ConnectionRefused(u16),
    /// Port already has a listener.
    AddrInUse(u16),
    /// Socket is not open.
    BadSocket(SockId),
    /// Accept on a port that is not listening.
    NotListening(u16),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ConnectionRefused(p) => write!(f, "connection refused on port {p}"),
            NetError::AddrInUse(p) => write!(f, "address in use: port {p}"),
            NetError::BadSocket(s) => write!(f, "bad socket {}", s.0),
            NetError::NotListening(p) => write!(f, "port {p} is not listening"),
        }
    }
}

impl std::error::Error for NetError {}

#[derive(Debug, Default)]
struct Endpoint {
    /// Messages waiting to be received by this endpoint.
    rx: VecDeque<Vec<u8>>,
    /// The other end of the connection, if still open.
    peer: Option<SockId>,
}

/// The loopback network: listeners, accept queues, and per-socket queues.
#[derive(Debug, Default)]
pub struct LoopbackNet {
    listeners: HashMap<u16, VecDeque<SockId>>,
    sockets: HashMap<SockId, Endpoint>,
    next_id: u64,
}

impl LoopbackNet {
    fn fresh(&mut self) -> SockId {
        self.next_id += 1;
        SockId(self.next_id)
    }

    /// Binds a listener to `port`.
    pub fn listen(&mut self, port: u16) -> Result<(), NetError> {
        if self.listeners.contains_key(&port) {
            return Err(NetError::AddrInUse(port));
        }
        self.listeners.insert(port, VecDeque::new());
        Ok(())
    }

    /// Creates a connection to `port`; the peer socket waits in the
    /// listener's accept queue.
    pub fn connect(&mut self, port: u16) -> Result<SockId, NetError> {
        if !self.listeners.contains_key(&port) {
            return Err(NetError::ConnectionRefused(port));
        }
        let client = self.fresh();
        let server = self.fresh();
        self.sockets.insert(
            client,
            Endpoint {
                rx: VecDeque::new(),
                peer: Some(server),
            },
        );
        self.sockets.insert(
            server,
            Endpoint {
                rx: VecDeque::new(),
                peer: Some(client),
            },
        );
        self.listeners
            .get_mut(&port)
            .expect("checked above")
            .push_back(server);
        Ok(client)
    }

    /// Pops one pending connection off the accept queue.
    pub fn accept(&mut self, port: u16) -> Result<Option<SockId>, NetError> {
        let q = self
            .listeners
            .get_mut(&port)
            .ok_or(NetError::NotListening(port))?;
        Ok(q.pop_front())
    }

    /// Sends one message to the peer.
    pub fn send(&mut self, sock: SockId, data: &[u8]) -> Result<(), NetError> {
        let peer = self
            .sockets
            .get(&sock)
            .ok_or(NetError::BadSocket(sock))?
            .peer
            .ok_or(NetError::BadSocket(sock))?;
        let peer_ep = self
            .sockets
            .get_mut(&peer)
            .ok_or(NetError::BadSocket(peer))?;
        peer_ep.rx.push_back(data.to_vec());
        Ok(())
    }

    /// Receives one message (truncated to `max_len`); `None` would block.
    pub fn recv(&mut self, sock: SockId, max_len: usize) -> Result<Option<Vec<u8>>, NetError> {
        let ep = self
            .sockets
            .get_mut(&sock)
            .ok_or(NetError::BadSocket(sock))?;
        Ok(ep.rx.pop_front().map(|mut m| {
            m.truncate(max_len);
            m
        }))
    }

    /// Closes a socket; the peer keeps its queued data but loses the link.
    pub fn close(&mut self, sock: SockId) -> Result<(), NetError> {
        let ep = self
            .sockets
            .remove(&sock)
            .ok_or(NetError::BadSocket(sock))?;
        if let Some(peer) = ep.peer {
            if let Some(pe) = self.sockets.get_mut(&peer) {
                pe.peer = None;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_requires_listener() {
        let mut n = LoopbackNet::default();
        assert_eq!(n.connect(80), Err(NetError::ConnectionRefused(80)));
        n.listen(80).unwrap();
        assert!(n.connect(80).is_ok());
    }

    #[test]
    fn double_listen_is_refused() {
        let mut n = LoopbackNet::default();
        n.listen(80).unwrap();
        assert_eq!(n.listen(80), Err(NetError::AddrInUse(80)));
    }

    #[test]
    fn messages_flow_both_ways_in_order() {
        let mut n = LoopbackNet::default();
        n.listen(80).unwrap();
        let c = n.connect(80).unwrap();
        let s = n.accept(80).unwrap().unwrap();

        n.send(c, b"one").unwrap();
        n.send(c, b"two").unwrap();
        assert_eq!(n.recv(s, 64).unwrap().unwrap(), b"one");
        assert_eq!(n.recv(s, 64).unwrap().unwrap(), b"two");
        assert_eq!(n.recv(s, 64).unwrap(), None);

        n.send(s, b"reply").unwrap();
        assert_eq!(n.recv(c, 64).unwrap().unwrap(), b"reply");
    }

    #[test]
    fn recv_truncates_to_max_len() {
        let mut n = LoopbackNet::default();
        n.listen(1).unwrap();
        let c = n.connect(1).unwrap();
        let s = n.accept(1).unwrap().unwrap();
        n.send(c, b"0123456789").unwrap();
        assert_eq!(n.recv(s, 4).unwrap().unwrap(), b"0123");
    }

    #[test]
    fn multiple_pending_connections_queue_up() {
        let mut n = LoopbackNet::default();
        n.listen(7).unwrap();
        let c1 = n.connect(7).unwrap();
        let c2 = n.connect(7).unwrap();
        assert_ne!(c1, c2);
        assert!(n.accept(7).unwrap().is_some());
        assert!(n.accept(7).unwrap().is_some());
        assert!(n.accept(7).unwrap().is_none());
    }

    #[test]
    fn close_detaches_peer() {
        let mut n = LoopbackNet::default();
        n.listen(9).unwrap();
        let c = n.connect(9).unwrap();
        let s = n.accept(9).unwrap().unwrap();
        n.send(c, b"x").unwrap();
        n.close(c).unwrap();
        // Peer can still drain queued data but cannot send back.
        assert_eq!(n.recv(s, 8).unwrap().unwrap(), b"x");
        assert!(n.send(s, b"y").is_err());
        assert!(n.recv(c, 8).is_err());
    }
}
