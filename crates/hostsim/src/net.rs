//! Loopback socket layer.
//!
//! The paper's network experiments (the §4.2 echo server, the §6.3 HTTP
//! server) generate requests "from localhost"; this module is the
//! deterministic loopback fabric those bytes travel over. Message-oriented
//! FIFO queues per direction are sufficient for the request/response
//! patterns the experiments use.
//!
//! ## Readiness and waiters
//!
//! Event-driven dispatch (a virtine parked in a blocking `recv` yields its
//! shard worker) needs the socket layer to say *when* a socket becomes
//! readable. Each endpoint can register one opaque waiter token
//! ([`LoopbackNet::register_waiter`]); a `send` to the socket — or a peer
//! `close`, which makes EOF readable — moves the token to a wake queue the
//! scheduler drains with [`LoopbackNet::take_woken`]. Waiters are
//! edge-triggered and one-shot: delivery clears the registration, and a
//! blocked consumer re-registers if it blocks again.

use std::collections::{HashMap, VecDeque};
use std::fmt;

/// A socket handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId(pub u64);

/// Socket-layer errors (mapped to guest return codes by Wasp via
/// [`crate::IoClass`], the error taxonomy shared with `fs` and `chan`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No listener on the port.
    ConnectionRefused(u16),
    /// Port already has a listener.
    AddrInUse(u16),
    /// Socket id was never issued.
    BadSocket(SockId),
    /// Socket was open once but has been locally closed — distinct from
    /// [`NetError::BadSocket`]: a use-after-close and a never-opened
    /// handle are different caller bugs and must not alias.
    Closed(SockId),
    /// Accept on a port that is not listening.
    NotListening(u16),
    /// A waiter is already registered on the socket. One blocked consumer
    /// per socket: silently replacing the first token would orphan its
    /// parked run forever.
    WaiterBusy(SockId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ConnectionRefused(p) => write!(f, "connection refused on port {p}"),
            NetError::AddrInUse(p) => write!(f, "address in use: port {p}"),
            NetError::BadSocket(s) => write!(f, "bad socket {}", s.0),
            NetError::Closed(s) => write!(f, "socket {} is closed", s.0),
            NetError::NotListening(p) => write!(f, "port {p} is not listening"),
            NetError::WaiterBusy(s) => write!(f, "socket {} already has a waiter", s.0),
        }
    }
}

impl std::error::Error for NetError {}

/// What a non-destructive readiness probe of a socket's receive side says.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SockReady {
    /// At least one message is queued; a `recv` returns data.
    Readable,
    /// No data queued but the peer is still open: a `recv` would block.
    WouldBlock,
    /// No data queued and the peer closed: a `recv` returns EOF.
    Eof,
}

#[derive(Debug, Default)]
struct Endpoint {
    /// Messages waiting to be received by this endpoint.
    rx: VecDeque<Vec<u8>>,
    /// The other end of the connection, if still open.
    peer: Option<SockId>,
    /// One-shot waiter woken when this endpoint becomes readable.
    waiter: Option<u64>,
}

/// The loopback network: listeners, accept queues, and per-socket queues.
#[derive(Debug, Default)]
pub struct LoopbackNet {
    listeners: HashMap<u16, VecDeque<SockId>>,
    sockets: HashMap<SockId, Endpoint>,
    next_id: u64,
    /// Waiter tokens whose sockets became readable, in wake order.
    woken: Vec<u64>,
}

impl LoopbackNet {
    fn fresh(&mut self) -> SockId {
        self.next_id += 1;
        SockId(self.next_id)
    }

    /// Maps an unknown socket to the precise error: closed-once is
    /// [`NetError::Closed`], never-issued is [`NetError::BadSocket`].
    /// Ids are allocated monotonically, so "issued once but no longer
    /// open" needs no retained history.
    fn missing(&self, sock: SockId) -> NetError {
        if sock.0 >= 1 && sock.0 <= self.next_id {
            NetError::Closed(sock)
        } else {
            NetError::BadSocket(sock)
        }
    }

    /// Binds a listener to `port`.
    pub fn listen(&mut self, port: u16) -> Result<(), NetError> {
        if self.listeners.contains_key(&port) {
            return Err(NetError::AddrInUse(port));
        }
        self.listeners.insert(port, VecDeque::new());
        Ok(())
    }

    /// Creates a connection to `port`; the peer socket waits in the
    /// listener's accept queue.
    pub fn connect(&mut self, port: u16) -> Result<SockId, NetError> {
        if !self.listeners.contains_key(&port) {
            return Err(NetError::ConnectionRefused(port));
        }
        let client = self.fresh();
        let server = self.fresh();
        self.sockets.insert(
            client,
            Endpoint {
                peer: Some(server),
                ..Endpoint::default()
            },
        );
        self.sockets.insert(
            server,
            Endpoint {
                peer: Some(client),
                ..Endpoint::default()
            },
        );
        self.listeners
            .get_mut(&port)
            .expect("checked above")
            .push_back(server);
        Ok(client)
    }

    /// Pops one pending connection off the accept queue.
    pub fn accept(&mut self, port: u16) -> Result<Option<SockId>, NetError> {
        let q = self
            .listeners
            .get_mut(&port)
            .ok_or(NetError::NotListening(port))?;
        Ok(q.pop_front())
    }

    /// Sends one message to the peer, waking its registered waiter if any.
    /// Sending on a connection whose peer closed reports
    /// [`NetError::Closed`] (the EPIPE of this fabric), not a bad handle.
    pub fn send(&mut self, sock: SockId, data: &[u8]) -> Result<(), NetError> {
        let Some(ep) = self.sockets.get(&sock) else {
            return Err(self.missing(sock));
        };
        let peer = ep.peer.ok_or(NetError::Closed(sock))?;
        let peer_ep = self
            .sockets
            .get_mut(&peer)
            .ok_or(NetError::BadSocket(peer))?;
        peer_ep.rx.push_back(data.to_vec());
        if let Some(token) = peer_ep.waiter.take() {
            self.woken.push(token);
        }
        Ok(())
    }

    /// Receives one message (truncated to `max_len`); `None` would block
    /// *or* is EOF — use [`LoopbackNet::poll`] to tell the two apart.
    pub fn recv(&mut self, sock: SockId, max_len: usize) -> Result<Option<Vec<u8>>, NetError> {
        let Some(ep) = self.sockets.get_mut(&sock) else {
            return Err(self.missing(sock));
        };
        Ok(ep.rx.pop_front().map(|mut m| {
            m.truncate(max_len);
            m
        }))
    }

    /// Probes the receive side without consuming anything.
    pub fn poll(&self, sock: SockId) -> Result<SockReady, NetError> {
        let ep = self.sockets.get(&sock).ok_or_else(|| self.missing(sock))?;
        Ok(if !ep.rx.is_empty() {
            SockReady::Readable
        } else if ep.peer.is_some() {
            SockReady::WouldBlock
        } else {
            SockReady::Eof
        })
    }

    /// Registers `token` to be woken when `sock` becomes readable. If the
    /// socket is *already* readable (data queued, or EOF pending), the
    /// token goes straight to the wake queue — registration never loses a
    /// wake that raced the block decision. At most one waiter per socket:
    /// a second registration is refused ([`NetError::WaiterBusy`]) rather
    /// than silently orphaning the first.
    pub fn register_waiter(&mut self, sock: SockId, token: u64) -> Result<(), NetError> {
        let ready = self.poll(sock)? != SockReady::WouldBlock;
        let ep = self
            .sockets
            .get_mut(&sock)
            .expect("poll above verified the socket exists");
        if ep.waiter.is_some() {
            return Err(NetError::WaiterBusy(sock));
        }
        if ready {
            self.woken.push(token);
        } else {
            ep.waiter = Some(token);
        }
        Ok(())
    }

    /// Drops any waiter registered on `sock` (e.g. the blocked run was
    /// killed). Missing sockets are fine: close already cleared it.
    pub fn clear_waiter(&mut self, sock: SockId) {
        if let Some(ep) = self.sockets.get_mut(&sock) {
            ep.waiter = None;
        }
    }

    /// Drains the tokens whose sockets became readable since the last call.
    pub fn take_woken(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.woken)
    }

    /// Closes a socket; the peer keeps its queued data but loses the link.
    /// EOF is readable, so a waiter parked on the peer is woken.
    pub fn close(&mut self, sock: SockId) -> Result<(), NetError> {
        let Some(ep) = self.sockets.remove(&sock) else {
            return Err(self.missing(sock));
        };
        if let Some(peer) = ep.peer {
            if let Some(pe) = self.sockets.get_mut(&peer) {
                pe.peer = None;
                if let Some(token) = pe.waiter.take() {
                    self.woken.push(token);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_requires_listener() {
        let mut n = LoopbackNet::default();
        assert_eq!(n.connect(80), Err(NetError::ConnectionRefused(80)));
        n.listen(80).unwrap();
        assert!(n.connect(80).is_ok());
    }

    #[test]
    fn double_listen_is_refused() {
        let mut n = LoopbackNet::default();
        n.listen(80).unwrap();
        assert_eq!(n.listen(80), Err(NetError::AddrInUse(80)));
    }

    #[test]
    fn messages_flow_both_ways_in_order() {
        let mut n = LoopbackNet::default();
        n.listen(80).unwrap();
        let c = n.connect(80).unwrap();
        let s = n.accept(80).unwrap().unwrap();

        n.send(c, b"one").unwrap();
        n.send(c, b"two").unwrap();
        assert_eq!(n.recv(s, 64).unwrap().unwrap(), b"one");
        assert_eq!(n.recv(s, 64).unwrap().unwrap(), b"two");
        assert_eq!(n.recv(s, 64).unwrap(), None);

        n.send(s, b"reply").unwrap();
        assert_eq!(n.recv(c, 64).unwrap().unwrap(), b"reply");
    }

    #[test]
    fn recv_truncates_to_max_len() {
        let mut n = LoopbackNet::default();
        n.listen(1).unwrap();
        let c = n.connect(1).unwrap();
        let s = n.accept(1).unwrap().unwrap();
        n.send(c, b"0123456789").unwrap();
        assert_eq!(n.recv(s, 4).unwrap().unwrap(), b"0123");
    }

    #[test]
    fn multiple_pending_connections_queue_up() {
        let mut n = LoopbackNet::default();
        n.listen(7).unwrap();
        let c1 = n.connect(7).unwrap();
        let c2 = n.connect(7).unwrap();
        assert_ne!(c1, c2);
        assert!(n.accept(7).unwrap().is_some());
        assert!(n.accept(7).unwrap().is_some());
        assert!(n.accept(7).unwrap().is_none());
    }

    #[test]
    fn poll_distinguishes_data_wouldblock_and_eof() {
        let mut n = LoopbackNet::default();
        n.listen(5).unwrap();
        let c = n.connect(5).unwrap();
        let s = n.accept(5).unwrap().unwrap();
        assert_eq!(n.poll(s).unwrap(), SockReady::WouldBlock);
        n.send(c, b"x").unwrap();
        assert_eq!(n.poll(s).unwrap(), SockReady::Readable);
        n.recv(s, 8).unwrap().unwrap();
        assert_eq!(n.poll(s).unwrap(), SockReady::WouldBlock);
        n.close(c).unwrap();
        assert_eq!(n.poll(s).unwrap(), SockReady::Eof);
        assert!(n.poll(c).is_err(), "closed socket has no readiness");
    }

    #[test]
    fn send_wakes_registered_waiter_once() {
        let mut n = LoopbackNet::default();
        n.listen(5).unwrap();
        let c = n.connect(5).unwrap();
        let s = n.accept(5).unwrap().unwrap();
        n.register_waiter(s, 42).unwrap();
        assert!(n.take_woken().is_empty(), "nothing readable yet");
        n.send(c, b"a").unwrap();
        assert_eq!(n.take_woken(), vec![42]);
        // One-shot: a second send with no registration wakes nobody.
        n.send(c, b"b").unwrap();
        assert!(n.take_woken().is_empty());
    }

    #[test]
    fn registering_on_an_already_readable_socket_wakes_immediately() {
        let mut n = LoopbackNet::default();
        n.listen(5).unwrap();
        let c = n.connect(5).unwrap();
        let s = n.accept(5).unwrap().unwrap();
        n.send(c, b"early").unwrap();
        n.register_waiter(s, 7).unwrap();
        assert_eq!(n.take_woken(), vec![7], "no lost wake-up");
        // EOF is readable too.
        n.recv(s, 64).unwrap().unwrap();
        n.close(c).unwrap();
        n.register_waiter(s, 8).unwrap();
        assert_eq!(n.take_woken(), vec![8]);
    }

    #[test]
    fn peer_close_wakes_waiter_for_eof() {
        let mut n = LoopbackNet::default();
        n.listen(5).unwrap();
        let c = n.connect(5).unwrap();
        let s = n.accept(5).unwrap().unwrap();
        n.register_waiter(s, 9).unwrap();
        n.close(c).unwrap();
        assert_eq!(n.take_woken(), vec![9]);
        assert_eq!(n.poll(s).unwrap(), SockReady::Eof);
    }

    #[test]
    fn second_waiter_registration_is_refused_not_overwritten() {
        let mut n = LoopbackNet::default();
        n.listen(5).unwrap();
        let c = n.connect(5).unwrap();
        let s = n.accept(5).unwrap().unwrap();
        n.register_waiter(s, 1).unwrap();
        assert_eq!(n.register_waiter(s, 2), Err(NetError::WaiterBusy(s)));
        // The first registration survives and is the one woken.
        n.send(c, b"x").unwrap();
        assert_eq!(n.take_woken(), vec![1]);
    }

    #[test]
    fn clear_waiter_prevents_wake() {
        let mut n = LoopbackNet::default();
        n.listen(5).unwrap();
        let c = n.connect(5).unwrap();
        let s = n.accept(5).unwrap().unwrap();
        n.register_waiter(s, 1).unwrap();
        n.clear_waiter(s);
        n.send(c, b"z").unwrap();
        assert!(n.take_woken().is_empty());
    }

    #[test]
    fn close_detaches_peer() {
        let mut n = LoopbackNet::default();
        n.listen(9).unwrap();
        let c = n.connect(9).unwrap();
        let s = n.accept(9).unwrap().unwrap();
        n.send(c, b"x").unwrap();
        n.close(c).unwrap();
        // Peer can still drain queued data but cannot send back; the
        // failure names the closed connection, not a bad handle.
        assert_eq!(n.recv(s, 8).unwrap().unwrap(), b"x");
        assert_eq!(n.send(s, b"y"), Err(NetError::Closed(s)));
        // Recv after *local* close is the distinct Closed error, never a
        // BadSocket alias — and a never-issued id stays BadSocket.
        assert_eq!(n.recv(c, 8), Err(NetError::Closed(c)));
        assert_eq!(
            n.recv(SockId(999), 8),
            Err(NetError::BadSocket(SockId(999)))
        );
    }
}
