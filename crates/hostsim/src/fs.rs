//! In-memory filesystem backing the POSIX-style hypercalls.
//!
//! §6.3's static-content HTTP server turns guest hypercalls into host
//! system calls: "a validated `read()` will turn into a `read()` on the
//! host filesystem". This module is that host filesystem.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A file descriptor handed out by [`InMemFs::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u64);

/// Metadata returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// File size in bytes.
    pub size: u64,
}

/// Filesystem errors (mapped to guest return codes by Wasp via
/// [`crate::IoClass`], the error taxonomy shared with `net` and `chan`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Descriptor was never issued.
    BadFd(Fd),
    /// Descriptor was open once but has been closed — distinct from
    /// [`FsError::BadFd`]: "you closed this" and "this never existed" are
    /// different caller bugs.
    Closed(Fd),
    /// The read cursor is at end-of-file — distinct from an error: Wasp
    /// maps it to the clean `0` guests already check for, never to `-1`.
    Eof(Fd),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::BadFd(fd) => write!(f, "bad file descriptor {}", fd.0),
            FsError::Closed(fd) => write!(f, "file descriptor {} is closed", fd.0),
            FsError::Eof(fd) => write!(f, "end of file on descriptor {}", fd.0),
        }
    }
}

impl std::error::Error for FsError {}

#[derive(Debug)]
struct OpenFile {
    data: Rc<Vec<u8>>,
    cursor: usize,
}

/// A flat, in-memory filesystem with per-descriptor read cursors.
#[derive(Debug, Default)]
pub struct InMemFs {
    files: HashMap<String, Rc<Vec<u8>>>,
    open: HashMap<Fd, OpenFile>,
    next_fd: u64,
}

impl InMemFs {
    /// Installs (or replaces) a file.
    pub fn add_file(&mut self, path: &str, content: Vec<u8>) {
        self.files.insert(path.to_string(), Rc::new(content));
    }

    /// Opens a file for reading.
    pub fn open(&mut self, path: &str) -> Result<Fd, FsError> {
        let data = self
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        self.next_fd += 1;
        let fd = Fd(self.next_fd);
        self.open.insert(fd, OpenFile { data, cursor: 0 });
        Ok(fd)
    }

    /// Returns file metadata.
    pub fn stat(&self, path: &str) -> Result<FileStat, FsError> {
        let data = self
            .files
            .get(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        Ok(FileStat {
            size: data.len() as u64,
        })
    }

    /// Maps an unknown descriptor to the precise error: closed-once is
    /// [`FsError::Closed`], never-issued is [`FsError::BadFd`].
    /// Descriptors are allocated monotonically, so "issued once but no
    /// longer open" needs no retained history.
    fn missing(&self, fd: Fd) -> FsError {
        if fd.0 >= 1 && fd.0 <= self.next_fd {
            FsError::Closed(fd)
        } else {
            FsError::BadFd(fd)
        }
    }

    /// Reads up to `len` bytes from the descriptor's cursor. A cursor
    /// already at end-of-file reports [`FsError::Eof`] — a distinct,
    /// non-error condition callers map to the clean `0`, never a
    /// `BadFd`-alias or an empty-read guess. A zero-length *request*
    /// succeeds with an empty read wherever the cursor is (POSIX: a read
    /// of 0 bytes reports nothing, including EOF — a zero-byte file must
    /// not turn `read(fd, size)` into an error).
    pub fn read(&mut self, fd: Fd, len: usize) -> Result<Vec<u8>, FsError> {
        let Some(f) = self.open.get_mut(&fd) else {
            return Err(self.missing(fd));
        };
        if len == 0 {
            return Ok(Vec::new());
        }
        let start = f.cursor.min(f.data.len());
        if start >= f.data.len() {
            return Err(FsError::Eof(fd));
        }
        let end = (start + len).min(f.data.len());
        f.cursor = end;
        Ok(f.data[start..end].to_vec())
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: Fd) -> Result<(), FsError> {
        match self.open.remove(&fd) {
            Some(_) => Ok(()),
            None => Err(self.missing(fd)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_read_close_cycle() {
        let mut fs = InMemFs::default();
        fs.add_file("/a", vec![1, 2, 3, 4, 5]);
        let fd = fs.open("/a").unwrap();
        assert_eq!(fs.read(fd, 2).unwrap(), vec![1, 2]);
        assert_eq!(fs.read(fd, 10).unwrap(), vec![3, 4, 5]);
        // At end-of-file: the distinct Eof condition, not an empty read.
        assert_eq!(fs.read(fd, 10), Err(FsError::Eof(fd)));
        fs.close(fd).unwrap();
        // After close: Closed, never a BadFd alias.
        assert_eq!(fs.read(fd, 1), Err(FsError::Closed(fd)));
        assert_eq!(fs.close(fd), Err(FsError::Closed(fd)));
        // A descriptor never issued is the genuine BadFd.
        assert_eq!(fs.read(Fd(999), 1), Err(FsError::BadFd(Fd(999))));
    }

    #[test]
    fn empty_file_reads_as_eof_immediately() {
        let mut fs = InMemFs::default();
        fs.add_file("/empty", Vec::new());
        let fd = fs.open("/empty").unwrap();
        assert_eq!(fs.read(fd, 64), Err(FsError::Eof(fd)));
        // ...but a zero-length request reports nothing, not EOF — the
        // §6.3 handler issues read(fd, size) verbatim, and a zero-byte
        // file must yield an empty success.
        assert_eq!(fs.read(fd, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn independent_cursors_per_fd() {
        let mut fs = InMemFs::default();
        fs.add_file("/a", vec![9; 8]);
        let fd1 = fs.open("/a").unwrap();
        let fd2 = fs.open("/a").unwrap();
        assert_ne!(fd1, fd2);
        assert_eq!(fs.read(fd1, 8).unwrap().len(), 8);
        assert_eq!(fs.read(fd2, 4).unwrap().len(), 4);
    }

    #[test]
    fn stat_reports_size() {
        let mut fs = InMemFs::default();
        fs.add_file("/s", vec![0; 123]);
        assert_eq!(fs.stat("/s").unwrap().size, 123);
        assert!(matches!(fs.stat("/t"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn replacing_a_file_does_not_disturb_open_fds() {
        let mut fs = InMemFs::default();
        fs.add_file("/f", b"old".to_vec());
        let fd = fs.open("/f").unwrap();
        fs.add_file("/f", b"new!".to_vec());
        // The open descriptor still sees the old contents (POSIX unlink
        // semantics), while a fresh stat sees the new file.
        assert_eq!(fs.read(fd, 16).unwrap(), b"old".to_vec());
        assert_eq!(fs.stat("/f").unwrap().size, 4);
    }
}
